#include "dtn/summary_codec.hpp"

#include <cassert>

namespace epi::dtn {

namespace {

/// splitmix64 finalizer: a full-avalanche mix so sequential bundle ids
/// (flows number them 1..n) spread over the whole filter.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Second, independent stream for double hashing; forced odd so the probe
/// sequence h1 + i*h2 visits distinct bits for any filter size.
constexpr std::uint64_t mix64_odd(std::uint64_t x) noexcept {
  return mix64(x ^ 0xda3e39cb94b95bdbULL) | 1ULL;
}

}  // namespace

void BloomFilter::rebuild(const BundleBuffer& buffer,
                          std::uint32_t bits_per_bundle,
                          std::uint32_t hashes) {
  bits_ = static_cast<std::uint64_t>(bits_per_bundle) * buffer.size();
  hashes_ = hashes;
  words_.assign((bits_ + 63) / 64, 0);
  for (const StoredBundle& copy : buffer.entries()) insert(copy.id);
}

void BloomFilter::insert(BundleId id) noexcept {
  if (bits_ == 0) return;
  const std::uint64_t h1 = mix64(id);
  const std::uint64_t h2 = mix64_odd(id);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bits_;
    words_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::may_contain(BundleId id) const noexcept {
  if (bits_ == 0) return false;
  const std::uint64_t h1 = mix64(id);
  const std::uint64_t h2 = mix64_odd(id);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bits_;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

std::uint64_t ExactCodec::advertise(int /*side*/, const BundleBuffer& buffer) {
  return static_cast<std::uint64_t>(buffer.size()) * kSummaryEntryBytes;
}

bool ExactCodec::claims(int /*side*/, const BundleBuffer& buffer,
                        BundleId id) const {
  return buffer.contains(id);
}

BloomCodec::BloomCodec(const SummaryCodecParams& params)
    : filter_bits_(params.filter_bits),
      hashes_(params.resolved_hashes()) {}

std::uint64_t BloomCodec::advertise(int side, const BundleBuffer& buffer) {
  assert(side == 0 || side == 1);
  BloomFilter& filter = filters_[side];
  filter.rebuild(buffer, filter_bits_, hashes_);
  return filter.byte_size();
}

bool BloomCodec::claims(int side, const BundleBuffer& /*buffer*/,
                        BundleId id) const {
  assert(side == 0 || side == 1);
  return filters_[side].may_contain(id);
}

std::unique_ptr<SummaryCodec> make_summary_codec(
    const SummaryCodecParams& params) {
  switch (params.mode) {
    case SummaryMode::kExact:
      return std::make_unique<ExactCodec>();
    case SummaryMode::kBloom:
      return std::make_unique<BloomCodec>(params);
  }
  return std::make_unique<ExactCodec>();
}

}  // namespace epi::dtn
