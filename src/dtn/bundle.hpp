// Bundles and per-node stored copies.
//
// A Bundle is the immutable, network-wide identity of a message (DTN
// terminology for "message"; bundles are large — the paper budgets 100 s of
// contact time per transfer). A StoredBundle is one node's copy of it,
// carrying the mutable per-copy state the protocols manage: the encounter
// count (EC) and the TTL deadline.
#pragma once

#include "core/event_queue.hpp"
#include "core/types.hpp"

namespace epi::dtn {

/// Network-wide identity of a bundle. Ids of one flow are sequential from 1
/// (injection order), which is what lets a cumulative immunity table say
/// "everything up to H has arrived".
struct Bundle {
  BundleId id = kInvalidBundle;
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  SimTime created = 0.0;
  std::uint32_t flow = 0;  ///< index into the run's flow list

  friend bool operator==(const Bundle&, const Bundle&) = default;
};

/// One node's copy of a bundle.
struct StoredBundle {
  BundleId id = kInvalidBundle;

  /// Encounter count: number of times *this lineage* of the copy has been
  /// transmitted. Synchronised between sender and receiver on each transfer
  /// (paper SII-B: after node A sends bundle 4 to B, both see EC 4).
  std::uint32_t ec = 0;

  SimTime stored_at = 0.0;

  /// When this copy was last transmitted by its holder; unset until the
  /// first transmission. The engine offers least-recently-transmitted
  /// bundles first so no bundle starves behind lower ids.
  SimTime last_tx = -1.0;

  [[nodiscard]] bool ever_transmitted() const noexcept {
    return last_tx >= 0.0;
  }

  /// Replication budget for quota-based protocols (spray-and-wait): how
  /// many further copies this copy may still spawn. 0 = unused by the
  /// active protocol.
  std::uint32_t tokens = 0;

  /// Absolute expiry deadline; kNoExpiry means the copy never times out.
  SimTime expiry = kNoExpiry;

  /// Pending expiry event, so a TTL renewal can cancel and reschedule it.
  core::EventHandle expiry_event{};

  [[nodiscard]] bool expires() const noexcept { return expiry != kNoExpiry; }
};

/// Why a copy left a buffer — recorded for diagnostics and metrics.
enum class RemoveReason {
  kExpired,    ///< TTL ran out
  kEvicted,    ///< displaced by an incoming bundle (EC policy)
  kImmunized,  ///< purged by an anti-packet / immunity table
  kConsumed,   ///< arrived at its destination
};

}  // namespace epi::dtn
