// DtnNode: the per-node substrate every protocol operates on.
//
// A node owns its bundle buffer, its encounter history (needed by the
// dynamic-TTL enhancement), its destination-side delivery record, and the
// anti-packet / immunity state. Protocols read and mutate exactly the fields
// their paper description mentions; the rest stays inert.
#pragma once

#include <optional>
#include <unordered_map>

#include "dtn/buffer.hpp"
#include "dtn/immunity.hpp"
#include "dtn/summary_vector.hpp"

namespace epi::dtn {

class DtnNode {
 public:
  DtnNode(NodeId id, std::uint32_t buffer_capacity)
      : id_(id), buffer_(buffer_capacity) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] BundleBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const BundleBuffer& buffer() const noexcept { return buffer_; }

  /// Pre-sizes every dense-id exchange set (delivered record, i-list,
  /// prefix tracker) for bundle ids up to `max_id`, so inserts and merges on
  /// the contact path never grow word storage. The engine calls this once at
  /// construction with the run's total load.
  void reserve_bundle_ids(BundleId max_id) {
    delivered_.reserve(max_id);
    prefix_.reserve(max_id);
    ilist_.reserve(max_id);
  }

  // --- encounter history (dynamic TTL, Algo 1) ------------------------------

  /// Called at each contact start this node participates in. Contacts that
  /// begin within `session_gap` of the node's previous contact belong to the
  /// same *encounter session* (human traces are bursty: one gathering
  /// produces several contact starts within minutes; Algo 1's "interval
  /// between the last two encounters" is only meaningful between sessions).
  void note_contact_start(SimTime t, SimTime session_gap = 1'800.0) {
    if (!last_contact_ || t - *last_contact_ > session_gap) {
      prev_session_ = session_start_;
      session_start_ = t;
    }
    prev_contact_ = last_contact_;
    last_contact_ = t;
  }

  /// The raw interval between the last two contact starts witnessed by this
  /// node; nullopt until the node has seen two contacts.
  [[nodiscard]] std::optional<SimTime> last_interval() const {
    if (!prev_contact_ || !last_contact_) return std::nullopt;
    return *last_contact_ - *prev_contact_;
  }

  /// The interval between the starts of the node's last two encounter
  /// sessions — the quantity Algo 1 doubles into a TTL. nullopt until the
  /// node has witnessed two sessions.
  [[nodiscard]] std::optional<SimTime> last_session_interval() const {
    if (!prev_session_ || !session_start_) return std::nullopt;
    return *session_start_ - *prev_session_;
  }

  [[nodiscard]] std::optional<SimTime> last_contact_start() const {
    return last_contact_;
  }

  /// Total number of contacts this node has participated in.
  [[nodiscard]] std::uint64_t contact_count() const noexcept {
    return contact_count_;
  }
  void bump_contact_count() noexcept { ++contact_count_; }

  /// Per-peer encounter history: called at each contact start with `peer`.
  /// Human traces are bursty (one gathering = several contact starts within
  /// minutes), so the node-level interval collapses during bursts; the
  /// per-peer interval is what the iMote devices actually log ("each device
  /// records ... for every node it encounters: begin times, duration").
  void note_peer_contact(NodeId peer, SimTime t) {
    auto& h = peer_history_[peer];
    h.prev = h.last;
    h.last = t;
  }

  /// Interval between the last two encounter starts with `peer`; nullopt
  /// until two encounters with that peer have been seen.
  [[nodiscard]] std::optional<SimTime> last_interval_with(NodeId peer) const {
    const auto it = peer_history_.find(peer);
    if (it == peer_history_.end() || !it->second.prev || !it->second.last) {
      return std::nullopt;
    }
    return *it->second.last - *it->second.prev;
  }

  // --- destination-side state -----------------------------------------------

  /// Records that this node, as a flow destination, consumed `id`.
  void mark_delivered(BundleId id) {
    delivered_.insert(id);
    prefix_.record(id);
  }

  [[nodiscard]] bool has_delivered(BundleId id) const {
    return delivered_.contains(id);
  }
  [[nodiscard]] const SummaryVector& delivered() const noexcept {
    return delivered_;
  }

  /// Highest H with bundles 1..H all delivered to this node (cumulative
  /// immunity table the node would emit as a destination).
  [[nodiscard]] BundleId delivered_prefix() const noexcept {
    return prefix_.horizon();
  }

  // --- immunity / anti-packet state -----------------------------------------

  [[nodiscard]] ImmunityList& ilist() noexcept { return ilist_; }
  [[nodiscard]] const ImmunityList& ilist() const noexcept { return ilist_; }

  [[nodiscard]] CumulativeImmunity& cumulative() noexcept {
    return cumulative_;
  }
  [[nodiscard]] const CumulativeImmunity& cumulative() const noexcept {
    return cumulative_;
  }

  /// True when either immunity mechanism marks `id` as already delivered.
  [[nodiscard]] bool knows_immune(BundleId id) const {
    return ilist_.immune(id) || cumulative_.immune(id);
  }

 private:
  NodeId id_;
  BundleBuffer buffer_;

  std::optional<SimTime> last_contact_;
  std::optional<SimTime> prev_contact_;
  std::optional<SimTime> session_start_;
  std::optional<SimTime> prev_session_;
  std::uint64_t contact_count_ = 0;

  struct PeerHistory {
    std::optional<SimTime> last;
    std::optional<SimTime> prev;
  };
  std::unordered_map<NodeId, PeerHistory> peer_history_;

  SummaryVector delivered_;
  DeliveredPrefixTracker prefix_;

  ImmunityList ilist_;
  CumulativeImmunity cumulative_;
};

}  // namespace epi::dtn
