// DtnNode: the per-node substrate every protocol operates on.
//
// A node owns its bundle buffer, its encounter history (needed by the
// dynamic-TTL enhancement), its destination-side delivery record, and the
// anti-packet / immunity state. Protocols read and mutate exactly the fields
// their paper description mentions; the rest stays inert.
#pragma once

#include <optional>

#include "dtn/buffer.hpp"
#include "dtn/encounter_state.hpp"
#include "dtn/immunity.hpp"
#include "dtn/summary_vector.hpp"

namespace epi::dtn {

class DtnNode {
 public:
  DtnNode(NodeId id, std::uint32_t buffer_capacity)
      : id_(id), buffer_(buffer_capacity) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] BundleBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const BundleBuffer& buffer() const noexcept { return buffer_; }

  /// Pre-sizes every dense-id exchange set (delivered record, i-list,
  /// prefix tracker) for bundle ids up to `max_id`, so inserts and merges on
  /// the contact path never grow word storage. The engine calls this once at
  /// construction with the run's total load.
  void reserve_bundle_ids(BundleId max_id) {
    delivered_.reserve(max_id);
    prefix_.reserve(max_id);
    ilist_.reserve(max_id);
  }

  // --- encounter history (dynamic TTL, Algo 1) ------------------------------
  //
  // The history itself lives in the engine-owned struct-of-arrays
  // EncounterState (two contiguous writes per contact instead of scattered
  // per-node optionals); the node keeps the query surface so protocol code
  // stays oblivious to the layout.

  /// Wires this node to the run's shared encounter table. The engine calls
  /// this once at construction; a detached node answers every encounter
  /// query with nullopt / zero.
  void attach_encounters(const EncounterState* encounters) noexcept {
    encounters_ = encounters;
  }

  /// The raw interval between the last two contact starts witnessed by this
  /// node; nullopt until the node has seen two contacts.
  [[nodiscard]] std::optional<SimTime> last_interval() const {
    if (encounters_ == nullptr) return std::nullopt;
    return encounters_->last_interval(id_);
  }

  /// The interval between the starts of the node's last two encounter
  /// sessions — the quantity Algo 1 doubles into a TTL. nullopt until the
  /// node has witnessed two sessions.
  [[nodiscard]] std::optional<SimTime> last_session_interval() const {
    if (encounters_ == nullptr) return std::nullopt;
    return encounters_->last_session_interval(id_);
  }

  [[nodiscard]] std::optional<SimTime> last_contact_start() const {
    if (encounters_ == nullptr) return std::nullopt;
    return encounters_->last_contact_start(id_);
  }

  /// Total number of contacts this node has participated in.
  [[nodiscard]] std::uint64_t contact_count() const noexcept {
    return encounters_ == nullptr ? 0 : encounters_->contact_count(id_);
  }

  /// Interval between the last two encounter starts with `peer`; nullopt
  /// until two encounters with that peer have been seen (requires the
  /// encounter table's opt-in peer tracking).
  [[nodiscard]] std::optional<SimTime> last_interval_with(NodeId peer) const {
    if (encounters_ == nullptr) return std::nullopt;
    return encounters_->last_interval_between(id_, peer);
  }

  // --- destination-side state -----------------------------------------------

  /// Records that this node, as a flow destination, consumed `id`.
  void mark_delivered(BundleId id) {
    delivered_.insert(id);
    prefix_.record(id);
  }

  [[nodiscard]] bool has_delivered(BundleId id) const {
    return delivered_.contains(id);
  }
  [[nodiscard]] const SummaryVector& delivered() const noexcept {
    return delivered_;
  }

  /// Highest H with bundles 1..H all delivered to this node (cumulative
  /// immunity table the node would emit as a destination).
  [[nodiscard]] BundleId delivered_prefix() const noexcept {
    return prefix_.horizon();
  }

  // --- immunity / anti-packet state -----------------------------------------

  [[nodiscard]] ImmunityList& ilist() noexcept { return ilist_; }
  [[nodiscard]] const ImmunityList& ilist() const noexcept { return ilist_; }

  [[nodiscard]] CumulativeImmunity& cumulative() noexcept {
    return cumulative_;
  }
  [[nodiscard]] const CumulativeImmunity& cumulative() const noexcept {
    return cumulative_;
  }

  /// True when either immunity mechanism marks `id` as already delivered.
  [[nodiscard]] bool knows_immune(BundleId id) const {
    return ilist_.immune(id) || cumulative_.immune(id);
  }

 private:
  NodeId id_;
  BundleBuffer buffer_;

  const EncounterState* encounters_ = nullptr;  ///< shared SoA table

  SummaryVector delivered_;
  DeliveredPrefixTracker prefix_;

  ImmunityList ilist_;
  CumulativeImmunity cumulative_;
};

}  // namespace epi::dtn
