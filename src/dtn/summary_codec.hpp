// Pluggable summary-exchange codecs.
//
// A contact advertises each side's buffer contents to the peer; the transfer
// loop consults the advertisement to skip bundles the receiver already
// claims to hold. ExactCodec reproduces the legacy word-packed exact-set
// semantics for free (the advertisement *is* the buffer); BloomCodec trades
// advertisement bytes for false positives, which suppress offers the
// receiver would in fact have accepted (Marandi et al., PAPERS.md).
//
// Codecs are engine-owned scratch: run_slot() re-encodes both sides before
// consulting claims(), so no per-session filter state is ever stored.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/summary_mode.hpp"
#include "core/types.hpp"
#include "dtn/buffer.hpp"

namespace epi::dtn {

/// A word-packed Bloom filter over BundleId with deterministic double
/// hashing: bit_i = (h1 + i*h2) mod m, h2 forced odd, both hashes derived
/// from the id by a splitmix64-style finalizer. No RNG stream is consumed,
/// so filters are a pure function of buffer contents and parameters.
class BloomFilter {
 public:
  /// Rebuilds the filter from `buffer`'s contents at m = bits_per_bundle *
  /// buffer.size() bits. An empty buffer yields an empty (0-bit) filter
  /// that claims nothing.
  void rebuild(const BundleBuffer& buffer, std::uint32_t bits_per_bundle,
               std::uint32_t hashes);

  [[nodiscard]] bool may_contain(BundleId id) const noexcept;

  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bits_; }

  /// Wire size of the advertisement: the bit array rounded up to bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return (bits_ + 7) / 8;
  }

  /// Inserts one id (exposed for the property tests; rebuild() uses it).
  void insert(BundleId id) noexcept;

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t bits_ = 0;
  std::uint32_t hashes_ = 0;
};

/// The exchange seam: how one side's buffer contents are advertised and how
/// the peer's transfer loop queries that advertisement. Side indices are 0
/// for contact.a and 1 for contact.b.
class SummaryCodec {
 public:
  virtual ~SummaryCodec() = default;

  /// Re-encodes `side`'s advertisement from its current buffer contents and
  /// returns the advertisement's wire size in bytes.
  virtual std::uint64_t advertise(int side, const BundleBuffer& buffer) = 0;

  /// Whether `side`'s advertisement claims `id`. May report false positives
  /// (BloomCodec); never false negatives for the buffer it encoded.
  [[nodiscard]] virtual bool claims(int side, const BundleBuffer& buffer,
                                    BundleId id) const = 0;

  /// True when advertisements go stale between transfer slots and must be
  /// re-issued (and re-billed) at every slot.
  [[nodiscard]] virtual bool per_slot_advertisements() const noexcept = 0;
};

/// The legacy exact-set exchange: the advertisement is the buffer itself,
/// billed at kSummaryEntryBytes per stored bundle. Stateless, so claims()
/// reads the live buffer and the engine's behaviour is byte-identical to
/// the pre-codec hard-coded path by construction.
class ExactCodec final : public SummaryCodec {
 public:
  std::uint64_t advertise(int side, const BundleBuffer& buffer) override;
  [[nodiscard]] bool claims(int side, const BundleBuffer& buffer,
                            BundleId id) const override;
  [[nodiscard]] bool per_slot_advertisements() const noexcept override {
    return false;
  }
};

/// Bloom-filter advertisements: m/n bits per bundle, k hash probes.
class BloomCodec final : public SummaryCodec {
 public:
  explicit BloomCodec(const SummaryCodecParams& params);

  std::uint64_t advertise(int side, const BundleBuffer& buffer) override;
  [[nodiscard]] bool claims(int side, const BundleBuffer& buffer,
                            BundleId id) const override;
  [[nodiscard]] bool per_slot_advertisements() const noexcept override {
    return true;
  }

 private:
  BloomFilter filters_[2];
  std::uint32_t filter_bits_;
  std::uint32_t hashes_;
};

/// Builds the codec for `params` (validated by the caller's config path).
[[nodiscard]] std::unique_ptr<SummaryCodec> make_summary_codec(
    const SummaryCodecParams& params);

}  // namespace epi::dtn
