#include "dtn/immunity.hpp"

namespace epi::dtn {

BundleId DeliveredPrefixTracker::record(BundleId id) {
  delivered_.insert(id);
  while (delivered_.contains(h_ + 1)) ++h_;
  return h_;
}

}  // namespace epi::dtn
