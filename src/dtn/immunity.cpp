#include "dtn/immunity.hpp"

#include <algorithm>
#include <vector>

namespace epi::dtn {

std::size_t ImmunityList::merge_limited(const ImmunityList& other,
                                        std::size_t max_records) {
  const std::vector<BundleId> missing = other.ids_.difference(ids_);
  const std::size_t moved = std::min(missing.size(), max_records);
  for (std::size_t i = 0; i < moved; ++i) ids_.insert(missing[i]);
  return moved;
}

BundleId DeliveredPrefixTracker::record(BundleId id) {
  delivered_.insert(id);
  while (delivered_.contains(h_ + 1)) ++h_;
  return h_;
}

}  // namespace epi::dtn
