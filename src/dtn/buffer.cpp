#include "dtn/buffer.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/error.hpp"

namespace epi::dtn {

BundleBuffer::BundleBuffer(std::uint32_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  entries_.reserve(capacity_);
  offer_order_.reserve(capacity_);
}

bool BundleBuffer::contains(BundleId id) const noexcept {
  return find(id) != nullptr;
}

StoredBundle* BundleBuffer::find(BundleId id) noexcept {
  for (auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const StoredBundle* BundleBuffer::find(BundleId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

StoredBundle& BundleBuffer::insert(StoredBundle copy) {
  // Hard checks in every build mode: the admission seam (make_room /
  // select_victim) is exactly the kind of policy code that could slip a
  // store into a full buffer, and an assert compiled out in Release would
  // turn that into silent capacity overflow instead of a diagnosable fault.
  if (full()) {
    throw Error("BundleBuffer::insert into a full buffer (capacity " +
                std::to_string(capacity_) + ")");
  }
  if (contains(copy.id)) {
    throw Error("BundleBuffer::insert of duplicate bundle " +
                std::to_string(copy.id));
  }
  order_insert(OfferEntry{copy.last_tx, copy.id});
  entries_.push_back(copy);
  return entries_.back();
}

std::optional<StoredBundle> BundleBuffer::remove(BundleId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const StoredBundle& e) { return e.id == id; });
  if (it == entries_.end()) return std::nullopt;
  StoredBundle out = *it;
  entries_.erase(it);  // keeps FIFO order of the rest
  order_erase(id);
  return out;
}

void BundleBuffer::mark_transmitted(BundleId id, SimTime at) {
  StoredBundle* copy = find(id);
  assert(copy != nullptr && "mark_transmitted of an absent bundle");
  copy->last_tx = at;
  order_erase(id);
  order_insert(OfferEntry{at, id});
}

void BundleBuffer::order_insert(OfferEntry entry) {
  // (last_tx, id) ascending; never-transmitted copies carry last_tx < 0 and
  // therefore precede every transmitted copy. Buffers are tiny, so a linear
  // scan of the sorted vector beats any cleverer structure.
  const auto it = std::find_if(
      offer_order_.begin(), offer_order_.end(), [&](const OfferEntry& e) {
        if (e.last_tx != entry.last_tx) return entry.last_tx < e.last_tx;
        return entry.id < e.id;
      });
  offer_order_.insert(it, entry);
}

void BundleBuffer::order_erase(BundleId id) {
  const auto it =
      std::find_if(offer_order_.begin(), offer_order_.end(),
                   [id](const OfferEntry& e) { return e.id == id; });
  assert(it != offer_order_.end());
  offer_order_.erase(it);
}

BundleId BundleBuffer::select_victim(const EvictionQuery& query)
    const noexcept {
  // Every scan below walks entries_ in insertion (FIFO) order with a strict
  // `>` comparison, so the first maximum found is also the oldest-stored
  // one — the tie-break every policy shares.
  switch (query.policy) {
    case EvictionPolicy::kDropTail:
      return kInvalidBundle;  // refuse the newcomer, sacrifice nothing
    case EvictionPolicy::kDropOldest:
      return entries_.empty() ? kInvalidBundle : entries_.front().id;
    case EvictionPolicy::kDropMostReplicated: {
      const StoredBundle* best = nullptr;
      std::uint32_t best_count = 0;
      for (const auto& e : entries_) {
        const std::uint32_t count =
            e.id < query.replica_estimate.size()
                ? query.replica_estimate[e.id]
                : 0;
        if (best == nullptr || count > best_count) {
          best = &e;
          best_count = count;
        }
      }
      return best == nullptr ? kInvalidBundle : best->id;
    }
    case EvictionPolicy::kDropLargestEc: {
      const StoredBundle* best = nullptr;
      for (const auto& e : entries_) {
        if (e.ec < query.min_ec) continue;  // protected from eviction
        if (best == nullptr || e.ec > best->ec) best = &e;
      }
      return best == nullptr ? kInvalidBundle : best->id;
    }
  }
  return kInvalidBundle;
}

}  // namespace epi::dtn
