#include "dtn/buffer.hpp"

#include <algorithm>
#include <cassert>

namespace epi::dtn {

BundleBuffer::BundleBuffer(std::uint32_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  entries_.reserve(capacity_);
}

bool BundleBuffer::contains(BundleId id) const noexcept {
  return find(id) != nullptr;
}

StoredBundle* BundleBuffer::find(BundleId id) noexcept {
  for (auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const StoredBundle* BundleBuffer::find(BundleId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

StoredBundle& BundleBuffer::insert(StoredBundle copy) {
  assert(!full() && "insert into a full buffer");
  assert(!contains(copy.id) && "duplicate bundle in buffer");
  entries_.push_back(copy);
  return entries_.back();
}

std::optional<StoredBundle> BundleBuffer::remove(BundleId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const StoredBundle& e) { return e.id == id; });
  if (it == entries_.end()) return std::nullopt;
  StoredBundle out = *it;
  entries_.erase(it);  // keeps FIFO order of the rest
  return out;
}

BundleId BundleBuffer::highest_ec_bundle() const noexcept {
  if (entries_.empty()) return kInvalidBundle;
  // FIFO order means the first maximum found is also the oldest-stored one.
  const StoredBundle* best = &entries_.front();
  for (const auto& e : entries_) {
    if (e.ec > best->ec) best = &e;
  }
  return best->id;
}

}  // namespace epi::dtn
