#include "dtn/buffer.hpp"

#include <algorithm>
#include <cassert>

namespace epi::dtn {

BundleBuffer::BundleBuffer(std::uint32_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  entries_.reserve(capacity_);
  offer_order_.reserve(capacity_);
}

bool BundleBuffer::contains(BundleId id) const noexcept {
  return find(id) != nullptr;
}

StoredBundle* BundleBuffer::find(BundleId id) noexcept {
  for (auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const StoredBundle* BundleBuffer::find(BundleId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

StoredBundle& BundleBuffer::insert(StoredBundle copy) {
  assert(!full() && "insert into a full buffer");
  assert(!contains(copy.id) && "duplicate bundle in buffer");
  order_insert(OfferEntry{copy.last_tx, copy.id});
  entries_.push_back(copy);
  return entries_.back();
}

std::optional<StoredBundle> BundleBuffer::remove(BundleId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const StoredBundle& e) { return e.id == id; });
  if (it == entries_.end()) return std::nullopt;
  StoredBundle out = *it;
  entries_.erase(it);  // keeps FIFO order of the rest
  order_erase(id);
  return out;
}

void BundleBuffer::mark_transmitted(BundleId id, SimTime at) {
  StoredBundle* copy = find(id);
  assert(copy != nullptr && "mark_transmitted of an absent bundle");
  copy->last_tx = at;
  order_erase(id);
  order_insert(OfferEntry{at, id});
}

void BundleBuffer::order_insert(OfferEntry entry) {
  // (last_tx, id) ascending; never-transmitted copies carry last_tx < 0 and
  // therefore precede every transmitted copy. Buffers are tiny, so a linear
  // scan of the sorted vector beats any cleverer structure.
  const auto it = std::find_if(
      offer_order_.begin(), offer_order_.end(), [&](const OfferEntry& e) {
        if (e.last_tx != entry.last_tx) return entry.last_tx < e.last_tx;
        return entry.id < e.id;
      });
  offer_order_.insert(it, entry);
}

void BundleBuffer::order_erase(BundleId id) {
  const auto it =
      std::find_if(offer_order_.begin(), offer_order_.end(),
                   [id](const OfferEntry& e) { return e.id == id; });
  assert(it != offer_order_.end());
  offer_order_.erase(it);
}

BundleId BundleBuffer::highest_ec_bundle() const noexcept {
  if (entries_.empty()) return kInvalidBundle;
  // FIFO order means the first maximum found is also the oldest-stored one.
  const StoredBundle* best = &entries_.front();
  for (const auto& e : entries_) {
    if (e.ec > best->ec) best = &e;
  }
  return best->id;
}

}  // namespace epi::dtn
