// A capacity-bounded bundle store.
//
// Buffers are tiny (the paper fixes them at 10 bundles), so a flat vector in
// insertion order beats any tree/hash container and gives us FIFO iteration
// for free.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dtn/bundle.hpp"

namespace epi::dtn {

class BundleBuffer {
 public:
  explicit BundleBuffer(std::uint32_t capacity);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] double occupancy() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity_);
  }

  [[nodiscard]] bool contains(BundleId id) const noexcept;

  /// Pointer to the stored copy, or nullptr. Stable only until the next
  /// insert/remove.
  [[nodiscard]] StoredBundle* find(BundleId id) noexcept;
  [[nodiscard]] const StoredBundle* find(BundleId id) const noexcept;

  /// Inserts a copy. Precondition (asserted): not full, id not present.
  StoredBundle& insert(StoredBundle copy);

  /// Removes and returns the copy with `id`; nullopt if absent.
  std::optional<StoredBundle> remove(BundleId id);

  /// Entries in insertion (FIFO) order.
  [[nodiscard]] std::span<const StoredBundle> entries() const noexcept {
    return entries_;
  }

  /// One rung of the offer order; carries the sort key so reordering never
  /// has to chase the entry by id.
  struct OfferEntry {
    SimTime last_tx = -1.0;  ///< < 0 means never transmitted
    BundleId id = kInvalidBundle;
  };

  /// Bundle ids in the engine's fair offer order: never-transmitted copies
  /// first (ascending id), then by least-recently-transmitted (ties toward
  /// the lower id). Maintained incrementally on insert/remove/
  /// mark_transmitted, so the per-slot transfer loop never sorts.
  [[nodiscard]] std::span<const OfferEntry> offer_order() const noexcept {
    return offer_order_;
  }

  /// Records that the holder transmitted its copy of `id` at time `at`:
  /// updates the copy's last_tx and repositions it in offer_order().
  /// Mutating last_tx through find() instead would stale the order.
  void mark_transmitted(BundleId id, SimTime at);

  /// The eviction victim of the EC policy: the copy with the highest EC,
  /// breaking ties toward the oldest-stored copy. kInvalidBundle when empty.
  [[nodiscard]] BundleId highest_ec_bundle() const noexcept;

 private:
  void order_insert(OfferEntry entry);
  void order_erase(BundleId id);

  std::uint32_t capacity_;
  std::vector<StoredBundle> entries_;     // insertion order
  std::vector<OfferEntry> offer_order_;   // sorted by (last_tx, id)
};

}  // namespace epi::dtn
