// A capacity-bounded bundle store.
//
// Buffers are tiny (the paper fixes them at 10 bundles), so a flat vector in
// insertion order beats any tree/hash container and gives us FIFO iteration
// for free.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/eviction.hpp"
#include "dtn/bundle.hpp"

namespace epi::dtn {

class BundleBuffer {
 public:
  explicit BundleBuffer(std::uint32_t capacity);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] double occupancy() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity_);
  }

  [[nodiscard]] bool contains(BundleId id) const noexcept;

  /// Pointer to the stored copy, or nullptr. Stable only until the next
  /// insert/remove.
  [[nodiscard]] StoredBundle* find(BundleId id) noexcept;
  [[nodiscard]] const StoredBundle* find(BundleId id) const noexcept;

  /// Inserts a copy. Preconditions — not full, id not present — are
  /// enforced in every build mode: a violation throws core Error instead of
  /// silently corrupting the buffer (the former Release-mode-unchecked
  /// assert let a buggy admission path overfill the store).
  StoredBundle& insert(StoredBundle copy);

  /// Removes and returns the copy with `id`; nullopt if absent.
  std::optional<StoredBundle> remove(BundleId id);

  /// Entries in insertion (FIFO) order.
  [[nodiscard]] std::span<const StoredBundle> entries() const noexcept {
    return entries_;
  }

  /// One rung of the offer order; carries the sort key so reordering never
  /// has to chase the entry by id.
  struct OfferEntry {
    SimTime last_tx = -1.0;  ///< < 0 means never transmitted
    BundleId id = kInvalidBundle;
  };

  /// Bundle ids in the engine's fair offer order: never-transmitted copies
  /// first (ascending id), then by least-recently-transmitted (ties toward
  /// the lower id). Maintained incrementally on insert/remove/
  /// mark_transmitted, so the per-slot transfer loop never sorts.
  [[nodiscard]] std::span<const OfferEntry> offer_order() const noexcept {
    return offer_order_;
  }

  /// Records that the holder transmitted its copy of `id` at time `at`:
  /// updates the copy's last_tx and repositions it in offer_order().
  /// Mutating last_tx through find() instead would stale the order.
  void mark_transmitted(BundleId id, SimTime at);

  /// Inputs of select_victim() beyond the buffer's own contents.
  struct EvictionQuery {
    EvictionPolicy policy = EvictionPolicy::kDropTail;
    /// kDropLargestEc only: minimum encounter count a copy needs to be
    /// evictable (the paper's "minimum EC value before nodes are allowed to
    /// delete a bundle"). The default (1) protects never-transmitted copies
    /// — evicting the only copy destroys the bundle outright; 0 makes every
    /// copy evictable.
    std::uint32_t min_ec = 1;
    /// kDropMostReplicated only: dense per-bundle replica counts indexed by
    /// BundleId. Ids at or past the span's end count as zero; an empty span
    /// means no estimate (all ties, so the FIFO head wins).
    std::span<const std::uint32_t> replica_estimate;
  };

  /// The copy the query's policy would sacrifice to admit one more bundle,
  /// or kInvalidBundle when the policy refuses (kDropTail always; the
  /// others when no stored copy is evictable). Ties break toward the
  /// oldest-stored copy (FIFO order). Pure selection: the caller evicts via
  /// Engine::purge so the removal is recorded and traced.
  [[nodiscard]] BundleId select_victim(const EvictionQuery& query)
      const noexcept;

 private:
  void order_insert(OfferEntry entry);
  void order_erase(BundleId id);

  std::uint32_t capacity_;
  std::vector<StoredBundle> entries_;     // insertion order
  std::vector<OfferEntry> offer_order_;   // sorted by (last_tx, id)
};

}  // namespace epi::dtn
