// A capacity-bounded bundle store.
//
// Buffers are tiny (the paper fixes them at 10 bundles), so a flat vector in
// insertion order beats any tree/hash container and gives us FIFO iteration
// for free.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dtn/bundle.hpp"

namespace epi::dtn {

class BundleBuffer {
 public:
  explicit BundleBuffer(std::uint32_t capacity);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] double occupancy() const noexcept {
    return static_cast<double>(size()) / static_cast<double>(capacity_);
  }

  [[nodiscard]] bool contains(BundleId id) const noexcept;

  /// Pointer to the stored copy, or nullptr. Stable only until the next
  /// insert/remove.
  [[nodiscard]] StoredBundle* find(BundleId id) noexcept;
  [[nodiscard]] const StoredBundle* find(BundleId id) const noexcept;

  /// Inserts a copy. Precondition (asserted): not full, id not present.
  StoredBundle& insert(StoredBundle copy);

  /// Removes and returns the copy with `id`; nullopt if absent.
  std::optional<StoredBundle> remove(BundleId id);

  /// Entries in insertion (FIFO) order.
  [[nodiscard]] std::span<const StoredBundle> entries() const noexcept {
    return entries_;
  }

  /// The eviction victim of the EC policy: the copy with the highest EC,
  /// breaking ties toward the oldest-stored copy. kInvalidBundle when empty.
  [[nodiscard]] BundleId highest_ec_bundle() const noexcept;

 private:
  std::uint32_t capacity_;
  std::vector<StoredBundle> entries_;  // insertion order
};

}  // namespace epi::dtn
