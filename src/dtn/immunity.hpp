// Immunity state: per-bundle i-lists and the cumulative immunity table.
//
// Per-bundle immunity (Mundur et al.): the destination emits one immunity
// record per received bundle; nodes merge i-lists on contact and purge
// matching bundles. Overhead is one record per bundle per (missing) exchange.
//
// Cumulative immunity (paper SIII, enhancement 3): the destination instead
// advertises the highest H such that bundles 1..H have all arrived; a single
// record purges any number of bundles, and a node keeps only the largest
// table it has seen (redundant tables are deleted).
#pragma once

#include "core/types.hpp"
#include "dtn/summary_vector.hpp"

namespace epi::dtn {

/// Per-bundle immunity list (also used for P-Q anti-packets).
class ImmunityList {
 public:
  /// Marks one bundle immune; returns true if newly recorded.
  bool add(BundleId id) { return ids_.insert(id); }

  [[nodiscard]] bool immune(BundleId id) const { return ids_.contains(id); }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

  /// Merges `other` into this list. Returns the number of *new* records,
  /// which is exactly the signaling cost of the exchange (records that both
  /// sides already share are not re-sent in an anti-entropy session).
  std::size_t merge(const ImmunityList& other) {
    return ids_.merge(other.ids_);
  }

  /// Bounded merge: immunity tables are unit-sized messages, so a contact
  /// can only carry so many. Transfers at most `max_records` missing records
  /// (lowest ids first, the order the destination generated them); returns
  /// how many moved. Pure word ops on the dense-id bitsets — the per-contact
  /// path allocates nothing.
  std::size_t merge_limited(const ImmunityList& other,
                            std::size_t max_records) {
    return ids_.merge_limited(other.ids_, max_records);
  }

  /// Pre-sizes the bitset for ids up to `max_id` (see SummaryVector::reserve).
  void reserve(BundleId max_id) { ids_.reserve(max_id); }

  [[nodiscard]] const SummaryVector& ids() const noexcept { return ids_; }

 private:
  SummaryVector ids_;
};

/// Cumulative immunity table: "bundles 1..H arrived". Value-semantic int
/// wrapper with the merge rule (keep the max) made explicit.
class CumulativeImmunity {
 public:
  [[nodiscard]] BundleId horizon() const noexcept { return h_; }

  [[nodiscard]] bool immune(BundleId id) const noexcept {
    return id != kInvalidBundle && id <= h_;
  }

  /// Adopts a received table if it supersedes ours. Returns true when our
  /// table advanced (i.e. one record of signaling did useful work).
  bool adopt(BundleId h) noexcept {
    if (h <= h_) return false;
    h_ = h;
    return true;
  }

 private:
  BundleId h_ = 0;
};

/// Destination-side tracker computing the cumulative horizon from the set of
/// delivered bundle ids (which may arrive out of order).
class DeliveredPrefixTracker {
 public:
  /// Records delivery of `id`; returns the (possibly advanced) horizon.
  BundleId record(BundleId id);

  [[nodiscard]] BundleId horizon() const noexcept { return h_; }

  /// Pre-sizes the delivered bitset for ids up to `max_id`.
  void reserve(BundleId max_id) { delivered_.reserve(max_id); }

 private:
  SummaryVector delivered_;
  BundleId h_ = 0;
};

}  // namespace epi::dtn
