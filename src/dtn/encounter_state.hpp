// EncounterState: struct-of-arrays encounter bookkeeping for a whole run.
//
// Every contact start touches both endpoints' encounter history (the
// dynamic-TTL enhancement reads it). Keeping that history inside each
// DtnNode — four std::optional<double>s, a counter and an unordered_map —
// meant two scattered cache lines plus two hash probes per contact event; at
// city scale the contact path spends more time missing on bookkeeping than
// simulating. This class owns the same state as parallel arrays indexed by
// NodeId: one contact start is two writes into five contiguous vectors, and
// "never seen" is the sentinel kNever instead of an optional's flag byte.
//
// DtnNode keeps its query surface (last_session_interval() etc.) by holding
// a pointer into this table, so protocol code is oblivious to the layout.
//
// Per-peer interval tracking (what the iMote devices actually log) is kept,
// but opt-in: no production consumer exists, and the per-contact hash-map
// update was pure overhead on the hot path. Tests and analysis tooling can
// switch it on.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace epi::dtn {

class EncounterState {
 public:
  EncounterState() = default;

  /// `session_gap` groups contact starts into encounter sessions: a contact
  /// beginning within the gap of a node's previous contact belongs to the
  /// same session (human traces are bursty — one gathering produces several
  /// contact starts within minutes; Algo 1's "interval between the last two
  /// encounters" is only meaningful between sessions).
  EncounterState(std::uint32_t node_count, SimTime session_gap)
      : session_gap_(session_gap),
        last_contact_(node_count, kNever),
        prev_contact_(node_count, kNever),
        session_start_(node_count, kNever),
        prev_session_(node_count, kNever),
        contact_count_(node_count, 0) {}

  /// Books one contact start between `a` and `b` at time `t` (t >= 0).
  void on_contact_start(NodeId a, NodeId b, SimTime t) {
    note(a, t);
    note(b, t);
    if (track_peers_) {
      PairHistory& h = peer_history_[pair_key(a, b)];
      h.prev = h.last;
      h.last = t;
    }
  }

  /// The raw interval between the last two contact starts witnessed by `n`;
  /// nullopt until the node has seen two contacts.
  [[nodiscard]] std::optional<SimTime> last_interval(NodeId n) const {
    if (prev_contact_[n] == kNever) return std::nullopt;
    return last_contact_[n] - prev_contact_[n];
  }

  /// The interval between the starts of the node's last two encounter
  /// sessions — the quantity Algo 1 doubles into a TTL. nullopt until the
  /// node has witnessed two sessions.
  [[nodiscard]] std::optional<SimTime> last_session_interval(NodeId n) const {
    if (prev_session_[n] == kNever) return std::nullopt;
    return session_start_[n] - prev_session_[n];
  }

  [[nodiscard]] std::optional<SimTime> last_contact_start(NodeId n) const {
    if (last_contact_[n] == kNever) return std::nullopt;
    return last_contact_[n];
  }

  /// Total number of contacts node `n` has participated in.
  [[nodiscard]] std::uint64_t contact_count(NodeId n) const noexcept {
    return contact_count_[n];
  }

  // --- per-peer history (opt-in) --------------------------------------------

  /// Enables per-pair interval tracking for subsequent contacts.
  void track_peer_intervals(bool on) { track_peers_ = on; }

  /// Interval between the last two encounter starts of the pair (a, b);
  /// nullopt until two tracked encounters of that pair have been seen.
  [[nodiscard]] std::optional<SimTime> last_interval_between(NodeId a,
                                                            NodeId b) const {
    const auto it = peer_history_.find(pair_key(a, b));
    if (it == peer_history_.end() || it->second.prev == kNever) {
      return std::nullopt;
    }
    return it->second.last - it->second.prev;
  }

 private:
  /// "Never seen": all real contact times are >= 0.
  static constexpr SimTime kNever = -1.0;

  void note(NodeId n, SimTime t) {
    if (last_contact_[n] == kNever || t - last_contact_[n] > session_gap_) {
      prev_session_[n] = session_start_[n];
      session_start_[n] = t;
    }
    prev_contact_[n] = last_contact_[n];
    last_contact_[n] = t;
    ++contact_count_[n];
  }

  /// Order-independent pair key (contacts are symmetric).
  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b) noexcept {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (std::uint64_t{hi} << 32) | lo;
  }

  struct PairHistory {
    SimTime last = kNever;
    SimTime prev = kNever;
  };

  SimTime session_gap_ = 1'800.0;
  std::vector<SimTime> last_contact_;
  std::vector<SimTime> prev_contact_;
  std::vector<SimTime> session_start_;
  std::vector<SimTime> prev_session_;
  std::vector<std::uint64_t> contact_count_;

  bool track_peers_ = false;
  std::unordered_map<std::uint64_t, PairHistory> peer_history_;
};

}  // namespace epi::dtn
