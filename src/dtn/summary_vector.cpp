#include "dtn/summary_vector.hpp"

namespace epi::dtn {

std::vector<BundleId> SummaryVector::difference(
    const SummaryVector& other) const {
  std::vector<BundleId> out;
  for_each_difference(other, [&](BundleId id) { out.push_back(id); });
  return out;
}

std::size_t SummaryVector::merge(const SummaryVector& other) {
  if (words_.size() < other.words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  std::size_t added = 0;
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    const std::uint64_t fresh = other.words_[w] & ~words_[w];
    added += static_cast<std::size_t>(std::popcount(fresh));
    words_[w] |= fresh;
  }
  size_ += added;
  return added;
}

std::size_t SummaryVector::merge_limited(const SummaryVector& other,
                                         std::size_t max_records) {
  if (max_records == 0) return 0;
  if (words_.size() < other.words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  std::size_t moved = 0;
  for (std::size_t w = 0; w < other.words_.size() && moved < max_records;
       ++w) {
    std::uint64_t missing = other.words_[w] & ~words_[w];
    if (missing == 0) continue;
    const auto count = static_cast<std::size_t>(std::popcount(missing));
    if (moved + count <= max_records) {
      words_[w] |= missing;
      moved += count;
    } else {
      // Budget runs out inside this word: absorb lowest bits one by one.
      while (moved < max_records) {
        const std::uint64_t lowest = missing & (0 - missing);
        words_[w] |= lowest;
        missing ^= lowest;
        ++moved;
      }
    }
  }
  size_ += moved;
  return moved;
}

std::vector<BundleId> SummaryVector::sorted() const {
  std::vector<BundleId> out;
  out.reserve(size_);
  for_each([&](BundleId id) { out.push_back(id); });
  return out;
}

}  // namespace epi::dtn
