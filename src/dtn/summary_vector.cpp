#include "dtn/summary_vector.hpp"

#include <algorithm>

namespace epi::dtn {

std::vector<BundleId> SummaryVector::difference(
    const SummaryVector& other) const {
  std::vector<BundleId> out;
  for (const BundleId id : ids_) {
    if (!other.contains(id)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SummaryVector::merge(const SummaryVector& other) {
  std::size_t added = 0;
  for (const BundleId id : other.ids_) {
    if (ids_.insert(id).second) ++added;
  }
  return added;
}

std::vector<BundleId> SummaryVector::sorted() const {
  std::vector<BundleId> out(ids_.begin(), ids_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace epi::dtn
