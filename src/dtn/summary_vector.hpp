// Summary vector: the set digest exchanged in an anti-entropy session.
//
// Pure epidemic (Vahdat & Becker) has each node advertise the ids it holds so
// an encounter only transfers the set difference. We reuse the same structure
// for i-lists and anti-packet sets.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/types.hpp"

namespace epi::dtn {

class SummaryVector {
 public:
  SummaryVector() = default;

  /// Returns true when the id was newly inserted.
  bool insert(BundleId id) { return ids_.insert(id).second; }

  /// Returns true when the id was present and removed.
  bool erase(BundleId id) { return ids_.erase(id) > 0; }

  [[nodiscard]] bool contains(BundleId id) const {
    return ids_.contains(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Ids present in *this* but not in `other`, in ascending id order (the
  /// deterministic offer order of the engine).
  [[nodiscard]] std::vector<BundleId> difference(
      const SummaryVector& other) const;

  /// Union-merge of `other` into this; returns the number of ids that were
  /// new (== records that had to be transferred, for overhead accounting).
  std::size_t merge(const SummaryVector& other);

  /// Ascending snapshot, mostly for tests and reports.
  [[nodiscard]] std::vector<BundleId> sorted() const;

  void clear() { ids_.clear(); }

 private:
  std::unordered_set<BundleId> ids_;
};

}  // namespace epi::dtn
