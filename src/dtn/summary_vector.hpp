// Summary vector: the set digest exchanged in an anti-entropy session.
//
// Pure epidemic (Vahdat & Becker) has each node advertise the ids it holds so
// an encounter only transfers the set difference. We reuse the same structure
// for i-lists, anti-packet sets and the delivered record.
//
// Representation: a resizable word-packed bit vector keyed on the dense
// BundleId space. The engine numbers all bundles of a run sequentially from
// 1, so the universe of a run is [1, total_load] and a bitset of
// ceil(max_id / 64) words holds any exchange set. Set difference and
// union-merge — the per-contact operations — collapse to AND-NOT / OR over a
// handful of words, and iteration yields ids in ascending order by
// construction (bit order == id order), which is exactly the engine's
// deterministic offer order. See DESIGN.md "dense-id exchange sets".
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/types.hpp"

namespace epi::dtn {

class SummaryVector {
 public:
  SummaryVector() = default;

  /// Returns true when the id was newly inserted.
  bool insert(BundleId id) {
    const std::size_t w = word_index(id);
    if (w >= words_.size()) words_.resize(w + 1, 0);
    const std::uint64_t mask = bit_mask(id);
    if ((words_[w] & mask) != 0) return false;
    words_[w] |= mask;
    ++size_;
    return true;
  }

  /// Returns true when the id was present and removed. Erasing an id that
  /// was never inserted (including one beyond the highest word) is a no-op.
  bool erase(BundleId id) {
    const std::size_t w = word_index(id);
    if (w >= words_.size()) return false;
    const std::uint64_t mask = bit_mask(id);
    if ((words_[w] & mask) == 0) return false;
    words_[w] &= ~mask;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(BundleId id) const noexcept {
    const std::size_t w = word_index(id);
    return w < words_.size() && (words_[w] & bit_mask(id)) != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pre-sizes the word storage for ids up to `max_id`, so later inserts and
  /// merges on the contact path never reallocate. The engine calls this once
  /// per node with the run's total load.
  void reserve(BundleId max_id) { words_.reserve(word_index(max_id) + 1); }

  /// Applies `fn` to every id in ascending order. `fn` may return void, or
  /// bool with false meaning "stop iterating".
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (!visit_word(words_[w], w, fn)) return;
    }
  }

  /// Applies `fn` to every id present in *this* but not in `other`, in
  /// ascending id order (the deterministic offer order of the engine),
  /// without materialising a vector. `fn` may return void, or bool with
  /// false meaning "stop". Each word is snapshotted before its bits are
  /// visited, so `fn` may insert the visited ids into `other` (the
  /// bounded i-list merge does exactly that).
  template <typename Fn>
  void for_each_difference(const SummaryVector& other, Fn&& fn) const {
    const std::size_t shared = std::min(words_.size(), other.words_.size());
    for (std::size_t w = 0; w < shared; ++w) {
      if (!visit_word(words_[w] & ~other.words_[w], w, fn)) return;
    }
    for (std::size_t w = shared; w < words_.size(); ++w) {
      if (!visit_word(words_[w], w, fn)) return;
    }
  }

  /// Ids present in *this* but not in `other`, in ascending id order. Thin
  /// allocating wrapper over for_each_difference() for tests and reports;
  /// the contact path uses the in-place iteration.
  [[nodiscard]] std::vector<BundleId> difference(
      const SummaryVector& other) const;

  /// Union-merge of `other` into this; returns the number of ids that were
  /// new (== records that had to be transferred, for overhead accounting).
  std::size_t merge(const SummaryVector& other);

  /// Bounded union-merge: absorbs at most `max_records` ids missing from
  /// this set, lowest ids first (the order the destination generated them).
  /// Returns how many were absorbed — the signaling cost of the exchange.
  std::size_t merge_limited(const SummaryVector& other,
                            std::size_t max_records);

  /// Ascending snapshot, mostly for tests and reports.
  [[nodiscard]] std::vector<BundleId> sorted() const;

  /// Empties the set but keeps the word storage (and its capacity).
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    size_ = 0;
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  static std::size_t word_index(BundleId id) noexcept {
    return static_cast<std::size_t>(id) / kWordBits;
  }
  static std::uint64_t bit_mask(BundleId id) noexcept {
    return std::uint64_t{1} << (static_cast<std::size_t>(id) % kWordBits);
  }

  /// Visits the set bits of one (possibly masked) word in ascending order.
  /// Returns false when `fn` requested a stop.
  template <typename Fn>
  static bool visit_word(std::uint64_t word, std::size_t word_pos, Fn&& fn) {
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;  // clear the visited bit
      const auto id = static_cast<BundleId>(word_pos * kWordBits + bit);
      if constexpr (std::is_invocable_r_v<bool, Fn&, BundleId>) {
        if (!fn(id)) return false;
      } else {
        fn(id);
      }
    }
    return true;
  }

  std::vector<std::uint64_t> words_;  ///< bit i of word w == id w*64+i
  std::size_t size_ = 0;              ///< population count, kept incrementally
};

}  // namespace epi::dtn
