// Streaming statistics: the online measurement substrate behind --stats-out.
//
// Everything here is allocation-bounded in the spirit of the engine's scratch
// leases: histograms and quantile estimators carry fixed state sized at
// construction, and the per-run StatsCollector pre-sizes every per-node array
// from the run's SimulationConfig, so the steady-state event path performs no
// allocation (the open-session pool grows only to the high-water mark of
// concurrent contacts, then is reused).
//
// Determinism contract: every accumulated field is a pure function of the
// event sequence, which is itself deterministic per (spec, seed). Two
// identical-seed runs therefore produce byte-identical StatsProfile JSON —
// the property the CI stats-determinism smoke pins.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/summary_mode.hpp"
#include "core/types.hpp"
#include "obs/trace_sink.hpp"

namespace epi::obs {

// --- signaling byte model -----------------------------------------------------
//
// The paper reports signaling cost in *records* (anti-packets, i-list
// entries, cumulative-table rows); bytes follow from the fixed per-record
// model that now lives in core/summary_mode.hpp beside the codec parameters
// — the engine's counters and this collector must agree on it. Re-exported
// under the historical obs names for the existing call sites.
inline constexpr std::uint64_t kControlRecordBytes = epi::kControlRecordBytes;
inline constexpr std::uint64_t kSummaryEntryBytes = epi::kSummaryEntryBytes;

/// Log-binned streaming histogram for positive durations (inter-contact
/// gaps, contact durations). Fixed bin layout chosen at construction: one
/// underflow bin, `bins_per_decade` bins per decade of [min_value,
/// max_value), one overflow bin. add() is O(1) and allocation-free — and
/// cheap: bin edges are precomputed, and a per-binary-exponent table reduces
/// binning to an exponent extraction plus at most ceil(log10(2) *
/// bins_per_decade) + 1 comparisons, no transcendental call on the hot path.
class LogHistogram {
 public:
  struct Layout {
    double min_value = 1.0;
    double max_value = 1e7;
    std::uint32_t bins_per_decade = 8;
  };

  LogHistogram();  ///< default Layout
  explicit LogHistogram(Layout layout);

  /// Accumulates one observation. Values below min_value (or non-finite)
  /// land in the underflow bin, values at or above max_value in the
  /// overflow bin.
  void add(double value) noexcept;

  /// Adds another histogram of the identical layout (asserted).
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min_seen() const noexcept { return min_seen_; }
  [[nodiscard]] double max_seen() const noexcept { return max_seen_; }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  /// Inclusive lower edge of `bin` (0 for the underflow bin).
  [[nodiscard]] double bin_lower(std::size_t bin) const noexcept;
  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }

  /// Flat JSON object; non-empty bins serialized sparsely as [index, count]
  /// pairs. Deterministic formatting (%.17g doubles).
  void write_json(std::ostream& out) const;

 private:
  Layout layout_;
  std::vector<double> edges_;  ///< interior lower edges; edges_[0] = min_value
  /// For each biased binary exponent in [octave_bias_, octave_bias_ +
  /// octave_first_.size()): index of the edge at or below 2^(e-1023), the
  /// start point of add()'s short forward scan.
  std::vector<std::uint32_t> octave_first_;
  int octave_bias_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// P-square (Jain & Chlamtac 1985) single-quantile estimator: five markers,
/// O(1) state and update, no allocation, no sample retention. Exact for the
/// first five observations (it degrades to the sorted-sample quantile),
/// approximate thereafter. Deterministic for a fixed input sequence.
class P2Quantile {
 public:
  /// `p` in (0, 1): the quantile to track (0.5 = median).
  explicit P2Quantile(double p);

  void add(double x) noexcept;

  /// Current estimate; 0 before the first observation.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double p_;
  std::array<double, 5> q_{};   ///< marker heights
  std::array<double, 5> n_{};   ///< marker positions
  std::array<double, 5> np_{};  ///< desired positions
  std::array<double, 5> dn_{};  ///< desired-position increments
  std::uint64_t count_ = 0;
};

/// Fixed-capacity uniform sample (Algorithm R) with deterministic
/// replacement: the "random" indices come from a fixed-seed SplitMix64
/// stream, so the held sample — and every quantile read off it — is a pure
/// function of the input sequence. Memory is bounded at construction and
/// add() is a couple of integer ops once the reservoir is full.
///
/// This is the collector's estimator of choice where several quantiles are
/// wanted from one distribution (one sample serves them all, and quantiles
/// are exact until `capacity` observations); P2Quantile above is the O(1)-
/// memory alternative when a single quantile must survive unbounded streams.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Observations currently held (== min(count, capacity)).
  [[nodiscard]] std::size_t size() const noexcept { return sample_.size(); }

  /// Nearest-rank quantile of the held sample — exact while count() <=
  /// capacity, an unbiased estimate beyond; 0 when empty. O(size) via
  /// nth_element on a pre-sized scratch buffer (no allocation).
  [[nodiscard]] double quantile(double p) const;

 private:
  std::size_t capacity_;
  std::vector<double> sample_;
  mutable std::vector<double> scratch_;
  std::uint64_t count_ = 0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL;  ///< fixed seed: determinism
};

/// The deterministic per-run statistics payload attached to a RunSummary
/// when stats collection is enabled. Counters and histograms are additive,
/// so profiles of replications on the same configuration can be merged; the
/// sampled quantiles are per-run only (quantiles do not merge) and are
/// dropped by merge() — aggregate serializers report them per replication.
struct StatsProfile {
  // run shape (merge requires these to match)
  std::uint32_t node_count = 0;
  std::uint32_t buffer_capacity = 0;
  double slot_seconds = 0.0;
  std::uint64_t runs = 1;    ///< replications merged into this profile
  std::uint64_t events = 0;  ///< trace events observed, all kinds — the
                             ///< denominator of per-event cost accounting

  // encounter process
  LogHistogram intercontact;      ///< per-node gaps between contact starts
  LogHistogram contact_duration;  ///< closed sessions only
  std::uint64_t open_sessions = 0;  ///< contacts never seen ending (horizon)
  std::vector<std::uint64_t> node_contacts;  ///< contacts per node
  std::vector<std::uint64_t> degree_hist;    ///< nodes per distinct-peer degree

  // time-weighted buffer occupancy: seconds spent at fill level l, summed
  // over all nodes; integrates to node_count * end_time per run.
  std::vector<double> occupancy_time;

  // per-slot transfer utilization (closed sessions)
  std::uint64_t slots_offered = 0;
  std::uint64_t slots_used = 0;
  /// Per-session used/offered ratio, 11 linear bins (0-10% ... 100%).
  std::array<std::uint64_t, 11> utilization_hist{};

  // signaling accounting: records and bytes both observed from the events
  // themselves (each kControl/kSummaryVector event carries its wire cost),
  // so the profile reconciles with the engine's deterministic counters under
  // any codec. Under the exact codec the byte totals still equal the
  // records-times-model products they historically were.
  std::uint64_t control_exchanges = 0;
  std::uint64_t control_records = 0;
  std::uint64_t control_byte_total = 0;
  std::uint64_t sv_exchanges = 0;
  std::uint64_t sv_entries = 0;
  std::uint64_t sv_byte_total = 0;
  [[nodiscard]] std::uint64_t control_bytes() const noexcept {
    return control_byte_total;
  }
  [[nodiscard]] std::uint64_t sv_bytes() const noexcept {
    return sv_byte_total;
  }

  // per-run quantiles (reservoir-sampled nearest-rank; zeroed by merge())
  double intercontact_p50 = 0.0;
  double intercontact_p90 = 0.0;
  double intercontact_p99 = 0.0;
  double contact_duration_p50 = 0.0;

  /// Adds another replication's profile of the same run shape (asserted).
  void merge(const StatsProfile& other);

  /// Deterministic JSON object (%.17g doubles, sparse histograms). The
  /// "quantiles" member is emitted only for unmerged (runs == 1) profiles.
  void write_json(std::ostream& out) const;
};

/// Accumulates one run's StatsProfile from the engine's TraceSink stream.
///
/// One collector observes exactly one run (it is NOT thread-safe; parallel
/// sweeps construct one per run, on the worker thread). Events may be
/// chained to an optional `downstream` sink — which may itself be shared
/// and mutex-serialised — so --stats-out and --trace-out compose.
class StatsCollector final : public TraceSink {
 public:
  struct Config {
    std::uint32_t node_count = 2;
    std::uint32_t buffer_capacity = 1;
    double slot_seconds = 1.0;
    /// Heterogeneous per-node capacities; empty (default) = uniform
    /// buffer_capacity. When non-empty the occupancy histogram is sized to
    /// the largest capacity (profile.buffer_capacity reports that max) and
    /// each node's fill level is clamped to its own capacity.
    std::vector<std::uint32_t> node_capacities;
  };

  explicit StatsCollector(const Config& config,
                          TraceSink* downstream = nullptr);

  void emit(const TraceEvent& event) override;

  /// Accumulates a whole block in one tight loop (the engine's preferred
  /// hand-off; see TraceSink::emit_batch), then forwards the block — still
  /// as a batch — downstream.
  void emit_batch(const TraceEvent* events, std::size_t n) override;

  /// Seals the profile at `end_time`: closes the occupancy integrals,
  /// counts still-open sessions, computes degrees and quantiles. Call once,
  /// after the run.
  void finish(SimTime end_time);

  /// The sealed profile; valid after finish().
  [[nodiscard]] const StatsProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] StatsProfile take_profile() noexcept {
    return std::move(profile_);
  }

 private:
  struct OpenSession {
    std::uint64_t key = 0;  ///< packed (a << 32) | b, a < b
    double start = 0.0;
    std::uint64_t transfers = 0;
  };

  [[nodiscard]] OpenSession* find_session(std::uint64_t key) noexcept;
  void advance_occupancy(NodeId node, double t) noexcept;
  void observe(const TraceEvent& event) noexcept;  ///< one event, no forward

  /// Reservoir capacity for the gap/duration samples: large enough that the
  /// paper's runs stay below it (quantiles then exact), small enough that a
  /// per-run collector costs 8 KiB.
  static constexpr std::size_t kReservoirCapacity = 512;

  StatsProfile profile_;
  TraceSink* downstream_;

  ReservoirSample gaps_{kReservoirCapacity};       ///< inter-contact gaps
  ReservoirSample durations_{kReservoirCapacity};  ///< closed-session lengths

  std::vector<double> last_contact_;  ///< per node; -1 = no contact yet
  std::vector<std::uint32_t> caps_;   ///< per-node capacity clamp
  std::vector<std::uint32_t> level_;  ///< current buffer fill per node
  std::vector<double> level_since_;   ///< last occupancy change per node
  std::vector<std::uint64_t> peer_bits_;  ///< node_count x node_count bitset
  std::size_t peer_words_ = 0;            ///< words per node in peer_bits_
  std::vector<OpenSession> open_;  ///< live contacts; high-water bounded
  bool finished_ = false;
};

}  // namespace epi::obs
