#include "obs/progress.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

namespace epi::obs {

std::string humanize_rate(double per_second) {
  char buf[32];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", per_second);
  }
  return buf;
}

ProgressReporter::ProgressReporter(std::string label, std::size_t total_runs,
                                   std::ostream& out)
    : label_(std::move(label)),
      total_(total_runs),
      out_(out),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

ProgressReporter::ProgressReporter(std::string label, std::size_t total_runs)
    : ProgressReporter(std::move(label), total_runs, std::cerr) {}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::tick(std::uint64_t events_processed) {
  std::lock_guard lock(mutex_);
  ++completed_;
  events_ += events_processed;
  const auto now = std::chrono::steady_clock::now();
  // Rate-limit redraws; always draw the last tick so 110/110 is visible.
  if (completed_ < total_ &&
      now - last_print_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_print_ = now;
  print_line(/*final=*/false);
}

void ProgressReporter::tick_cached() {
  std::lock_guard lock(mutex_);
  ++completed_;
  ++cached_;
  const auto now = std::chrono::steady_clock::now();
  if (completed_ < total_ &&
      now - last_print_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_print_ = now;
  print_line(/*final=*/false);
}

void ProgressReporter::finish() {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  finished_ = true;
  if (printed_) print_line(/*final=*/true);
}

std::size_t ProgressReporter::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

std::size_t ProgressReporter::cached() const {
  std::lock_guard lock(mutex_);
  return cached_;
}

std::uint64_t ProgressReporter::total_events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

double ProgressReporter::eta_seconds() const {
  std::lock_guard lock(mutex_);
  const std::size_t simulated = completed_ - cached_;
  if (simulated == 0) return 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return elapsed / static_cast<double>(simulated) *
         static_cast<double>(total_ - completed_);
}

void ProgressReporter::print_line(bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(events_) / elapsed : 0.0;
  char cached_note[32] = "";
  if (cached_ > 0) {
    std::snprintf(cached_note, sizeof(cached_note), " (%zu cached)", cached_);
  }
  char line[192];
  if (final) {
    // The final line splits cached replays from actually-simulated runs, so
    // a resumed sweep's summary says how much work really happened.
    std::snprintf(
        line, sizeof(line),
        "\r[%s] %zu/%zu runs (%zu cached, %zu simulated), %s ev/s, "
        "%.1fs total          \n",
        label_.c_str(), completed_, total_, cached_, completed_ - cached_,
        humanize_rate(rate).c_str(), elapsed);
  } else {
    // Pace from simulated runs only: cached replays are near-instant and
    // would otherwise make the ETA collapse toward zero on resume.
    const std::size_t simulated = completed_ - cached_;
    const double eta =
        simulated > 0
            ? elapsed / static_cast<double>(simulated) *
                  static_cast<double>(total_ - completed_)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "\r[%s] %zu/%zu runs%s, %s ev/s, ETA %.0fs   ",
                  label_.c_str(), completed_, total_, cached_note,
                  humanize_rate(rate).c_str(), std::ceil(eta));
  }
  out_ << line;
  out_.flush();
  printed_ = true;
}

}  // namespace epi::obs
