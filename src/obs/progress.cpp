#include "obs/progress.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace epi::obs {

std::string encode_progress_line(const ProgressSnapshot& snap) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"label\":\"%s\",\"completed\":%zu,\"cached\":%zu,"
                "\"total\":%zu,\"events\":%llu,\"elapsed\":%.3f,"
                "\"final\":%s}\n",
                snap.label.c_str(), snap.completed, snap.cached, snap.total,
                static_cast<unsigned long long>(snap.events),
                snap.elapsed_seconds, snap.final ? "true" : "false");
  return buf;
}

bool parse_progress_line(std::string_view line, ProgressSnapshot& out) {
  // Strict companion to encode_progress_line: fixed field order, one
  // object per line. Anything else (notably a torn tail) parses false.
  const auto eat = [&](std::string_view token) {
    if (!line.starts_with(token)) return false;
    line.remove_prefix(token.size());
    return true;
  };
  const auto number = [&](auto& value) {
    const auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + line.size(), value);
    if (ec != std::errc{} || ptr == line.data()) return false;
    line.remove_prefix(static_cast<std::size_t>(ptr - line.data()));
    return true;
  };
  while (line.ends_with('\n') || line.ends_with('\r')) line.remove_suffix(1);
  if (!eat("{\"label\":\"")) return false;
  const std::size_t quote = line.find('"');
  if (quote == std::string_view::npos) return false;
  out.label = std::string(line.substr(0, quote));
  line.remove_prefix(quote + 1);
  if (!eat(",\"completed\":") || !number(out.completed)) return false;
  if (!eat(",\"cached\":") || !number(out.cached)) return false;
  if (!eat(",\"total\":") || !number(out.total)) return false;
  if (!eat(",\"events\":") || !number(out.events)) return false;
  if (!eat(",\"elapsed\":")) return false;
  {
    // from_chars(double) is still spotty on some libstdc++ configs the CI
    // matrix builds with; strtod on a bounded copy does the job.
    const std::size_t end = line.find_first_not_of("0123456789.+-eE");
    const std::string token(line.substr(0, end));
    char* done = nullptr;
    out.elapsed_seconds = std::strtod(token.c_str(), &done);
    if (done != token.c_str() + token.size() || token.empty()) return false;
    line.remove_prefix(token.size());
  }
  if (eat(",\"final\":true}")) {
    out.final = true;
  } else if (eat(",\"final\":false}")) {
    out.final = false;
  } else {
    return false;
  }
  return line.empty();
}

std::ostream& null_stream() {
  // A null streambuf puts the stream in a permanent badbit state; every
  // insertion becomes a no-op without touching any buffer, so sharing one
  // instance across reporters (and threads) is safe.
  static std::ostream stream(nullptr);
  return stream;
}

std::string humanize_rate(double per_second) {
  char buf[32];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", per_second);
  }
  return buf;
}

ProgressReporter::ProgressReporter(std::string label, std::size_t total_runs,
                                   std::ostream& out)
    : label_(std::move(label)),
      total_(total_runs),
      out_(out),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

ProgressReporter::ProgressReporter(std::string label, std::size_t total_runs)
    : ProgressReporter(std::move(label), total_runs, std::cerr) {}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::tick(std::uint64_t events_processed) {
  std::lock_guard lock(mutex_);
  ++completed_;
  events_ += events_processed;
  const auto now = std::chrono::steady_clock::now();
  // Rate-limit redraws; always draw the last tick so 110/110 is visible.
  if (completed_ < total_ &&
      now - last_print_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_print_ = now;
  print_line(/*final=*/false);
}

void ProgressReporter::tick_cached() {
  std::lock_guard lock(mutex_);
  ++completed_;
  ++cached_;
  const auto now = std::chrono::steady_clock::now();
  if (completed_ < total_ &&
      now - last_print_ < std::chrono::milliseconds(100)) {
    return;
  }
  last_print_ = now;
  print_line(/*final=*/false);
}

void ProgressReporter::finish() {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  finished_ = true;
  // A mirrored reporter always seals its file with a final snapshot, even
  // if the terminal never saw a redraw — the fleet driver distinguishes
  // "worker finished" from "worker died" by that final line.
  if (printed_ || mirror_.is_open()) print_line(/*final=*/true);
}

void ProgressReporter::mirror_to(const std::filesystem::path& path) {
  std::lock_guard lock(mutex_);
  mirror_.open(path, std::ios::app);
  if (!mirror_) {
    throw std::runtime_error("cannot open progress mirror file " +
                             path.string());
  }
}

std::size_t ProgressReporter::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

std::size_t ProgressReporter::cached() const {
  std::lock_guard lock(mutex_);
  return cached_;
}

std::uint64_t ProgressReporter::total_events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

double ProgressReporter::eta_seconds() const {
  std::lock_guard lock(mutex_);
  const std::size_t simulated = completed_ - cached_;
  if (simulated == 0) return 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return elapsed / static_cast<double>(simulated) *
         static_cast<double>(total_ - completed_);
}

void ProgressReporter::print_line(bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(events_) / elapsed : 0.0;
  char cached_note[32] = "";
  if (cached_ > 0) {
    std::snprintf(cached_note, sizeof(cached_note), " (%zu cached)", cached_);
  }
  char line[192];
  if (final) {
    // The final line splits cached replays from actually-simulated runs, so
    // a resumed sweep's summary says how much work really happened.
    std::snprintf(
        line, sizeof(line),
        "\r[%s] %zu/%zu runs (%zu cached, %zu simulated), %s ev/s, "
        "%.1fs total          \n",
        label_.c_str(), completed_, total_, cached_, completed_ - cached_,
        humanize_rate(rate).c_str(), elapsed);
  } else {
    // Pace from simulated runs only: cached replays are near-instant and
    // would otherwise make the ETA collapse toward zero on resume.
    const std::size_t simulated = completed_ - cached_;
    const double eta =
        simulated > 0
            ? elapsed / static_cast<double>(simulated) *
                  static_cast<double>(total_ - completed_)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "\r[%s] %zu/%zu runs%s, %s ev/s, ETA %.0fs   ",
                  label_.c_str(), completed_, total_, cached_note,
                  humanize_rate(rate).c_str(), std::ceil(eta));
  }
  out_ << line;
  out_.flush();
  if (mirror_.is_open()) {
    ProgressSnapshot snap;
    snap.label = label_;
    snap.completed = completed_;
    snap.cached = cached_;
    snap.total = total_;
    snap.events = events_;
    snap.elapsed_seconds = elapsed;
    snap.final = final;
    mirror_ << encode_progress_line(snap);
    mirror_.flush();
  }
  printed_ = true;
}

}  // namespace epi::obs
