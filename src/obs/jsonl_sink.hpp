// JsonlSink: streams one JSON object per engine event, one per line.
//
// The schema is flat and self-describing; fields that do not apply to an
// event kind are omitted:
//
//   {"t":1234.5,"ev":"transferred","protocol":"pq_epidemic",
//    "load":25,"rep":3,"a":4,"b":7,"bundle":12}
//
// emit() is mutex-serialised so a single sink can watch a whole parallel
// sweep; lines are written atomically and the stream is flushed on
// destruction.
#pragma once

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/trace_sink.hpp"

namespace epi::obs {

class JsonlSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit JsonlSink(std::ostream& out);

  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path);

  void emit(const TraceEvent& event) override;

  /// Number of records written so far.
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

  /// Records beyond this length are dropped (and counted in truncated())
  /// rather than written: the engine's longest legitimate record is a few
  /// hundred bytes, so anything near this cap is corrupt input, and a
  /// partial JSON line would poison downstream parsers. Records between the
  /// stack fast-path buffer and this cap are grown dynamically, not dropped.
  static constexpr std::size_t kMaxRecordBytes = 64 * 1024;

  /// Number of records dropped because they exceeded kMaxRecordBytes (or
  /// failed to format). Surface a non-zero count to the user: the trace is
  /// incomplete.
  [[nodiscard]] std::uint64_t truncated() const noexcept { return truncated_; }

 private:
  std::ofstream file_;     // only used by the path constructor
  std::ostream* out_;      // points at file_ or the caller's stream
  std::mutex mutex_;
  std::uint64_t records_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace epi::obs
