#include "obs/jsonl_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace epi::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kContactUp: return "contact_up";
    case EventKind::kContactDown: return "contact_down";
    case EventKind::kCreated: return "created";
    case EventKind::kStored: return "stored";
    case EventKind::kTransferred: return "transferred";
    case EventKind::kRemoved: return "removed";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kControl: return "control";
    case EventKind::kFault: return "fault";
  }
  return "unknown";
}

std::string_view to_string(FaultKind fault) noexcept {
  switch (fault) {
    case FaultKind::kSlotLoss: return "slot_loss";
    case FaultKind::kDownSlot: return "down_slot";
    case FaultKind::kControlDrop: return "control_drop";
    case FaultKind::kTruncation: return "truncation";
  }
  return "unknown";
}

std::string_view to_string(dtn::RemoveReason reason) noexcept {
  switch (reason) {
    case dtn::RemoveReason::kExpired: return "expired";
    case dtn::RemoveReason::kEvicted: return "evicted";
    case dtn::RemoveReason::kImmunized: return "immunized";
    case dtn::RemoveReason::kConsumed: return "consumed";
  }
  return "unknown";
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("cannot open trace output: " + path);
}

void JsonlSink::emit(const TraceEvent& event) {
  // One snprintf per record keeps emit() allocation-free and locale-proof;
  // the longest record (every optional field present) fits comfortably.
  char line[256];
  bool truncated = false;
  int n = std::snprintf(line, sizeof(line),
                        R"({"t":%.10g,"ev":"%.*s","protocol":"%.*s",)"
                        R"("load":%u,"rep":%u)",
                        event.t,
                        static_cast<int>(to_string(event.kind).size()),
                        to_string(event.kind).data(),
                        static_cast<int>(event.protocol.size()),
                        event.protocol.data(), event.load, event.replication);
  if (n < 0 || static_cast<std::size_t>(n) >= sizeof(line)) truncated = true;
  const auto append = [&](const char* fmt, auto... args) {
    if (truncated) return;
    const std::size_t room = sizeof(line) - static_cast<std::size_t>(n);
    const int m = std::snprintf(line + n, room, fmt, args...);
    if (m < 0 || static_cast<std::size_t>(m) >= room) {
      truncated = true;
      return;
    }
    n += m;
  };
  if (event.a != kInvalidNode) append(R"(,"a":%u)", event.a);
  if (event.b != kInvalidNode) append(R"(,"b":%u)", event.b);
  if (event.bundle != kInvalidBundle) append(R"(,"bundle":%u)", event.bundle);
  if (event.kind == EventKind::kRemoved) {
    const std::string_view why = to_string(event.reason);
    append(R"(,"reason":"%.*s")", static_cast<int>(why.size()), why.data());
  }
  if (event.kind == EventKind::kFault) {
    const std::string_view what = to_string(event.fault);
    append(R"(,"fault":"%.*s")", static_cast<int>(what.size()), what.data());
  }
  if (event.kind == EventKind::kControl) {
    append(R"(,"count":%llu)",
           static_cast<unsigned long long>(event.count));
  }
  append("}\n");

  if (truncated || n <= 0) {
    // A partial line is worse than a missing one: drop and count it.
    std::lock_guard lock(mutex_);
    ++truncated_;
    return;
  }

  std::lock_guard lock(mutex_);
  out_->write(line, n);
  ++records_;
}

}  // namespace epi::obs
