#include "obs/jsonl_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace epi::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kContactUp: return "contact_up";
    case EventKind::kContactDown: return "contact_down";
    case EventKind::kCreated: return "created";
    case EventKind::kStored: return "stored";
    case EventKind::kTransferred: return "transferred";
    case EventKind::kRemoved: return "removed";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kControl: return "control";
    case EventKind::kFault: return "fault";
    case EventKind::kSummaryVector: return "summary_vector";
  }
  return "unknown";
}

std::string_view to_string(FaultKind fault) noexcept {
  switch (fault) {
    case FaultKind::kSlotLoss: return "slot_loss";
    case FaultKind::kDownSlot: return "down_slot";
    case FaultKind::kControlDrop: return "control_drop";
    case FaultKind::kTruncation: return "truncation";
  }
  return "unknown";
}

std::string_view to_string(dtn::RemoveReason reason) noexcept {
  switch (reason) {
    case dtn::RemoveReason::kExpired: return "expired";
    case dtn::RemoveReason::kEvicted: return "evicted";
    case dtn::RemoveReason::kImmunized: return "immunized";
    case dtn::RemoveReason::kConsumed: return "consumed";
  }
  return "unknown";
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("cannot open trace output: " + path);
}

namespace {

/// Formats `event` into [out, out + cap). Returns the exact record length
/// (excluding the terminator) even when it exceeds `cap` — snprintf reports
/// the would-be length on truncation — or SIZE_MAX on an encoding error, so
/// the caller can retry into a buffer of the right size.
std::size_t format_event(const TraceEvent& event, char* out,
                         std::size_t cap) {
  constexpr std::size_t kError = static_cast<std::size_t>(-1);
  std::size_t n = 0;
  bool failed = false;
  const auto append = [&](const char* fmt, auto... args) {
    if (failed) return;
    char* dst = n < cap ? out + n : nullptr;
    const std::size_t room = n < cap ? cap - n : 0;
    const int m = std::snprintf(dst, room, fmt, args...);
    if (m < 0) {
      failed = true;
      return;
    }
    n += static_cast<std::size_t>(m);
  };
  append(R"({"t":%.10g,"ev":"%.*s","protocol":"%.*s","load":%u,"rep":%u)",
         event.t, static_cast<int>(to_string(event.kind).size()),
         to_string(event.kind).data(),
         static_cast<int>(event.protocol.size()), event.protocol.data(),
         event.load, event.replication);
  if (event.a != kInvalidNode) append(R"(,"a":%u)", event.a);
  if (event.b != kInvalidNode) append(R"(,"b":%u)", event.b);
  if (event.bundle != kInvalidBundle) append(R"(,"bundle":%u)", event.bundle);
  if (event.kind == EventKind::kRemoved) {
    const std::string_view why = to_string(event.reason);
    append(R"(,"reason":"%.*s")", static_cast<int>(why.size()), why.data());
  }
  if (event.kind == EventKind::kFault) {
    const std::string_view what = to_string(event.fault);
    append(R"(,"fault":"%.*s")", static_cast<int>(what.size()), what.data());
  }
  if (event.kind == EventKind::kControl ||
      event.kind == EventKind::kSummaryVector) {
    append(R"(,"count":%llu)", static_cast<unsigned long long>(event.count));
    append(R"(,"bytes":%llu)", static_cast<unsigned long long>(event.bytes));
  }
  append("}\n");
  return failed ? kError : n;
}

}  // namespace

void JsonlSink::emit(const TraceEvent& event) {
  // Fast path: one snprintf pass into a stack buffer that fits every record
  // the engine emits (allocation-free, locale-proof). A record that does not
  // fit — an unusually long protocol name — is reformatted once into an
  // exactly-sized heap buffer instead of being dropped; only records beyond
  // the hard sanity cap (almost certainly corrupt input) are dropped and
  // counted, because a partial JSON line would poison downstream parsers.
  char line[256];
  const std::size_t n = format_event(event, line, sizeof(line));
  if (n == static_cast<std::size_t>(-1) || n == 0 || n >= kMaxRecordBytes) {
    std::lock_guard lock(mutex_);
    ++truncated_;
    return;
  }
  if (n < sizeof(line)) {
    std::lock_guard lock(mutex_);
    out_->write(line, static_cast<std::streamsize>(n));
    ++records_;
    return;
  }
  std::string grown(n, '\0');
  const std::size_t m = format_event(event, grown.data(), n + 1);
  if (m != n) {  // the event mutated mid-format; never expected
    std::lock_guard lock(mutex_);
    ++truncated_;
    return;
  }
  std::lock_guard lock(mutex_);
  out_->write(grown.data(), static_cast<std::streamsize>(n));
  ++records_;
}

}  // namespace epi::obs
