#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace epi::obs {

ChromeTraceWriter::ChromeTraceWriter()
    : origin_(std::chrono::steady_clock::now()) {}

double ChromeTraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void ChromeTraceWriter::record_span(std::string name, unsigned tid,
                                    double begin_us, double end_us) {
  std::lock_guard lock(mutex_);
  spans_.push_back(
      Span{std::move(name), tid, begin_us, std::max(0.0, end_us - begin_us)});
}

std::size_t ChromeTraceWriter::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void ChromeTraceWriter::write(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << span.name
        << "\",\"cat\":\"run\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << span.ts_us << ",\"dur\":" << span.dur_us << "}";
  }
  out << "\n]}\n";
}

void ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open chrome trace: " + path);
  write(out);
}

}  // namespace epi::obs
