#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace epi::obs {

namespace {

/// JSON string escaping for span names: quotes, backslashes and control
/// characters must never break the document (names embed protocol labels
/// and user-provided scenario names).
void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter()
    : origin_(std::chrono::steady_clock::now()) {}

double ChromeTraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void ChromeTraceWriter::record_span(std::string name, unsigned tid,
                                    double begin_us, double end_us) {
  std::lock_guard lock(mutex_);
  spans_.push_back(
      Span{std::move(name), tid, begin_us, std::max(0.0, end_us - begin_us)});
}

std::size_t ChromeTraceWriter::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void ChromeTraceWriter::write(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"";
    write_escaped(out, span.name);
    out << "\",\"cat\":\"run\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << span.ts_us << ",\"dur\":" << span.dur_us << "}";
  }
  out << "\n]}\n";
}

void ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open chrome trace: " + path);
  write(out);
}

}  // namespace epi::obs
