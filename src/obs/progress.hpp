// ProgressReporter: live sweep progress on stderr.
//
// The sweep loop calls tick() once per completed replication, passing that
// run's event count; the reporter prints a rate-limited single-line status
//
//   [fig07] 43/110 runs, 3.2k ev/s, ETA 12s
//
// to its stream (carriage-return overwritten; finish() seals the line with
// the total wall time and a newline). tick() is thread-safe — replications
// complete on pool threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

namespace epi::obs {

/// One machine-readable progress sample, as mirrored to a JSONL file by
/// mirror_to() and aggregated across worker processes by the fleet driver
/// (`bench_figure --all --jobs N`): each worker appends snapshots, the
/// driver tails every file and sums the latest ones into one honest line.
struct ProgressSnapshot {
  std::string label;
  std::size_t completed = 0;
  std::size_t cached = 0;
  std::size_t total = 0;
  std::uint64_t events = 0;
  double elapsed_seconds = 0.0;
  bool final = false;
};

/// `{"label":"fig07","completed":12,...}\n` — one snapshot per line.
[[nodiscard]] std::string encode_progress_line(const ProgressSnapshot& snap);

/// Parses one mirrored line; false on malformation (a torn tail line from
/// a live writer parses false and is simply skipped by the tailer).
[[nodiscard]] bool parse_progress_line(std::string_view line,
                                       ProgressSnapshot& out);

/// A stream that discards everything written to it. Fleet workers hand
/// this to their reporters so N processes don't interleave carriage-return
/// lines on one terminal while the JSONL mirror still records progress.
[[nodiscard]] std::ostream& null_stream();

class ProgressReporter {
 public:
  /// `total_runs` completed ticks are expected; `label` prefixes every line.
  ProgressReporter(std::string label, std::size_t total_runs,
                   std::ostream& out);

  /// Defaults the stream to std::cerr.
  ProgressReporter(std::string label, std::size_t total_runs);

  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// One replication finished, having processed `events_processed` events.
  void tick(std::uint64_t events_processed);

  /// One replication was served from the run store without simulating.
  /// Counts toward `completed` but not toward the event rate, and the ETA
  /// is computed over actually-simulated runs only, so it stays honest when
  /// a resumed sweep starts by replaying a large cached prefix.
  void tick_cached();

  /// Prints the final line (idempotent; also called by the destructor).
  void finish();

  /// Additionally appends a ProgressSnapshot line to `path` on every
  /// redraw (rate-limited with the terminal line) and a `final` one on
  /// finish(). Throws std::runtime_error when the file cannot be opened.
  void mirror_to(const std::filesystem::path& path);

  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::size_t cached() const;
  [[nodiscard]] std::uint64_t total_events() const;

  /// The transient line's ETA in seconds: elapsed wall time divided by
  /// *simulated* (non-cached) completions, times the remaining run count.
  /// 0 before the first simulated tick — cached replays are near-instant
  /// and must not make a mostly-cached resume predict zero time for the
  /// simulations still ahead.
  [[nodiscard]] double eta_seconds() const;

 private:
  void print_line(bool final);  // callers hold mutex_

  std::string label_;
  std::size_t total_;
  std::ostream& out_;
  std::ofstream mirror_;  // optional JSONL snapshot stream
  mutable std::mutex mutex_;
  std::size_t completed_ = 0;
  std::size_t cached_ = 0;
  std::uint64_t events_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  bool printed_ = false;
  bool finished_ = false;
};

/// "3217" -> "3.2k", "4512345" -> "4.5M"; used for ev/s displays.
[[nodiscard]] std::string humanize_rate(double per_second);

}  // namespace epi::obs
