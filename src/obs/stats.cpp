#include "obs/stats.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace epi::obs {

namespace {

/// %.17g rendering, matching the run store's max_digits10 discipline so the
/// JSON round-trips every double bit-exactly and deterministically.
void jnum(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

// --- LogHistogram -------------------------------------------------------------

LogHistogram::LogHistogram() : LogHistogram(Layout{}) {}

LogHistogram::LogHistogram(Layout layout) : layout_(layout) {
  assert(layout_.min_value > 0.0 && layout_.max_value > layout_.min_value &&
         layout_.bins_per_decade > 0 && "invalid histogram layout");
  const double decades =
      std::log10(layout_.max_value / layout_.min_value);
  const auto interior = static_cast<std::size_t>(
      std::ceil(decades * layout_.bins_per_decade));
  counts_.assign(interior + 2, 0);  // + underflow + overflow
  edges_.resize(interior);
  for (std::size_t i = 0; i < interior; ++i) {
    edges_[i] =
        layout_.min_value *
        std::pow(10.0, static_cast<double>(i) /
                           static_cast<double>(layout_.bins_per_decade));
  }
  // Per-binary-exponent starting points for add()'s forward scan: for each
  // exponent spanned by [min_value, max_value], the index of the last edge
  // at or below 2^(e-1023). An octave spans at most ceil(log10(2) *
  // bins_per_decade) + 1 edges, which bounds the scan.
  const int e_min = static_cast<int>(
      std::bit_cast<std::uint64_t>(layout_.min_value) >> 52);
  const int e_max = static_cast<int>(
      std::bit_cast<std::uint64_t>(layout_.max_value) >> 52);
  octave_bias_ = e_min;
  octave_first_.assign(static_cast<std::size_t>(e_max - e_min) + 1, 0);
  for (int e = e_min; e <= e_max; ++e) {
    const double base =
        std::bit_cast<double>(static_cast<std::uint64_t>(e) << 52);
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), base);
    octave_first_[static_cast<std::size_t>(e - e_min)] =
        it == edges_.begin()
            ? 0u
            : static_cast<std::uint32_t>(it - edges_.begin() - 1);
  }
}

void LogHistogram::add(double value) noexcept {
  std::size_t bin;
  if (!(value >= layout_.min_value)) {  // also catches NaN
    bin = 0;
  } else if (value >= layout_.max_value) {
    bin = counts_.size() - 1;
  } else {
    // edges_[octave_first_[...]] <= 2^exponent(value) <= value, so the short
    // forward scan lands on the containing bin without any log10 call.
    const int e = static_cast<int>(std::bit_cast<std::uint64_t>(value) >> 52);
    std::size_t k = octave_first_[static_cast<std::size_t>(e - octave_bias_)];
    while (k + 1 < edges_.size() && value >= edges_[k + 1]) ++k;
    bin = k + 1;
  }
  ++counts_[bin];
  ++total_;
  sum_ += value;
  if (total_ == 1) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(layout_.min_value == other.layout_.min_value &&
         layout_.max_value == other.layout_.max_value &&
         layout_.bins_per_decade == other.layout_.bins_per_decade &&
         "merging histograms of different layouts");
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.total_ > 0) {
    min_seen_ = total_ > 0 ? std::min(min_seen_, other.min_seen_)
                           : other.min_seen_;
    max_seen_ = total_ > 0 ? std::max(max_seen_, other.max_seen_)
                           : other.max_seen_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::bin_lower(std::size_t bin) const noexcept {
  if (bin == 0) return 0.0;
  if (bin - 1 < edges_.size()) return edges_[bin - 1];
  return layout_.max_value;  // overflow bin
}

void LogHistogram::write_json(std::ostream& out) const {
  out << R"({"min_value":)";
  jnum(out, layout_.min_value);
  out << R"(,"max_value":)";
  jnum(out, layout_.max_value);
  out << R"(,"bins_per_decade":)" << layout_.bins_per_decade
      << R"(,"total":)" << total_ << R"(,"sum":)";
  jnum(out, sum_);
  out << R"(,"min":)";
  jnum(out, total_ > 0 ? min_seen_ : 0.0);
  out << R"(,"max":)";
  jnum(out, total_ > 0 ? max_seen_ : 0.0);
  out << R"(,"bins":[)";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '[' << i << ',' << counts_[i] << ']';
  }
  out << "]}";
}

// --- P2Quantile ---------------------------------------------------------------

P2Quantile::P2Quantile(double p) : p_(p) {
  assert(p > 0.0 && p < 1.0 && "quantile must be in (0, 1)");
  dn_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        n_[i] = static_cast<double>(i + 1);
      }
      np_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }

  // Locate the cell k containing x, extending the extremes when x falls
  // outside the current marker span.
  std::size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = std::max(q_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) np_[i] += dn_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions with a
  // piecewise-parabolic (P2) height adjustment, falling back to linear when
  // the parabola would cross a neighbour.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          q_[i] + sign / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {  // linear fallback
        const auto j = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(i) +
            static_cast<std::ptrdiff_t>(sign));
        q_[i] += sign * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Sorted-sample quantile by the nearest-rank rule over the partial set.
    std::array<double, 5> sorted = q_;
    std::sort(sorted.begin(), sorted.begin() +
                                  static_cast<std::ptrdiff_t>(count_));
    const double rank = p_ * static_cast<double>(count_);
    auto index = static_cast<std::size_t>(std::ceil(rank));
    index = std::clamp<std::size_t>(index, 1, count_);
    return sorted[index - 1];
  }
  return q_[2];
}

// --- ReservoirSample ----------------------------------------------------------

ReservoirSample::ReservoirSample(std::size_t capacity) : capacity_(capacity) {
  assert(capacity > 0 && "reservoir capacity must be positive");
  sample_.reserve(capacity_);
  scratch_.reserve(capacity_);
}

void ReservoirSample::add(double x) noexcept {
  ++count_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);  // within reserved capacity: no allocation
    return;
  }
  // SplitMix64 step off a fixed seed: the replacement sequence — and hence
  // the sample — is a pure function of the input order.
  rng_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Uniform slot in [0, count_) without a division: count_ stays far below
  // 2^32, so a 32x32 fixed-point multiply suffices.
  const std::uint64_t slot = ((z >> 32) * count_) >> 32;
  if (slot < capacity_) sample_[static_cast<std::size_t>(slot)] = x;
}

double ReservoirSample::quantile(double p) const {
  if (sample_.empty()) return 0.0;
  scratch_ = sample_;  // capacity pre-reserved: no allocation
  const double rank = p * static_cast<double>(scratch_.size());
  auto index = static_cast<std::size_t>(std::ceil(rank));
  index = std::clamp<std::size_t>(index, 1, scratch_.size());
  const auto nth = scratch_.begin() + static_cast<std::ptrdiff_t>(index - 1);
  std::nth_element(scratch_.begin(), nth, scratch_.end());
  return *nth;
}

// --- StatsProfile -------------------------------------------------------------

void StatsProfile::merge(const StatsProfile& other) {
  assert(node_count == other.node_count &&
         buffer_capacity == other.buffer_capacity &&
         slot_seconds == other.slot_seconds &&
         "merging profiles of different run shapes");
  runs += other.runs;
  events += other.events;
  intercontact.merge(other.intercontact);
  contact_duration.merge(other.contact_duration);
  open_sessions += other.open_sessions;
  for (std::size_t i = 0; i < node_contacts.size(); ++i) {
    node_contacts[i] += other.node_contacts[i];
  }
  for (std::size_t i = 0; i < degree_hist.size(); ++i) {
    degree_hist[i] += other.degree_hist[i];
  }
  for (std::size_t i = 0; i < occupancy_time.size(); ++i) {
    occupancy_time[i] += other.occupancy_time[i];
  }
  slots_offered += other.slots_offered;
  slots_used += other.slots_used;
  for (std::size_t i = 0; i < utilization_hist.size(); ++i) {
    utilization_hist[i] += other.utilization_hist[i];
  }
  control_exchanges += other.control_exchanges;
  control_records += other.control_records;
  control_byte_total += other.control_byte_total;
  sv_exchanges += other.sv_exchanges;
  sv_entries += other.sv_entries;
  sv_byte_total += other.sv_byte_total;
  // Quantiles do not merge; aggregate consumers report them per run.
  intercontact_p50 = 0.0;
  intercontact_p90 = 0.0;
  intercontact_p99 = 0.0;
  contact_duration_p50 = 0.0;
}

void StatsProfile::write_json(std::ostream& out) const {
  out << R"({"node_count":)" << node_count << R"(,"buffer_capacity":)"
      << buffer_capacity << R"(,"slot_seconds":)";
  jnum(out, slot_seconds);
  out << R"(,"runs":)" << runs << R"(,"events":)" << events;

  out << R"(,"intercontact":)";
  intercontact.write_json(out);
  out << R"(,"contact_duration":)";
  contact_duration.write_json(out);
  out << R"(,"open_sessions":)" << open_sessions;

  out << R"(,"node_contacts":[)";
  for (std::size_t i = 0; i < node_contacts.size(); ++i) {
    if (i != 0) out << ',';
    out << node_contacts[i];
  }
  out << ']';

  // Degrees serialize sparsely: most degree values are unpopulated.
  out << R"(,"degree_hist":[)";
  bool first = true;
  for (std::size_t d = 0; d < degree_hist.size(); ++d) {
    if (degree_hist[d] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '[' << d << ',' << degree_hist[d] << ']';
  }
  out << ']';

  out << R"(,"occupancy_time":[)";
  for (std::size_t i = 0; i < occupancy_time.size(); ++i) {
    if (i != 0) out << ',';
    jnum(out, occupancy_time[i]);
  }
  out << ']';

  out << R"(,"slots":{"offered":)" << slots_offered << R"(,"used":)"
      << slots_used << R"(,"utilization_hist":[)";
  for (std::size_t i = 0; i < utilization_hist.size(); ++i) {
    if (i != 0) out << ',';
    out << utilization_hist[i];
  }
  out << "]}";

  out << R"(,"signaling":{"control_exchanges":)" << control_exchanges
      << R"(,"control_records":)" << control_records
      << R"(,"control_bytes":)" << control_bytes() << R"(,"sv_exchanges":)"
      << sv_exchanges << R"(,"sv_entries":)" << sv_entries
      << R"(,"sv_bytes":)" << sv_bytes() << '}';

  if (runs == 1) {
    out << R"(,"quantiles":{"intercontact_p50":)";
    jnum(out, intercontact_p50);
    out << R"(,"intercontact_p90":)";
    jnum(out, intercontact_p90);
    out << R"(,"intercontact_p99":)";
    jnum(out, intercontact_p99);
    out << R"(,"contact_duration_p50":)";
    jnum(out, contact_duration_p50);
    out << '}';
  }
  out << '}';
}

// --- StatsCollector -----------------------------------------------------------

namespace {

/// Normalized pair key of a contact: contacts arrive with a < b, but
/// transfer events carry (sender, receiver) in either order.
std::uint64_t pair_key(NodeId a, NodeId b) noexcept {
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  return (std::uint64_t{lo} << 32) | hi;
}

}  // namespace

StatsCollector::StatsCollector(const Config& config, TraceSink* downstream)
    : downstream_(downstream) {
  profile_.node_count = config.node_count;
  // Heterogeneous capacities share one occupancy histogram sized to the
  // largest node; each node's level is clamped to its own capacity (caps_).
  std::uint32_t max_capacity = config.buffer_capacity;
  if (!config.node_capacities.empty()) {
    caps_ = config.node_capacities;
    max_capacity = *std::max_element(caps_.begin(), caps_.end());
  } else {
    caps_.assign(config.node_count, config.buffer_capacity);
  }
  profile_.buffer_capacity = max_capacity;
  profile_.slot_seconds = config.slot_seconds;
  profile_.node_contacts.assign(config.node_count, 0);
  profile_.degree_hist.assign(std::size_t{config.node_count}, 0);
  profile_.occupancy_time.assign(std::size_t{max_capacity} + 1, 0.0);
  last_contact_.assign(config.node_count, -1.0);
  level_.assign(config.node_count, 0);
  level_since_.assign(config.node_count, 0.0);
  peer_words_ = (std::size_t{config.node_count} + 63) / 64;
  peer_bits_.assign(peer_words_ * config.node_count, 0);
  open_.reserve(16);
}

StatsCollector::OpenSession* StatsCollector::find_session(
    std::uint64_t key) noexcept {
  for (auto& session : open_) {
    if (session.key == key) return &session;
  }
  return nullptr;
}

void StatsCollector::advance_occupancy(NodeId node, double t) noexcept {
  const auto n = static_cast<std::size_t>(node);
  const std::uint32_t level = std::min(level_[n], caps_[n]);
  profile_.occupancy_time[level] += t - level_since_[n];
  level_since_[n] = t;
}

void StatsCollector::emit(const TraceEvent& event) {
  observe(event);
  if (downstream_ != nullptr) downstream_->emit(event);
}

void StatsCollector::emit_batch(const TraceEvent* events, std::size_t n) {
  // One tight loop over the block keeps the collector's state cache-hot for
  // the whole batch instead of being evicted between events by simulation
  // work. (Splitting the loop into per-subsystem passes was tried and is
  // not faster: whether event i matches a pass is data-dependent, so the
  // per-pass filter branch mispredicts just like the switch dispatch does.)
  for (std::size_t i = 0; i < n; ++i) observe(events[i]);
  if (downstream_ != nullptr) downstream_->emit_batch(events, n);
}

void StatsCollector::observe(const TraceEvent& event) noexcept {
  ++profile_.events;
  switch (event.kind) {
    case EventKind::kContactUp: {
      for (const NodeId node : {event.a, event.b}) {
        const auto n = static_cast<std::size_t>(node);
        if (last_contact_[n] >= 0.0) {
          const double gap = event.t - last_contact_[n];
          profile_.intercontact.add(gap);
          gaps_.add(gap);
        }
        last_contact_[n] = event.t;
        ++profile_.node_contacts[n];
      }
      peer_bits_[std::size_t{event.a} * peer_words_ + event.b / 64] |=
          std::uint64_t{1} << (event.b % 64);
      peer_bits_[std::size_t{event.b} * peer_words_ + event.a / 64] |=
          std::uint64_t{1} << (event.a % 64);
      const std::uint64_t key = pair_key(event.a, event.b);
      if (OpenSession* stale = find_session(key)) {
        // Same-pair contacts never overlap in a normalized trace; if one
        // ever does, restart the session rather than corrupt its duration.
        stale->start = event.t;
        stale->transfers = 0;
      } else {
        open_.push_back(OpenSession{key, event.t, 0});
      }
      break;
    }
    case EventKind::kContactDown: {
      const std::uint64_t key = pair_key(event.a, event.b);
      if (OpenSession* session = find_session(key)) {
        const double duration = event.t - session->start;
        profile_.contact_duration.add(duration);
        durations_.add(duration);
        const auto slots = static_cast<std::uint64_t>(
            duration / profile_.slot_seconds);
        profile_.slots_offered += slots;
        profile_.slots_used += session->transfers;
        if (slots > 0) {
          const std::uint64_t bin =
              std::min<std::uint64_t>(session->transfers * 10 / slots, 10);
          ++profile_.utilization_hist[static_cast<std::size_t>(bin)];
        }
        *session = open_.back();
        open_.pop_back();
      }
      break;
    }
    case EventKind::kTransferred: {
      if (OpenSession* session = find_session(pair_key(event.a, event.b))) {
        ++session->transfers;
      }
      break;
    }
    case EventKind::kStored: {
      advance_occupancy(event.a, event.t);
      ++level_[event.a];
      break;
    }
    case EventKind::kRemoved: {
      advance_occupancy(event.a, event.t);
      if (level_[event.a] > 0) --level_[event.a];
      break;
    }
    case EventKind::kControl: {
      ++profile_.control_exchanges;
      profile_.control_records += event.count;
      profile_.control_byte_total += event.bytes;
      break;
    }
    case EventKind::kSummaryVector: {
      ++profile_.sv_exchanges;
      profile_.sv_entries += event.count;
      profile_.sv_byte_total += event.bytes;
      break;
    }
    case EventKind::kCreated:
    case EventKind::kDelivered:
    case EventKind::kFault:
      break;  // already covered by RunSummary scalars
  }
}

void StatsCollector::finish(SimTime end_time) {
  assert(!finished_ && "StatsCollector::finish() is single-shot");
  finished_ = true;
  for (NodeId n = 0; n < profile_.node_count; ++n) {
    advance_occupancy(n, end_time);
  }
  profile_.open_sessions = open_.size();
  for (std::size_t n = 0; n < profile_.node_count; ++n) {
    std::uint64_t degree = 0;
    for (std::size_t w = 0; w < peer_words_; ++w) {
      degree += static_cast<std::uint64_t>(
          std::popcount(peer_bits_[n * peer_words_ + w]));
    }
    ++profile_.degree_hist[static_cast<std::size_t>(degree)];
  }
  profile_.intercontact_p50 = gaps_.quantile(0.5);
  profile_.intercontact_p90 = gaps_.quantile(0.9);
  profile_.intercontact_p99 = gaps_.quantile(0.99);
  profile_.contact_duration_p50 = durations_.quantile(0.5);
}

}  // namespace epi::obs
