// ChromeTraceWriter: sweep parallelism visualised in chrome://tracing.
//
// The sweep records one complete ("ph":"X") span per (protocol, load,
// replication) task, on the worker thread lane that executed it. Loading the
// resulting file in Perfetto or chrome://tracing shows how the thread pool
// packed the replications and where the stragglers are.
#pragma once

#include <cstdint>
#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace epi::obs {

class ChromeTraceWriter {
 public:
  ChromeTraceWriter();

  /// Microseconds elapsed since construction; the timebase of every span.
  [[nodiscard]] double now_us() const;

  /// Records a finished span on worker lane `tid`. Thread-safe.
  void record_span(std::string name, unsigned tid, double begin_us,
                   double end_us);

  [[nodiscard]] std::size_t span_count() const;

  /// Serialises the Trace Event Format JSON object.
  void write(std::ostream& out) const;

  /// Writes to `path`; throws std::runtime_error on failure.
  void write_file(const std::string& path) const;

 private:
  struct Span {
    std::string name;
    unsigned tid;
    double ts_us;
    double dur_us;
  };

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

}  // namespace epi::obs
