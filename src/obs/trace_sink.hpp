// TraceSink: the pluggable per-event observability interface.
//
// The engine narrates every state change it makes — contact up/down, bundle
// created/stored/transferred/removed/delivered, control-record exchange —
// through an optional sink. The default is *no* sink (a nullptr), and every
// hook point is a single branch-on-nullptr, so simulations that do not trace
// pay nothing. Sinks attached to parallel sweeps receive events from many
// runs interleaved; each event therefore carries its run coordinates
// (protocol, load, replication) so consumers can demultiplex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/types.hpp"
#include "dtn/bundle.hpp"

namespace epi::obs {

/// What happened. One enumerator per engine hook point.
enum class EventKind : std::uint8_t {
  kContactUp,    ///< a contact began (a, b)
  kContactDown,  ///< a contact ended (a, b)
  kCreated,      ///< the source injected a fresh bundle (a = source)
  kStored,       ///< a copy entered a buffer (a = holder, b = sender or none)
  kTransferred,  ///< one bundle transmission (a = sender, b = receiver)
  kRemoved,      ///< a copy left a buffer (a = holder; see reason)
  kDelivered,    ///< the destination consumed the bundle (a = sender, b = dst)
  kControl,      ///< control-plane records crossed the air (count, bytes)
  kFault,        ///< an injected fault fired (a, b; see TraceEvent::fault)
  kSummaryVector,  ///< both sides advertised their buffer contents (a, b;
                   ///< count = advertised entries, bytes = wire cost). Once
                   ///< at contact start under the exact codec; compact
                   ///< codecs re-advertise at every surviving transfer slot.
};

/// Which impairment model produced a kFault event (see fault::FaultPlan).
enum class FaultKind : std::uint8_t {
  kSlotLoss,     ///< a bundle slot was consumed without a transfer
  kDownSlot,     ///< a slot was suppressed because an endpoint was down
  kControlDrop,  ///< a contact-start control exchange was dropped
  kTruncation,   ///< a contact's duration was cut mid-flight
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;
[[nodiscard]] std::string_view to_string(dtn::RemoveReason reason) noexcept;
[[nodiscard]] std::string_view to_string(FaultKind fault) noexcept;

/// One structured record of one engine event.
struct TraceEvent {
  EventKind kind = EventKind::kContactUp;
  SimTime t = 0.0;                ///< simulation time of the event
  std::string_view protocol;      ///< canonical protocol name
  std::uint32_t load = 0;         ///< total intended load of the run
  std::uint32_t replication = 0;  ///< replication index within a sweep
  NodeId a = kInvalidNode;        ///< primary node (see EventKind)
  NodeId b = kInvalidNode;        ///< peer node, kInvalidNode when n/a
  BundleId bundle = kInvalidBundle;  ///< kInvalidBundle when n/a
  dtn::RemoveReason reason = dtn::RemoveReason::kExpired;  ///< kRemoved only
  std::uint64_t count = 0;        ///< record count, kControl/kSummaryVector
  std::uint64_t bytes = 0;        ///< wire bytes, kControl/kSummaryVector
  FaultKind fault = FaultKind::kSlotLoss;  ///< kFault only
};

/// Receives every engine event. Implementations attached to multi-threaded
/// sweeps must make emit() thread-safe; within one run events arrive in
/// simulation order.
///
/// Delivery is batched: the engine buffers events and hands them over in
/// blocks via emit_batch(), flushing no later than the end of the run. The
/// default emit_batch() forwards record by record, so a sink only needs
/// emit(); hot sinks (StatsCollector) override emit_batch() to process the
/// block in one tight loop — one virtual call per block instead of per
/// event, and the sink's state stays cache-hot instead of being evicted by
/// interleaved simulation work.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  virtual void emit_batch(const TraceEvent* events, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) emit(events[i]);
  }
};

}  // namespace epi::obs
