// PerfCounters: per-run instrumentation attached to every RunSummary.
//
// The deterministic fields (events, peak queue depth, transfers, contacts)
// depend only on the run's seed and configuration and are bit-identical for
// any thread count; wall_seconds is the one wall-clock-derived field.
// Collection is always on — it costs one steady_clock read per run plus one
// max() per simulated event.
#pragma once

#include <cstddef>
#include <cstdint>

namespace epi::obs {

struct PerfCounters {
  double wall_seconds = 0.0;            ///< wall clock of Engine::run()
  std::uint64_t events_processed = 0;   ///< discrete events the run executed
  std::size_t peak_queue_depth = 0;     ///< max pending events at any instant
  std::uint64_t transfers = 0;          ///< bundle transmissions
  std::uint64_t contacts = 0;           ///< contacts processed

  // Injected-fault accounting (zero when no FaultPlan is active). These are
  // deterministic — each fault draw derives from the run's coordinates, not
  // from wall clock or thread schedule — so they participate in
  // deterministic_equal() and in the run-store encoding.
  std::uint64_t slots_lost = 0;          ///< bundle slots consumed by loss
  std::uint64_t down_slots = 0;          ///< slots suppressed: endpoint down
  std::uint64_t control_dropped = 0;     ///< contact-start exchanges dropped
  std::uint64_t contacts_truncated = 0;  ///< contacts cut short mid-flight

  /// Transfers refused because the receiver's buffer was full and the
  /// admission policy found no victim — one per (sender, receiver, slot)
  /// refusal event, i.e. one wasted bundle slot. Previously these slots
  /// vanished without a trace; the counter depends only on seed and
  /// configuration, so it participates in deterministic_equal() and in the
  /// run-store encoding.
  std::uint64_t transfers_refused_full = 0;

  // Signaling accounting under the byte model in core/summary_mode.hpp.
  // Advertisement and control traffic are pure functions of seed and
  // configuration (no RNG stream is consumed by a codec), so all four
  // participate in deterministic_equal() and in the run-store encoding.
  std::uint64_t summary_exchanges = 0;  ///< advertisement rounds (both sides)
  std::uint64_t summary_ad_bytes = 0;   ///< advertisement bytes, both sides
  std::uint64_t control_bytes = 0;      ///< control-record bytes (anti-packets
                                        ///< and immunity high-water marks)

  /// Transfers suppressed because a compact advertisement falsely claimed
  /// the receiver already held the bundle — zero under the exact codec by
  /// construction.
  std::uint64_t transfers_suppressed_fp = 0;

  /// Total signaling cost of the run under the byte model.
  [[nodiscard]] std::uint64_t signaling_bytes() const noexcept {
    return summary_ad_bytes + control_bytes;
  }

  // Contact-path allocation accounting: each use of an engine-owned scratch
  // buffer is booked as a reuse (its capacity sufficed — no heap traffic) or
  // an alloc (it had to grow). A warmed-up run reports scratch_allocs == 0;
  // tests assert this. Like wall_seconds, these describe the implementation
  // rather than the simulated system, so they are excluded from
  // deterministic_equal() and from the run-store encoding.
  std::uint64_t scratch_reuses = 0;     ///< scratch borrows served in place
  std::uint64_t scratch_allocs = 0;     ///< scratch borrows that had to grow

  [[nodiscard]] double events_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(events_processed) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double transfers_per_contact() const noexcept {
    return contacts > 0
               ? static_cast<double>(transfers) / static_cast<double>(contacts)
               : 0.0;
  }
};

}  // namespace epi::obs
