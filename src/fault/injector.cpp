#include "fault/injector.hpp"

#include <cmath>

namespace epi::fault {
namespace {

// Stream tags (ASCII mnemonics, disjoint from the engine's 'ENG' and the
// runner's 'FLOW' tags): one per impairment model.
constexpr std::uint64_t kTagTruncation = 0x46'54'52'55ULL;  // 'FTRU'
constexpr std::uint64_t kTagControl = 0x46'43'54'4cULL;     // 'FCTL'
constexpr std::uint64_t kTagSlot = 0x46'53'4c'54ULL;        // 'FSLT'
constexpr std::uint64_t kTagDuty = 0x46'44'55'54ULL;        // 'FDUT'

std::uint64_t pack(std::uint32_t load, std::uint32_t replication) noexcept {
  return (std::uint64_t{load} << 32) | replication;
}

}  // namespace

Injector::Injector(const FaultPlan& plan, std::uint64_t master_seed,
                   std::uint32_t load, std::uint32_t replication)
    : plan_(plan),
      truncation_rng_(
          Rng::derive(master_seed, kTagTruncation, pack(load, replication))),
      control_rng_(
          Rng::derive(master_seed, kTagControl, pack(load, replication))),
      slot_rng_(Rng::derive(master_seed, kTagSlot, pack(load, replication))),
      duty_seed_(SplitMix64(master_seed ^ kTagDuty).next() ^
                 pack(load, replication)) {}

bool Injector::truncate(mobility::Contact& contact) {
  if (plan_.truncation_prob <= 0.0) return false;
  if (!truncation_rng_.chance(plan_.truncation_prob)) return false;
  // Keep a uniform fraction of the duration: the cut can land anywhere in
  // the contact, including before the first slot completes (a contact that
  // effectively delivers nothing). start is untouched — the encounter still
  // begins; it just ends early, stranding the slots past the cut.
  contact.end = contact.start + contact.duration() * truncation_rng_.uniform();
  return true;
}

bool Injector::node_up(NodeId node, SimTime t) const {
  if (plan_.duty_off_fraction <= 0.0) return true;
  // Per-node phase: a hash of the node id under the duty seed, mapped to
  // [0, period). Closed form — no stream state advances.
  const std::uint64_t h =
      SplitMix64(duty_seed_ ^ (0x9E3779B97F4A7C15ULL * (node + 1))).next();
  const double phase = static_cast<double>(h >> 11) * 0x1.0p-53 *
                       plan_.duty_period;
  double pos = std::fmod(t - phase, plan_.duty_period);
  if (pos < 0.0) pos += plan_.duty_period;
  // The node is down during the first duty_off_fraction of its cycle.
  return pos >= plan_.duty_off_fraction * plan_.duty_period;
}

bool Injector::drop_control() {
  if (plan_.control_loss <= 0.0) return false;
  return control_rng_.chance(plan_.control_loss);
}

bool Injector::lose_slot() {
  if (plan_.slot_loss <= 0.0) return false;
  return slot_rng_.chance(plan_.slot_loss);
}

}  // namespace epi::fault
