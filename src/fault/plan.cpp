#include "fault/plan.hpp"

#include <cstdio>

#include "core/error.hpp"

namespace epi::fault {
namespace {

/// Rejects a probability outside [0, 1] with the offending field and value.
void check_probability(const char* field, double p) {
  if (p >= 0.0 && p <= 1.0) return;  // NaN fails this and is rejected too
  char msg[128];
  std::snprintf(msg, sizeof(msg),
                "FaultPlan.%s must lie in [0,1], got %g", field, p);
  throw ConfigError(msg);
}

}  // namespace

void FaultPlan::validate() const {
  check_probability("slot_loss", slot_loss);
  check_probability("truncation_prob", truncation_prob);
  check_probability("control_loss", control_loss);
  if (!(duty_off_fraction >= 0.0 && duty_off_fraction < 1.0)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "FaultPlan.duty_off_fraction must lie in [0,1) — a node "
                  "that is never up cannot route, got %g",
                  duty_off_fraction);
    throw ConfigError(msg);
  }
  if (!(duty_period > 0.0)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "FaultPlan.duty_period must be positive, got %g",
                  duty_period);
    throw ConfigError(msg);
  }
}

void append_key(std::string& key, const FaultPlan& plan) {
  // max_digits10 rendering, mirroring exp::store_key: the key must
  // distinguish plans that differ by a single ULP, because the draws do.
  const auto kv = [&key](const char* name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, value);
    key += buf;
  };
  key += "fault{";
  kv("sloss", plan.slot_loss);
  kv("trunc", plan.truncation_prob);
  kv("doff", plan.duty_off_fraction);
  kv("dper", plan.duty_period);
  kv("closs", plan.control_loss);
  key += '}';
}

FaultPlanBuilder& FaultPlanBuilder::slot_loss(double p) {
  plan_.slot_loss = p;
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::truncation(double p) {
  plan_.truncation_prob = p;
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::duty_cycle(double off_fraction,
                                               SimTime period) {
  plan_.duty_off_fraction = off_fraction;
  plan_.duty_period = period;
  return *this;
}

FaultPlanBuilder& FaultPlanBuilder::control_loss(double p) {
  plan_.control_loss = p;
  return *this;
}

FaultPlan FaultPlanBuilder::build() const {
  plan_.validate();
  return plan_;
}

}  // namespace epi::fault
