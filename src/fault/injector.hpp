// Injector: the deterministic draw source behind a FaultPlan.
//
// One Injector serves one run. Each impairment model owns an independent
// xoshiro256** stream derived from (master_seed, model tag, load,
// replication), so
//
//   * two replications never share fault draws,
//   * the models never perturb each other (raising slot_loss does not move
//     a single truncation draw), and
//   * results are bit-identical at any thread count — the streams depend
//     only on the run's coordinates, never on scheduling.
//
// Within a run the engine is single-threaded and consumes draws in event
// order, which is itself deterministic; no draw is ever consumed for an
// inactive model (probability zero short-circuits before the stream is
// touched), so partially-active plans stay reproducible field by field.
//
// Node availability (duty-cycle churn) is a closed-form function of
// (node id, time): each node's duty phase is a SplitMix64 hash of its id
// under the duty stream seed. Queries consume nothing, so the engine may
// probe availability as often or as rarely as it likes without shifting
// any stream.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "fault/plan.hpp"
#include "mobility/contact.hpp"

namespace epi::fault {

class Injector {
 public:
  /// The plan must be validated (Injector assumes in-domain fields). The
  /// remaining arguments are the run's coordinates — the same triple that
  /// seeds the engine and the flow-endpoint derivation, so fault streams
  /// are paired across protocols exactly like the flows are.
  Injector(const FaultPlan& plan, std::uint64_t master_seed,
           std::uint32_t load, std::uint32_t replication);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Applies mid-contact truncation to `contact` in place: with probability
  /// truncation_prob the duration shrinks to a uniform [0,1) fraction of
  /// itself. Returns true when the contact was cut. Call exactly once per
  /// started contact, in feed order.
  bool truncate(mobility::Contact& contact);

  /// Whether `node` is up at time `t` (closed form; no draws consumed).
  [[nodiscard]] bool node_up(NodeId node, SimTime t) const;

  /// Draws whether this contact's control-plane exchange is lost.
  bool drop_control();

  /// Draws whether this bundle slot fails.
  bool lose_slot();

 private:
  FaultPlan plan_;
  Rng truncation_rng_;
  Rng control_rng_;
  Rng slot_rng_;
  std::uint64_t duty_seed_;
};

}  // namespace epi::fault
