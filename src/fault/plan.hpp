// FaultPlan: the declarative description of every impairment a run injects.
//
// The paper evaluates all protocols under ideal contacts: every scheduled
// 100 s bundle slot succeeds, nodes never go down, and contacts end exactly
// as the trace says. Real DTN deployments are dominated by partial and
// failed transfers (arXiv:1805.10539, arXiv:1601.06345), and loss reorders
// the protocol ranking — especially for the anti-packet/immunity schemes,
// whose control state can itself be lost. A FaultPlan composes four
// independent impairment models:
//
//   * per-slot Bernoulli transfer loss — a failed slot consumes its 100 s
//     but delivers nothing;
//   * mid-contact truncation — a truncated contact keeps only a uniform
//     fraction of its duration, stranding the slots past the cut;
//   * node duty-cycle churn — a down node neither forwards bundles nor
//     emits anti-packets / immunity tables;
//   * control-plane loss — the contact-start control exchange (anti-packets,
//     i-lists, cumulative tables) is dropped independently of data slots.
//
// An all-zero plan (the default) injects nothing and is bit-identical to a
// run without the fault layer: the engine then holds no injector, so no
// fault stream is ever created or consumed. Every non-zero draw derives
// from (master_seed, load, replication, model id) — see fault::Injector —
// so faulted results are reproducible at any thread count.
//
// The plan is part of exp::RunSpec and joins the run-store key (see
// fault::append_key), so cached and fresh faulted results stay comparable.
#pragma once

#include <string>

#include "core/types.hpp"

namespace epi::fault {

struct FaultPlan {
  /// P(a bundle slot fails): the slot's 100 s elapse, nothing is
  /// transferred. Drawn once per slot from the slot-loss stream.
  double slot_loss = 0.0;

  /// P(a contact is truncated). A truncated contact keeps a uniform [0,1)
  /// fraction of its duration; slots past the cut never happen. Drawn once
  /// (plus one cut-point draw when truncated) per started contact.
  double truncation_prob = 0.0;

  /// Fraction of each duty period a node spends down. A down node neither
  /// transfers in a slot nor takes part in the contact-start control
  /// exchange. 0 = always up. Each node's duty phase is a closed-form hash
  /// of its id, so availability queries consume no random draws.
  double duty_off_fraction = 0.0;

  /// Length of the duty cycle in seconds (used only when duty_off_fraction
  /// is non-zero; must stay positive regardless so a plan is always valid).
  SimTime duty_period = 7'200.0;

  /// P(the contact-start control exchange is dropped), independent of the
  /// data slots: anti-packets / i-lists / cumulative tables simply do not
  /// cross during that contact. In-band control (the anti-packet handed
  /// back at delivery) is not affected — it rides the delivery itself.
  double control_loss = 0.0;

  /// True when any impairment model is active. An inactive plan means the
  /// engine skips fault wiring entirely (bit-identical to the pre-fault
  /// engine).
  [[nodiscard]] bool any() const noexcept {
    return slot_loss > 0.0 || truncation_prob > 0.0 ||
           duty_off_fraction > 0.0 || control_loss > 0.0;
  }

  /// Throws ConfigError when a field is outside its valid domain.
  void validate() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Appends the plan's run-store key fragment ("fault{...}", max_digits10
/// rendering) to `key`. Every field joins, active or not: a plan change,
/// however small, must change the key.
void append_key(std::string& key, const FaultPlan& plan);

/// Validating builder: rejects inconsistent values at build time with
/// actionable messages instead of failing deep inside the engine.
class FaultPlanBuilder {
 public:
  FaultPlanBuilder& slot_loss(double p);
  FaultPlanBuilder& truncation(double p);
  FaultPlanBuilder& duty_cycle(double off_fraction, SimTime period);
  FaultPlanBuilder& control_loss(double p);

  /// Validates and returns the plan. Throws ConfigError with the offending
  /// field and value on any violation.
  [[nodiscard]] FaultPlan build() const;

 private:
  FaultPlan plan_;
};

}  // namespace epi::fault
