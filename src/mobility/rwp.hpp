// Subscriber-point Random Way Point model (paper SIV).
//
// The paper deliberately does not use classic RWP: it cites the known decay
// pathologies (Resta & Santi) and instead moves nodes along randomly chosen
// *subscriber points*. We implement exactly the variant described:
//   * fewer than 100 subscriber points in a 1 km^2 area;
//   * a node pauses at a point for less than 1000 s, then travels to another
//     randomly chosen point; point spacing is below 1000 m;
//   * derived speeds lie in (0, 10] m/s (the paper computes
//     speed = distance / interval);
//   * nodes exchange bundles when co-located at a point; a single contact
//     lasts at most 500 s ("nodes may be in contact ... for a maximum 500
//     seconds").
//
// Contacts are the co-presence intervals of two nodes at one point, clipped
// to the 500 s cap.
#pragma once

#include <cstdint>

#include "mobility/contact_trace.hpp"

namespace epi::mobility {

struct RwpParams {
  std::uint32_t node_count = 12;          // paper SIV: 12 nodes
  SimTime horizon = defaults::kRwpHorizon;  // 600,000 s
  std::uint32_t subscriber_points = 40;   // "< 100 in one square kilometre"
  double area_side_m = 1'000.0;           // 1 km x 1 km
  double max_pause_s = 1'000.0;           // "randomly stop for less than 1000 s"
  double min_speed_mps = 0.5;             // derived speeds in (0, 10]
  double max_speed_mps = 10.0;
  SimTime max_contact_s = 500.0;          // contact cap (paper SIV)
  SimTime min_contact_s = 1.0;            // drop degenerate co-presences

  void validate() const;  ///< throws ConfigError on nonsense values
};

/// Generates the contact trace deterministically from `seed`.
[[nodiscard]] ContactTrace generate_rwp(const RwpParams& params,
                                        std::uint64_t seed);

}  // namespace epi::mobility
