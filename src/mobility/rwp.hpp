// Subscriber-point Random Way Point model (paper SIV).
//
// The paper deliberately does not use classic RWP: it cites the known decay
// pathologies (Resta & Santi) and instead moves nodes along randomly chosen
// *subscriber points*. We implement exactly the variant described:
//   * the paper's own runs use fewer than 100 subscriber points in a 1 km^2
//     area (our defaults: 40) — larger counts are allowed for the city-scale
//     family, which needs hundreds to thousands of points;
//   * a node pauses at a point for less than 1000 s, then travels to another
//     randomly chosen point; point spacing is below 1000 m;
//   * derived speeds lie in (0, 10] m/s (the paper computes
//     speed = distance / interval);
//   * nodes exchange bundles when co-located at a point; a single contact
//     lasts at most 500 s ("nodes may be in contact ... for a maximum 500
//     seconds").
//
// Contacts are the co-presence intervals of two nodes at one point, clipped
// to the 500 s cap.
//
// Two generators produce byte-identical traces from the same params + seed:
//   * generate_rwp — windowed spatial-hash sweep (subscriber point = grid
//     cell), streamed through RwpContactSource in bounded memory;
//   * generate_rwp_reference — the original materialise-everything sweep,
//     kept as the differential-test oracle.
#pragma once

#include <cstdint>
#include <memory>

#include "mobility/contact_source.hpp"
#include "mobility/contact_trace.hpp"

namespace epi::mobility {

struct RwpParams {
  std::uint32_t node_count = 12;          // paper SIV: 12 nodes
  SimTime horizon = defaults::kRwpHorizon;  // 600,000 s
  std::uint32_t subscriber_points = 40;   // paper: "< 100 in one square km"
  double area_side_m = 1'000.0;           // 1 km x 1 km
  double max_pause_s = 1'000.0;           // "randomly stop for less than 1000 s"
  double min_speed_mps = 0.5;             // derived speeds in (0, 10]
  double max_speed_mps = 10.0;
  SimTime max_contact_s = 500.0;          // contact cap (paper SIV)
  SimTime min_contact_s = 1.0;            // drop degenerate co-presences

  // City-scale extensions (Thakur et al.: spatio-temporal preferences).
  // The defaults are inert: with hotspot_points == 0 and commuter_bias == 0
  // the RNG draw sequence — and hence every trace — is byte-identical to the
  // paper baseline above.
  std::uint32_t hotspot_points = 0;  ///< first K points packed in the core
  double hotspot_side_frac = 0.25;   ///< core square side / area side
  double commuter_bias = 0.0;        ///< P(next point is the node's anchor)

  void validate() const;  ///< throws ConfigError on nonsense values
};

/// Generates the contact trace deterministically from `seed` by draining the
/// streaming generator (kept for every materialised call site).
[[nodiscard]] ContactTrace generate_rwp(const RwpParams& params,
                                        std::uint64_t seed);

/// Naive reference generator: materialises every visit, sorts them all, and
/// runs the quadratic per-point sweep. Same output, unbounded memory; exists
/// as the oracle for the spatial-hash differential tests.
[[nodiscard]] ContactTrace generate_rwp_reference(const RwpParams& params,
                                                  std::uint64_t seed);

/// Streaming spatial-hash generator. Itineraries advance window by window;
/// each window buckets the live visits by subscriber point (the grid cell),
/// sweeps each bucket, and emits one sorted chunk of contacts. Peak memory
/// is O(nodes + visits per window + contacts per window) regardless of the
/// horizon, which is what makes 10k+ node traces generable at all.
class RwpContactSource final : public ContactSource {
 public:
  RwpContactSource(const RwpParams& params, std::uint64_t seed);
  ~RwpContactSource() override;

  RwpContactSource(RwpContactSource&&) noexcept;
  RwpContactSource& operator=(RwpContactSource&&) noexcept;

  [[nodiscard]] std::span<const Contact> next_chunk() override;
  [[nodiscard]] std::uint32_t node_count() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace epi::mobility
