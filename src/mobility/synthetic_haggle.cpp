#include "mobility/synthetic_haggle.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace epi::mobility {

void SyntheticHaggleParams::validate() const {
  if (node_count < 2) throw ConfigError("haggle: need at least two nodes");
  if (horizon <= 0.0) throw ConfigError("haggle: horizon must be positive");
  if (median_gathering_gap <= 0.0 || median_pair_gap <= 0.0)
    throw ConfigError("haggle: gap medians must be positive");
  if (gathering_gap_sigma < 0.0 || pair_gap_sigma < 0.0 ||
      dwell_sigma < 0.0 || duration_sigma < 0.0)
    throw ConfigError("haggle: sigmas must be non-negative");
  if (min_attendees < 2 || max_attendees < min_attendees ||
      max_attendees > node_count)
    throw ConfigError("haggle: need 2 <= min_attendees <= max_attendees <= "
                      "node_count");
  if (arrival_jitter < 0.0) throw ConfigError("haggle: negative jitter");
  if (median_dwell <= 0.0 || median_duration <= 0.0 || min_contact <= 0.0)
    throw ConfigError("haggle: durations must be positive");
}

ContactTrace generate_synthetic_haggle(const SyntheticHaggleParams& params,
                                       std::uint64_t seed) {
  params.validate();
  std::vector<Contact> contacts;

  // --- gatherings: several students co-located for a while -------------------
  {
    Rng rng = Rng::derive(seed, 0x4861676cULL /*'Hagl'*/, 0x6A7468 /*'gth'*/);
    SimTime t = rng.lognormal_median(params.median_gathering_gap,
                                     params.gathering_gap_sigma);
    std::vector<NodeId> ids(params.node_count);
    for (NodeId n = 0; n < params.node_count; ++n) ids[n] = n;

    while (t < params.horizon) {
      const auto span =
          static_cast<std::uint64_t>(params.max_attendees -
                                     params.min_attendees + 1);
      const auto attendees = params.min_attendees +
                             static_cast<std::uint32_t>(rng.below(span));
      // Partial Fisher-Yates: the first `attendees` entries become a
      // uniform random subset.
      for (std::uint32_t i = 0; i < attendees; ++i) {
        const auto j =
            i + static_cast<std::uint32_t>(
                    rng.below(params.node_count - i));
        std::swap(ids[i], ids[j]);
      }

      struct Stay {
        NodeId node;
        SimTime arrive;
        SimTime depart;
      };
      std::vector<Stay> stays;
      stays.reserve(attendees);
      for (std::uint32_t i = 0; i < attendees; ++i) {
        const SimTime arrive = t + rng.uniform(0.0, params.arrival_jitter);
        const SimTime depart =
            arrive +
            rng.lognormal_median(params.median_dwell, params.dwell_sigma);
        stays.push_back(Stay{ids[i], arrive, depart});
      }

      // Contacts = pairwise co-presence at the gathering.
      for (std::size_t i = 0; i < stays.size(); ++i) {
        for (std::size_t j = i + 1; j < stays.size(); ++j) {
          const SimTime start = std::max(stays[i].arrive, stays[j].arrive);
          const SimTime end = std::min(
              {stays[i].depart, stays[j].depart, params.horizon});
          if (end - start >= params.min_contact) {
            contacts.push_back(
                Contact{stays[i].node, stays[j].node, start, end});
          }
        }
      }

      t += rng.lognormal_median(params.median_gathering_gap,
                                params.gathering_gap_sigma);
    }
  }

  // --- background: sparse isolated pair encounters ---------------------------
  for (NodeId a = 0; a < params.node_count; ++a) {
    for (NodeId b = a + 1; b < params.node_count; ++b) {
      // Independent stream per pair: adding a node never perturbs the
      // contacts of existing pairs.
      Rng rng = Rng::derive(seed, 0x4861676cULL, a, b);
      SimTime t =
          rng.lognormal_median(params.median_pair_gap, params.pair_gap_sigma);
      while (t < params.horizon) {
        const double duration = rng.lognormal_median(params.median_duration,
                                                     params.duration_sigma);
        const SimTime end = std::min(t + duration, params.horizon);
        if (end - t >= params.min_contact) {
          contacts.push_back(Contact{a, b, t, end});
        }
        t = end + rng.lognormal_median(params.median_pair_gap,
                                       params.pair_gap_sigma);
      }
    }
  }

  return ContactTrace(std::move(contacts));
}

}  // namespace epi::mobility
