// ContactSource: a pull-based stream of contacts in start-time order.
//
// The engine feeds contacts lazily from a cursor; for city-scale runs the
// full contact vector no longer fits comfortably in memory, so the cursor is
// generalised into this interface: the producer hands out bounded chunks and
// may recycle the backing storage between pulls. A ContactTrace-backed
// adapter keeps every existing call site (and every golden pin) on the exact
// same code path — a materialised trace is just a source with one big chunk.
//
// Contract:
//   * next_chunk() returns the next block of contacts; an empty span means
//     the stream is exhausted (and stays exhausted on further calls).
//   * Contacts are normalized (a < b) and globally ordered by ContactBefore
//     across chunk boundaries — the concatenation of all chunks is exactly
//     a sorted ContactTrace.
//   * The returned span is valid only until the next call to next_chunk();
//     consumers must not hold references across pulls.
//   * node_count() is known up front (max node id + 1 over the full stream)
//     so the engine can size per-node state before the first pull.
#pragma once

#include <cstdint>
#include <span>

#include "mobility/contact_trace.hpp"

namespace epi::mobility {

class ContactSource {
 public:
  virtual ~ContactSource() = default;

  /// Next block of contacts (see the ordering contract above). Empty span =
  /// exhausted.
  [[nodiscard]] virtual std::span<const Contact> next_chunk() = 0;

  /// Max node id + 1 over the whole stream.
  [[nodiscard]] virtual std::uint32_t node_count() const = 0;
};

/// Adapter presenting a materialised ContactTrace as a stream. By default
/// the whole trace is handed out as a single chunk (zero copies, identical
/// memory behaviour to the pre-streaming engine); a non-zero `chunk_size`
/// slices it, which tests use to exercise chunk-boundary handling.
class TraceContactSource final : public ContactSource {
 public:
  explicit TraceContactSource(const ContactTrace& trace,
                              std::size_t chunk_size = 0) noexcept
      : remaining_(trace.contacts()),
        node_count_(trace.node_count()),
        chunk_size_(chunk_size) {}

  [[nodiscard]] std::span<const Contact> next_chunk() override {
    const std::size_t take = chunk_size_ == 0
                                 ? remaining_.size()
                                 : std::min(chunk_size_, remaining_.size());
    const std::span<const Contact> chunk = remaining_.first(take);
    remaining_ = remaining_.subspan(take);
    return chunk;
  }

  [[nodiscard]] std::uint32_t node_count() const override {
    return node_count_;
  }

 private:
  std::span<const Contact> remaining_;
  std::uint32_t node_count_ = 0;
  std::size_t chunk_size_ = 0;
};

}  // namespace epi::mobility
