#include "mobility/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace epi::mobility {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw TraceError("trace line " + std::to_string(line_no) + ": " + why);
}

}  // namespace

ContactTrace read_trace(std::istream& in) {
  std::vector<Contact> contacts;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing comment, then skip blank lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    long long a = 0;
    long long b = 0;
    double start = 0.0;
    double end = 0.0;
    if (!(fields >> a)) continue;  // blank or comment-only line
    if (!(fields >> b >> start >> end)) {
      fail(line_no, "expected '<a> <b> <start> <end>'");
    }
    std::string extra;
    if (fields >> extra) fail(line_no, "unexpected trailing field: " + extra);
    if (a < 0 || b < 0) fail(line_no, "negative node id");
    // kInvalidNode is the sentinel "no node"; a trace id at or above it
    // would silently truncate in the NodeId cast below.
    constexpr long long kMaxNodeId = static_cast<long long>(kInvalidNode) - 1;
    if (a > kMaxNodeId || b > kMaxNodeId) fail(line_no, "node id out of range");
    if (a == b) fail(line_no, "contact joins a node to itself");
    if (start < 0.0) fail(line_no, "negative start time");
    if (end <= start) fail(line_no, "end must be after start");
    contacts.push_back(Contact{static_cast<NodeId>(a), static_cast<NodeId>(b),
                               start, end});
  }
  return ContactTrace(std::move(contacts));
}

ContactTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open trace file: " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const ContactTrace& trace,
                 std::string_view comment) {
  out << "# contact trace: <node_a> <node_b> <start_s> <end_s>\n";
  if (!comment.empty()) out << "# " << comment << "\n";
  out << "# contacts=" << trace.size() << " nodes=" << trace.node_count()
      << "\n";
  // Round-trip exactness: shortest representation that restores the double.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& c : trace.contacts()) {
    out << c.a << ' ' << c.b << ' ' << c.start << ' ' << c.end << '\n';
  }
}

void write_trace_file(const std::string& path, const ContactTrace& trace,
                      std::string_view comment) {
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open trace file for writing: " + path);
  write_trace(out, trace, comment);
}

}  // namespace epi::mobility
