// A statistical twin of the Cambridge Haggle iMote trace (paper SIV).
//
// The real CRAWDAD `cambridge/haggle/imote/intel` dataset cannot be shipped,
// so we generate a contact process with the qualitative shape the paper's
// results depend on:
//
//   * 12 devices carried by students, 5-day horizon (max recorded time
//     524,162 s);
//   * *bursty, correlated* encounters: students co-locate in gatherings
//     (lectures, labs, meals), inside which several pairs are in contact
//     within minutes of each other — this is what lets a 300 s-TTL bundle
//     hop several times before expiring, and it is the hallmark of human
//     contact traces (heavy-tailed inter-contact times);
//   * long, highly variable gaps between a node's gatherings (tens of
//     thousands of seconds) — the reason a fixed TTL "shorter than the
//     encounter interval" discards bundles prematurely;
//   * occasional isolated pairwise contacts in the background;
//   * contact durations of minutes, so one contact carries a handful of
//     100 s bundle slots (the paper's example: 314 s -> 3 bundles).
//
// The protocols observe nothing about mobility except the contact process,
// so matching these statistics preserves the behaviours the paper measures.
// The real trace, converted to trace_io format, drops in unchanged.
#pragma once

#include <cstdint>

#include "mobility/contact_trace.hpp"

namespace epi::mobility {

struct SyntheticHaggleParams {
  std::uint32_t node_count = 12;
  SimTime horizon = defaults::kTraceHorizon;

  // --- gatherings (correlated bursts) ---
  double median_gathering_gap = 6'000.0;  ///< time between gatherings
  double gathering_gap_sigma = 1.1;       ///< log-sd of gathering gaps
  std::uint32_t min_attendees = 3;
  std::uint32_t max_attendees = 7;
  double arrival_jitter = 300.0;          ///< attendee arrival spread (s)
  double median_dwell = 700.0;            ///< attendee stay at the gathering
  double dwell_sigma = 0.6;

  // --- background pairwise contacts ---
  double median_pair_gap = 60'000.0;  ///< per-pair isolated-contact period
  double pair_gap_sigma = 1.0;
  double median_duration = 250.0;     ///< background contact duration
  double duration_sigma = 0.8;

  double min_contact = 30.0;  ///< drop co-presences shorter than this

  void validate() const;  ///< throws ConfigError on nonsense values
};

/// Generates the trace deterministically from `seed`.
[[nodiscard]] ContactTrace generate_synthetic_haggle(
    const SyntheticHaggleParams& params, std::uint64_t seed);

}  // namespace epi::mobility
