// Reading and writing contact traces in a CRAWDAD-iMote-style text format.
//
// Format (one contact per line, '#' comments and blank lines ignored):
//
//     <node_a> <node_b> <start_seconds> <end_seconds>
//
// This matches the information content of the Cambridge Haggle iMote
// encounter logs the paper uses (device id, peer id, begin time, duration):
// if the real CRAWDAD trace is available it can be converted to this format
// with a one-line awk script and dropped in unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "mobility/contact_trace.hpp"

namespace epi::mobility {

/// Parses a trace from a stream. Throws TraceError with a line number on any
/// malformed line.
[[nodiscard]] ContactTrace read_trace(std::istream& in);

/// Parses a trace from a file. Throws TraceError if the file cannot be
/// opened.
[[nodiscard]] ContactTrace read_trace_file(const std::string& path);

/// Writes a trace (with a descriptive header comment) to a stream.
void write_trace(std::ostream& out, const ContactTrace& trace,
                 std::string_view comment = {});

/// Writes a trace to a file. Throws TraceError if the file cannot be opened.
void write_trace_file(const std::string& path, const ContactTrace& trace,
                      std::string_view comment = {});

}  // namespace epi::mobility
