// Controlled-interval scenarios (paper SV-B1, Fig. 14).
//
// "Both scenarios include 20 nodes, each of which has at most 20 encounters
//  with other nodes. The only difference between these two scenarios is that
//  the interval time between two successive encounters is set to a maximum of
//  400 and 2000 seconds respectively."
//
// These scenarios isolate the effect of the encounter interval on fixed-TTL
// epidemic: with TTL = 300 s and intervals of up to 2000 s, bundles expire
// between encounters and delivery ratio collapses — which the dynamic-TTL
// enhancement then repairs.
#pragma once

#include <cstdint>

#include "mobility/contact_trace.hpp"

namespace epi::mobility {

struct IntervalScenarioParams {
  std::uint32_t node_count = 20;
  std::uint32_t encounters_per_node = 20;
  /// Upper bound on the interval between a node's successive encounter
  /// starts: 400 or 2000 in the paper. What Fig. 14 isolates: with
  /// TTL = 300 s, a copy is forwarded before it expires with high
  /// probability when intervals are capped at 400 s, and rarely when they
  /// can reach 2000 s ("nodes delete bundles before they are transmitted").
  SimTime max_interval = 400.0;
  SimTime min_interval = 20.0;
  SimTime min_duration = 100.0;  ///< >= one bundle slot
  SimTime max_duration = 200.0;

  void validate() const;  ///< throws ConfigError on nonsense values
};

/// Generates the scenario deterministically from `seed`.
[[nodiscard]] ContactTrace generate_interval_scenario(
    const IntervalScenarioParams& params, std::uint64_t seed);

}  // namespace epi::mobility
