// ContactTrace: an ordered collection of contacts plus summary statistics.
//
// This is the single input the routing layer sees; whether the contacts came
// from a CRAWDAD trace file, the synthetic Haggle twin, the subscriber-point
// RWP model or a hand-written test fixture is invisible to the protocols —
// which is exactly the "unified framework" the paper argues for.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mobility/contact.hpp"

namespace epi::mobility {

/// Aggregate statistics of a trace, used by tests, reports and the dynamic
/// TTL analysis (paper SV-B1 relates delivery ratio to encounter intervals).
struct TraceStats {
  std::size_t contact_count = 0;
  std::uint32_t node_count = 0;     ///< max node id + 1
  SimTime first_start = 0.0;
  SimTime last_end = 0.0;
  double mean_duration = 0.0;
  double median_duration = 0.0;
  double p90_duration = 0.0;
  double mean_inter_contact = 0.0;  ///< mean gap between a node's successive
                                    ///< contact starts, averaged over nodes
  double median_inter_contact = 0.0;
  double p90_inter_contact = 0.0;
  double max_inter_contact = 0.0;
  double mean_contacts_per_node = 0.0;
  /// Total 100 s bundle slots the trace affords (sum of floor(duration/100)).
  std::uint64_t total_slots = 0;
};

class ContactTrace {
 public:
  ContactTrace() = default;

  /// Takes ownership of `contacts`; normalizes pairs, sorts by start time and
  /// validates invariants (throws TraceError on a != b or start >= end
  /// violations, or negative times).
  explicit ContactTrace(std::vector<Contact> contacts);

  [[nodiscard]] std::span<const Contact> contacts() const noexcept {
    return contacts_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return contacts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return contacts_.empty(); }
  [[nodiscard]] const Contact& operator[](std::size_t i) const {
    return contacts_[i];
  }

  /// Largest node id appearing in the trace plus one (0 for empty traces).
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return node_count_;
  }

  /// End time of the last contact (0 for empty traces).
  [[nodiscard]] SimTime end_time() const noexcept;

  /// Computes summary statistics in one pass.
  [[nodiscard]] TraceStats stats() const;

  /// All contacts involving node `n`, in time order.
  [[nodiscard]] std::vector<Contact> contacts_of(NodeId n) const;

  /// Restriction of the trace to contacts that *start* before `cutoff`.
  [[nodiscard]] ContactTrace truncated(SimTime cutoff) const;

 private:
  std::vector<Contact> contacts_;
  std::uint32_t node_count_ = 0;
};

}  // namespace epi::mobility
