#include "mobility/rwp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace epi::mobility {
namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point p, Point q) noexcept {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// One stay of one node at one subscriber point.
struct Visit {
  NodeId node;
  std::uint32_t point;
  SimTime arrive;
  SimTime depart;
};

}  // namespace

void RwpParams::validate() const {
  if (node_count < 2) throw ConfigError("rwp: need at least two nodes");
  if (horizon <= 0.0) throw ConfigError("rwp: horizon must be positive");
  if (subscriber_points < 2 || subscriber_points >= 100)
    throw ConfigError("rwp: subscriber_points must lie in [2, 99]");
  if (area_side_m <= 0.0) throw ConfigError("rwp: area must be positive");
  if (max_pause_s <= 0.0) throw ConfigError("rwp: max_pause must be positive");
  if (min_speed_mps <= 0.0 || max_speed_mps <= min_speed_mps)
    throw ConfigError("rwp: need 0 < min_speed < max_speed");
  if (max_contact_s <= 0.0 || min_contact_s < 0.0 ||
      min_contact_s > max_contact_s)
    throw ConfigError("rwp: invalid contact duration bounds");
}

ContactTrace generate_rwp(const RwpParams& params, std::uint64_t seed) {
  params.validate();

  // Subscriber points placed uniformly in the area; shared by all nodes.
  Rng layout_rng = Rng::derive(seed, 0x527770ULL /*'Rwp'*/, 0xA11);
  std::vector<Point> points(params.subscriber_points);
  for (auto& p : points) {
    p.x = layout_rng.uniform(0.0, params.area_side_m);
    p.y = layout_rng.uniform(0.0, params.area_side_m);
  }

  // Each node's itinerary: pause at a point, travel to another, repeat.
  std::vector<Visit> visits;
  for (NodeId n = 0; n < params.node_count; ++n) {
    Rng rng = Rng::derive(seed, 0x527770ULL, 0xB0D1E5, n);
    auto current =
        static_cast<std::uint32_t>(rng.below(params.subscriber_points));
    SimTime t = rng.uniform(0.0, params.max_pause_s);  // staggered start
    while (t < params.horizon) {
      const SimTime pause = rng.uniform(1.0, params.max_pause_s);
      const SimTime depart = std::min(t + pause, params.horizon);
      visits.push_back(Visit{n, current, t, depart});
      if (depart >= params.horizon) break;

      // Travel to a different random point; speed drawn per leg so derived
      // speeds stay inside (min_speed, max_speed].
      std::uint32_t next = current;
      while (next == current) {
        next = static_cast<std::uint32_t>(rng.below(params.subscriber_points));
      }
      const double dist = distance(points[current], points[next]);
      const double speed =
          rng.uniform(params.min_speed_mps, params.max_speed_mps);
      t = depart + dist / speed;
      current = next;
    }
  }

  // Contacts = pairwise co-presence intervals at the same point.
  // Sort visits by (point, arrive) and sweep within each point group.
  std::sort(visits.begin(), visits.end(), [](const Visit& u, const Visit& v) {
    if (u.point != v.point) return u.point < v.point;
    if (u.arrive != v.arrive) return u.arrive < v.arrive;
    return u.node < v.node;
  });

  std::vector<Contact> contacts;
  for (std::size_t i = 0; i < visits.size(); ++i) {
    for (std::size_t j = i + 1; j < visits.size(); ++j) {
      const Visit& u = visits[i];
      const Visit& v = visits[j];
      if (v.point != u.point || v.arrive >= u.depart) break;
      if (v.node == u.node) continue;
      const SimTime start = std::max(u.arrive, v.arrive);
      const SimTime end =
          std::min({u.depart, v.depart, start + params.max_contact_s});
      if (end - start >= params.min_contact_s) {
        contacts.push_back(Contact{u.node, v.node, start, end});
      }
    }
  }
  return ContactTrace(std::move(contacts));
}

}  // namespace epi::mobility
