#include "mobility/rwp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace epi::mobility {
namespace {

/// Overflow-safe sanity bound on the point count: the bucket tables are
/// O(points) words, so 2^20 points cost a few MiB of scratch — enough for a
/// metropolitan layout, small enough that a typo'd count fails fast instead
/// of attempting a multi-GiB allocation.
constexpr std::uint32_t kMaxSubscriberPoints = 1u << 20;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(Point p, Point q) noexcept {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// One stay of one node at one subscriber point.
struct Visit {
  NodeId node;
  std::uint32_t point;
  SimTime arrive;
  SimTime depart;
};

/// Subscriber-point layout, shared by every node. Hotspot points (the first
/// `hotspot_points` of the array) land in a central core square; the rest
/// cover the whole area. With hotspot_points == 0 the draw sequence is the
/// historical one: x then y, uniform over the full side, per point.
std::vector<Point> layout_points(const RwpParams& params, std::uint64_t seed) {
  Rng layout_rng = Rng::derive(seed, 0x527770ULL /*'Rwp'*/, 0xA11);
  std::vector<Point> points(params.subscriber_points);
  const double core_side = params.area_side_m * params.hotspot_side_frac;
  const double core_lo = 0.5 * (params.area_side_m - core_side);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (i < params.hotspot_points) {
      points[i].x = core_lo + layout_rng.uniform(0.0, core_side);
      points[i].y = core_lo + layout_rng.uniform(0.0, core_side);
    } else {
      points[i].x = layout_rng.uniform(0.0, params.area_side_m);
      points[i].y = layout_rng.uniform(0.0, params.area_side_m);
    }
  }
  return points;
}

/// Generates one node's itinerary visit by visit. Both generators run the
/// exact same cursor so their visit streams — and hence their contacts —
/// are bit-identical.
class ItineraryCursor {
 public:
  ItineraryCursor(const RwpParams& params, const std::vector<Point>& points,
                  std::uint64_t seed, NodeId node)
      : params_(&params), points_(&points), node_(node),
        rng_(Rng::derive(seed, 0x527770ULL, 0xB0D1E5, node)) {
    current_ =
        static_cast<std::uint32_t>(rng_.below(params.subscriber_points));
    // Commuter anchors: drawn once per node, only when the feature is on,
    // so bias == 0 leaves the historical draw sequence untouched.
    if (params.commuter_bias > 0.0) {
      home_ = static_cast<std::uint32_t>(rng_.below(params.subscriber_points));
      work_ = static_cast<std::uint32_t>(rng_.below(params.subscriber_points));
    }
    t_ = rng_.uniform(0.0, params.max_pause_s);  // staggered start
  }

  /// Produces the next visit; false once the horizon is reached.
  bool next(Visit& out) {
    if (done_ || t_ >= params_->horizon) return false;
    // Pause bounded by max_pause_s even when it is < 1 s (the historical
    // uniform(1.0, max_pause) inverted the range in that case and silently
    // exceeded the configured maximum).
    const SimTime pause = rng_.uniform(std::min(1.0, params_->max_pause_s),
                                       params_->max_pause_s);
    const SimTime depart = std::min(t_ + pause, params_->horizon);
    out = Visit{node_, current_, t_, depart};
    if (depart >= params_->horizon) {
      done_ = true;
      return true;
    }

    // Travel to a different point: a commuter leg heads for the node's
    // opposite anchor with probability `commuter_bias`, otherwise (or when
    // the anchor is where the node already stands) a uniform re-draw — the
    // historical rule. Speed drawn per leg so derived speeds stay inside
    // (min_speed, max_speed].
    std::uint32_t next_point = current_;
    if (params_->commuter_bias > 0.0 &&
        rng_.uniform() < params_->commuter_bias) {
      const std::uint32_t anchor = current_ == home_ ? work_ : home_;
      if (anchor != current_) next_point = anchor;
    }
    while (next_point == current_) {
      next_point =
          static_cast<std::uint32_t>(rng_.below(params_->subscriber_points));
    }
    const double dist = distance((*points_)[current_], (*points_)[next_point]);
    const double speed =
        rng_.uniform(params_->min_speed_mps, params_->max_speed_mps);
    t_ = depart + dist / speed;
    current_ = next_point;
    return true;
  }

 private:
  const RwpParams* params_;
  const std::vector<Point>* points_;
  NodeId node_;
  Rng rng_;
  std::uint32_t current_ = 0;
  std::uint32_t home_ = 0;
  std::uint32_t work_ = 0;
  SimTime t_ = 0.0;
  bool done_ = false;
};

/// Emits every pairwise co-presence contact of one point-bucket into `out`.
/// `bucket` must be sorted by (arrive, node); only pairs whose start falls
/// at or after `emit_from` are emitted (the windowed caller uses this to
/// dedupe pairs already produced by an earlier window; the reference sweep
/// passes 0). The iteration order and arithmetic mirror the historical
/// sweep exactly.
void sweep_bucket(const RwpParams& params, std::span<const Visit> bucket,
                  SimTime emit_from, std::vector<Contact>& out) {
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    for (std::size_t j = i + 1; j < bucket.size(); ++j) {
      const Visit& u = bucket[i];
      const Visit& v = bucket[j];
      if (v.arrive >= u.depart) break;
      if (v.node == u.node) continue;
      const SimTime start = std::max(u.arrive, v.arrive);
      if (start < emit_from) continue;
      const SimTime end =
          std::min({u.depart, v.depart, start + params.max_contact_s});
      if (end - start >= params.min_contact_s) {
        out.push_back(Contact{u.node, v.node, start, end}.normalized());
      }
    }
  }
}

bool visit_before(const Visit& u, const Visit& v) noexcept {
  if (u.arrive != v.arrive) return u.arrive < v.arrive;
  return u.node < v.node;
}

}  // namespace

void RwpParams::validate() const {
  if (node_count < 2) throw ConfigError("rwp: need at least two nodes");
  if (horizon <= 0.0) throw ConfigError("rwp: horizon must be positive");
  if (subscriber_points < 2 || subscriber_points > kMaxSubscriberPoints)
    throw ConfigError("rwp: subscriber_points must lie in [2, 2^20]");
  if (area_side_m <= 0.0) throw ConfigError("rwp: area must be positive");
  if (max_pause_s <= 0.0) throw ConfigError("rwp: max_pause must be positive");
  if (min_speed_mps <= 0.0 || max_speed_mps <= min_speed_mps)
    throw ConfigError("rwp: need 0 < min_speed < max_speed");
  if (max_contact_s <= 0.0 || min_contact_s < 0.0 ||
      min_contact_s > max_contact_s)
    throw ConfigError("rwp: invalid contact duration bounds");
  if (hotspot_points > subscriber_points)
    throw ConfigError("rwp: hotspot_points exceed subscriber_points");
  if (hotspot_points > 0 &&
      (hotspot_side_frac <= 0.0 || hotspot_side_frac > 1.0))
    throw ConfigError("rwp: hotspot_side_frac must lie in (0, 1]");
  if (commuter_bias < 0.0 || commuter_bias >= 1.0)
    throw ConfigError("rwp: commuter_bias must lie in [0, 1)");
}

// -- Streaming spatial-hash generator ---------------------------------------
//
// The subscriber-point model has a natural uniform grid: two nodes can only
// meet while visiting the *same* point, so the point id is the grid cell and
// co-presence matching is exact bucketing — no neighbour-cell probing. Time
// is processed in windows of a few pause-lengths; a window's live visits are
// bucketed by point with a counting sort, each bucket swept like the naive
// generator, and visits that outlive the window are carried into the next
// one. A pair is emitted by the window containing the later visit's arrival
// (start >= window start), so carried/carried pairs are never re-emitted.
struct RwpContactSource::Impl {
  RwpParams params;
  std::vector<Point> points;
  std::vector<ItineraryCursor> cursors;
  std::vector<Visit> pending;        // per-node lookahead visit (arrive >= w0_)
  std::vector<std::uint8_t> has_pending;
  std::vector<Visit> carried;        // visits straddling the window boundary
  std::vector<Visit> window_visits;  // this window's candidates (unsorted)
  std::vector<Visit> buckets;        // counting-sorted by point
  std::vector<std::uint32_t> bucket_starts;  // size points + 1
  std::vector<Contact> chunk;
  SimTime window_len = 0.0;
  SimTime w0 = 0.0;  // start of the next window to process
  std::size_t live = 0;  // cursors or pendings still producing

  Impl(const RwpParams& p, std::uint64_t seed)
      : params(p), points(layout_points(p, seed)) {
    // A visit lasts at most max(1, max_pause) seconds, so with windows four
    // pause-lengths long a visit straddles at most one boundary and the
    // carried set stays a small fraction of a window's visits.
    window_len = 4.0 * std::max(1.0, p.max_pause_s);
    cursors.reserve(p.node_count);
    pending.resize(p.node_count);
    has_pending.assign(p.node_count, 0);
    for (NodeId n = 0; n < p.node_count; ++n) {
      cursors.emplace_back(params, points, seed, n);
      if (cursors.back().next(pending[n])) {
        has_pending[n] = 1;
        ++live;
      }
    }
    bucket_starts.assign(static_cast<std::size_t>(p.subscriber_points) + 1, 0);
  }

  std::span<const Contact> produce() {
    chunk.clear();
    while (chunk.empty() && w0 < params.horizon && (live > 0 || !carried.empty())) {
      const SimTime w1 = std::min(w0 + window_len, params.horizon);

      // Candidates: carried visits (arrive < w0 < depart) plus every visit
      // arriving inside [w0, w1).
      window_visits = carried;
      for (NodeId n = 0; n < params.node_count; ++n) {
        while (has_pending[n] != 0 && pending[n].arrive < w1) {
          window_visits.push_back(pending[n]);
          if (!cursors[n].next(pending[n])) {
            has_pending[n] = 0;
            --live;
          }
        }
      }

      // Counting sort by point id, then order each bucket by (arrive, node)
      // — the same order the global (point, arrive, node) sort gave the
      // naive sweep within one point group.
      std::fill(bucket_starts.begin(), bucket_starts.end(), 0u);
      for (const Visit& v : window_visits) ++bucket_starts[v.point + 1];
      for (std::size_t p = 1; p < bucket_starts.size(); ++p) {
        bucket_starts[p] += bucket_starts[p - 1];
      }
      buckets.resize(window_visits.size());
      {
        std::vector<std::uint32_t> cursor(bucket_starts.begin(),
                                          bucket_starts.end() - 1);
        for (const Visit& v : window_visits) buckets[cursor[v.point]++] = v;
      }
      for (std::uint32_t p = 0; p < params.subscriber_points; ++p) {
        const auto lo = buckets.begin() + bucket_starts[p];
        const auto hi = buckets.begin() + bucket_starts[p + 1];
        if (hi - lo < 2) continue;
        std::sort(lo, hi, visit_before);
        sweep_bucket(params,
                     std::span<const Visit>(&*lo, static_cast<std::size_t>(hi - lo)),
                     w0, chunk);
      }
      std::sort(chunk.begin(), chunk.end(), ContactBefore{});

      // Carry visits outliving this window.
      carried.clear();
      for (const Visit& v : window_visits) {
        if (v.depart > w1) carried.push_back(v);
      }
      w0 = w1;
    }
    return chunk;
  }
};

RwpContactSource::RwpContactSource(const RwpParams& params, std::uint64_t seed) {
  params.validate();
  impl_ = std::make_unique<Impl>(params, seed);
}

RwpContactSource::~RwpContactSource() = default;
RwpContactSource::RwpContactSource(RwpContactSource&&) noexcept = default;
RwpContactSource& RwpContactSource::operator=(RwpContactSource&&) noexcept =
    default;

std::span<const Contact> RwpContactSource::next_chunk() {
  return impl_->produce();
}

std::uint32_t RwpContactSource::node_count() const {
  return impl_->params.node_count;
}

ContactTrace generate_rwp(const RwpParams& params, std::uint64_t seed) {
  RwpContactSource source(params, seed);
  std::vector<Contact> contacts;
  for (std::span<const Contact> chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    contacts.insert(contacts.end(), chunk.begin(), chunk.end());
  }
  return ContactTrace(std::move(contacts));
}

ContactTrace generate_rwp_reference(const RwpParams& params,
                                    std::uint64_t seed) {
  params.validate();
  const std::vector<Point> points = layout_points(params, seed);

  // Each node's itinerary: pause at a point, travel to another, repeat —
  // fully materialised.
  std::vector<Visit> visits;
  for (NodeId n = 0; n < params.node_count; ++n) {
    ItineraryCursor cursor(params, points, seed, n);
    Visit v{};
    while (cursor.next(v)) visits.push_back(v);
  }

  // Contacts = pairwise co-presence intervals at the same point.
  // Sort visits by (point, arrive) and sweep within each point group.
  std::sort(visits.begin(), visits.end(), [](const Visit& u, const Visit& v) {
    if (u.point != v.point) return u.point < v.point;
    return visit_before(u, v);
  });

  std::vector<Contact> contacts;
  std::size_t group = 0;
  while (group < visits.size()) {
    std::size_t end = group;
    while (end < visits.size() && visits[end].point == visits[group].point) {
      ++end;
    }
    sweep_bucket(params,
                 std::span<const Visit>(visits.data() + group, end - group),
                 0.0, contacts);
    group = end;
  }
  return ContactTrace(std::move(contacts));
}

}  // namespace epi::mobility
