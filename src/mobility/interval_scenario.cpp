#include "mobility/interval_scenario.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace epi::mobility {

void IntervalScenarioParams::validate() const {
  if (node_count < 2) throw ConfigError("interval: need at least two nodes");
  if (encounters_per_node == 0)
    throw ConfigError("interval: encounters_per_node must be >= 1");
  if (min_interval <= 0.0 || max_interval < min_interval)
    throw ConfigError("interval: need 0 < min_interval <= max_interval");
  if (min_duration <= 0.0 || max_duration < min_duration)
    throw ConfigError("interval: need 0 < min_duration <= max_duration");
}

ContactTrace generate_interval_scenario(const IntervalScenarioParams& params,
                                        std::uint64_t seed) {
  params.validate();
  Rng rng = Rng::derive(seed, 0x496e7456ULL /*'IntV'*/, params.node_count,
                        static_cast<std::uint64_t>(params.max_interval));

  const std::uint32_t n = params.node_count;
  std::vector<SimTime> last_start(n, 0.0);  // node's previous encounter start
  std::vector<SimTime> busy_until(n, 0.0);  // node's previous encounter end
  std::vector<std::uint32_t> budget(n, params.encounters_per_node);

  std::vector<Contact> contacts;
  // Repeatedly schedule an encounter for the node whose previous encounter
  // started earliest (and that still has budget), pairing it with a random
  // eligible peer. The controlled quantity is the gap between a node's
  // successive encounter *starts*, drawn uniformly from
  // [min_interval, max_interval]; the start is pushed later only if a
  // participant is still mid-encounter.
  for (;;) {
    NodeId best = kInvalidNode;
    for (NodeId i = 0; i < n; ++i) {
      if (budget[i] == 0) continue;
      if (best == kInvalidNode || last_start[i] < last_start[best]) best = i;
    }
    if (best == kInvalidNode) break;

    std::vector<NodeId> peers;
    peers.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
      if (i != best && budget[i] > 0) peers.push_back(i);
    }
    if (peers.empty()) break;  // only one node has budget left
    const NodeId peer = peers[rng.below(peers.size())];

    const SimTime gap = rng.uniform(params.min_interval, params.max_interval);
    const SimTime start =
        std::max({last_start[best] + gap, busy_until[best], busy_until[peer]});
    const SimTime duration =
        rng.uniform(params.min_duration, params.max_duration);
    contacts.push_back(Contact{best, peer, start, start + duration});

    last_start[best] = last_start[peer] = start;
    busy_until[best] = busy_until[peer] = start + duration;
    --budget[best];
    --budget[peer];
  }
  return ContactTrace(std::move(contacts));
}

}  // namespace epi::mobility
