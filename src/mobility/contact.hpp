// A contact: an interval during which two nodes can exchange bundles.
#pragma once

#include <algorithm>

#include "core/types.hpp"

namespace epi::mobility {

/// One pairwise encounter. Invariants: a != b, 0 <= start < end. The node
/// pair is stored in normalized order (a < b) so traces compare cleanly.
struct Contact {
  NodeId a = 0;
  NodeId b = 1;
  SimTime start = 0.0;
  SimTime end = 0.0;

  [[nodiscard]] SimTime duration() const noexcept { return end - start; }

  /// Number of bundle-transfer slots this contact affords given the paper's
  /// fixed per-bundle transmission time (100 s): floor(duration / slot).
  [[nodiscard]] std::uint32_t slots(SimTime slot_seconds) const noexcept {
    if (slot_seconds <= 0.0 || duration() < slot_seconds) return 0;
    return static_cast<std::uint32_t>(duration() / slot_seconds);
  }

  [[nodiscard]] bool involves(NodeId n) const noexcept {
    return a == n || b == n;
  }

  [[nodiscard]] NodeId peer_of(NodeId n) const noexcept {
    return n == a ? b : a;
  }

  /// Returns a copy with (a, b) swapped into ascending order.
  [[nodiscard]] Contact normalized() const noexcept {
    Contact c = *this;
    if (c.a > c.b) std::swap(c.a, c.b);
    return c;
  }

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// Strict weak order by (start, end, a, b); the processing order of the
/// simulator.
struct ContactBefore {
  bool operator()(const Contact& x, const Contact& y) const noexcept {
    if (x.start != y.start) return x.start < y.start;
    if (x.end != y.end) return x.end < y.end;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

}  // namespace epi::mobility
