#include "mobility/contact_trace.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "core/error.hpp"

namespace epi::mobility {

ContactTrace::ContactTrace(std::vector<Contact> contacts)
    : contacts_(std::move(contacts)) {
  for (auto& c : contacts_) {
    if (c.a == c.b) {
      throw TraceError("contact joins a node to itself (node " +
                       std::to_string(c.a) + ")");
    }
    if (c.start < 0.0 || c.end <= c.start) {
      throw TraceError("contact has a non-positive duration or negative time");
    }
    c = c.normalized();
    node_count_ = std::max(node_count_, std::max(c.a, c.b) + 1);
  }
  std::sort(contacts_.begin(), contacts_.end(), ContactBefore{});
}

SimTime ContactTrace::end_time() const noexcept {
  SimTime end = 0.0;
  for (const auto& c : contacts_) end = std::max(end, c.end);
  return end;
}

namespace {

/// q-quantile of a scratch vector (nearest-rank; mutates its argument).
double quantile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

}  // namespace

TraceStats ContactTrace::stats() const {
  TraceStats s;
  s.contact_count = contacts_.size();
  s.node_count = node_count_;
  if (contacts_.empty()) return s;

  s.first_start = contacts_.front().start;
  double duration_sum = 0.0;
  std::vector<double> durations;
  durations.reserve(contacts_.size());
  for (const auto& c : contacts_) {
    duration_sum += c.duration();
    durations.push_back(c.duration());
    s.last_end = std::max(s.last_end, c.end);
    s.total_slots += c.slots(defaults::kSlotSeconds);
  }
  s.mean_duration = duration_sum / static_cast<double>(contacts_.size());
  s.median_duration = quantile(durations, 0.5);
  s.p90_duration = quantile(durations, 0.9);

  // Per-node inter-contact gaps (between successive contact starts).
  std::map<NodeId, SimTime> last_start;
  double gap_sum = 0.0;
  std::vector<double> gaps;
  std::size_t gap_count = 0;
  std::map<NodeId, std::size_t> per_node_contacts;
  for (const auto& c : contacts_) {
    for (NodeId n : {c.a, c.b}) {
      ++per_node_contacts[n];
      if (auto it = last_start.find(n); it != last_start.end()) {
        const double gap = c.start - it->second;
        gap_sum += gap;
        gaps.push_back(gap);
        s.max_inter_contact = std::max(s.max_inter_contact, gap);
        ++gap_count;
      }
      last_start[n] = c.start;
    }
  }
  if (gap_count > 0) {
    s.mean_inter_contact = gap_sum / static_cast<double>(gap_count);
    s.median_inter_contact = quantile(gaps, 0.5);
    s.p90_inter_contact = quantile(gaps, 0.9);
  }
  if (!per_node_contacts.empty()) {
    double total = 0.0;
    for (const auto& [node, count] : per_node_contacts) {
      total += static_cast<double>(count);
    }
    s.mean_contacts_per_node =
        total / static_cast<double>(per_node_contacts.size());
  }
  return s;
}

std::vector<Contact> ContactTrace::contacts_of(NodeId n) const {
  std::vector<Contact> out;
  for (const auto& c : contacts_) {
    if (c.involves(n)) out.push_back(c);
  }
  return out;
}

ContactTrace ContactTrace::truncated(SimTime cutoff) const {
  std::vector<Contact> kept;
  for (const auto& c : contacts_) {
    if (c.start >= cutoff) continue;
    Contact clipped = c;
    // Clamp straddling contacts so the truncated trace really ends at the
    // cutoff; contacts whose clipped duration collapses to zero are dropped
    // (the ContactTrace constructor rejects end <= start).
    clipped.end = std::min(clipped.end, cutoff);
    if (clipped.end > clipped.start) kept.push_back(clipped);
  }
  return ContactTrace(std::move(kept));
}

}  // namespace epi::mobility
