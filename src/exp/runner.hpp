// Runner: executes one (scenario, protocol, load, replication) simulation.
//
// Per the paper's methodology (SIV): "a source node is chosen randomly, and
// transmits k bundles to a destination node ... we change the source and
// destination node after each run". The (source, destination) pair of a
// replication is derived from (master_seed, load, replication) only — NOT
// from the protocol — so different protocols face identical flows and the
// comparison is paired.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "fault/plan.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_source.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/trace_sink.hpp"

namespace epi::exp {

/// The consolidated protocol-environment option block: everything that
/// shapes how the routing protocol experiences the network beyond the
/// scenario itself — admission policy, per-node capacities, injected
/// impairments, and the summary-exchange codec. One validated block instead
/// of loose fields scattered over RunSpec; each member keeps its "default is
/// bit-identical to the legacy behavior and stays out of the store key"
/// discipline.
struct ProtocolOptions {
  /// Receiver-side admission policy when a buffer is full. The default
  /// (drop-tail) is the paper's implicit refuse-when-full behavior and
  /// keeps every pre-existing store key and RunSummary bit-identical; any
  /// other policy joins the store key (see store_key).
  EvictionPolicy eviction = EvictionPolicy::kDropTail;

  /// Heterogeneous per-node buffer capacities; empty (the default) means
  /// every node gets the uniform `buffer_capacity`. Joins the store key
  /// only when non-empty.
  std::vector<std::uint32_t> node_capacities;

  /// Impairments this run injects. The all-zero default injects nothing and
  /// keeps results bit-identical to a run without the fault layer; an active
  /// plan joins the run-store key (see fault::append_key).
  fault::FaultPlan fault;

  /// Summary-exchange codec (exact set vs Bloom filter). The exact default
  /// is bit-identical to the pre-codec engine; bloom mode joins the store
  /// key with its resolved m/n and k.
  SummaryCodecParams summary;

  /// Hard-errors (ConfigError) on any invalid member, regardless of which
  /// of them is active.
  void validate() const;
};

struct RunSpec {
  ProtocolParams protocol;
  std::uint32_t load = 10;
  std::uint32_t replication = 0;
  std::uint64_t master_seed = 42;
  std::uint32_t buffer_capacity = defaults::kBufferCapacity;
  SimTime slot_seconds = defaults::kSlotSeconds;
  SimTime horizon = defaults::kTraceHorizon;
  SimTime session_gap = 1'800.0;  ///< see SimulationConfig

  /// Eviction / capacities / faults / summary codec, as one validated block.
  ProtocolOptions options;

  /// Optional explicit multi-flow workload. Empty (the default) means the
  /// paper's single randomized flow: endpoints from pick_endpoints(), `load`
  /// bundles. Non-empty pins the flows verbatim (e.g. the large-N scenario's
  /// spread flows); `load` is then only a seed/reporting coordinate and
  /// should be set to the total load.
  std::vector<FlowSpec> flows;

  /// Optional event-level trace sink (non-owning; nullptr = tracing off).
  /// Records are stamped with this spec's replication index.
  obs::TraceSink* trace_sink = nullptr;

  /// When true, a per-run obs::StatsCollector observes the engine's event
  /// stream and the resulting StatsProfile is attached to the returned
  /// RunSummary (summary.stats). The collector chains to `trace_sink`, so
  /// event tracing and stats collection compose. Off (the default) costs
  /// nothing: the engine keeps its branch-on-nullptr discipline and results
  /// are bit-identical. Deliberately NOT part of the run-store key: the
  /// profile is derived observation, not a simulation input.
  bool collect_stats = false;
};

/// Derives the flow endpoints of a replication (deterministic, protocol
/// independent). `node_count` >= 2.
struct FlowEndpoints {
  NodeId source = 0;
  NodeId destination = 1;
};
[[nodiscard]] FlowEndpoints pick_endpoints(std::uint64_t master_seed,
                                           std::uint32_t load,
                                           std::uint32_t replication,
                                           std::uint32_t node_count);

/// Runs one simulation on the shared `trace` and returns its summary.
[[nodiscard]] metrics::RunSummary run_single(
    const RunSpec& spec, const mobility::ContactTrace& trace);

/// Streaming variant: contacts are pulled from `source` chunk by chunk, so
/// the run never materialises the full contact vector — the path city-scale
/// scenarios use. For identical contacts the summary is bit-identical to the
/// materialised overload (the engine's feed cursor is the same either way).
[[nodiscard]] metrics::RunSummary run_single(const RunSpec& spec,
                                             mobility::ContactSource& source);

struct ScenarioSpec;

/// Canonical run-store identity of one (scenario, run) pair: every field
/// that determines the RunSummary — the active mobility generator's full
/// parameter block, the protocol's full parameter block, the flow
/// coordinates and the engine constants — serialized at max_digits10, plus
/// store::kSchemaVersion. Two runs with equal keys produce bit-identical
/// summaries; any parameter change, however small, changes the key.
[[nodiscard]] std::string store_key(const ScenarioSpec& scenario,
                                    const RunSpec& run);

}  // namespace epi::exp
