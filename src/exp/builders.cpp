#include "exp/builders.hpp"

#include <cstdio>
#include <utility>

#include "core/error.hpp"

namespace epi::exp {
namespace {

[[noreturn]] void reject(const char* field, const char* requirement,
                         double got) {
  char msg[192];
  std::snprintf(msg, sizeof(msg), "%s must be %s, got %g", field, requirement,
                got);
  throw ConfigError(msg);
}

}  // namespace

RunSpecBuilder& RunSpecBuilder::protocol(const ProtocolParams& params) {
  spec_.protocol = params;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::scenario(const ScenarioSpec& spec) {
  spec_.horizon = spec.horizon();
  spec_.session_gap = spec.session_gap;
  spec_.options.node_capacities = spec.node_capacities;
  scenario_gap_ = true;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::load(std::uint32_t bundles) {
  spec_.load = bundles;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::replication(std::uint32_t index) {
  spec_.replication = index;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::master_seed(std::uint64_t seed) {
  spec_.master_seed = seed;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::buffer_capacity(std::uint32_t capacity) {
  spec_.buffer_capacity = capacity;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::slot_seconds(SimTime seconds) {
  spec_.slot_seconds = seconds;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::horizon(SimTime end) {
  spec_.horizon = end;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::session_gap(SimTime gap) {
  spec_.session_gap = gap;
  scenario_gap_ = false;  // explicit overrides lose the scenario sanction
  return *this;
}

RunSpecBuilder& RunSpecBuilder::eviction(EvictionPolicy policy) {
  spec_.options.eviction = policy;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::node_capacities(
    std::vector<std::uint32_t> capacities) {
  spec_.options.node_capacities = std::move(capacities);
  return *this;
}

RunSpecBuilder& RunSpecBuilder::flows(std::vector<FlowSpec> pinned) {
  spec_.flows = std::move(pinned);
  return *this;
}

RunSpecBuilder& RunSpecBuilder::fault(const fault::FaultPlan& plan) {
  spec_.options.fault = plan;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::summary(const SummaryCodecParams& params) {
  spec_.options.summary = params;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::options(ProtocolOptions block) {
  spec_.options = std::move(block);
  return *this;
}

RunSpecBuilder& RunSpecBuilder::trace_sink(obs::TraceSink* sink) {
  spec_.trace_sink = sink;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::collect_stats(bool enabled) {
  spec_.collect_stats = enabled;
  return *this;
}

RunSpec RunSpecBuilder::build() const {
  if (!(spec_.horizon > 0.0)) {
    reject("RunSpec.horizon", "positive (a zero horizon runs nothing)",
           spec_.horizon);
  }
  if (!(spec_.slot_seconds > 0.0)) {
    reject("RunSpec.slot_seconds", "positive", spec_.slot_seconds);
  }
  if (!(spec_.session_gap > 0.0)) {
    reject("RunSpec.session_gap", "positive", spec_.session_gap);
  }
  if (spec_.buffer_capacity == 0) {
    reject("RunSpec.buffer_capacity", "at least 1", 0.0);
  }
  if (!scenario_gap_ && spec_.session_gap < spec_.slot_seconds) {
    char msg[256];
    std::snprintf(
        msg, sizeof(msg),
        "RunSpec.session_gap (%g) is below slot_seconds (%g): a sub-slot gap "
        "splits one contact's slots into separate encounter sessions; derive "
        "it from a ScenarioSpec (RunSpecBuilder::scenario) if the scenario "
        "really uses isolated contacts",
        spec_.session_gap, spec_.slot_seconds);
    throw ConfigError(msg);
  }
  spec_.options.validate();
  return spec_;
}

ScenarioSpecBuilder::ScenarioSpecBuilder(ScenarioSpec base)
    : spec_(std::move(base)) {}

ScenarioSpecBuilder& ScenarioSpecBuilder::name(std::string label) {
  spec_.name = std::move(label);
  return *this;
}

ScenarioSpecBuilder& ScenarioSpecBuilder::haggle(
    const mobility::SyntheticHaggleParams& params) {
  spec_.kind = MobilityKind::kHaggleTrace;
  spec_.haggle = params;
  return *this;
}

ScenarioSpecBuilder& ScenarioSpecBuilder::rwp(
    const mobility::RwpParams& params) {
  spec_.kind = MobilityKind::kRwp;
  spec_.rwp = params;
  return *this;
}

ScenarioSpecBuilder& ScenarioSpecBuilder::interval(
    const mobility::IntervalScenarioParams& params) {
  spec_.kind = MobilityKind::kInterval;
  spec_.interval = params;
  return *this;
}

ScenarioSpecBuilder& ScenarioSpecBuilder::session_gap(SimTime gap) {
  spec_.session_gap = gap;
  return *this;
}

ScenarioSpecBuilder& ScenarioSpecBuilder::node_capacities(
    std::vector<std::uint32_t> capacities) {
  spec_.node_capacities = std::move(capacities);
  return *this;
}

ScenarioSpec ScenarioSpecBuilder::build() const {
  if (!(spec_.session_gap > 0.0)) {
    reject("ScenarioSpec.session_gap", "positive", spec_.session_gap);
  }
  if (spec_.node_count() < 2) {
    reject("ScenarioSpec node_count", "at least 2 (nothing can ever meet)",
           static_cast<double>(spec_.node_count()));
  }
  if (!(spec_.horizon() > 0.0)) {
    reject("ScenarioSpec horizon", "positive", spec_.horizon());
  }
  if (!spec_.node_capacities.empty()) {
    if (spec_.node_capacities.size() != spec_.node_count()) {
      reject("ScenarioSpec.node_capacities size",
             "equal to the generator's node count",
             static_cast<double>(spec_.node_capacities.size()));
    }
    for (const std::uint32_t c : spec_.node_capacities) {
      if (c == 0) {
        reject("ScenarioSpec.node_capacities entry", "at least 1", 0.0);
      }
    }
  }
  return spec_;
}

}  // namespace epi::exp
