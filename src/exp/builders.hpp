// Validating builders for experiment specs.
//
// RunSpec and ScenarioSpec are plain aggregates: cheap to copy, trivial to
// construct — and trivial to construct *wrong*. A zero horizon hangs a sweep
// at zero progress; a sub-slot session gap silently splits one contact's
// slots into separate dynamic-TTL encounter sessions; an out-of-range fault
// probability only explodes deep inside the engine. The builders here move
// those failures to construction time with actionable messages naming the
// offending field and value.
//
// The aggregates stay public (tests and internal plumbing still brace-init
// them freely); the builders are the supported path for code that assembles
// specs from user input — bench flags, the figure registry, sweep drivers.
#pragma once

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace epi::exp {

/// Builds a validated RunSpec. Throws ConfigError on: horizon <= 0,
/// slot_seconds <= 0, session_gap <= 0, buffer_capacity == 0, a
/// session_gap below slot_seconds (unless the gap came from a ScenarioSpec
/// via scenario(), which sanctions the paper's isolated-contact setups), or
/// an invalid fault plan.
class RunSpecBuilder {
 public:
  RunSpecBuilder& protocol(const ProtocolParams& params);

  /// Adopts the scenario's horizon, session gap and per-node capacities. A
  /// scenario-derived gap may be below slot_seconds: the controlled-interval
  /// scenarios (Fig. 14) deliberately use a sub-slot gap so each isolated
  /// contact counts as its own encounter session.
  RunSpecBuilder& scenario(const ScenarioSpec& spec);

  RunSpecBuilder& load(std::uint32_t bundles);
  RunSpecBuilder& replication(std::uint32_t index);
  RunSpecBuilder& master_seed(std::uint64_t seed);
  RunSpecBuilder& buffer_capacity(std::uint32_t capacity);
  RunSpecBuilder& slot_seconds(SimTime seconds);
  RunSpecBuilder& horizon(SimTime end);

  /// Explicit gap override; unlike scenario(), a value below slot_seconds
  /// is rejected at build() time.
  RunSpecBuilder& session_gap(SimTime gap);

  /// Receiver-side admission policy (see ProtocolOptions::eviction).
  RunSpecBuilder& eviction(EvictionPolicy policy);

  /// Heterogeneous per-node capacities; validated against nothing here (the
  /// trace decides node_count), but SimulationConfig::validate rejects a
  /// size mismatch at run time.
  RunSpecBuilder& node_capacities(std::vector<std::uint32_t> capacities);

  RunSpecBuilder& flows(std::vector<FlowSpec> pinned);
  RunSpecBuilder& fault(const fault::FaultPlan& plan);

  /// Summary-exchange codec parameters (see ProtocolOptions::summary);
  /// build() hard-errors on out-of-range filter_bits / hashes.
  RunSpecBuilder& summary(const SummaryCodecParams& params);

  /// Replaces the whole consolidated option block at once (eviction,
  /// capacities, fault plan, summary codec); the per-member setters above
  /// remain the fine-grained path and compose with it in call order.
  RunSpecBuilder& options(ProtocolOptions block);

  RunSpecBuilder& trace_sink(obs::TraceSink* sink);
  RunSpecBuilder& collect_stats(bool enabled);

  /// Validates and returns the spec. Throws ConfigError naming the
  /// offending field and value on any violation.
  [[nodiscard]] RunSpec build() const;

 private:
  RunSpec spec_;
  bool scenario_gap_ = false;  ///< gap came from scenario(): sub-slot OK
};

/// Builds a validated ScenarioSpec. Throws ConfigError on session_gap <= 0
/// or a generator parameter block with fewer than two nodes (nothing can
/// ever meet) or a non-positive horizon.
class ScenarioSpecBuilder {
 public:
  /// Starts from a canned scenario (trace_scenario() et al.); setters below
  /// then override individual fields.
  explicit ScenarioSpecBuilder(ScenarioSpec base = {});

  ScenarioSpecBuilder& name(std::string label);
  ScenarioSpecBuilder& haggle(const mobility::SyntheticHaggleParams& params);
  ScenarioSpecBuilder& rwp(const mobility::RwpParams& params);
  ScenarioSpecBuilder& interval(const mobility::IntervalScenarioParams& params);
  ScenarioSpecBuilder& session_gap(SimTime gap);

  /// Heterogeneous per-node capacities; build() rejects a size that does
  /// not match the generator's node count, or any zero entry.
  ScenarioSpecBuilder& node_capacities(std::vector<std::uint32_t> capacities);

  [[nodiscard]] ScenarioSpec build() const;

 private:
  ScenarioSpec spec_;
};

}  // namespace epi::exp
