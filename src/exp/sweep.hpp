// Sweep: the paper's experiment loop — load k from 5 to 50 in steps of 5,
// ten replications per point, averaged — parallelised over a thread pool.
// Determinism: every replication's RNG stream derives from (master_seed,
// load, replication), so results are identical for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/error.hpp"
#include "exp/scenario.hpp"
#include "fault/plan.hpp"
#include "metrics/summary.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/progress.hpp"
#include "obs/trace_sink.hpp"

namespace epi::store {
class RunStore;
}

namespace epi::exp {

/// Raised by run_sweep_on after a SIGINT drain (see store::SigintDrain):
/// every in-flight run has finished and been persisted to the run store;
/// runs that had not started were skipped and no aggregates were computed.
/// Rerunning the same command resumes from the store.
class SweepInterrupted : public Error {
 public:
  using Error::Error;
};

/// Load axis used by every figure: k in {5, 10, ..., 50}.
[[nodiscard]] std::vector<std::uint32_t> paper_loads();

struct SweepSpec {
  ScenarioSpec scenario;
  ProtocolParams protocol;
  std::vector<std::uint32_t> loads;  // empty -> paper_loads()
  std::uint32_t replications = 10;   // paper SIV
  std::uint64_t master_seed = 42;
  std::uint32_t buffer_capacity = defaults::kBufferCapacity;
  unsigned threads = 0;  ///< 0 = hardware concurrency

  /// Receiver-side admission policy applied to every run of the sweep (see
  /// RunSpec::eviction). Drop-tail (the default) is the paper's behavior.
  EvictionPolicy eviction = EvictionPolicy::kDropTail;

  /// Impairments applied to every run of the sweep (see fault::FaultPlan).
  /// All-zero (the default) injects nothing.
  fault::FaultPlan fault;

  /// Summary-exchange codec applied to every run of the sweep (see
  /// ProtocolOptions::summary). Exact (the default) is the paper's free
  /// advertisement.
  SummaryCodecParams summary;

  // --- observability (all non-owning, all optional) -------------------------
  obs::TraceSink* trace_sink = nullptr;        ///< per-event records
  obs::ProgressReporter* progress = nullptr;   ///< ticked per replication
  obs::ChromeTraceWriter* chrome = nullptr;    ///< one span per replication

  /// Attach a per-run StatsProfile to every RunSummary (see
  /// RunSpec::collect_stats). Like `trace_sink`, enabling this bypasses
  /// cache lookups: a cached summary carries no profile.
  bool collect_stats = false;

  /// Persistent result cache (non-owning, optional). When set, cached runs
  /// are served without simulation and fresh runs are appended as they
  /// complete. Cached and fresh summaries are bit-identical, so mixing them
  /// is invisible in every figure. Exception: while `trace_sink` is set or
  /// `collect_stats` is on the cache is not consulted (event traces and
  /// stats profiles require the events to happen), though fresh results are
  /// still appended.
  store::RunStore* store = nullptr;

  /// Partition pending runs with store-level work-unit claims, so N
  /// concurrent invocations of run_sweep_on against one store directory
  /// each execute a disjoint subset of the missing runs and serve the rest
  /// from the peers' appends as they land (see store/claim.hpp). Requires
  /// `store`; ignored when the cache is bypassed (`trace_sink` /
  /// `collect_stats`), because a peer's record cannot stand in for a run
  /// whose events or profile this invocation needs locally. Results are
  /// bit-identical with or without claims, for any worker count.
  bool claim_units = false;
};

struct SweepResult {
  std::string scenario_name;
  ProtocolParams protocol;
  std::vector<std::uint32_t> loads;
  /// points[i] aggregates the replications of loads[i].
  std::vector<metrics::LoadPoint> points;
  /// runs[i] holds the raw replications of loads[i].
  std::vector<std::vector<metrics::RunSummary>> runs;
};

/// Runs the full sweep (trace generated once, replications in parallel).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

/// Same, over an already-built contact trace (callers that share one trace
/// across protocols — every figure — use this to avoid regenerating it).
[[nodiscard]] SweepResult run_sweep_on(const SweepSpec& spec,
                                       const mobility::ContactTrace& trace);

/// Produces the sweep's contact trace on first use. The returned reference
/// must stay valid until the sweep finishes; the provider is invoked at
/// most once, and — the point — not at all when every run is served from
/// the store, which makes fully-warm figure regeneration skip mobility
/// generation entirely.
using TraceProvider = std::function<const mobility::ContactTrace&()>;

/// Same sweep, but the trace is built lazily via `provider` only if at
/// least one run actually needs simulating (store keys derive from the
/// scenario spec, never from trace contents).
[[nodiscard]] SweepResult run_sweep_on(const SweepSpec& spec,
                                       const TraceProvider& provider);

/// Convenience: run the same scenario/loads for several protocols (the shape
/// of every multi-series figure in the paper). The mobility trace is built
/// once and shared.
[[nodiscard]] std::vector<SweepResult> run_sweeps(
    const ScenarioSpec& scenario, const std::vector<ProtocolParams>& protocols,
    std::uint64_t master_seed = 42, std::uint32_t replications = 10,
    unsigned threads = 0);

}  // namespace epi::exp
