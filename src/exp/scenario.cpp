#include "exp/scenario.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"

namespace epi::exp {

std::uint32_t ScenarioSpec::node_count() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.node_count;
    case MobilityKind::kRwp:
      return rwp.node_count;
    case MobilityKind::kInterval:
      return interval.node_count;
  }
  return 0;
}

SimTime ScenarioSpec::horizon() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.horizon;
    case MobilityKind::kRwp:
      return rwp.horizon;
    case MobilityKind::kInterval: {
      // Upper bound on the last contact end: every encounter advances a
      // node's clock by at most (max gap + max duration), and each node has
      // a bounded encounter budget.
      const auto& p = interval;
      return static_cast<double>(p.encounters_per_node + 1) *
             (p.max_interval + p.max_duration) * 2.0;
    }
  }
  return 0.0;
}

ScenarioSpec trace_scenario() {
  ScenarioSpec spec;
  spec.name = "trace";
  spec.kind = MobilityKind::kHaggleTrace;
  return spec;  // defaults mirror the paper's iMote setup
}

ScenarioSpec rwp_scenario() {
  ScenarioSpec spec;
  spec.name = "rwp";
  spec.kind = MobilityKind::kRwp;
  return spec;  // defaults mirror the paper's subscriber-point setup
}

ScenarioSpec large_scenario(std::uint32_t node_count) {
  ScenarioSpec spec;
  spec.name = "large" + std::to_string(node_count);
  spec.kind = MobilityKind::kRwp;
  spec.rwp.node_count = node_count;
  if (node_count <= 512) {
    // The historical large-N shape, frozen: every pinned bench counter
    // (large128/large512) depends on these exact parameters.
    spec.rwp.subscriber_points = 96;
    spec.rwp.horizon = 100'000.0;  // contact volume scales ~N^2/points
  } else {
    // Beyond 512 nodes the 96-point grid melts down — every point hosts a
    // crowd and contact volume grows ~N^2/points. Scale point density with N
    // (constant ~8 nodes per point) and shorten the horizon so one run stays
    // bench-sized; per-point crowding then matches large512's.
    spec.rwp.subscriber_points = node_count / 8;
    spec.rwp.horizon = 10'000.0;
  }
  return spec;
}

std::vector<FlowSpec> large_flows(std::uint32_t node_count,
                                  std::uint32_t flow_count,
                                  std::uint32_t load_per_flow) {
  std::vector<FlowSpec> flows;
  flows.reserve(flow_count);
  for (std::uint32_t f = 0; f < flow_count; ++f) {
    FlowSpec flow;
    flow.source = static_cast<NodeId>(
        (static_cast<std::uint64_t>(f) * node_count) / flow_count);
    flow.destination = static_cast<NodeId>(node_count - 1 - flow.source);
    if (flow.destination == flow.source) {
      flow.destination = (flow.source + 1) % node_count;
    }
    flow.load = load_per_flow;
    flows.push_back(flow);
  }
  return flows;
}

ScenarioSpec city_scale(std::uint32_t node_count) {
  ScenarioSpec spec;
  spec.name = "city" + std::to_string(node_count);
  spec.kind = MobilityKind::kRwp;
  spec.rwp.node_count = node_count;
  // Constant ~16 nodes per point keeps per-point crowding city-like but
  // bounded as N grows; the 128-point floor keeps small instances from
  // degenerating into a handful of mega-points.
  spec.rwp.subscriber_points = std::max(128u, node_count / 16);
  // A quarter of the points sit in the central core (default side fraction
  // 0.25 -> 16x the outskirts' density), and commuters shuttle between a
  // home/work anchor pair 60% of the time.
  spec.rwp.hotspot_points = spec.rwp.subscriber_points / 4;
  spec.rwp.commuter_bias = 0.6;
  spec.rwp.horizon = 25'000.0;  // a few commute cycles; bench-sized
  return spec;
}

std::vector<FlowSpec> city_flows(std::uint32_t node_count,
                                 std::uint32_t flow_count,
                                 std::uint32_t load_per_flow) {
  // Many-to-few: sources spread across the node range as in large_flows,
  // destinations cycle through a small set of hub nodes.
  const std::uint32_t hub_count = std::min(4u, node_count);
  std::vector<FlowSpec> flows;
  flows.reserve(flow_count);
  for (std::uint32_t f = 0; f < flow_count; ++f) {
    FlowSpec flow;
    flow.source = static_cast<NodeId>(
        (static_cast<std::uint64_t>(f) * node_count) / flow_count);
    flow.destination = static_cast<NodeId>(f % hub_count);
    if (flow.destination == flow.source) {
      flow.destination = (flow.source + 1) % node_count;
    }
    flow.load = load_per_flow;
    flows.push_back(flow);
  }
  return flows;
}

ScenarioSpec interval_scenario(SimTime max_interval) {
  ScenarioSpec spec;
  spec.name = "interval" + std::to_string(static_cast<long>(max_interval));
  spec.kind = MobilityKind::kInterval;
  spec.interval.max_interval = max_interval;
  spec.session_gap = 25.0;  // isolated contacts: each is its own encounter
  return spec;
}

mobility::ContactTrace build_contact_trace(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  switch (spec.kind) {
    case MobilityKind::kHaggleTrace:
      return mobility::generate_synthetic_haggle(spec.haggle, seed);
    case MobilityKind::kRwp:
      return mobility::generate_rwp(spec.rwp, seed);
    case MobilityKind::kInterval:
      return mobility::generate_interval_scenario(spec.interval, seed);
  }
  throw ConfigError("unknown mobility kind");
}

namespace {

/// ContactSource facade over a generator that can only materialise: owns the
/// trace it wraps so the caller gets the uniform streaming interface even
/// where no incremental generator exists yet.
class MaterialisedSource final : public mobility::ContactSource {
 public:
  explicit MaterialisedSource(mobility::ContactTrace trace)
      : trace_(std::move(trace)), adapter_(trace_) {}

  std::span<const mobility::Contact> next_chunk() override {
    return adapter_.next_chunk();
  }
  [[nodiscard]] std::uint32_t node_count() const override {
    return adapter_.node_count();
  }

 private:
  mobility::ContactTrace trace_;
  mobility::TraceContactSource adapter_;
};

}  // namespace

std::unique_ptr<mobility::ContactSource> build_contact_source(
    const ScenarioSpec& spec, std::uint64_t seed) {
  if (spec.kind == MobilityKind::kRwp) {
    return std::make_unique<mobility::RwpContactSource>(spec.rwp, seed);
  }
  return std::make_unique<MaterialisedSource>(build_contact_trace(spec, seed));
}

}  // namespace epi::exp
