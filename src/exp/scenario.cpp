#include "exp/scenario.hpp"

#include "core/error.hpp"

namespace epi::exp {

std::uint32_t ScenarioSpec::node_count() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.node_count;
    case MobilityKind::kRwp:
      return rwp.node_count;
    case MobilityKind::kInterval:
      return interval.node_count;
  }
  return 0;
}

SimTime ScenarioSpec::horizon() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.horizon;
    case MobilityKind::kRwp:
      return rwp.horizon;
    case MobilityKind::kInterval: {
      // Upper bound on the last contact end: every encounter advances a
      // node's clock by at most (max gap + max duration), and each node has
      // a bounded encounter budget.
      const auto& p = interval;
      return static_cast<double>(p.encounters_per_node + 1) *
             (p.max_interval + p.max_duration) * 2.0;
    }
  }
  return 0.0;
}

ScenarioSpec trace_scenario() {
  ScenarioSpec spec;
  spec.name = "trace";
  spec.kind = MobilityKind::kHaggleTrace;
  return spec;  // defaults mirror the paper's iMote setup
}

ScenarioSpec rwp_scenario() {
  ScenarioSpec spec;
  spec.name = "rwp";
  spec.kind = MobilityKind::kRwp;
  return spec;  // defaults mirror the paper's subscriber-point setup
}

ScenarioSpec large_scenario(std::uint32_t node_count) {
  ScenarioSpec spec;
  spec.name = "large" + std::to_string(node_count);
  spec.kind = MobilityKind::kRwp;
  spec.rwp.node_count = node_count;
  spec.rwp.subscriber_points = 96;  // validator cap: "< 100" points per km^2
  spec.rwp.horizon = 100'000.0;     // bench-sized; contact volume scales ~N^2/points
  return spec;
}

std::vector<FlowSpec> large_flows(std::uint32_t node_count,
                                  std::uint32_t flow_count,
                                  std::uint32_t load_per_flow) {
  std::vector<FlowSpec> flows;
  flows.reserve(flow_count);
  for (std::uint32_t f = 0; f < flow_count; ++f) {
    FlowSpec flow;
    flow.source = static_cast<NodeId>(
        (static_cast<std::uint64_t>(f) * node_count) / flow_count);
    flow.destination = static_cast<NodeId>(node_count - 1 - flow.source);
    if (flow.destination == flow.source) {
      flow.destination = (flow.source + 1) % node_count;
    }
    flow.load = load_per_flow;
    flows.push_back(flow);
  }
  return flows;
}

ScenarioSpec interval_scenario(SimTime max_interval) {
  ScenarioSpec spec;
  spec.name = "interval" + std::to_string(static_cast<long>(max_interval));
  spec.kind = MobilityKind::kInterval;
  spec.interval.max_interval = max_interval;
  spec.session_gap = 25.0;  // isolated contacts: each is its own encounter
  return spec;
}

mobility::ContactTrace build_contact_trace(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  switch (spec.kind) {
    case MobilityKind::kHaggleTrace:
      return mobility::generate_synthetic_haggle(spec.haggle, seed);
    case MobilityKind::kRwp:
      return mobility::generate_rwp(spec.rwp, seed);
    case MobilityKind::kInterval:
      return mobility::generate_interval_scenario(spec.interval, seed);
  }
  throw ConfigError("unknown mobility kind");
}

}  // namespace epi::exp
