#include "exp/scenario.hpp"

#include "core/error.hpp"

namespace epi::exp {

std::uint32_t ScenarioSpec::node_count() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.node_count;
    case MobilityKind::kRwp:
      return rwp.node_count;
    case MobilityKind::kInterval:
      return interval.node_count;
  }
  return 0;
}

SimTime ScenarioSpec::horizon() const noexcept {
  switch (kind) {
    case MobilityKind::kHaggleTrace:
      return haggle.horizon;
    case MobilityKind::kRwp:
      return rwp.horizon;
    case MobilityKind::kInterval: {
      // Upper bound on the last contact end: every encounter advances a
      // node's clock by at most (max gap + max duration), and each node has
      // a bounded encounter budget.
      const auto& p = interval;
      return static_cast<double>(p.encounters_per_node + 1) *
             (p.max_interval + p.max_duration) * 2.0;
    }
  }
  return 0.0;
}

ScenarioSpec trace_scenario() {
  ScenarioSpec spec;
  spec.name = "trace";
  spec.kind = MobilityKind::kHaggleTrace;
  return spec;  // defaults mirror the paper's iMote setup
}

ScenarioSpec rwp_scenario() {
  ScenarioSpec spec;
  spec.name = "rwp";
  spec.kind = MobilityKind::kRwp;
  return spec;  // defaults mirror the paper's subscriber-point setup
}

ScenarioSpec interval_scenario(SimTime max_interval) {
  ScenarioSpec spec;
  spec.name = "interval" + std::to_string(static_cast<long>(max_interval));
  spec.kind = MobilityKind::kInterval;
  spec.interval.max_interval = max_interval;
  spec.session_gap = 25.0;  // isolated contacts: each is its own encounter
  return spec;
}

mobility::ContactTrace build_contact_trace(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  switch (spec.kind) {
    case MobilityKind::kHaggleTrace:
      return mobility::generate_synthetic_haggle(spec.haggle, seed);
    case MobilityKind::kRwp:
      return mobility::generate_rwp(spec.rwp, seed);
    case MobilityKind::kInterval:
      return mobility::generate_interval_scenario(spec.interval, seed);
  }
  throw ConfigError("unknown mobility kind");
}

}  // namespace epi::exp
