#include "exp/figures.hpp"

#include <iomanip>
#include <map>
#include <memory>
#include <ostream>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"
#include "obs/progress.hpp"

namespace epi::exp {

// --- protocol shorthands ------------------------------------------------------

ProtocolParams pq_params(double p, double q) {
  ProtocolParams params;
  params.kind = ProtocolKind::kPqEpidemic;
  params.p = p;
  params.q = q;
  return params;
}

ProtocolParams fixed_ttl_params(SimTime ttl) {
  ProtocolParams params;
  params.kind = ProtocolKind::kFixedTtl;
  params.fixed_ttl = ttl;
  return params;
}

ProtocolParams dynamic_ttl_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kDynamicTtl;
  return params;  // Algo 1 defaults: TTL = 2 x last interval
}

ProtocolParams ec_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kEncounterCount;
  return params;
}

ProtocolParams ec_ttl_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kEcTtl;
  return params;  // Algo 2 defaults: threshold 8, TTL 300 - n*100
}

ProtocolParams immunity_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kImmunity;
  return params;
}

ProtocolParams cumulative_immunity_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kCumulativeImmunity;
  return params;
}

// --- generic driver -----------------------------------------------------------

Figure run_figure(std::string id, std::string title, Metric metric,
                  std::vector<SeriesDef> series,
                  const FigureOptions& options) {
  Figure figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  figure.metric = metric;

  // Build each distinct mobility input once; all series over the same
  // scenario share the trace (paper SIV: one trace, many runs).
  std::map<std::string, mobility::ContactTrace> traces;
  for (const auto& def : series) {
    if (!traces.contains(def.scenario.name)) {
      traces.emplace(def.scenario.name,
                     build_contact_trace(def.scenario, options.master_seed));
    }
  }

  std::unique_ptr<obs::ProgressReporter> progress;
  if (options.progress) {
    progress = std::make_unique<obs::ProgressReporter>(
        figure.id,
        series.size() * paper_loads().size() * options.replications);
  }

  for (auto& def : series) {
    SweepSpec spec;
    spec.scenario = def.scenario;
    spec.protocol = def.protocol;
    spec.replications = options.replications;
    spec.master_seed = options.master_seed;
    spec.threads = options.threads;
    spec.trace_sink = options.trace_sink;
    spec.chrome = options.chrome;
    spec.progress = progress.get();
    spec.store = options.store;

    figure.labels.push_back(def.label);
    figure.results.push_back(
        run_sweep_on(spec, traces.at(def.scenario.name)));
  }
  return figure;
}

// --- figure definitions ---------------------------------------------------------

namespace {

/// SV-A comparison set: the four existing protocols at their best-delay
/// parameters (P = Q = 1, TTL = 300 s).
std::vector<SeriesDef> existing_protocols(const ScenarioSpec& scenario,
                                          bool with_immunity) {
  std::vector<SeriesDef> series{
      {"P-Q epidemic", scenario, pq_params(1.0, 1.0)},
      {"TTL=300", scenario, fixed_ttl_params()},
  };
  if (with_immunity) {
    series.push_back({"Immunity", scenario, immunity_params()});
  }
  series.push_back({"EC", scenario, ec_params()});
  return series;
}

/// SV-B trace comparison set: enhancements vs originals (Figs. 16, 18, 20).
std::vector<SeriesDef> enhanced_trace() {
  const ScenarioSpec trace = trace_scenario();
  return {
      {"dynamic TTL", trace, dynamic_ttl_params()},
      {"TTL=300", trace, fixed_ttl_params()},
      {"EC", trace, ec_params()},
      {"EC+TTL", trace, ec_ttl_params()},
      {"Immunity", trace, immunity_params()},
      {"CumImmunity", trace, cumulative_immunity_params()},
  };
}

/// SV-B RWP comparison set (Figs. 15, 17, 19): the TTL variants run on the
/// controlled-interval scenarios (the figures' legends pair each TTL series
/// with an interval time), the rest on the RWP model.
std::vector<SeriesDef> enhanced_rwp() {
  const ScenarioSpec rwp = rwp_scenario();
  const ScenarioSpec i400 = interval_scenario(400.0);
  const ScenarioSpec i2000 = interval_scenario(2000.0);
  return {
      {"dynTTL@2000", i2000, dynamic_ttl_params()},
      {"dynTTL@400", i400, dynamic_ttl_params()},
      {"TTL300@2000", i2000, fixed_ttl_params()},
      {"TTL300@400", i400, fixed_ttl_params()},
      {"EC", rwp, ec_params()},
      {"EC+TTL", rwp, ec_ttl_params()},
      {"Immunity", rwp, immunity_params()},
      {"CumImmunity", rwp, cumulative_immunity_params()},
  };
}

}  // namespace

Figure run_fig07(const FigureOptions& o) {
  return run_figure(
      "fig07", "Delay comparison of epidemic-based protocols (trace file)",
      Metric::kDelay, existing_protocols(trace_scenario(), false), o);
}

Figure run_fig08(const FigureOptions& o) {
  return run_figure("fig08",
                    "Delay comparison of epidemic-based protocols (RWP)",
                    Metric::kDelay, existing_protocols(rwp_scenario(), true),
                    o);
}

Figure run_fig09(const FigureOptions& o) {
  return run_figure("fig09",
                    "Average bundle duplication rate (trace file)",
                    Metric::kDuplicationRate,
                    existing_protocols(trace_scenario(), true), o);
}

Figure run_fig10(const FigureOptions& o) {
  return run_figure("fig10", "Average bundle duplication rate (RWP)",
                    Metric::kDuplicationRate,
                    existing_protocols(rwp_scenario(), true), o);
}

Figure run_fig11(const FigureOptions& o) {
  return run_figure("fig11", "Buffer occupancy level comparison (trace file)",
                    Metric::kBufferOccupancy,
                    existing_protocols(trace_scenario(), true), o);
}

Figure run_fig12(const FigureOptions& o) {
  return run_figure("fig12", "Average buffer occupancy level (RWP)",
                    Metric::kBufferOccupancy,
                    existing_protocols(rwp_scenario(), true), o);
}

Figure run_fig13(const FigureOptions& o) {
  const ScenarioSpec trace = trace_scenario();
  return run_figure("fig13",
                    "Delivery ratio comparison of epidemic with TTL and EC "
                    "(trace file)",
                    Metric::kDeliveryRatio,
                    {{"EC", trace, ec_params()},
                     {"TTL=300", trace, fixed_ttl_params()}},
                    o);
}

Figure run_fig14(const FigureOptions& o) {
  return run_figure(
      "fig14",
      "Delivery ratio of epidemic with TTL=300 under two encounter intervals",
      Metric::kDeliveryRatio,
      {{"interval=400", interval_scenario(400.0), fixed_ttl_params()},
       {"interval=2000", interval_scenario(2000.0), fixed_ttl_params()}},
      o);
}

Figure run_fig15(const FigureOptions& o) {
  return run_figure("fig15",
                    "Delivery ratio of modified and un-modified protocols "
                    "(RWP + interval scenarios)",
                    Metric::kDeliveryRatio, enhanced_rwp(), o);
}

Figure run_fig16(const FigureOptions& o) {
  return run_figure("fig16",
                    "Delivery ratio of modified and un-modified protocols "
                    "(trace file)",
                    Metric::kDeliveryRatio, enhanced_trace(), o);
}

Figure run_fig17(const FigureOptions& o) {
  return run_figure("fig17",
                    "Buffer occupancy level of modified and un-modified "
                    "protocols (RWP + interval scenarios)",
                    Metric::kBufferOccupancy, enhanced_rwp(), o);
}

Figure run_fig18(const FigureOptions& o) {
  return run_figure("fig18",
                    "Buffer occupancy level of modified and un-modified "
                    "protocols (trace file)",
                    Metric::kBufferOccupancy, enhanced_trace(), o);
}

Figure run_fig19(const FigureOptions& o) {
  return run_figure("fig19",
                    "Bundle duplication rate of modified and un-modified "
                    "protocols (RWP + interval scenarios)",
                    Metric::kDuplicationRate, enhanced_rwp(), o);
}

Figure run_fig20(const FigureOptions& o) {
  return run_figure("fig20",
                    "Bundle duplication rate of modified and un-modified "
                    "protocols (trace file)",
                    Metric::kDuplicationRate, enhanced_trace(), o);
}

Figure run_overhead(const FigureOptions& o, bool rwp) {
  const ScenarioSpec scenario = rwp ? rwp_scenario() : trace_scenario();
  return run_figure(
      std::string("overhead_") + scenario.name,
      "Signaling overhead: per-bundle vs cumulative immunity tables (" +
          scenario.name + ")",
      Metric::kControlRecords,
      {{"Immunity", scenario, immunity_params()},
       {"CumImmunity", scenario, cumulative_immunity_params()}},
      o);
}

std::vector<Table2Row> run_table2(const FigureOptions& o) {
  struct Def {
    std::string name;
    ProtocolParams params;
  };
  const std::vector<Def> defs{
      {"Epidemic with TTL", fixed_ttl_params()},
      {"Epidemic with Dynamic TTL", dynamic_ttl_params()},
      {"Epidemic with EC", ec_params()},
      {"Epidemic with EC+TTL", ec_ttl_params()},
      {"Epidemic with Immunity table", immunity_params()},
      {"Epidemic with Cumulative Immunity table",
       cumulative_immunity_params()},
  };

  std::vector<Table2Row> rows;
  rows.reserve(defs.size());
  for (const auto& scenario_is_rwp : {false, true}) {
    std::vector<SeriesDef> series;
    const ScenarioSpec scenario =
        scenario_is_rwp ? rwp_scenario() : trace_scenario();
    series.reserve(defs.size());
    for (const auto& def : defs) {
      series.push_back({def.name, scenario, def.params});
    }
    const Figure delivery = run_figure("table2", "tmp",
                                       Metric::kDeliveryRatio, series, o);
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (!scenario_is_rwp && rows.size() <= i) {
        rows.push_back(Table2Row{defs[i].name});
      }
      Table2Row& row = rows[i];
      // Recompute the three metrics from the same sweep results.
      const SweepResult& result = delivery.results[i];
      double d = 0.0;
      double b = 0.0;
      double dup = 0.0;
      for (const auto& point : result.points) {
        d += point.delivery_ratio.mean;
        b += point.buffer_occupancy.mean;
        dup += point.duplication_rate.mean;
      }
      const auto n = static_cast<double>(result.points.size());
      if (scenario_is_rwp) {
        row.delivery_rwp = 100.0 * d / n;
        row.buffer_rwp = 100.0 * b / n;
        row.duplication_rwp = 100.0 * dup / n;
      } else {
        row.delivery_trace = 100.0 * d / n;
        row.buffer_trace = 100.0 * b / n;
        row.duplication_trace = 100.0 * dup / n;
      }
    }
  }
  return rows;
}

void print_table2(std::ostream& out, const std::vector<Table2Row>& rows) {
  out << "== Table II: comparison of original and enhanced protocols ==\n";
  out << "(sweep-average values in percent)\n";
  out << std::left << std::setw(42) << "protocol" << std::right
      << std::setw(10) << "dlv RWP" << std::setw(10) << "dlv trc"
      << std::setw(10) << "buf RWP" << std::setw(10) << "buf trc"
      << std::setw(10) << "dup RWP" << std::setw(10) << "dup trc" << "\n";
  for (const auto& row : rows) {
    out << std::left << std::setw(42) << row.protocol << std::right
        << std::fixed << std::setprecision(1) << std::setw(10)
        << row.delivery_rwp << std::setw(10) << row.delivery_trace
        << std::setw(10) << row.buffer_rwp << std::setw(10)
        << row.buffer_trace << std::setw(10) << row.duplication_rwp
        << std::setw(10) << row.duplication_trace << "\n";
  }
  out.unsetf(std::ios::floatfield);
}

}  // namespace epi::exp
