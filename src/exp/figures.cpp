#include "exp/figures.hpp"

#include <charconv>
#include <cstdio>
#include <iomanip>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <utility>

#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"
#include "obs/progress.hpp"

namespace epi::exp {

// --- protocol shorthands ------------------------------------------------------

ProtocolParams pq_params(double p, double q) {
  ProtocolParams params;
  params.kind = ProtocolKind::kPqEpidemic;
  params.p = p;
  params.q = q;
  return params;
}

ProtocolParams fixed_ttl_params(SimTime ttl) {
  ProtocolParams params;
  params.kind = ProtocolKind::kFixedTtl;
  params.fixed_ttl = ttl;
  return params;
}

ProtocolParams dynamic_ttl_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kDynamicTtl;
  return params;  // Algo 1 defaults: TTL = 2 x last interval
}

ProtocolParams ec_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kEncounterCount;
  return params;
}

ProtocolParams ec_ttl_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kEcTtl;
  return params;  // Algo 2 defaults: threshold 8, TTL 300 - n*100
}

ProtocolParams immunity_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kImmunity;
  return params;
}

ProtocolParams cumulative_immunity_params() {
  ProtocolParams params;
  params.kind = ProtocolKind::kCumulativeImmunity;
  return params;
}

// --- generic driver -----------------------------------------------------------

namespace {

/// Builds the reporter a figure asked for: the live stderr line, the JSONL
/// mirror for the fleet driver, both, or neither. A mirror-only reporter
/// writes its terminal output into the bit bucket so N worker processes
/// never interleave carriage-return lines on one console.
std::unique_ptr<obs::ProgressReporter> make_progress(
    const FigureOptions& options, const std::string& id,
    std::size_t total_runs) {
  if (!options.progress && options.progress_path.empty()) return nullptr;
  auto reporter =
      options.progress
          ? std::make_unique<obs::ProgressReporter>(id, total_runs)
          : std::make_unique<obs::ProgressReporter>(id, total_runs,
                                                    obs::null_stream());
  if (!options.progress_path.empty()) {
    reporter->mirror_to(options.progress_path);
  }
  return reporter;
}

}  // namespace

Figure run_figure(std::string id, std::string title, Metric metric,
                  std::vector<SeriesDef> series,
                  const FigureOptions& options,
                  std::vector<std::uint32_t> loads) {
  Figure figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  figure.metric = metric;

  // Each distinct mobility input is built at most once, on first need, and
  // shared by every series over the same scenario (paper SIV: one trace,
  // many runs). Lazily, because a fully-warm store serves every run
  // without simulating — regeneration then skips mobility entirely, which
  // is most of the wall time of a cached figure.
  std::map<std::string, mobility::ContactTrace> traces;

  const std::size_t load_points =
      loads.empty() ? paper_loads().size() : loads.size();
  std::unique_ptr<obs::ProgressReporter> progress = make_progress(
      options, figure.id, series.size() * load_points * options.replications);

  for (auto& def : series) {
    SweepSpec spec;
    spec.scenario = def.scenario;
    spec.protocol = def.protocol;
    spec.loads = loads;
    spec.replications = options.replications;
    spec.master_seed = options.master_seed;
    spec.threads = options.threads;
    spec.trace_sink = options.trace_sink;
    spec.chrome = options.chrome;
    spec.progress = progress.get();
    spec.collect_stats = options.collect_stats;
    spec.store = options.store;
    spec.claim_units = options.claim_units;
    spec.eviction = options.eviction;
    spec.summary = options.summary;

    const ScenarioSpec& scenario = def.scenario;
    figure.labels.push_back(def.label);
    figure.results.push_back(run_sweep_on(
        spec,
        TraceProvider([&traces, &scenario, seed = options.master_seed]()
                          -> const mobility::ContactTrace& {
          auto it = traces.find(scenario.name);
          if (it == traces.end()) {
            it = traces
                     .emplace(scenario.name,
                              build_contact_trace(scenario, seed))
                     .first;
          }
          return it->second;
        })));
  }
  return figure;
}

// --- figure definitions ---------------------------------------------------------

namespace {

/// SV-A comparison set: the four existing protocols at their best-delay
/// parameters (P = Q = 1, TTL = 300 s).
std::vector<SeriesDef> existing_protocols(const ScenarioSpec& scenario,
                                          bool with_immunity) {
  std::vector<SeriesDef> series{
      {"P-Q epidemic", scenario, pq_params(1.0, 1.0)},
      {"TTL=300", scenario, fixed_ttl_params()},
  };
  if (with_immunity) {
    series.push_back({"Immunity", scenario, immunity_params()});
  }
  series.push_back({"EC", scenario, ec_params()});
  return series;
}

/// SV-B trace comparison set: enhancements vs originals (Figs. 16, 18, 20).
std::vector<SeriesDef> enhanced_trace() {
  const ScenarioSpec trace = trace_scenario();
  return {
      {"dynamic TTL", trace, dynamic_ttl_params()},
      {"TTL=300", trace, fixed_ttl_params()},
      {"EC", trace, ec_params()},
      {"EC+TTL", trace, ec_ttl_params()},
      {"Immunity", trace, immunity_params()},
      {"CumImmunity", trace, cumulative_immunity_params()},
  };
}

/// SV-B RWP comparison set (Figs. 15, 17, 19): the TTL variants run on the
/// controlled-interval scenarios (the figures' legends pair each TTL series
/// with an interval time), the rest on the RWP model.
std::vector<SeriesDef> enhanced_rwp() {
  const ScenarioSpec rwp = rwp_scenario();
  const ScenarioSpec i400 = interval_scenario(400.0);
  const ScenarioSpec i2000 = interval_scenario(2000.0);
  return {
      {"dynTTL@2000", i2000, dynamic_ttl_params()},
      {"dynTTL@400", i400, dynamic_ttl_params()},
      {"TTL300@2000", i2000, fixed_ttl_params()},
      {"TTL300@400", i400, fixed_ttl_params()},
      {"EC", rwp, ec_params()},
      {"EC+TTL", rwp, ec_ttl_params()},
      {"Immunity", rwp, immunity_params()},
      {"CumImmunity", rwp, cumulative_immunity_params()},
  };
}

}  // namespace

Figure run_fig07(const FigureOptions& o) {
  return run_figure(
      "fig07", "Delay comparison of epidemic-based protocols (trace file)",
      Metric::kDelay, existing_protocols(trace_scenario(), false), o);
}

Figure run_fig08(const FigureOptions& o) {
  return run_figure("fig08",
                    "Delay comparison of epidemic-based protocols (RWP)",
                    Metric::kDelay, existing_protocols(rwp_scenario(), true),
                    o);
}

Figure run_fig09(const FigureOptions& o) {
  return run_figure("fig09",
                    "Average bundle duplication rate (trace file)",
                    Metric::kDuplicationRate,
                    existing_protocols(trace_scenario(), true), o);
}

Figure run_fig10(const FigureOptions& o) {
  return run_figure("fig10", "Average bundle duplication rate (RWP)",
                    Metric::kDuplicationRate,
                    existing_protocols(rwp_scenario(), true), o);
}

Figure run_fig11(const FigureOptions& o) {
  return run_figure("fig11", "Buffer occupancy level comparison (trace file)",
                    Metric::kBufferOccupancy,
                    existing_protocols(trace_scenario(), true), o);
}

Figure run_fig12(const FigureOptions& o) {
  return run_figure("fig12", "Average buffer occupancy level (RWP)",
                    Metric::kBufferOccupancy,
                    existing_protocols(rwp_scenario(), true), o);
}

Figure run_fig13(const FigureOptions& o) {
  const ScenarioSpec trace = trace_scenario();
  return run_figure("fig13",
                    "Delivery ratio comparison of epidemic with TTL and EC "
                    "(trace file)",
                    Metric::kDeliveryRatio,
                    {{"EC", trace, ec_params()},
                     {"TTL=300", trace, fixed_ttl_params()}},
                    o);
}

Figure run_fig14(const FigureOptions& o) {
  return run_figure(
      "fig14",
      "Delivery ratio of epidemic with TTL=300 under two encounter intervals",
      Metric::kDeliveryRatio,
      {{"interval=400", interval_scenario(400.0), fixed_ttl_params()},
       {"interval=2000", interval_scenario(2000.0), fixed_ttl_params()}},
      o);
}

Figure run_fig15(const FigureOptions& o) {
  return run_figure("fig15",
                    "Delivery ratio of modified and un-modified protocols "
                    "(RWP + interval scenarios)",
                    Metric::kDeliveryRatio, enhanced_rwp(), o);
}

Figure run_fig16(const FigureOptions& o) {
  return run_figure("fig16",
                    "Delivery ratio of modified and un-modified protocols "
                    "(trace file)",
                    Metric::kDeliveryRatio, enhanced_trace(), o);
}

Figure run_fig17(const FigureOptions& o) {
  return run_figure("fig17",
                    "Buffer occupancy level of modified and un-modified "
                    "protocols (RWP + interval scenarios)",
                    Metric::kBufferOccupancy, enhanced_rwp(), o);
}

Figure run_fig18(const FigureOptions& o) {
  return run_figure("fig18",
                    "Buffer occupancy level of modified and un-modified "
                    "protocols (trace file)",
                    Metric::kBufferOccupancy, enhanced_trace(), o);
}

Figure run_fig19(const FigureOptions& o) {
  return run_figure("fig19",
                    "Bundle duplication rate of modified and un-modified "
                    "protocols (RWP + interval scenarios)",
                    Metric::kDuplicationRate, enhanced_rwp(), o);
}

Figure run_fig20(const FigureOptions& o) {
  return run_figure("fig20",
                    "Bundle duplication rate of modified and un-modified "
                    "protocols (trace file)",
                    Metric::kDuplicationRate, enhanced_trace(), o);
}

Figure run_overhead(const FigureOptions& o, bool rwp) {
  const ScenarioSpec scenario = rwp ? rwp_scenario() : trace_scenario();
  return run_figure(
      std::string("overhead_") + scenario.name,
      "Signaling overhead: per-bundle vs cumulative immunity tables (" +
          scenario.name + ")",
      Metric::kControlRecords,
      {{"Immunity", scenario, immunity_params()},
       {"CumImmunity", scenario, cumulative_immunity_params()}},
      o);
}

Figure run_stats(const FigureOptions& o, bool rwp) {
  const ScenarioSpec scenario = rwp ? rwp_scenario() : trace_scenario();
  // Force profile collection: the figure exists to produce StatsProfiles,
  // and a forced flag keeps cached summaries (which carry none) out.
  FigureOptions opts = o;
  opts.collect_stats = true;
  return run_figure(
      std::string("stats_") + scenario.name,
      "Encounter/occupancy/signaling statistics panels (" + scenario.name +
          ")",
      Metric::kBufferOccupancy,
      {{"P-Q epidemic", scenario, pq_params(1.0, 1.0)},
       {"TTL=300", scenario, fixed_ttl_params()},
       {"dynamic TTL", scenario, dynamic_ttl_params()},
       {"EC", scenario, ec_params()},
       {"EC+TTL", scenario, ec_ttl_params()},
       {"Immunity", scenario, immunity_params()},
       {"CumImmunity", scenario, cumulative_immunity_params()}},
      opts, {10, 25, 40});
}

// --- robustness sweeps ----------------------------------------------------------

namespace {

/// Loss axis of every robustness figure, in percent.
std::vector<std::uint32_t> loss_percents() {
  std::vector<std::uint32_t> percents;
  for (std::uint32_t p = 0; p <= 40; p += 5) percents.push_back(p);
  return percents;
}

const char* metric_slug(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDeliveryRatio: return "delivery";
    case Metric::kDelay: return "delay";
    case Metric::kDuplicationRate: return "dup";
    case Metric::kSignalingBytes: return "signaling";
    default: return "metric";
  }
}

}  // namespace

Figure run_robustness(const FigureOptions& o, Metric metric, bool rwp) {
  const ScenarioSpec scenario =
      ScenarioSpecBuilder(rwp ? rwp_scenario() : trace_scenario()).build();
  // Shared across every (protocol, loss point) sweep; built on first miss
  // only, so a warm store replays the whole figure without it.
  std::optional<mobility::ContactTrace> trace;
  const TraceProvider provider = [&]() -> const mobility::ContactTrace& {
    if (!trace.has_value()) {
      trace = build_contact_trace(scenario, o.master_seed);
    }
    return *trace;
  };

  // All protocol families: the SV-A originals plus every SV-B enhancement.
  struct Def {
    const char* label;
    ProtocolParams params;
  };
  const std::vector<Def> defs{
      {"P-Q epidemic", pq_params(1.0, 1.0)},
      {"TTL=300", fixed_ttl_params()},
      {"dynamic TTL", dynamic_ttl_params()},
      {"EC", ec_params()},
      {"EC+TTL", ec_ttl_params()},
      {"Immunity", immunity_params()},
      {"CumImmunity", cumulative_immunity_params()},
  };
  const std::vector<std::uint32_t> percents = loss_percents();

  Figure figure;
  figure.id = std::string("robust_") + scenario.name + "_" +
              metric_slug(metric);
  figure.title = std::string(metric_name(metric)) +
                 " vs transfer/control loss rate (" + scenario.name +
                 ", load " + std::to_string(kRobustnessLoad) + ")";
  figure.metric = metric;
  figure.axis = "loss %";

  std::unique_ptr<obs::ProgressReporter> progress = make_progress(
      o, figure.id, defs.size() * percents.size() * o.replications);

  for (const auto& def : defs) {
    // One sweep per loss point (the sweep machinery's axis is load, pinned
    // here to kRobustnessLoad); the points concatenate into one series whose
    // `loads` carry the loss percentages.
    SweepResult series;
    series.scenario_name = scenario.name;
    series.protocol = def.params;
    for (const std::uint32_t percent : percents) {
      SweepSpec spec;
      spec.scenario = scenario;
      spec.protocol = def.params;
      spec.loads = {kRobustnessLoad};
      spec.replications = o.replications;
      spec.master_seed = o.master_seed;
      spec.threads = o.threads;
      spec.fault = fault::FaultPlanBuilder()
                       .slot_loss(percent / 100.0)
                       .control_loss(percent / 100.0)
                       .build();
      spec.summary = o.summary;
      spec.trace_sink = o.trace_sink;
      spec.chrome = o.chrome;
      spec.progress = progress.get();
      spec.collect_stats = o.collect_stats;
      spec.store = o.store;
      spec.claim_units = o.claim_units;
      SweepResult point = run_sweep_on(spec, provider);
      series.loads.push_back(percent);
      series.points.push_back(std::move(point.points.front()));
      series.runs.push_back(std::move(point.runs.front()));
    }
    figure.labels.push_back(def.label);
    figure.results.push_back(std::move(series));
  }
  return figure;
}

// --- buffer-capacity sweeps -----------------------------------------------------

namespace {

/// Capacity axis of the buffer sweeps: below, at and above the paper's 10.
std::vector<std::uint32_t> capacity_points() { return {4, 6, 8, 10, 14, 20}; }

}  // namespace

Figure run_capacity(const FigureOptions& o, Metric metric) {
  const ScenarioSpec scenario = trace_scenario();
  std::optional<mobility::ContactTrace> trace;
  const TraceProvider provider = [&]() -> const mobility::ContactTrace& {
    if (!trace.has_value()) {
      trace = build_contact_trace(scenario, o.master_seed);
    }
    return *trace;
  };

  // Two families spanning the admission spectrum: P-Q has no rule of its
  // own (the configured policy decides everything), EC applies its
  // drop-largest-EC rule first and uses the policy only as fallback.
  struct Def {
    const char* family;
    ProtocolParams params;
  };
  const std::vector<Def> defs{
      {"P-Q", pq_params(1.0, 1.0)},
      {"EC", ec_params()},
  };
  const std::vector<EvictionPolicy> policies{
      EvictionPolicy::kDropTail,
      EvictionPolicy::kDropOldest,
      EvictionPolicy::kDropMostReplicated,
      EvictionPolicy::kDropLargestEc,
  };
  const std::vector<std::uint32_t> capacities = capacity_points();

  Figure figure;
  figure.id = std::string("capacity_") + scenario.name + "_" +
              metric_slug(metric);
  figure.title = std::string(metric_name(metric)) +
                 " vs uniform buffer capacity per eviction policy (" +
                 scenario.name + ", load " + std::to_string(kCapacityLoad) +
                 ")";
  figure.metric = metric;
  figure.axis = "capacity";

  std::unique_ptr<obs::ProgressReporter> progress = make_progress(
      o, figure.id,
      defs.size() * policies.size() * capacities.size() * o.replications);

  for (const auto& def : defs) {
    for (const EvictionPolicy policy : policies) {
      // One sweep per capacity point (the sweep machinery's axis is load,
      // pinned here to kCapacityLoad); the points concatenate into one
      // series whose `loads` carry the capacities.
      SweepResult series;
      series.scenario_name = scenario.name;
      series.protocol = def.params;
      for (const std::uint32_t capacity : capacities) {
        SweepSpec spec;
        spec.scenario = scenario;
        spec.protocol = def.params;
        spec.loads = {kCapacityLoad};
        spec.replications = o.replications;
        spec.master_seed = o.master_seed;
        spec.buffer_capacity = capacity;
        spec.threads = o.threads;
        spec.eviction = policy;
        spec.summary = o.summary;
        spec.trace_sink = o.trace_sink;
        spec.chrome = o.chrome;
        spec.progress = progress.get();
        spec.collect_stats = o.collect_stats;
        spec.store = o.store;
        spec.claim_units = o.claim_units;
        SweepResult point = run_sweep_on(spec, provider);
        series.loads.push_back(capacity);
        series.points.push_back(std::move(point.points.front()));
        series.runs.push_back(std::move(point.runs.front()));
      }
      figure.labels.push_back(std::string(def.family) + "/" +
                              std::string(to_string(policy)));
      figure.results.push_back(std::move(series));
    }
  }
  return figure;
}

// --- compact-advertisement sweeps -----------------------------------------------

namespace {

/// Filter-density axis of the Bloom sweeps, in bits per buffered bundle:
/// brutal (2), around the 1%-FP sweet spot (8..12), and diminishing (16).
std::vector<std::uint32_t> bloom_bits_points() { return {2, 4, 6, 8, 12, 16}; }

}  // namespace

Figure run_bloom(const FigureOptions& o, Metric metric, bool faulted) {
  const ScenarioSpec scenario = trace_scenario();
  std::optional<mobility::ContactTrace> trace;
  const TraceProvider provider = [&]() -> const mobility::ContactTrace& {
    if (!trace.has_value()) {
      trace = build_contact_trace(scenario, o.master_seed);
    }
    return *trace;
  };

  // Families spanning the exchange spectrum: P-Q (pure summary-vector
  // gossip), fixed TTL (expiry-limited), EC (count-limited), and both
  // immunity schemes (whose control plane rides the same contacts the
  // filters compress).
  struct Def {
    const char* label;
    ProtocolParams params;
  };
  const std::vector<Def> defs{
      {"P-Q epidemic", pq_params(1.0, 1.0)},
      {"TTL=300", fixed_ttl_params()},
      {"EC", ec_params()},
      {"Immunity", immunity_params()},
      {"CumImmunity", cumulative_immunity_params()},
  };
  const std::vector<std::uint32_t> bits = bloom_bits_points();

  Figure figure;
  figure.id = std::string(faulted ? "bloom_fault_" : "bloom_trace_") +
              metric_slug(metric);
  figure.title = std::string(metric_name(metric)) +
                 " vs Bloom advertisement bits/bundle (" + scenario.name +
                 ", load " + std::to_string(kBloomLoad) +
                 (faulted ? ", 10% slot+control loss)" : ")");
  figure.metric = metric;
  figure.axis = "bits/bundle";

  std::unique_ptr<obs::ProgressReporter> progress = make_progress(
      o, figure.id, defs.size() * bits.size() * o.replications);

  for (const auto& def : defs) {
    // One sweep per filter-density point (the sweep machinery's axis is
    // load, pinned here to kBloomLoad); the points concatenate into one
    // series whose `loads` carry the bits-per-bundle values.
    SweepResult series;
    series.scenario_name = scenario.name;
    series.protocol = def.params;
    for (const std::uint32_t bpb : bits) {
      SweepSpec spec;
      spec.scenario = scenario;
      spec.protocol = def.params;
      spec.loads = {kBloomLoad};
      spec.replications = o.replications;
      spec.master_seed = o.master_seed;
      spec.threads = o.threads;
      spec.summary.mode = SummaryMode::kBloom;
      spec.summary.filter_bits = bpb;
      if (faulted) {
        spec.fault = fault::FaultPlanBuilder()
                         .slot_loss(kBloomFaultLoss)
                         .control_loss(kBloomFaultLoss)
                         .build();
      }
      spec.trace_sink = o.trace_sink;
      spec.chrome = o.chrome;
      spec.progress = progress.get();
      spec.collect_stats = o.collect_stats;
      spec.store = o.store;
      spec.claim_units = o.claim_units;
      SweepResult point = run_sweep_on(spec, provider);
      series.loads.push_back(bpb);
      series.points.push_back(std::move(point.points.front()));
      series.runs.push_back(std::move(point.runs.front()));
    }
    figure.labels.push_back(def.label);
    figure.results.push_back(std::move(series));
  }
  return figure;
}

// --- city-scale sweeps ----------------------------------------------------------

Figure run_city(const FigureOptions& o, Metric metric) {
  // One shared city trace (run_figure materialises it once per scenario
  // name); 1024 nodes keeps a full replication sweep tractable while the
  // hotspot core and commuter bias still shape the contact process. The
  // protocol set mirrors the large-N bench suite: the families whose
  // exchange sets grow with node count, plus the pure baseline.
  const ScenarioSpec city = city_scale(1024);
  ProtocolParams pure;
  pure.kind = ProtocolKind::kPureEpidemic;
  std::vector<SeriesDef> series{
      {"pure epidemic", city, pure},
      {"P-Q epidemic", city, pq_params(1.0, 1.0)},
      {"Immunity", city, immunity_params()},
  };
  return run_figure(std::string("city_") + metric_slug(metric),
                    std::string(metric_name(metric)) +
                        " vs load at city scale (1024 nodes, hotspot core, "
                        "commuter flows)",
                    metric, std::move(series), o);
}

// --- figure registry ------------------------------------------------------------

namespace {

Figure robust(const FigureOptions& o, Metric metric, bool rwp) {
  return run_robustness(o, metric, rwp);
}

constexpr FigureSpec kRegistry[] = {
    {"fig07",
     "delay grows fastest for EC and slowest for P-Q as load rises (trace "
     "file)",
     run_fig07, true},
    {"fig08",
     "EC has the worst delay; fixed TTL sits above immunity; P-Q is best "
     "(RWP)",
     run_fig08, true},
    {"fig09",
     "EC has the lowest duplication rate; immunity exceeds 60%; P-Q is high "
     "(trace file)",
     run_fig09, true},
    {"fig10", "EC lowest, immunity/P-Q highest duplication rate (RWP)",
     run_fig10, true},
    {"fig11",
     "P-Q consumes the most buffer (>80% past load 10); immunity ~10% below "
     "it; TTL lowest (trace file)",
     run_fig11, true},
    {"fig12",
     "same ordering as the trace: P-Q highest, then EC, immunity, TTL lowest "
     "(RWP)",
     run_fig12, true},
    {"fig13",
     "both EC and TTL delivery ratios fall as load rises; TTL falls further "
     "(trace file)",
     run_fig13, true},
    {"fig14",
     "TTL=300 delivers markedly less when encounter intervals stretch from "
     "400 to 2000 s",
     run_fig14, true},
    {"fig15",
     "dynamic TTL beats fixed TTL at both interval settings; EC+TTL >= EC; "
     "immunity ~ cumulative (RWP + interval)",
     run_fig15, true},
    {"fig16",
     "dynamic TTL beats TTL=300 by >20%; EC+TTL clearly above EC at high "
     "load; immunity variants ~100% (trace file)",
     run_fig16, true},
    {"fig17",
     "dynamic TTL buffers more than fixed but stays moderate; EC+TTL below "
     "EC; cumulative below immunity (RWP + interval)",
     run_fig17, true},
    {"fig18",
     "EC highest buffer occupancy; EC+TTL ~20% below; cumulative below "
     "immunity; TTL lowest (trace file)",
     run_fig18, true},
    {"fig19",
     "dynamic TTL duplicates slightly more than fixed; EC+TTL >= EC past "
     "load 30; cumulative below immunity (RWP + interval)",
     run_fig19, true},
    {"fig20",
     "same orderings as RWP: enhancements duplicate slightly more, "
     "cumulative immunity less (trace file)",
     run_fig20, true},
    {"robust_trace_delivery",
     "TTL-limited variants lose delivery as loss rises; unlimited epidemic "
     "variants absorb loss through replication redundancy (trace file)",
     [](const FigureOptions& o) {
       return robust(o, Metric::kDeliveryRatio, false);
     },
     false},
    {"robust_trace_delay",
     "delay rises with loss for every protocol family (trace file)",
     [](const FigureOptions& o) { return robust(o, Metric::kDelay, false); },
     false},
    {"robust_trace_dup",
     "duplication shrinks with loss (fewer slots succeed), but immunity "
     "purging weakens faster as anti-packets are dropped (trace file)",
     [](const FigureOptions& o) {
       return robust(o, Metric::kDuplicationRate, false);
     },
     false},
    {"robust_rwp_delivery",
     "TTL-limited variants lose delivery as loss rises; unlimited epidemic "
     "variants absorb loss through replication redundancy (RWP)",
     [](const FigureOptions& o) {
       return robust(o, Metric::kDeliveryRatio, true);
     },
     false},
    {"robust_rwp_delay",
     "delay rises with loss for every protocol family (RWP)",
     [](const FigureOptions& o) { return robust(o, Metric::kDelay, true); },
     false},
    {"robust_rwp_dup",
     "duplication shrinks with loss (fewer slots succeed), but immunity "
     "purging weakens faster as anti-packets are dropped (RWP)",
     [](const FigureOptions& o) {
       return robust(o, Metric::kDuplicationRate, true);
     },
     false},
    {"stats_trace",
     "encounter/occupancy/signaling profiles for every protocol family at "
     "loads 10/25/40 (trace file); capture with --stats-out",
     [](const FigureOptions& o) { return run_stats(o, false); }, false},
    {"stats_rwp",
     "encounter/occupancy/signaling profiles for every protocol family at "
     "loads 10/25/40 (RWP); capture with --stats-out",
     [](const FigureOptions& o) { return run_stats(o, true); }, false},
    {"capacity_trace_delivery",
     "drop-tail holds 100% delivery at every capacity (refusal stalls the "
     "epidemic but never destroys a copy); drop-oldest/most-replicated cap "
     "delivery near capacity/load by churning away last copies; "
     "drop-largest-EC protects fresh copies and tracks drop-tail (trace "
     "file)",
     [](const FigureOptions& o) {
       return run_capacity(o, Metric::kDeliveryRatio);
     },
     false},
    {"capacity_trace_delay",
     "drop-tail completion delay falls as capacity grows; the "
     "copy-destroying policies never complete (horizon-charged); "
     "drop-largest-EC matches drop-tail from capacity 8 up (trace file)",
     [](const FigureOptions& o) { return run_capacity(o, Metric::kDelay); },
     false},
    {"bloom_trace_delivery",
     "replication redundancy absorbs false-positive suppression at the "
     "paper's 12-node scale: delivery holds at the exact codec's level even "
     "at 2 bits/bundle; the cost surfaces as delay and suppressed transfers "
     "instead (trace file, load 25)",
     [](const FigureOptions& o) {
       return run_bloom(o, Metric::kDeliveryRatio, false);
     },
     false},
    {"bloom_trace_delay",
     "delay falls toward the exact codec's as bits/bundle grow; sparse "
     "filters stall transfers behind false-positive suppressions (trace "
     "file, load 25)",
     [](const FigureOptions& o) { return run_bloom(o, Metric::kDelay, false); },
     false},
    {"bloom_trace_signaling",
     "advertisement bytes grow linearly in bits/bundle and stay well below "
     "the exact codec's 4 bytes/entry until ~16 bits; immunity families add "
     "control bytes on top (trace file, load 25)",
     [](const FigureOptions& o) {
       return run_bloom(o, Metric::kSignalingBytes, false);
     },
     false},
    {"bloom_fault_delivery",
     "even under 10% slot+control loss the unlimited epidemic families hold "
     "delivery at every filter density; TTL-limited delivery is loss-bound, "
     "not filter-bound (trace file, load 25)",
     [](const FigureOptions& o) {
       return run_bloom(o, Metric::kDeliveryRatio, true);
     },
     false},
    {"city_delivery",
     "pure epidemic is buffer-capped at city scale (delivery ~ capacity/"
     "load once load exceeds the 10-slot buffer); the anti-packet families "
     "purge delivered copies and hold full delivery throughout",
     [](const FigureOptions& o) {
       return run_city(o, Metric::kDeliveryRatio);
     },
     false},
    {"city_delay",
     "past load 10 pure epidemic saturates (incomplete runs are horizon-"
     "charged); the anti-packet families complete at every load with delay "
     "growing roughly linearly in load (city scale)",
     [](const FigureOptions& o) { return run_city(o, Metric::kDelay); },
     false},
};

}  // namespace

std::span<const FigureSpec> figure_registry() { return kRegistry; }

const FigureSpec* find_figure(std::string_view query) {
  // Bare figure numbers ("7", "07") normalize to the canonical "fig07".
  std::string canonical(query);
  if (!query.empty() &&
      query.find_first_not_of("0123456789") == std::string_view::npos) {
    unsigned number = 0;
    const auto [ptr, ec] =
        std::from_chars(query.data(), query.data() + query.size(), number);
    if (ec == std::errc{} && ptr == query.data() + query.size()) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "fig%02u", number);
      canonical = buf;
    }
  }
  for (const FigureSpec& spec : figure_registry()) {
    if (canonical == spec.id) return &spec;
  }
  return nullptr;
}

std::vector<Table2Row> run_table2(const FigureOptions& o) {
  struct Def {
    std::string name;
    ProtocolParams params;
  };
  const std::vector<Def> defs{
      {"Epidemic with TTL", fixed_ttl_params()},
      {"Epidemic with Dynamic TTL", dynamic_ttl_params()},
      {"Epidemic with EC", ec_params()},
      {"Epidemic with EC+TTL", ec_ttl_params()},
      {"Epidemic with Immunity table", immunity_params()},
      {"Epidemic with Cumulative Immunity table",
       cumulative_immunity_params()},
  };

  std::vector<Table2Row> rows;
  rows.reserve(defs.size());
  for (const auto& scenario_is_rwp : {false, true}) {
    std::vector<SeriesDef> series;
    const ScenarioSpec scenario =
        scenario_is_rwp ? rwp_scenario() : trace_scenario();
    series.reserve(defs.size());
    for (const auto& def : defs) {
      series.push_back({def.name, scenario, def.params});
    }
    const Figure delivery = run_figure("table2", "tmp",
                                       Metric::kDeliveryRatio, series, o);
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (!scenario_is_rwp && rows.size() <= i) {
        rows.push_back(Table2Row{defs[i].name});
      }
      Table2Row& row = rows[i];
      // Recompute the three metrics from the same sweep results.
      const SweepResult& result = delivery.results[i];
      double d = 0.0;
      double b = 0.0;
      double dup = 0.0;
      for (const auto& point : result.points) {
        d += point.delivery_ratio.mean;
        b += point.buffer_occupancy.mean;
        dup += point.duplication_rate.mean;
      }
      const auto n = static_cast<double>(result.points.size());
      if (scenario_is_rwp) {
        row.delivery_rwp = 100.0 * d / n;
        row.buffer_rwp = 100.0 * b / n;
        row.duplication_rwp = 100.0 * dup / n;
      } else {
        row.delivery_trace = 100.0 * d / n;
        row.buffer_trace = 100.0 * b / n;
        row.duplication_trace = 100.0 * dup / n;
      }
    }
  }
  return rows;
}

void print_table2(std::ostream& out, const std::vector<Table2Row>& rows) {
  out << "== Table II: comparison of original and enhanced protocols ==\n";
  out << "(sweep-average values in percent)\n";
  out << std::left << std::setw(42) << "protocol" << std::right
      << std::setw(10) << "dlv RWP" << std::setw(10) << "dlv trc"
      << std::setw(10) << "buf RWP" << std::setw(10) << "buf trc"
      << std::setw(10) << "dup RWP" << std::setw(10) << "dup trc" << "\n";
  for (const auto& row : rows) {
    out << std::left << std::setw(42) << row.protocol << std::right
        << std::fixed << std::setprecision(1) << std::setw(10)
        << row.delivery_rwp << std::setw(10) << row.delivery_trace
        << std::setw(10) << row.buffer_rwp << std::setw(10)
        << row.buffer_trace << std::setw(10) << row.duplication_rwp
        << std::setw(10) << row.duplication_trace << "\n";
  }
  out.unsetf(std::ios::floatfield);
}

}  // namespace epi::exp
