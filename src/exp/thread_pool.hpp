// A small fixed-size thread pool plus a deterministic parallel_for.
//
// Replications are independent simulations; parallel_for hands out indices
// through an atomic counter, and every job writes only its own slot of a
// pre-sized result vector, so results are bit-identical for any thread count
// (per-run RNG streams are derived from the run index, never from thread
// identity).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace epi::exp {

class ThreadPool {
 public:
  /// `threads` == 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a job. Jobs must not throw past their boundary; wait()
  /// rethrows the first captured exception.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished. Rethrows the first
  /// exception any job raised.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, count) across `threads` threads (0 = hardware).
/// fn must be safe to call concurrently for distinct i. Rethrows the first
/// exception.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Same, but fn also receives the worker index in [0, threads) that executes
/// the job — the lane identity observability consumers (the Chrome-trace
/// exporter) use to visualise how jobs packed onto threads. Job-to-worker
/// assignment is scheduling-dependent; results must not depend on it.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, unsigned)>& fn);

}  // namespace epi::exp
