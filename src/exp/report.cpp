#include "exp/report.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace epi::exp {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDelay:
      return "avg delay (s)";
    case Metric::kMeanBundleDelay:
      return "mean bundle delay (s)";
    case Metric::kDeliveryRatio:
      return "avg delivery ratio";
    case Metric::kBufferOccupancy:
      return "avg buffer occupancy level";
    case Metric::kDuplicationRate:
      return "avg bundle duplication rate";
    case Metric::kControlRecords:
      return "signaling records";
    case Metric::kTransmissions:
      return "bundle transmissions";
    case Metric::kSignalingBytes:
      return "signaling bytes";
  }
  return "?";
}

const metrics::Aggregate& metric_of(const metrics::LoadPoint& point,
                                    Metric metric) noexcept {
  switch (metric) {
    case Metric::kDelay:
      return point.delay;
    case Metric::kMeanBundleDelay:
      return point.mean_bundle_delay;
    case Metric::kDeliveryRatio:
      return point.delivery_ratio;
    case Metric::kBufferOccupancy:
      return point.buffer_occupancy;
    case Metric::kDuplicationRate:
      return point.duplication_rate;
    case Metric::kControlRecords:
      return point.control_records;
    case Metric::kTransmissions:
      return point.bundle_transmissions;
    case Metric::kSignalingBytes:
      return point.signaling_bytes;
  }
  return point.delivery_ratio;
}

double metric_value(const metrics::RunSummary& run, Metric metric) noexcept {
  switch (metric) {
    case Metric::kDelay:
      return run.completion_time;
    case Metric::kMeanBundleDelay:
      return run.mean_bundle_delay;
    case Metric::kDeliveryRatio:
      return run.delivery_ratio;
    case Metric::kBufferOccupancy:
      return run.buffer_occupancy;
    case Metric::kDuplicationRate:
      return run.duplication_rate;
    case Metric::kControlRecords:
      return static_cast<double>(run.control_records);
    case Metric::kTransmissions:
      return static_cast<double>(run.bundle_transmissions);
    case Metric::kSignalingBytes:
      return static_cast<double>(run.perf.signaling_bytes());
  }
  return 0.0;
}

double Figure::value(std::size_t s, std::size_t li) const {
  return metric_of(results.at(s).points.at(li), metric).mean;
}

double Figure::series_mean(std::size_t s) const {
  const auto& points = results.at(s).points;
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t li = 0; li < points.size(); ++li) sum += value(s, li);
  return sum / static_cast<double>(points.size());
}

std::size_t Figure::series(std::string_view label) const {
  for (std::size_t s = 0; s < labels.size(); ++s) {
    if (labels[s] == label) return s;
  }
  throw std::out_of_range("no series labelled '" + std::string(label) + "'");
}

namespace {

constexpr int kLoadWidth = 6;
constexpr int kColWidth = 14;

}  // namespace

void print_figure(std::ostream& out, const Figure& figure) {
  assert(figure.labels.size() == figure.results.size());
  out << "== " << figure.id << ": " << figure.title << " ==\n";
  out << "metric: " << metric_name(figure.metric) << "\n";

  out << std::left << std::setw(kLoadWidth) << figure.axis;
  for (const auto& label : figure.labels) {
    out << std::right << std::setw(kColWidth)
        << (label.size() > kColWidth - 1
                ? label.substr(0, kColWidth - 1)
                : label);
  }
  out << "\n";

  if (figure.results.empty()) return;
  const auto& loads = figure.results.front().loads;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    out << std::left << std::setw(kLoadWidth) << loads[li];
    for (std::size_t s = 0; s < figure.results.size(); ++s) {
      out << std::right << std::setw(kColWidth) << std::fixed
          << std::setprecision(4) << figure.value(s, li);
    }
    out << "\n";
  }
  out.unsetf(std::ios::floatfield);
}

void print_figure_csv(std::ostream& out, const Figure& figure) {
  out << figure.axis;
  for (const auto& label : figure.labels) out << ',' << label;
  out << '\n';
  if (figure.results.empty()) return;
  const auto& loads = figure.results.front().loads;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    out << loads[li];
    for (std::size_t s = 0; s < figure.results.size(); ++s) {
      out << ',' << figure.value(s, li);
    }
    out << '\n';
  }
}

namespace {

/// Minimal JSON string escaping (labels/titles contain no exotic characters,
/// but quotes and backslashes must never break the document).
void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void print_figure_json(std::ostream& out, const Figure& figure) {
  const auto old_precision = out.precision(10);
  out << "{\"id\":";
  json_string(out, figure.id);
  out << ",\"title\":";
  json_string(out, figure.title);
  out << ",\"metric\":";
  json_string(out, metric_name(figure.metric));
  // The axis joins the document only when it departs from the default, so
  // every pre-existing figure's JSON stays byte-identical.
  if (figure.axis != "load") {
    out << ",\"axis\":";
    json_string(out, figure.axis);
  }
  out << ",\"loads\":[";
  if (!figure.results.empty()) {
    const auto& loads = figure.results.front().loads;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      out << (li > 0 ? "," : "") << loads[li];
    }
  }
  out << "],\"series\":[";
  for (std::size_t s = 0; s < figure.results.size(); ++s) {
    const SweepResult& result = figure.results[s];
    out << (s > 0 ? "," : "") << "\n{\"label\":";
    json_string(out, figure.labels.at(s));
    out << ",\"protocol\":";
    json_string(out, to_string(result.protocol.kind));
    out << ",\"scenario\":";
    json_string(out, result.scenario_name);
    out << ",\"means\":[";
    for (std::size_t li = 0; li < result.points.size(); ++li) {
      out << (li > 0 ? "," : "") << figure.value(s, li);
    }
    out << "],\"raw\":[";
    for (std::size_t li = 0; li < result.runs.size(); ++li) {
      out << (li > 0 ? "," : "") << "[";
      const auto& batch = result.runs[li];
      for (std::size_t r = 0; r < batch.size(); ++r) {
        out << (r > 0 ? "," : "")
            << metric_value(batch[r], figure.metric);
      }
      out << "]";
    }
    out << "]}";
  }
  out << "\n]}\n";
  out.precision(old_precision);
}

}  // namespace epi::exp
