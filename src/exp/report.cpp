#include "exp/report.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace epi::exp {

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kDelay:
      return "avg delay (s)";
    case Metric::kMeanBundleDelay:
      return "mean bundle delay (s)";
    case Metric::kDeliveryRatio:
      return "avg delivery ratio";
    case Metric::kBufferOccupancy:
      return "avg buffer occupancy level";
    case Metric::kDuplicationRate:
      return "avg bundle duplication rate";
    case Metric::kControlRecords:
      return "signaling records";
    case Metric::kTransmissions:
      return "bundle transmissions";
  }
  return "?";
}

const metrics::Aggregate& metric_of(const metrics::LoadPoint& point,
                                    Metric metric) noexcept {
  switch (metric) {
    case Metric::kDelay:
      return point.delay;
    case Metric::kMeanBundleDelay:
      return point.mean_bundle_delay;
    case Metric::kDeliveryRatio:
      return point.delivery_ratio;
    case Metric::kBufferOccupancy:
      return point.buffer_occupancy;
    case Metric::kDuplicationRate:
      return point.duplication_rate;
    case Metric::kControlRecords:
      return point.control_records;
    case Metric::kTransmissions:
      return point.bundle_transmissions;
  }
  return point.delivery_ratio;
}

double Figure::value(std::size_t s, std::size_t li) const {
  return metric_of(results.at(s).points.at(li), metric).mean;
}

double Figure::series_mean(std::size_t s) const {
  const auto& points = results.at(s).points;
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t li = 0; li < points.size(); ++li) sum += value(s, li);
  return sum / static_cast<double>(points.size());
}

std::size_t Figure::series(std::string_view label) const {
  for (std::size_t s = 0; s < labels.size(); ++s) {
    if (labels[s] == label) return s;
  }
  throw std::out_of_range("no series labelled '" + std::string(label) + "'");
}

namespace {

constexpr int kLoadWidth = 6;
constexpr int kColWidth = 14;

}  // namespace

void print_figure(std::ostream& out, const Figure& figure) {
  assert(figure.labels.size() == figure.results.size());
  out << "== " << figure.id << ": " << figure.title << " ==\n";
  out << "metric: " << metric_name(figure.metric) << "\n";

  out << std::left << std::setw(kLoadWidth) << "load";
  for (const auto& label : figure.labels) {
    out << std::right << std::setw(kColWidth)
        << (label.size() > kColWidth - 1
                ? label.substr(0, kColWidth - 1)
                : label);
  }
  out << "\n";

  if (figure.results.empty()) return;
  const auto& loads = figure.results.front().loads;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    out << std::left << std::setw(kLoadWidth) << loads[li];
    for (std::size_t s = 0; s < figure.results.size(); ++s) {
      out << std::right << std::setw(kColWidth) << std::fixed
          << std::setprecision(4) << figure.value(s, li);
    }
    out << "\n";
  }
  out.unsetf(std::ios::floatfield);
}

void print_figure_csv(std::ostream& out, const Figure& figure) {
  out << "load";
  for (const auto& label : figure.labels) out << ',' << label;
  out << '\n';
  if (figure.results.empty()) return;
  const auto& loads = figure.results.front().loads;
  for (std::size_t li = 0; li < loads.size(); ++li) {
    out << loads[li];
    for (std::size_t s = 0; s < figure.results.size(); ++s) {
      out << ',' << figure.value(s, li);
    }
    out << '\n';
  }
}

}  // namespace epi::exp
