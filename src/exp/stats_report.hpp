// Stats report: JSON serialization of the StatsProfiles a stats-enabled
// figure attaches to its runs (`--stats-out=FILE` on any bench binary).
//
// Shape: one object per series, one entry per load point. Each entry holds
// the profile merged across replications (histograms, counters and
// occupancy integrals are additive) plus per-replication quantile arrays —
// P^2 estimators cannot merge, so the per-rep scalars are reported raw and
// the merged profile's own quantile block is omitted (runs > 1).
//
// Determinism: numbers print with max_digits10 (%.17g) like the run store,
// so two identical-seed captures are byte-identical files.
#pragma once

#include <iosfwd>

namespace epi::exp {

struct Figure;

/// Writes the stats-profile document for `figure`. Runs whose summaries
/// carry no profile (stats collection was off, or a cached summary slipped
/// in) are skipped; a series with no profiled runs at a load point emits an
/// empty entry so the load axis stays aligned.
void write_stats_json(std::ostream& out, const Figure& figure);

}  // namespace epi::exp
