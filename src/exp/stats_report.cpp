#include "exp/stats_report.hpp"

#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "exp/report.hpp"
#include "obs/stats.hpp"

namespace epi::exp {
namespace {

/// max_digits10 round-trip formatting, byte-identical to the run store and
/// obs::StatsProfile::write_json.
void jnum(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_stats_json(std::ostream& out, const Figure& figure) {
  out << "{\"id\":";
  json_string(out, figure.id);
  out << ",\"series\":[";
  for (std::size_t s = 0; s < figure.results.size(); ++s) {
    const SweepResult& result = figure.results[s];
    out << (s > 0 ? "," : "") << "\n{\"label\":";
    json_string(out, figure.labels.at(s));
    out << ",\"protocol\":";
    json_string(out, to_string(result.protocol.kind));
    out << ",\"scenario\":";
    json_string(out, result.scenario_name);
    out << ",\"points\":[";
    for (std::size_t li = 0; li < result.runs.size(); ++li) {
      out << (li > 0 ? "," : "") << "\n{\"load\":" << result.loads.at(li);
      // Merge the replications' profiles; collect the unmergeable P^2
      // quantile scalars per replication as they fly by.
      const obs::StatsProfile* first = nullptr;
      obs::StatsProfile merged;
      std::size_t profiled = 0;
      std::vector<double> p50, p90, p99, dur50;
      for (const auto& run : result.runs[li]) {
        if (run.stats == nullptr) continue;
        const obs::StatsProfile& profile = *run.stats;
        if (first == nullptr) {
          first = &profile;
          merged = profile;
        } else {
          merged.merge(profile);
        }
        ++profiled;
        p50.push_back(profile.intercontact_p50);
        p90.push_back(profile.intercontact_p90);
        p99.push_back(profile.intercontact_p99);
        dur50.push_back(profile.contact_duration_p50);
      }
      if (profiled == 0) {
        out << "}";
        continue;
      }
      out << ",\"profile\":";
      merged.write_json(out);
      const auto quantile_array = [&](const char* name,
                                      const std::vector<double>& values,
                                      bool first_member) {
        out << (first_member ? "" : ",") << '"' << name << "\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (i > 0) out << ',';
          jnum(out, values[i]);
        }
        out << ']';
      };
      out << ",\"per_rep\":{";
      quantile_array("intercontact_p50", p50, true);
      quantile_array("intercontact_p90", p90, false);
      quantile_array("intercontact_p99", p99, false);
      quantile_array("contact_duration_p50", dur50, false);
      out << "}}";
    }
    out << "]}";
  }
  out << "\n]}\n";
}

}  // namespace epi::exp
