#include "exp/runner.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace epi::exp {

FlowEndpoints pick_endpoints(std::uint64_t master_seed, std::uint32_t load,
                             std::uint32_t replication,
                             std::uint32_t node_count) {
  Rng rng = Rng::derive(master_seed, 0x464c4f57ULL /*'FLOW'*/, load,
                        replication);
  FlowEndpoints flow;
  flow.source = static_cast<NodeId>(rng.below(node_count));
  flow.destination = static_cast<NodeId>(rng.below(node_count - 1));
  if (flow.destination >= flow.source) ++flow.destination;
  return flow;
}

metrics::RunSummary run_single(const RunSpec& spec,
                               const mobility::ContactTrace& trace) {
  SimulationConfig config;
  config.node_count = std::max(trace.node_count(), 2u);
  config.buffer_capacity = spec.buffer_capacity;
  config.slot_seconds = spec.slot_seconds;
  config.horizon = spec.horizon;
  config.load = spec.load;
  const FlowEndpoints flow = pick_endpoints(
      spec.master_seed, spec.load, spec.replication, config.node_count);
  config.source = flow.source;
  config.destination = flow.destination;
  config.encounter_session_gap = spec.session_gap;
  config.protocol = spec.protocol;

  // The engine seed mixes in the protocol kind so probabilistic protocols
  // do not share decision streams with the flow-endpoint derivation.
  const std::uint64_t run_seed = SplitMix64(spec.master_seed ^
                                            (std::uint64_t{spec.load} << 32) ^
                                            spec.replication)
                                     .next();
  routing::Engine engine(config, trace, routing::make_protocol(spec.protocol),
                         run_seed);
  engine.set_trace_sink(spec.trace_sink, spec.replication);
  return engine.run();
}

}  // namespace epi::exp
