#include "exp/runner.hpp"

#include <algorithm>
#include <cstdio>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "exp/scenario.hpp"
#include "obs/stats.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "store/fingerprint.hpp"

namespace epi::exp {

void ProtocolOptions::validate() const {
  fault.validate();
  summary.validate();
  for (const std::uint32_t c : node_capacities) {
    if (c == 0) {
      throw ConfigError("ProtocolOptions.node_capacities entries must be >= 1");
    }
  }
}

FlowEndpoints pick_endpoints(std::uint64_t master_seed, std::uint32_t load,
                             std::uint32_t replication,
                             std::uint32_t node_count) {
  Rng rng = Rng::derive(master_seed, 0x464c4f57ULL /*'FLOW'*/, load,
                        replication);
  FlowEndpoints flow;
  flow.source = static_cast<NodeId>(rng.below(node_count));
  flow.destination = static_cast<NodeId>(rng.below(node_count - 1));
  if (flow.destination >= flow.source) ++flow.destination;
  return flow;
}

namespace {

/// Shared config derivation of both run_single overloads. `node_count` is
/// the trace's (or stream's) declared max node id + 1, floored at 2.
SimulationConfig make_run_config(const RunSpec& spec,
                                 std::uint32_t node_count) {
  SimulationConfig config;
  config.node_count = std::max(node_count, 2u);
  config.buffer_capacity = spec.buffer_capacity;
  config.node_capacities = spec.options.node_capacities;
  config.eviction_policy = spec.options.eviction;
  config.summary = spec.options.summary;
  config.slot_seconds = spec.slot_seconds;
  config.horizon = spec.horizon;
  config.load = spec.load;
  if (spec.flows.empty()) {
    const FlowEndpoints flow = pick_endpoints(
        spec.master_seed, spec.load, spec.replication, config.node_count);
    config.source = flow.source;
    config.destination = flow.destination;
  } else {
    config.flows = spec.flows;  // pinned workload; endpoints not randomized
  }
  config.encounter_session_gap = spec.session_gap;
  config.protocol = spec.protocol;
  return config;
}

/// The engine seed mixes in the protocol kind so probabilistic protocols
/// do not share decision streams with the flow-endpoint derivation.
std::uint64_t derive_run_seed(const RunSpec& spec) {
  return SplitMix64(spec.master_seed ^ (std::uint64_t{spec.load} << 32) ^
                    spec.replication)
      .next();
}

/// Wires sinks and faults onto a constructed engine, executes it, and
/// attaches the optional stats profile — identical for both contact inputs.
metrics::RunSummary execute_run(const RunSpec& spec,
                                const SimulationConfig& config,
                                routing::Engine& engine) {
  // Stats collection interposes a per-run collector between the engine and
  // the (optional, possibly shared) trace sink; the engine still sees one
  // TraceSink*, so its hook points are unchanged either way.
  std::unique_ptr<obs::StatsCollector> stats;
  if (spec.collect_stats) {
    obs::StatsCollector::Config stats_config;
    stats_config.node_count = config.node_count;
    stats_config.buffer_capacity = config.buffer_capacity;
    stats_config.node_capacities = config.node_capacities;
    stats_config.slot_seconds = config.slot_seconds;
    stats = std::make_unique<obs::StatsCollector>(stats_config,
                                                  spec.trace_sink);
    engine.set_trace_sink(stats.get(), spec.replication);
  } else {
    engine.set_trace_sink(spec.trace_sink, spec.replication);
  }
  if (spec.options.fault.any()) {
    spec.options.fault.validate();
    // Fault streams derive from the run coordinates (not run_seed) so they
    // are independent of the engine/protocol streams and identical at any
    // thread count or sweep order.
    engine.set_fault_injector(std::make_unique<fault::Injector>(
        spec.options.fault, spec.master_seed, spec.load, spec.replication));
  }
  metrics::RunSummary summary = engine.run();
  if (stats != nullptr) {
    stats->finish(summary.end_time);
    summary.stats = std::make_shared<const obs::StatsProfile>(
        stats->take_profile());
  }
  return summary;
}

}  // namespace

metrics::RunSummary run_single(const RunSpec& spec,
                               const mobility::ContactTrace& trace) {
  const SimulationConfig config = make_run_config(spec, trace.node_count());
  routing::Engine engine(config, trace, routing::make_protocol(spec.protocol),
                         derive_run_seed(spec));
  return execute_run(spec, config, engine);
}

metrics::RunSummary run_single(const RunSpec& spec,
                               mobility::ContactSource& source) {
  const SimulationConfig config = make_run_config(spec, source.node_count());
  routing::Engine engine(config, source, routing::make_protocol(spec.protocol),
                         derive_run_seed(spec));
  return execute_run(spec, config, engine);
}

namespace {

// max_digits10 rendering: the key must distinguish parameter values that
// differ by a single ULP, because the simulation does.
void kv(std::string& out, const char* name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, value);
  out += buf;
}

void kv(std::string& out, const char* name, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%llu;", name,
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string store_key(const ScenarioSpec& scenario, const RunSpec& run) {
  std::string key = "schema=" + std::to_string(store::kSchemaVersion);

  // Scenario: the active generator's full parameter block. The cosmetic
  // `name` is deliberately excluded — the trace depends only on (kind,
  // params, master_seed).
  key += "|scenario=";
  switch (scenario.kind) {
    case MobilityKind::kHaggleTrace: {
      const auto& p = scenario.haggle;
      key += "haggle{";
      kv(key, "nodes", std::uint64_t{p.node_count});
      kv(key, "horizon", p.horizon);
      kv(key, "ggap", p.median_gathering_gap);
      kv(key, "gsig", p.gathering_gap_sigma);
      kv(key, "amin", std::uint64_t{p.min_attendees});
      kv(key, "amax", std::uint64_t{p.max_attendees});
      kv(key, "jitter", p.arrival_jitter);
      kv(key, "dwell", p.median_dwell);
      kv(key, "dwsig", p.dwell_sigma);
      kv(key, "pgap", p.median_pair_gap);
      kv(key, "pgsig", p.pair_gap_sigma);
      kv(key, "pdur", p.median_duration);
      kv(key, "pdsig", p.duration_sigma);
      kv(key, "minc", p.min_contact);
      key += '}';
      break;
    }
    case MobilityKind::kRwp: {
      const auto& p = scenario.rwp;
      key += "rwp{";
      kv(key, "nodes", std::uint64_t{p.node_count});
      kv(key, "horizon", p.horizon);
      kv(key, "points", std::uint64_t{p.subscriber_points});
      kv(key, "area", p.area_side_m);
      kv(key, "pause", p.max_pause_s);
      kv(key, "vmin", p.min_speed_mps);
      kv(key, "vmax", p.max_speed_mps);
      kv(key, "cmax", p.max_contact_s);
      kv(key, "cmin", p.min_contact_s);
      // City-scale extensions join only when non-default (hotspot_side_frac
      // is inert while hotspot_points == 0), so every pre-existing rwp key
      // stays byte-identical — the flows/evict/caps discipline.
      if (p.hotspot_points > 0) {
        kv(key, "hot", std::uint64_t{p.hotspot_points});
        kv(key, "hfrac", p.hotspot_side_frac);
      }
      if (p.commuter_bias != 0.0) {
        kv(key, "bias", p.commuter_bias);
      }
      key += '}';
      break;
    }
    case MobilityKind::kInterval: {
      const auto& p = scenario.interval;
      key += "interval{";
      kv(key, "nodes", std::uint64_t{p.node_count});
      kv(key, "enc", std::uint64_t{p.encounters_per_node});
      kv(key, "imax", p.max_interval);
      kv(key, "imin", p.min_interval);
      kv(key, "dmin", p.min_duration);
      kv(key, "dmax", p.max_duration);
      key += '}';
      break;
    }
  }

  // Protocol: every field of ProtocolParams, read or not — a miss on an
  // irrelevant field only costs a recompute, never a wrong cache hit.
  const auto& pp = run.protocol;
  key += "|protocol=";
  key += to_string(pp.kind);
  key += '{';
  kv(key, "p", pp.p);
  kv(key, "q", pp.q);
  kv(key, "ttl", pp.fixed_ttl);
  kv(key, "tmul", pp.ttl_multiplier);
  kv(key, "tfb", pp.dynamic_ttl_fallback);
  kv(key, "ect", std::uint64_t{pp.ec_threshold});
  kv(key, "ecb", pp.ec_ttl_base);
  kv(key, "ecs", pp.ec_ttl_step);
  kv(key, "ecm", std::uint64_t{pp.ec_min_evict});
  kv(key, "irpc", std::uint64_t{pp.immunity_records_per_contact});
  kv(key, "spray", std::uint64_t{pp.spray_copies});
  key += '}';

  // Explicit flow workloads (large-N benches): every endpoint and per-flow
  // load joins the key. Absent for the legacy single randomized flow, so all
  // pre-existing keys are byte-identical to what older builds computed.
  if (!run.flows.empty()) {
    key += "|flows=[";
    for (const FlowSpec& f : run.flows) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%u>%u:%u;", f.source, f.destination,
                    f.load);
      key += buf;
    }
    key += ']';
  }

  // Flow coordinates and engine constants.
  key += '|';
  kv(key, "load", std::uint64_t{run.load});
  kv(key, "rep", std::uint64_t{run.replication});
  kv(key, "seed", run.master_seed);
  kv(key, "buf", std::uint64_t{run.buffer_capacity});
  kv(key, "slot", run.slot_seconds);
  kv(key, "horizon", run.horizon);
  kv(key, "gap", run.session_gap);

  // Buffer-management extensions join the key only when they deviate from
  // the defaults, so every pre-existing key stays byte-identical (the same
  // discipline as the flows fragment above).
  if (run.options.eviction != EvictionPolicy::kDropTail) {
    key += "|evict=";
    key += to_string(run.options.eviction);
    key += ';';
  }
  if (!run.options.node_capacities.empty()) {
    key += "|caps=[";
    for (const std::uint32_t c : run.options.node_capacities) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u;", c);
      key += buf;
    }
    key += ']';
  }

  // Summary codec: joins only when it departs from the exact default, with
  // the *resolved* hash count so an explicit k equal to the derived optimum
  // shares the derived configuration's cache entries.
  if (run.options.summary.mode != SummaryMode::kExact) {
    key += "|summary=";
    key += to_string(run.options.summary.mode);
    key += '{';
    kv(key, "bpb", std::uint64_t{run.options.summary.filter_bits});
    kv(key, "k", std::uint64_t{run.options.summary.resolved_hashes()});
    key += '}';
  }

  // Fault plan: always serialized, active or not, so a plan change can
  // never collide with a pre-fault key (schema v2 made the break anyway).
  key += '|';
  fault::append_key(key, run.options.fault);
  return key;
}

}  // namespace epi::exp
