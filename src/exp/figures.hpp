// Figures: canned experiment definitions for every figure and table of the
// paper's evaluation section (SV). Each run_figXX() executes the exact
// series the paper plots and returns a printable Figure.
#pragma once

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace_sink.hpp"

namespace epi::store {
class RunStore;
}

namespace epi::exp {

/// Knobs shared by all figure reproductions.
struct FigureOptions {
  std::uint64_t master_seed = 42;
  std::uint32_t replications = 10;  // paper SIV
  unsigned threads = 0;             // 0 = hardware concurrency

  // --- observability (non-owning, optional) ---------------------------------
  obs::TraceSink* trace_sink = nullptr;      ///< event-level JSONL/etc. sink
  obs::ChromeTraceWriter* chrome = nullptr;  ///< per-replication spans
  bool progress = false;  ///< live `[figXX] n/m runs ...` line on stderr
  bool collect_stats = false;  ///< attach a StatsProfile to every run
                               ///< (see SweepSpec::collect_stats)

  /// Persistent run cache (non-owning, optional); see SweepSpec::store.
  store::RunStore* store = nullptr;

  /// Partition missing runs across concurrent invocations sharing the
  /// store via work-unit claims; see SweepSpec::claim_units.
  bool claim_units = false;

  /// When non-empty, every reporter additionally appends machine-readable
  /// ProgressSnapshot lines to this file (see obs::progress). The fleet
  /// driver points each worker process here and tails the files into one
  /// aggregate line; combine with `progress = false` to keep worker
  /// stderr quiet.
  std::string progress_path;

  /// Receiver-side admission policy applied to every run (see
  /// ProtocolOptions::eviction). Drop-tail (the default) is the paper's
  /// behavior and keeps every figure bit-identical to older builds.
  EvictionPolicy eviction = EvictionPolicy::kDropTail;

  /// Summary-exchange codec applied to every run (see
  /// ProtocolOptions::summary). Exact (the default) is the paper's free
  /// advertisement and keeps every figure bit-identical to older builds;
  /// bloom trades advertisement bytes for false-positive suppressed offers.
  SummaryCodecParams summary;
};

// --- protocol parameter shorthands (the paper's configurations) -------------

[[nodiscard]] ProtocolParams pq_params(double p, double q);
[[nodiscard]] ProtocolParams fixed_ttl_params(SimTime ttl = defaults::kFixedTtl);
[[nodiscard]] ProtocolParams dynamic_ttl_params();
[[nodiscard]] ProtocolParams ec_params();
[[nodiscard]] ProtocolParams ec_ttl_params();
[[nodiscard]] ProtocolParams immunity_params();
[[nodiscard]] ProtocolParams cumulative_immunity_params();

// --- generic driver -----------------------------------------------------------

/// One series of a figure: a label, a mobility scenario and a protocol.
struct SeriesDef {
  std::string label;
  ScenarioSpec scenario;
  ProtocolParams protocol;
};

/// Runs all series (mobility traces are built once per distinct scenario)
/// and assembles the Figure. `loads` overrides the sweep's load axis; empty
/// (the default) means the paper's {5, 10, ..., 50}.
[[nodiscard]] Figure run_figure(std::string id, std::string title,
                                Metric metric, std::vector<SeriesDef> series,
                                const FigureOptions& options,
                                std::vector<std::uint32_t> loads = {});

// --- the paper's figures -------------------------------------------------------

// SV-A: existing protocols.
[[nodiscard]] Figure run_fig07(const FigureOptions& o);  // delay, trace
[[nodiscard]] Figure run_fig08(const FigureOptions& o);  // delay, RWP
[[nodiscard]] Figure run_fig09(const FigureOptions& o);  // duplication, trace
[[nodiscard]] Figure run_fig10(const FigureOptions& o);  // duplication, RWP
[[nodiscard]] Figure run_fig11(const FigureOptions& o);  // buffer, trace
[[nodiscard]] Figure run_fig12(const FigureOptions& o);  // buffer, RWP
[[nodiscard]] Figure run_fig13(const FigureOptions& o);  // delivery, trace

// SV-B: enhancements.
[[nodiscard]] Figure run_fig14(const FigureOptions& o);  // TTL vs interval
[[nodiscard]] Figure run_fig15(const FigureOptions& o);  // delivery, RWP
[[nodiscard]] Figure run_fig16(const FigureOptions& o);  // delivery, trace
[[nodiscard]] Figure run_fig17(const FigureOptions& o);  // buffer, RWP
[[nodiscard]] Figure run_fig18(const FigureOptions& o);  // buffer, trace
[[nodiscard]] Figure run_fig19(const FigureOptions& o);  // duplication, RWP
[[nodiscard]] Figure run_fig20(const FigureOptions& o);  // duplication, trace

// Abstract claim: cumulative immunity needs an order of magnitude fewer
// signaling messages than per-bundle immunity.
[[nodiscard]] Figure run_overhead(const FigureOptions& o, bool rwp);

/// Streaming-statistics observatory panels: every protocol family on one
/// scenario at loads {10, 25, 40}, run with stats collection forced on so
/// each RunSummary carries its encounter/occupancy/signaling StatsProfile.
/// The printed table shows mean buffer occupancy; the panels themselves are
/// the profile JSON captured with `--stats-out=FILE`.
[[nodiscard]] Figure run_stats(const FigureOptions& o, bool rwp);

// --- robustness sweeps ----------------------------------------------------------

/// Bundle load every robustness run uses (mid-range of the paper's sweep, so
/// loss effects are visible without saturating any protocol).
inline constexpr std::uint32_t kRobustnessLoad = 25;

/// One metric vs loss rate {0, 5, ..., 40} percent for every protocol
/// family on one scenario. Each loss point applies the rate as both
/// per-slot transfer loss and control-plane loss (see fault::FaultPlan), so
/// the anti-packet/immunity schemes lose control state at the same rate the
/// data plane loses slots. The returned Figure's x axis is the loss percent
/// ("loss %"), not bundle load; load is pinned at kRobustnessLoad.
[[nodiscard]] Figure run_robustness(const FigureOptions& o, Metric metric,
                                    bool rwp);

// --- buffer-capacity sweeps -----------------------------------------------------

/// Bundle load every capacity-sweep run uses: mid-range, so small buffers
/// are clearly stressed (25 bundles cannot fit a 4-slot buffer) while large
/// ones are not.
inline constexpr std::uint32_t kCapacityLoad = 25;

/// One metric vs uniform buffer capacity {4, 6, 8, 10, 14, 20} on the trace
/// scenario, for each eviction policy on two protocol families: P-Q epidemic
/// (no admission rule of its own, so the configured policy decides
/// everything) and EC (its drop-largest-EC rule applies first, the policy
/// only as fallback). The returned Figure's x axis is the capacity
/// ("capacity"), not bundle load; load is pinned at kCapacityLoad.
[[nodiscard]] Figure run_capacity(const FigureOptions& o, Metric metric);

// --- compact-advertisement sweeps -----------------------------------------------

/// Bundle load every Bloom-codec sweep uses (mid-range, matching the
/// robustness sweeps, so false-positive suppression effects are visible
/// without saturating any protocol).
inline constexpr std::uint32_t kBloomLoad = 25;

/// Per-slot loss rate the faulted Bloom sweep applies as both transfer and
/// control loss, so compaction is measured on an impaired channel too.
inline constexpr double kBloomFaultLoss = 0.10;

/// One metric vs Bloom-filter bits-per-bundle {2, 4, 6, 8, 12, 16} under
/// the compact summary codec (hash count auto-derived, see
/// SummaryCodecParams::resolved_hashes) for five protocol families on the
/// trace scenario. The returned Figure's x axis is the filter density
/// ("bits/bundle"), not bundle load; load is pinned at kBloomLoad. With
/// `faulted`, every run additionally suffers kBloomFaultLoss slot and
/// control loss (see fault::FaultPlan), so the figure shows whether
/// compact advertisements amplify or absorb channel impairment.
[[nodiscard]] Figure run_bloom(const FigureOptions& o, Metric metric,
                               bool faulted);

// --- city-scale sweeps ----------------------------------------------------------

/// One metric vs bundle load on the city_scale(1024) scenario (heterogeneous
/// point densities + commuter itineraries; see exp::city_scale) for the
/// large-suite protocol families. Not a paper figure: the paper stops at 12
/// nodes, this extrapolates its protocols to a city-sized contact process.
[[nodiscard]] Figure run_city(const FigureOptions& o, Metric metric);

// --- figure registry ------------------------------------------------------------

/// One registered figure: canonical id, the paper's qualitative shape claim
/// (printed under the table for eyeball comparison), and the captureless
/// runner that reproduces it. The registry is the single source of truth
/// for `bench_figure --fig/--list`, the legacy bench_figXX wrappers, and
/// bench_export.
struct FigureSpec {
  const char* id;           ///< "fig07", "robust_trace_delivery", ...
  const char* paper_claim;  ///< expected shape, one line
  Figure (*run)(const FigureOptions& options);
  bool paper_figure;  ///< true for the paper's fig07..fig20 set
};

/// Every registered figure: the 14 paper figures first (paper order), then
/// the robustness sweeps.
[[nodiscard]] std::span<const FigureSpec> figure_registry();

/// Registry lookup by canonical id ("fig07", "robust_rwp_delay") or bare
/// figure number ("07", "7"). Returns nullptr when unknown.
[[nodiscard]] const FigureSpec* find_figure(std::string_view query);

// --- Table II -------------------------------------------------------------------

/// One protocol row of Table II: per-metric averages over the whole load
/// sweep, in percent, for one mobility input.
struct Table2Row {
  std::string protocol;
  double delivery_rwp = 0.0;
  double delivery_trace = 0.0;
  double buffer_rwp = 0.0;
  double buffer_trace = 0.0;
  double duplication_rwp = 0.0;
  double duplication_trace = 0.0;
};

[[nodiscard]] std::vector<Table2Row> run_table2(const FigureOptions& o);
void print_table2(std::ostream& out, const std::vector<Table2Row>& rows);

}  // namespace epi::exp
