// Report: aligned-column and CSV printers for figure/table reproduction.
//
// Every bench binary prints one figure as a table: one row per load point,
// one column per protocol series — the same rows/series the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sweep.hpp"
#include "metrics/summary.hpp"

namespace epi::exp {

/// Which scalar of a LoadPoint a figure plots.
enum class Metric {
  kDelay,            ///< run completion time (horizon-charged when failed)
  kMeanBundleDelay,  ///< mean per-bundle delay over delivered bundles
  kDeliveryRatio,
  kBufferOccupancy,
  kDuplicationRate,
  kControlRecords,   ///< signaling overhead (records on the air)
  kTransmissions,    ///< bundle transmissions
  kSignalingBytes,   ///< summary-advertisement + control bytes on the air
};

[[nodiscard]] std::string_view metric_name(Metric metric) noexcept;
[[nodiscard]] const metrics::Aggregate& metric_of(
    const metrics::LoadPoint& point, Metric metric) noexcept;

/// The same scalar read off a single replication (what aggregate_runs
/// averages into the LoadPoint the figure plots).
[[nodiscard]] double metric_value(const metrics::RunSummary& run,
                                  Metric metric) noexcept;

/// One reproduced figure: parallel vectors of series labels and results.
struct Figure {
  std::string id;      ///< "fig07"
  std::string title;
  Metric metric = Metric::kDeliveryRatio;
  /// Label of the x axis. The paper's figures sweep bundle load; the
  /// robustness figures reuse the same machinery with a loss-rate axis
  /// (SweepResult.loads then holds loss percentages).
  std::string axis = "load";
  std::vector<std::string> labels;
  std::vector<SweepResult> results;

  /// Mean metric value of series `s` at load index `li`.
  [[nodiscard]] double value(std::size_t s, std::size_t li) const;

  /// Mean of the metric across all load points of series `s`.
  [[nodiscard]] double series_mean(std::size_t s) const;

  /// Index of the series with the given label (throws if absent).
  [[nodiscard]] std::size_t series(std::string_view label) const;
};

/// Human-readable aligned table (what the bench binaries print).
void print_figure(std::ostream& out, const Figure& figure);

/// Machine-readable CSV (load, <label columns>...) with mean values.
void print_figure_csv(std::ostream& out, const Figure& figure);

/// Machine-readable JSON: figure id/title/metric, the load axis, and per
/// series both the plotted means and the per-replication raw values, so
/// external plotting and CI regression checks need not re-parse CSV:
///
///   {"id":"fig07","metric":"avg delay (s)","loads":[5,...],
///    "series":[{"label":"EC","protocol":"encounter_count",
///               "means":[...],"raw":[[rep0,rep1,...],...]}]}
void print_figure_json(std::ostream& out, const Figure& figure);

}  // namespace epi::exp
