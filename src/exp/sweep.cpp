#include "exp/sweep.hpp"

#include "exp/runner.hpp"
#include "exp/thread_pool.hpp"

namespace epi::exp {

std::vector<std::uint32_t> paper_loads() {
  std::vector<std::uint32_t> loads;
  for (std::uint32_t k = 5; k <= 50; k += 5) loads.push_back(k);
  return loads;
}

SweepResult run_sweep_on(const SweepSpec& spec,
                         const mobility::ContactTrace& trace) {
  SweepResult result;
  result.scenario_name = spec.scenario.name;
  result.protocol = spec.protocol;
  result.loads = spec.loads.empty() ? paper_loads() : spec.loads;
  result.runs.assign(result.loads.size(), {});
  for (auto& batch : result.runs) {
    batch.resize(spec.replications);
  }

  const std::size_t total = result.loads.size() * spec.replications;
  parallel_for(total, spec.threads, [&](std::size_t job, unsigned worker) {
    const std::size_t load_idx = job / spec.replications;
    const auto replication = static_cast<std::uint32_t>(job % spec.replications);
    RunSpec run;
    run.protocol = spec.protocol;
    run.load = result.loads[load_idx];
    run.replication = replication;
    run.master_seed = spec.master_seed;
    run.buffer_capacity = spec.buffer_capacity;
    // The paper's failure horizon is the trace's own maximum recorded time.
    run.horizon = trace.end_time();
    run.session_gap = spec.scenario.session_gap;
    run.trace_sink = spec.trace_sink;
    const double begin_us = spec.chrome != nullptr ? spec.chrome->now_us() : 0.0;
    result.runs[load_idx][replication] = run_single(run, trace);
    if (spec.chrome != nullptr) {
      spec.chrome->record_span(
          std::string(to_string(spec.protocol.kind)) + "/load=" +
              std::to_string(run.load) + "/rep=" + std::to_string(replication),
          worker, begin_us, spec.chrome->now_us());
    }
    if (spec.progress != nullptr) {
      spec.progress->tick(
          result.runs[load_idx][replication].perf.events_processed);
    }
  });

  result.points.reserve(result.loads.size());
  for (const auto& batch : result.runs) {
    result.points.push_back(metrics::aggregate_runs(batch));
  }
  return result;
}

SweepResult run_sweep(const SweepSpec& spec) {
  const mobility::ContactTrace trace =
      build_contact_trace(spec.scenario, spec.master_seed);
  return run_sweep_on(spec, trace);
}

std::vector<SweepResult> run_sweeps(
    const ScenarioSpec& scenario, const std::vector<ProtocolParams>& protocols,
    std::uint64_t master_seed, std::uint32_t replications, unsigned threads) {
  const mobility::ContactTrace trace =
      build_contact_trace(scenario, master_seed);
  std::vector<SweepResult> results;
  results.reserve(protocols.size());
  for (const auto& protocol : protocols) {
    SweepSpec spec;
    spec.scenario = scenario;
    spec.protocol = protocol;
    spec.replications = replications;
    spec.master_seed = master_seed;
    spec.threads = threads;
    results.push_back(run_sweep_on(spec, trace));
  }
  return results;
}

}  // namespace epi::exp
