#include "exp/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/thread_pool.hpp"
#include "store/interrupt.hpp"
#include "store/run_store.hpp"

namespace epi::exp {
namespace {

/// Below this many jobs, phase-1 cache resolution stays serial: spinning up
/// the pool costs more than the lookups it would parallelise.
constexpr std::size_t kParallelResolveThreshold = 64;

/// Poll period while awaiting work units claimed by concurrent workers.
constexpr auto kAwaitPollInterval = std::chrono::milliseconds(50);

/// After this long without progress on peer-claimed units, say so once
/// (a hung-but-alive peer holds its claims until it dies or finishes).
constexpr auto kAwaitWarnAfter = std::chrono::seconds(60);

}  // namespace

std::vector<std::uint32_t> paper_loads() {
  std::vector<std::uint32_t> loads;
  for (std::uint32_t k = 5; k <= 50; k += 5) loads.push_back(k);
  return loads;
}

SweepResult run_sweep_on(const SweepSpec& spec,
                         const TraceProvider& provider) {
  SweepResult result;
  result.scenario_name = spec.scenario.name;
  result.protocol = spec.protocol;
  result.loads = spec.loads.empty() ? paper_loads() : spec.loads;
  result.runs.assign(result.loads.size(), {});
  for (auto& batch : result.runs) {
    batch.resize(spec.replications);
  }

  const std::size_t total = result.loads.size() * spec.replications;

  // Event tracing and stats collection bypass lookups — a served summary
  // would silently drop its events and carries no StatsProfile — but
  // completed runs are still appended for later cache-only reruns.
  const bool consult_cache = spec.store != nullptr &&
                             spec.trace_sink == nullptr &&
                             !spec.collect_stats;
  // One validated template for the whole sweep; per-job copies only vary the
  // (load, replication) coordinates, so validation cost is paid once. The
  // scenario() adoption charges the scenario's horizon — the paper declares
  // a run failed once it passes it (524,162 s Haggle / 600,000 s RWP) — and
  // sanctions the controlled-interval scenarios' sub-slot session gap.
  const RunSpec base = RunSpecBuilder()
                           .protocol(spec.protocol)
                           .scenario(spec.scenario)
                           .master_seed(spec.master_seed)
                           .buffer_capacity(spec.buffer_capacity)
                           .eviction(spec.eviction)
                           .fault(spec.fault)
                           .summary(spec.summary)
                           .trace_sink(spec.trace_sink)
                           .collect_stats(spec.collect_stats)
                           .build();
  std::vector<RunSpec> runs(total);
  std::vector<std::string> keys(spec.store != nullptr ? total : 0);
  std::vector<unsigned char> served(total, 0);

  // Phase 1: build every RunSpec and resolve the cache, so phase 2 only
  // ever sees genuinely missing runs. Key construction and index lookup
  // are pure per-job work, so large sweeps resolve across the pool; the
  // serial tail below only assembles the pending list in index order.
  const auto resolve = [&](std::size_t job) {
    const std::size_t load_idx = job / spec.replications;
    const auto replication =
        static_cast<std::uint32_t>(job % spec.replications);
    RunSpec& run = runs[job];
    run = base;
    run.load = result.loads[load_idx];
    run.replication = replication;
    if (spec.store != nullptr) {
      keys[job] = store_key(spec.scenario, run);
      if (consult_cache) {
        if (auto cached = spec.store->find(keys[job])) {
          result.runs[load_idx][replication] = *std::move(cached);
          served[job] = 1;
        }
      }
    }
  };
  if (consult_cache && total >= kParallelResolveThreshold) {
    parallel_for(total, spec.threads, resolve);
  } else {
    for (std::size_t job = 0; job < total; ++job) resolve(job);
  }
  std::vector<std::size_t> pending;
  pending.reserve(total);
  for (std::size_t job = 0; job < total; ++job) {
    if (served[job]) {
      if (spec.progress != nullptr) spec.progress->tick_cached();
    } else {
      pending.push_back(job);
    }
  }

  // Phase 2 (parallel): simulate the misses; append each to the store the
  // moment it completes, so a crash or interrupt never loses finished
  // work. A fully-warm sweep never reaches this point — and never pays
  // for the mobility trace.
  if (!pending.empty()) {
    const mobility::ContactTrace& trace = provider();

    const auto fill_cached = [&](std::size_t job,
                                 metrics::RunSummary&& summary) {
      const std::size_t load_idx = job / spec.replications;
      const auto replication =
          static_cast<std::uint32_t>(job % spec.replications);
      result.runs[load_idx][replication] = std::move(summary);
      if (spec.progress != nullptr) spec.progress->tick_cached();
    };
    const auto execute = [&](std::size_t job, unsigned worker) {
      const std::size_t load_idx = job / spec.replications;
      const auto replication =
          static_cast<std::uint32_t>(job % spec.replications);
      const RunSpec& run = runs[job];
      const double begin_us =
          spec.chrome != nullptr ? spec.chrome->now_us() : 0.0;
      result.runs[load_idx][replication] = run_single(run, trace);
      if (spec.store != nullptr) {
        spec.store->put(keys[job], result.runs[load_idx][replication]);
      }
      if (spec.chrome != nullptr) {
        spec.chrome->record_span(
            std::string(to_string(spec.protocol.kind)) + "/load=" +
                std::to_string(run.load) + "/rep=" +
                std::to_string(replication),
            worker, begin_us, spec.chrome->now_us());
      }
      if (spec.progress != nullptr) {
        spec.progress->tick(
            result.runs[load_idx][replication].perf.events_processed);
      }
    };

    if (!(spec.claim_units && consult_cache)) {
      parallel_for(pending.size(), spec.threads,
                   [&](std::size_t index, unsigned worker) {
        // SIGINT drain: in-flight runs complete, unstarted ones skipped.
        if (store::SigintDrain::interrupted()) return;
        execute(pending[index], worker);
      });
    } else {
      // Claimed dispatch: N concurrent invocations on one store partition
      // these units instead of duplicating them. Units a peer owns are
      // deferred and served from its appends below.
      std::mutex deferred_mutex;
      std::vector<std::size_t> deferred;
      parallel_for(pending.size(), spec.threads,
                   [&](std::size_t index, unsigned worker) {
        if (store::SigintDrain::interrupted()) return;
        const std::size_t job = pending[index];
        auto claim = spec.store->try_claim(keys[job]);
        if (!claim.has_value()) {
          const std::lock_guard lock(deferred_mutex);
          deferred.push_back(job);
          return;
        }
        // Exactly-once hinges on this re-check: the previous owner may
        // have completed the unit between our phase-1 miss and our claim.
        spec.store->refresh();
        if (auto done = spec.store->find(keys[job])) {
          fill_cached(job, *std::move(done));
          return;
        }
        execute(job, worker);
      });

      // Await peers: poll for their appends; adopt any unit whose owner
      // died (a dead worker's claim lock evaporates with it).
      std::sort(deferred.begin(), deferred.end());
      const auto wait_start = std::chrono::steady_clock::now();
      bool warned = false;
      while (!deferred.empty() && !store::SigintDrain::interrupted()) {
        spec.store->refresh();
        std::vector<std::size_t> still_foreign;
        for (const std::size_t job : deferred) {
          if (auto done = spec.store->find(keys[job])) {
            fill_cached(job, *std::move(done));
            continue;
          }
          auto claim = spec.store->try_claim(keys[job]);
          if (!claim.has_value()) {
            still_foreign.push_back(job);
            continue;
          }
          spec.store->refresh();  // owner may have finished just now
          if (auto done = spec.store->find(keys[job])) {
            fill_cached(job, *std::move(done));
          } else {
            execute(job, 0);
          }
        }
        deferred.swap(still_foreign);
        if (deferred.empty()) break;
        std::this_thread::sleep_for(kAwaitPollInterval);
        if (!warned &&
            std::chrono::steady_clock::now() - wait_start > kAwaitWarnAfter) {
          warned = true;
          std::cerr << "[sweep] still waiting on " << deferred.size()
                    << " work unit(s) claimed by other workers; a killed "
                       "worker's units are reclaimed automatically, a hung "
                       "one holds its claims until it exits\n";
        }
      }
    }
  }

  if (spec.store != nullptr) spec.store->flush();
  if (store::SigintDrain::interrupted()) {
    throw SweepInterrupted(
        "sweep interrupted: completed runs were persisted; rerun the same "
        "command to resume");
  }

  result.points.reserve(result.loads.size());
  for (const auto& batch : result.runs) {
    result.points.push_back(metrics::aggregate_runs(batch));
  }
  return result;
}

SweepResult run_sweep_on(const SweepSpec& spec,
                         const mobility::ContactTrace& trace) {
  return run_sweep_on(
      spec, TraceProvider([&trace]() -> const mobility::ContactTrace& {
        return trace;
      }));
}

SweepResult run_sweep(const SweepSpec& spec) {
  std::optional<mobility::ContactTrace> trace;
  return run_sweep_on(
      spec, TraceProvider([&]() -> const mobility::ContactTrace& {
        if (!trace.has_value()) {
          trace = build_contact_trace(spec.scenario, spec.master_seed);
        }
        return *trace;
      }));
}

std::vector<SweepResult> run_sweeps(
    const ScenarioSpec& scenario, const std::vector<ProtocolParams>& protocols,
    std::uint64_t master_seed, std::uint32_t replications, unsigned threads) {
  const mobility::ContactTrace trace =
      build_contact_trace(scenario, master_seed);
  std::vector<SweepResult> results;
  results.reserve(protocols.size());
  for (const auto& protocol : protocols) {
    SweepSpec spec;
    spec.scenario = scenario;
    spec.protocol = protocol;
    spec.replications = replications;
    spec.master_seed = master_seed;
    spec.threads = threads;
    results.push_back(run_sweep_on(spec, trace));
  }
  return results;
}

}  // namespace epi::exp
