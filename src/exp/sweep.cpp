#include "exp/sweep.hpp"

#include <utility>

#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/thread_pool.hpp"
#include "store/interrupt.hpp"
#include "store/run_store.hpp"

namespace epi::exp {

std::vector<std::uint32_t> paper_loads() {
  std::vector<std::uint32_t> loads;
  for (std::uint32_t k = 5; k <= 50; k += 5) loads.push_back(k);
  return loads;
}

SweepResult run_sweep_on(const SweepSpec& spec,
                         const mobility::ContactTrace& trace) {
  SweepResult result;
  result.scenario_name = spec.scenario.name;
  result.protocol = spec.protocol;
  result.loads = spec.loads.empty() ? paper_loads() : spec.loads;
  result.runs.assign(result.loads.size(), {});
  for (auto& batch : result.runs) {
    batch.resize(spec.replications);
  }

  const std::size_t total = result.loads.size() * spec.replications;

  // Phase 1 (serial): build every RunSpec and resolve the cache, so the
  // thread pool only ever sees genuinely missing runs. Event tracing and
  // stats collection bypass lookups — a served summary would silently drop
  // its events and carries no StatsProfile — but completed runs are still
  // appended for later cache-only reruns.
  const bool consult_cache = spec.store != nullptr &&
                             spec.trace_sink == nullptr &&
                             !spec.collect_stats;
  // One validated template for the whole sweep; per-job copies only vary the
  // (load, replication) coordinates, so validation cost is paid once. The
  // scenario() adoption charges the scenario's horizon — the paper declares
  // a run failed once it passes it (524,162 s Haggle / 600,000 s RWP) — and
  // sanctions the controlled-interval scenarios' sub-slot session gap.
  const RunSpec base = RunSpecBuilder()
                           .protocol(spec.protocol)
                           .scenario(spec.scenario)
                           .master_seed(spec.master_seed)
                           .buffer_capacity(spec.buffer_capacity)
                           .eviction(spec.eviction)
                           .fault(spec.fault)
                           .trace_sink(spec.trace_sink)
                           .collect_stats(spec.collect_stats)
                           .build();
  std::vector<RunSpec> runs(total);
  std::vector<std::string> keys(spec.store != nullptr ? total : 0);
  std::vector<std::size_t> pending;
  pending.reserve(total);
  for (std::size_t job = 0; job < total; ++job) {
    const std::size_t load_idx = job / spec.replications;
    const auto replication = static_cast<std::uint32_t>(job % spec.replications);
    RunSpec& run = runs[job];
    run = base;
    run.load = result.loads[load_idx];
    run.replication = replication;
    if (spec.store != nullptr) {
      keys[job] = store_key(spec.scenario, run);
      if (consult_cache) {
        if (auto cached = spec.store->find(keys[job])) {
          result.runs[load_idx][replication] = *std::move(cached);
          if (spec.progress != nullptr) spec.progress->tick_cached();
          continue;
        }
      }
    }
    pending.push_back(job);
  }

  // Phase 2 (parallel): simulate the misses; append each to the store the
  // moment it completes, so a crash or interrupt never loses finished work.
  parallel_for(pending.size(), spec.threads,
               [&](std::size_t index, unsigned worker) {
    // SIGINT drain: in-flight runs complete, unstarted ones are skipped.
    if (store::SigintDrain::interrupted()) return;
    const std::size_t job = pending[index];
    const std::size_t load_idx = job / spec.replications;
    const auto replication = static_cast<std::uint32_t>(job % spec.replications);
    const RunSpec& run = runs[job];
    const double begin_us = spec.chrome != nullptr ? spec.chrome->now_us() : 0.0;
    result.runs[load_idx][replication] = run_single(run, trace);
    if (spec.store != nullptr) {
      spec.store->put(keys[job], result.runs[load_idx][replication]);
    }
    if (spec.chrome != nullptr) {
      spec.chrome->record_span(
          std::string(to_string(spec.protocol.kind)) + "/load=" +
              std::to_string(run.load) + "/rep=" + std::to_string(replication),
          worker, begin_us, spec.chrome->now_us());
    }
    if (spec.progress != nullptr) {
      spec.progress->tick(
          result.runs[load_idx][replication].perf.events_processed);
    }
  });

  if (spec.store != nullptr) spec.store->flush();
  if (store::SigintDrain::interrupted()) {
    throw SweepInterrupted(
        "sweep interrupted: completed runs were persisted; rerun the same "
        "command to resume");
  }

  result.points.reserve(result.loads.size());
  for (const auto& batch : result.runs) {
    result.points.push_back(metrics::aggregate_runs(batch));
  }
  return result;
}

SweepResult run_sweep(const SweepSpec& spec) {
  const mobility::ContactTrace trace =
      build_contact_trace(spec.scenario, spec.master_seed);
  return run_sweep_on(spec, trace);
}

std::vector<SweepResult> run_sweeps(
    const ScenarioSpec& scenario, const std::vector<ProtocolParams>& protocols,
    std::uint64_t master_seed, std::uint32_t replications, unsigned threads) {
  const mobility::ContactTrace trace =
      build_contact_trace(scenario, master_seed);
  std::vector<SweepResult> results;
  results.reserve(protocols.size());
  for (const auto& protocol : protocols) {
    SweepSpec spec;
    spec.scenario = scenario;
    spec.protocol = protocol;
    spec.replications = replications;
    spec.master_seed = master_seed;
    spec.threads = threads;
    results.push_back(run_sweep_on(spec, trace));
  }
  return results;
}

}  // namespace epi::exp
