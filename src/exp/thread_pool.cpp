#include "exp/thread_pool.hpp"

#include <algorithm>

namespace epi::exp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    jobs_.push_back(std::move(job));
    ++in_flight_;
  }
  job_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      job_ready_.wait(lock,
                      [this] { return shutting_down_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // shutting down and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t, unsigned)>& fn) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&](unsigned worker) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i, worker);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(body, t);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(count, threads,
               [&fn](std::size_t i, unsigned /*worker*/) { fn(i); });
}

}  // namespace epi::exp
