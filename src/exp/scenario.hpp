// Scenario: which mobility input an experiment runs on.
//
// The paper evaluates every protocol under two mobility inputs — the
// Cambridge iMote trace and the subscriber-point RWP model — plus the
// controlled-interval scenarios of SV-B1. A ScenarioSpec names one of these
// and carries its generator parameters; build_contact_trace() materialises
// the contact process deterministically.
//
// Replications share ONE mobility trace (the paper re-runs on the same
// trace, varying only the source/destination pair and protocol randomness),
// so the trace is generated once per scenario from the master seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/interval_scenario.hpp"
#include "mobility/rwp.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace epi::exp {

enum class MobilityKind {
  kHaggleTrace,  ///< synthetic twin of the Cambridge iMote trace
  kRwp,          ///< subscriber-point RWP
  kInterval,     ///< controlled max-interval scenario (Fig. 14)
};

struct ScenarioSpec {
  std::string name;  ///< short label for reports ("trace", "rwp", ...)
  MobilityKind kind = MobilityKind::kHaggleTrace;

  mobility::SyntheticHaggleParams haggle;
  mobility::RwpParams rwp;
  mobility::IntervalScenarioParams interval;

  /// Encounter-session clustering gap for dynamic TTL (bursty scenarios use
  /// a wide gap so one gathering counts as one encounter; the controlled
  /// interval scenarios have isolated contacts, so every contact is its own
  /// session).
  SimTime session_gap = 1'800.0;

  /// Heterogeneous per-node buffer capacities (mixed device classes). Empty
  /// — the default, and every canned scenario — means the uniform capacity
  /// from the RunSpec. When non-empty the size must equal node_count().
  std::vector<std::uint32_t> node_capacities;

  /// Node count of the active generator's parameter block.
  [[nodiscard]] std::uint32_t node_count() const noexcept;

  /// Simulation horizon: the paper marks a run failed once it passes the
  /// trace's maximum recorded time.
  [[nodiscard]] SimTime horizon() const noexcept;
};

/// Canned scenarios matching the paper's setups (SIV and SV-B1).
[[nodiscard]] ScenarioSpec trace_scenario();
[[nodiscard]] ScenarioSpec rwp_scenario();
[[nodiscard]] ScenarioSpec interval_scenario(SimTime max_interval);

/// Large-N stress scenario (ROADMAP "production scale"): subscriber-point
/// RWP with `node_count` nodes on the paper's 1 km^2 point grid, horizon
/// shortened so one run stays bench-sized. The paper's 12-node setups hide
/// O(set-size) costs in the anti-entropy exchange; this makes them visible.
[[nodiscard]] ScenarioSpec large_scenario(std::uint32_t node_count);

/// The canonical multi-flow workload paired with large_scenario():
/// `flow_count` unicast flows of `load_per_flow` bundles each, endpoints
/// spread deterministically across the node range (source f*N/F, destination
/// mirrored). Bundle ids stay dense: the engine numbers all flows' bundles
/// from one sequence.
[[nodiscard]] std::vector<FlowSpec> large_flows(std::uint32_t node_count,
                                                std::uint32_t flow_count,
                                                std::uint32_t load_per_flow);

/// City-scale scenario family (ROADMAP item 1, after Thakur et al.'s
/// spatio-temporal preference analysis): subscriber-point RWP with
/// heterogeneous point densities — a quarter of the points packed into a
/// central hotspot core — and commuter itineraries (each node favours a
/// home/work anchor pair with probability `commuter_bias`). Densities and
/// horizon are sized so contact volume per node stays bench-comparable as N
/// grows; generate through RwpContactSource to keep memory bounded.
[[nodiscard]] ScenarioSpec city_scale(std::uint32_t node_count);

/// The commuter workload paired with city_scale(): `flow_count` flows whose
/// sources spread across the node range but whose destinations funnel into a
/// handful of hub nodes — the many-to-few pattern of a commuter city.
[[nodiscard]] std::vector<FlowSpec> city_flows(std::uint32_t node_count,
                                               std::uint32_t flow_count,
                                               std::uint32_t load_per_flow);

/// Materialises the scenario's contact process (deterministic in `seed`).
[[nodiscard]] mobility::ContactTrace build_contact_trace(
    const ScenarioSpec& spec, std::uint64_t seed);

/// Streaming variant of build_contact_trace: RWP scenarios get the windowed
/// spatial-hash generator (bounded memory, the city-scale path); the other
/// generators have no streaming implementation yet, so their trace is
/// materialised once and owned by the returned source. Contacts are
/// identical to build_contact_trace either way.
[[nodiscard]] std::unique_ptr<mobility::ContactSource> build_contact_source(
    const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace epi::exp
