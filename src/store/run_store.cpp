#include "store/run_store.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "core/error.hpp"
#include "store/fingerprint.hpp"

namespace epi::store {
namespace {

// --- record encoding ----------------------------------------------------------
//
// One flat JSON object per line. The writer below and the reader further down
// are the only parties to the format; both are strict, and the reader treats
// any deviation as a corrupt line (skipped and counted, never fatal).

/// Appends a double with round-trip precision. %.17g is max_digits10 for
/// IEEE-754 binary64: strtod() restores the exact bit pattern.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// JSON string escape for the key field (keys are ASCII we generate, but a
/// trace path or scenario name could smuggle in quotes or backslashes).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string encode_record(const std::string& key,
                          const metrics::RunSummary& s) {
  std::string out;
  out.reserve(640);
  out += "{\"schema\":";
  append_u64(out, kSchemaVersion);
  out += ",\"fp\":\"";
  out += fingerprint_hex(key);
  out += "\",\"key\":";
  append_json_string(out, key);
  const auto field_u64 = [&](const char* name, std::uint64_t v) {
    out += ",\"";
    out += name;
    out += "\":";
    append_u64(out, v);
  };
  const auto field_double = [&](const char* name, double v) {
    out += ",\"";
    out += name;
    out += "\":";
    append_double(out, v);
  };
  field_u64("load", s.load);
  field_u64("seed", s.seed);
  field_double("delivery_ratio", s.delivery_ratio);
  out += ",\"complete\":";
  out += s.complete ? "true" : "false";
  field_double("completion_time", s.completion_time);
  field_double("mean_bundle_delay", s.mean_bundle_delay);
  field_double("buffer_occupancy", s.buffer_occupancy);
  field_double("duplication_rate", s.duplication_rate);
  field_u64("bundle_transmissions", s.bundle_transmissions);
  field_u64("control_records", s.control_records);
  field_u64("contacts", s.contacts);
  field_u64("drops_expired", s.drops_expired);
  field_u64("drops_evicted", s.drops_evicted);
  field_u64("drops_immunized", s.drops_immunized);
  field_double("end_time", s.end_time);
  out += ",\"flow_delivery\":[";
  for (std::size_t i = 0; i < s.flow_delivery.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, s.flow_delivery[i]);
  }
  out += ']';
  field_double("perf_wall_seconds", s.perf.wall_seconds);
  field_u64("perf_events_processed", s.perf.events_processed);
  field_u64("perf_peak_queue_depth", s.perf.peak_queue_depth);
  field_u64("perf_transfers", s.perf.transfers);
  field_u64("perf_contacts", s.perf.contacts);
  field_u64("perf_slots_lost", s.perf.slots_lost);
  field_u64("perf_down_slots", s.perf.down_slots);
  field_u64("perf_control_dropped", s.perf.control_dropped);
  field_u64("perf_contacts_truncated", s.perf.contacts_truncated);
  field_u64("perf_transfers_refused_full", s.perf.transfers_refused_full);
  field_u64("perf_summary_exchanges", s.perf.summary_exchanges);
  field_u64("perf_summary_ad_bytes", s.perf.summary_ad_bytes);
  field_u64("perf_control_bytes", s.perf.control_bytes);
  field_u64("perf_transfers_suppressed_fp", s.perf.transfers_suppressed_fp);
  out += "}\n";
  return out;
}

// --- record decoding ----------------------------------------------------------

/// Minimal parser for the flat records encode_record() writes. Throws
/// StoreError on any malformation; the caller turns that into a skipped
/// line. Unknown fields are ignored so future additive fields stay
/// readable by old builds.
class RecordParser {
 public:
  explicit RecordParser(std::string_view line) : in_(line) {}

  /// Parses the line into (key, summary). Returns false when the record's
  /// schema version is not ours (a valid line we must not reuse).
  bool parse(std::string& key, metrics::RunSummary& s) {
    expect('{');
    bool schema_ok = true;
    bool saw_key = false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      const std::string name = parse_string();
      expect(':');
      if (name == "schema") {
        schema_ok = parse_u64() == kSchemaVersion;
      } else if (name == "key") {
        key = parse_string();
        saw_key = true;
      } else if (name == "fp") {
        (void)parse_string();  // derived from key; not trusted
      } else if (name == "load") {
        s.load = narrow_u32(parse_u64());
      } else if (name == "seed") {
        s.seed = parse_u64();
      } else if (name == "delivery_ratio") {
        s.delivery_ratio = parse_double();
      } else if (name == "complete") {
        s.complete = parse_bool();
      } else if (name == "completion_time") {
        s.completion_time = parse_double();
      } else if (name == "mean_bundle_delay") {
        s.mean_bundle_delay = parse_double();
      } else if (name == "buffer_occupancy") {
        s.buffer_occupancy = parse_double();
      } else if (name == "duplication_rate") {
        s.duplication_rate = parse_double();
      } else if (name == "bundle_transmissions") {
        s.bundle_transmissions = parse_u64();
      } else if (name == "control_records") {
        s.control_records = parse_u64();
      } else if (name == "contacts") {
        s.contacts = parse_u64();
      } else if (name == "drops_expired") {
        s.drops_expired = parse_u64();
      } else if (name == "drops_evicted") {
        s.drops_evicted = parse_u64();
      } else if (name == "drops_immunized") {
        s.drops_immunized = parse_u64();
      } else if (name == "end_time") {
        s.end_time = parse_double();
      } else if (name == "flow_delivery") {
        s.flow_delivery = parse_double_array();
      } else if (name == "perf_wall_seconds") {
        s.perf.wall_seconds = parse_double();
      } else if (name == "perf_events_processed") {
        s.perf.events_processed = parse_u64();
      } else if (name == "perf_peak_queue_depth") {
        s.perf.peak_queue_depth = parse_u64();
      } else if (name == "perf_transfers") {
        s.perf.transfers = parse_u64();
      } else if (name == "perf_contacts") {
        s.perf.contacts = parse_u64();
      } else if (name == "perf_slots_lost") {
        s.perf.slots_lost = parse_u64();
      } else if (name == "perf_down_slots") {
        s.perf.down_slots = parse_u64();
      } else if (name == "perf_control_dropped") {
        s.perf.control_dropped = parse_u64();
      } else if (name == "perf_contacts_truncated") {
        s.perf.contacts_truncated = parse_u64();
      } else if (name == "perf_transfers_refused_full") {
        s.perf.transfers_refused_full = parse_u64();
      } else if (name == "perf_summary_exchanges") {
        s.perf.summary_exchanges = parse_u64();
      } else if (name == "perf_summary_ad_bytes") {
        s.perf.summary_ad_bytes = parse_u64();
      } else if (name == "perf_control_bytes") {
        s.perf.control_bytes = parse_u64();
      } else if (name == "perf_transfers_suppressed_fp") {
        s.perf.transfers_suppressed_fp = parse_u64();
      } else {
        skip_value();  // forward compatibility
      }
    }
    skip_ws();
    if (pos_ != in_.size()) corrupt("trailing bytes after record");
    if (!saw_key) corrupt("record without key");
    return schema_ok;
  }

 private:
  [[noreturn]] static void corrupt(const char* why) {
    throw StoreError(std::string("corrupt record: ") + why);
  }

  char peek() const {
    if (pos_ >= in_.size()) corrupt("unexpected end of line");
    return in_[pos_];
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) corrupt("unexpected character");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > in_.size()) corrupt("bad \\u escape");
          unsigned code = 0;
          const auto [p, ec] = std::from_chars(
              in_.data() + pos_, in_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || p != in_.data() + pos_ + 4 || code > 0x7f) {
            corrupt("bad \\u escape");
          }
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default: corrupt("unknown escape");
      }
    }
  }

  std::string_view number_token() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a') {  // inf / nan spellings from %g
        ++pos_;
      } else {
        break;
      }
    }
    if (begin == pos_) corrupt("expected a number");
    return in_.substr(begin, pos_ - begin);
  }

  double parse_double() {
    const std::string token(number_token());
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) corrupt("bad double");
    return v;
  }

  std::uint64_t parse_u64() {
    const std::string_view token = number_token();
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      corrupt("bad integer");
    }
    return v;
  }

  static std::uint32_t narrow_u32(std::uint64_t v) {
    if (v > 0xffffffffULL) corrupt("integer out of range");
    return static_cast<std::uint32_t>(v);
  }

  bool parse_bool() {
    skip_ws();
    if (in_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return true;
    }
    if (in_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return false;
    }
    corrupt("expected a boolean");
  }

  std::vector<double> parse_double_array() {
    expect('[');
    std::vector<double> out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_double());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') corrupt("bad array separator");
    }
  }

  /// Skips an unknown scalar or flat array value (forward compatibility).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '[') {
      (void)parse_double_array();
    } else if (c == 't' || c == 'f') {
      (void)parse_bool();
    } else {
      (void)number_token();
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

// --- file plumbing ------------------------------------------------------------

bool is_segment_file(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.starts_with("seg-") && name.ends_with(".jsonl");
}

/// Writes all of `text` with a single logical append. O_APPEND makes each
/// write(2) land atomically at end-of-file, and records are far below the
/// pipe-buffer-style atomicity limits for regular files, so concurrent
/// writers never interleave within a line. Retries EINTR and short writes.
void write_full(int fd, std::string_view text, const std::string& path) {
  while (!text.empty()) {
    const ssize_t n = ::write(fd, text.data(), text.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError("write failed on " + path + ": " +
                       std::strerror(errno));
    }
    text.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// Process-wide counter making segment names unique across RunStore
/// instances within one process (the pid alone is not enough: tests and
/// the fleet driver open several stores on one directory).
std::atomic<std::uint64_t> g_segment_seq{0};

std::string segment_name(std::size_t shard) {
  char name[96];
  std::snprintf(name, sizeof(name), "seg-%03zu-%ld-%" PRIu64 ".jsonl", shard,
                static_cast<long>(::getpid()),
                g_segment_seq.fetch_add(1, std::memory_order_relaxed) + 1);
  return name;
}

}  // namespace

RunStore::RunStore(std::filesystem::path dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, 4096);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("cannot create run store directory " + dir_.string() +
                     ": " + ec.message());
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  claims_ = std::make_unique<ClaimDir>(dir_ / "claims");

  // Mark the store open: LOCK_SH here, so compact() (which upgrades to
  // LOCK_EX) can tell when any other process still has the directory open.
  const std::filesystem::path lock_path = dir_ / "store.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ >= 0) {
    (void)::flock(lock_fd_, LOCK_SH);  // unsupported flock degrades silently
  }

  std::lock_guard scan_lock(scan_mutex_);
  refresh_locked();
}

RunStore::~RunStore() {
  std::lock_guard scan_lock(scan_mutex_);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->fd >= 0) {
      ::close(shard->fd);
      shard->fd = -1;
    }
  }
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

std::size_t RunStore::shard_of(std::string_view key) const {
  return static_cast<std::size_t>(fnv1a64(key) % options_.shards);
}

void RunStore::refresh() {
  std::lock_guard scan_lock(scan_mutex_);
  refresh_locked();
}

void RunStore::refresh_locked() {
  std::vector<std::string> own;
  {
    std::lock_guard own_lock(own_mutex_);
    own = own_segments_;
  }
  std::vector<std::pair<std::string, std::uintmax_t>> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || !is_segment_file(entry.path())) continue;
    std::string name = entry.path().filename().string();
    if (std::find(own.begin(), own.end(), name) != own.end()) {
      continue;  // our own appends are already in memory
    }
    std::error_code ec;
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;
    files.emplace_back(std::move(name), size);
  }
  // Name order keeps replay deterministic (duplicate keys across files are
  // deterministically equal anyway — they describe the same inputs).
  std::sort(files.begin(), files.end());

  for (const auto& [name, size] : files) {
    std::uint64_t& cursor = cursors_[name];
    if (size <= cursor) continue;
    std::ifstream in(dir_ / name, std::ios::binary);
    if (!in) continue;
    in.seekg(static_cast<std::streamoff>(cursor));
    std::string chunk(static_cast<std::size_t>(size - cursor), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(in.gcount()));

    // Consume only '\n'-terminated lines: a live writer's torn tail is
    // simply not ours yet, and will be once its newline lands.
    const std::size_t end = chunk.rfind('\n');
    if (end == std::string::npos) continue;
    std::size_t begin = 0;
    while (begin <= end) {
      const std::size_t nl = chunk.find('\n', begin);
      std::string_view line(chunk.data() + begin, nl - begin);
      begin = nl + 1;
      if (line.empty()) continue;
      try {
        std::string key;
        metrics::RunSummary summary;
        if (RecordParser(line).parse(key, summary)) {
          Shard& shard = *shards_[shard_of(key)];
          std::lock_guard lock(shard.mutex);
          shard.index.insert_or_assign(std::move(key), std::move(summary));
        }
        // A foreign schema version parses fine but is never served.
      } catch (const StoreError&) {
        // A killed writer leaves at most one torn line at a segment's tail;
        // anything else unreadable is equally just a missing cache entry.
        ++corrupt_lines_;
      }
    }
    cursor += end + 1;
  }
}

void RunStore::open_shard_segment(Shard& shard, std::size_t shard_index) {
  const std::string name = segment_name(shard_index);
  shard.path = dir_ / name;
  shard.fd = ::open(shard.path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (shard.fd < 0) {
    throw StoreError("cannot open run store segment " + shard.path.string() +
                     ": " + std::strerror(errno));
  }
  std::lock_guard own_lock(own_mutex_);
  own_segments_.push_back(name);
}

std::optional<metrics::RunSummary> RunStore::find(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::optional<metrics::RunSummary> found;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) found = it->second;
  }
  std::lock_guard counters(counter_mutex_);
  if (found) ++hits_; else ++misses_;
  return found;
}

void RunStore::put(const std::string& key,
                   const metrics::RunSummary& summary) {
  const std::string record = encode_record(key, summary);
  const std::size_t shard_index = shard_of(key);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(shard.mutex);
    if (shard.fd < 0) open_shard_segment(shard, shard_index);
    // One whole line per write(2): durable to the OS immediately, and
    // atomic against concurrent appenders on the same directory.
    write_full(shard.fd, record, shard.path.string());
    shard.index.insert_or_assign(key, summary);
  }
  std::lock_guard counters(counter_mutex_);
  ++appended_;
}

void RunStore::flush() {
  // put() writes each record straight through with write(2); there is no
  // userspace buffer left to flush.
}

std::optional<Claim> RunStore::try_claim(std::string_view unit_key) {
  return claims_->try_claim(unit_key);
}

ClaimDir::Stats RunStore::claim_stats() const { return claims_->scan(); }

void RunStore::for_each(
    const std::function<void(const std::string&, const metrics::RunSummary&)>&
        fn) const {
  std::vector<std::pair<std::string, metrics::RunSummary>> snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    snapshot.insert(snapshot.end(), shard->index.begin(), shard->index.end());
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, summary] : snapshot) fn(key, summary);
}

void RunStore::compact() {
  std::lock_guard scan_lock(scan_mutex_);

  // Refuse while any worker is mid-unit: its result is about to be
  // appended to a segment this rewrite would delete.
  const ClaimDir::Stats claims = claims_->scan();
  if (claims.held > 0) {
    throw StoreError("refusing to compact " + dir_.string() + ": " +
                     std::to_string(claims.held) +
                     " work-unit claim(s) held by live workers");
  }
  // Refuse while any other process has the store open (it may append at
  // any time). Our own LOCK_SH upgrades to LOCK_EX only when we are the
  // sole opener.
  if (lock_fd_ >= 0 && ::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EWOULDBLOCK) {
      throw StoreError("refusing to compact " + dir_.string() +
                       ": another process has this store open");
    }
    // flock unsupported here: the claims check above is the only guard.
  }

  // Fold in anything dead writers completed before they went away, then
  // freeze our own writers for the rewrite.
  refresh_locked();
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const auto& shard : shards_) shard_locks.emplace_back(shard->mutex);

  std::vector<std::filesystem::path> old_segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() && is_segment_file(entry.path())) {
      old_segments.push_back(entry.path());
    }
  }

  for (const auto& shard : shards_) {
    if (shard->fd >= 0) {
      ::close(shard->fd);
      shard->fd = -1;
    }
  }
  {
    std::lock_guard own_lock(own_mutex_);
    own_segments_.clear();
  }
  cursors_.clear();

  // Per shard: write the shard's records in key order into a tmp file,
  // then atomically publish it as a fresh segment. A crash before a
  // rename leaves old segments untouched; a crash after leaves
  // duplicates, which reload deduplicates. Sorted output makes repeated
  // compactions byte-stable.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (shard.index.empty()) continue;
    std::vector<const std::string*> keys;
    keys.reserve(shard.index.size());
    for (const auto& [key, summary] : shard.index) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    char tmp_name[48];
    std::snprintf(tmp_name, sizeof(tmp_name), "compact-%03zu.tmp", i);
    const std::filesystem::path tmp = dir_ / tmp_name;
    std::uint64_t bytes = 0;
    {
      std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
      if (!out) throw StoreError("cannot write " + tmp.string());
      for (const std::string* key : keys) {
        const std::string record = encode_record(*key, shard.index.at(*key));
        out << record;
        bytes += record.size();
      }
      out.flush();
      if (!out) throw StoreError("failed writing " + tmp.string());
    }
    const std::string name = segment_name(i);
    std::filesystem::rename(tmp, dir_ / name);
    // Already in memory in full: mark the fresh segment fully consumed.
    cursors_[name] = bytes;
  }

  for (const auto& seg : old_segments) {
    std::error_code ec;
    std::filesystem::remove(seg, ec);  // best effort; duplicates are benign
  }
  // Released claim files are unlinked by their owners; anything left here
  // is a dead worker's leftover (none are held — checked above).
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(claims_->dir(), ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".claim") {
      std::error_code rm;
      std::filesystem::remove(entry.path(), rm);
    }
  }

  if (lock_fd_ >= 0) (void)::flock(lock_fd_, LOCK_SH);
}

RunStore::Stats RunStore::stats() const {
  Stats stats;
  stats.shards = options_.shards;
  {
    std::lock_guard scan_lock(scan_mutex_);
    stats.segments = cursors_.size();
    stats.corrupt_lines = corrupt_lines_;
  }
  {
    std::lock_guard own_lock(own_mutex_);
    stats.segments += own_segments_.size();
  }
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    stats.records += shard->index.size();
  }
  std::lock_guard counters(counter_mutex_);
  stats.hits = hits_;
  stats.misses = misses_;
  stats.appended = appended_;
  return stats;
}

MergeReport merge_into(RunStore& dest,
                       const std::filesystem::path& source_dir) {
  RunStore source(source_dir);
  MergeReport report;
  source.for_each([&](const std::string& key,
                      const metrics::RunSummary& summary) {
    ++report.scanned;
    if (auto existing = dest.find(key)) {
      if (!metrics::deterministic_equal(*existing, summary)) {
        throw StoreError(
            "merge conflict on fp " + fingerprint_hex(key) + " (" +
            source_dir.string() + " vs " + dest.dir().string() +
            "): same key, different deterministic content — one store is "
            "wrong, refusing to pick; key: " + key);
      }
      ++report.identical;
      return;
    }
    dest.put(key, summary);
    ++report.added;
  });
  return report;
}

}  // namespace epi::store
