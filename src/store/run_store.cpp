#include "store/run_store.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "core/error.hpp"
#include "store/fingerprint.hpp"

namespace epi::store {
namespace {

// --- record encoding ----------------------------------------------------------
//
// One flat JSON object per line. The writer below and the reader further down
// are the only parties to the format; both are strict, and the reader treats
// any deviation as a corrupt line (skipped and counted, never fatal).

/// Appends a double with round-trip precision. %.17g is max_digits10 for
/// IEEE-754 binary64: strtod() restores the exact bit pattern.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// JSON string escape for the key field (keys are ASCII we generate, but a
/// trace path or scenario name could smuggle in quotes or backslashes).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string encode_record(const std::string& key,
                          const metrics::RunSummary& s) {
  std::string out;
  out.reserve(640);
  out += "{\"schema\":";
  append_u64(out, kSchemaVersion);
  out += ",\"fp\":\"";
  out += fingerprint_hex(key);
  out += "\",\"key\":";
  append_json_string(out, key);
  const auto field_u64 = [&](const char* name, std::uint64_t v) {
    out += ",\"";
    out += name;
    out += "\":";
    append_u64(out, v);
  };
  const auto field_double = [&](const char* name, double v) {
    out += ",\"";
    out += name;
    out += "\":";
    append_double(out, v);
  };
  field_u64("load", s.load);
  field_u64("seed", s.seed);
  field_double("delivery_ratio", s.delivery_ratio);
  out += ",\"complete\":";
  out += s.complete ? "true" : "false";
  field_double("completion_time", s.completion_time);
  field_double("mean_bundle_delay", s.mean_bundle_delay);
  field_double("buffer_occupancy", s.buffer_occupancy);
  field_double("duplication_rate", s.duplication_rate);
  field_u64("bundle_transmissions", s.bundle_transmissions);
  field_u64("control_records", s.control_records);
  field_u64("contacts", s.contacts);
  field_u64("drops_expired", s.drops_expired);
  field_u64("drops_evicted", s.drops_evicted);
  field_u64("drops_immunized", s.drops_immunized);
  field_double("end_time", s.end_time);
  out += ",\"flow_delivery\":[";
  for (std::size_t i = 0; i < s.flow_delivery.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, s.flow_delivery[i]);
  }
  out += ']';
  field_double("perf_wall_seconds", s.perf.wall_seconds);
  field_u64("perf_events_processed", s.perf.events_processed);
  field_u64("perf_peak_queue_depth", s.perf.peak_queue_depth);
  field_u64("perf_transfers", s.perf.transfers);
  field_u64("perf_contacts", s.perf.contacts);
  field_u64("perf_slots_lost", s.perf.slots_lost);
  field_u64("perf_down_slots", s.perf.down_slots);
  field_u64("perf_control_dropped", s.perf.control_dropped);
  field_u64("perf_contacts_truncated", s.perf.contacts_truncated);
  field_u64("perf_transfers_refused_full", s.perf.transfers_refused_full);
  out += "}\n";
  return out;
}

// --- record decoding ----------------------------------------------------------

/// Minimal parser for the flat records encode_record() writes. Throws
/// StoreError on any malformation; the caller turns that into a skipped
/// line. Unknown fields are ignored so future additive fields stay
/// readable by old builds.
class RecordParser {
 public:
  explicit RecordParser(std::string_view line) : in_(line) {}

  /// Parses the line into (key, summary). Returns false when the record's
  /// schema version is not ours (a valid line we must not reuse).
  bool parse(std::string& key, metrics::RunSummary& s) {
    expect('{');
    bool schema_ok = true;
    bool saw_key = false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) expect(',');
      first = false;
      const std::string name = parse_string();
      expect(':');
      if (name == "schema") {
        schema_ok = parse_u64() == kSchemaVersion;
      } else if (name == "key") {
        key = parse_string();
        saw_key = true;
      } else if (name == "fp") {
        (void)parse_string();  // derived from key; not trusted
      } else if (name == "load") {
        s.load = narrow_u32(parse_u64());
      } else if (name == "seed") {
        s.seed = parse_u64();
      } else if (name == "delivery_ratio") {
        s.delivery_ratio = parse_double();
      } else if (name == "complete") {
        s.complete = parse_bool();
      } else if (name == "completion_time") {
        s.completion_time = parse_double();
      } else if (name == "mean_bundle_delay") {
        s.mean_bundle_delay = parse_double();
      } else if (name == "buffer_occupancy") {
        s.buffer_occupancy = parse_double();
      } else if (name == "duplication_rate") {
        s.duplication_rate = parse_double();
      } else if (name == "bundle_transmissions") {
        s.bundle_transmissions = parse_u64();
      } else if (name == "control_records") {
        s.control_records = parse_u64();
      } else if (name == "contacts") {
        s.contacts = parse_u64();
      } else if (name == "drops_expired") {
        s.drops_expired = parse_u64();
      } else if (name == "drops_evicted") {
        s.drops_evicted = parse_u64();
      } else if (name == "drops_immunized") {
        s.drops_immunized = parse_u64();
      } else if (name == "end_time") {
        s.end_time = parse_double();
      } else if (name == "flow_delivery") {
        s.flow_delivery = parse_double_array();
      } else if (name == "perf_wall_seconds") {
        s.perf.wall_seconds = parse_double();
      } else if (name == "perf_events_processed") {
        s.perf.events_processed = parse_u64();
      } else if (name == "perf_peak_queue_depth") {
        s.perf.peak_queue_depth = parse_u64();
      } else if (name == "perf_transfers") {
        s.perf.transfers = parse_u64();
      } else if (name == "perf_contacts") {
        s.perf.contacts = parse_u64();
      } else if (name == "perf_slots_lost") {
        s.perf.slots_lost = parse_u64();
      } else if (name == "perf_down_slots") {
        s.perf.down_slots = parse_u64();
      } else if (name == "perf_control_dropped") {
        s.perf.control_dropped = parse_u64();
      } else if (name == "perf_contacts_truncated") {
        s.perf.contacts_truncated = parse_u64();
      } else if (name == "perf_transfers_refused_full") {
        s.perf.transfers_refused_full = parse_u64();
      } else {
        skip_value();  // forward compatibility
      }
    }
    skip_ws();
    if (pos_ != in_.size()) corrupt("trailing bytes after record");
    if (!saw_key) corrupt("record without key");
    return schema_ok;
  }

 private:
  [[noreturn]] static void corrupt(const char* why) {
    throw StoreError(std::string("corrupt record: ") + why);
  }

  char peek() const {
    if (pos_ >= in_.size()) corrupt("unexpected end of line");
    return in_[pos_];
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) corrupt("unexpected character");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > in_.size()) corrupt("bad \\u escape");
          unsigned code = 0;
          const auto [p, ec] = std::from_chars(
              in_.data() + pos_, in_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || p != in_.data() + pos_ + 4 || code > 0x7f) {
            corrupt("bad \\u escape");
          }
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default: corrupt("unknown escape");
      }
    }
  }

  std::string_view number_token() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a') {  // inf / nan spellings from %g
        ++pos_;
      } else {
        break;
      }
    }
    if (begin == pos_) corrupt("expected a number");
    return in_.substr(begin, pos_ - begin);
  }

  double parse_double() {
    const std::string token(number_token());
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) corrupt("bad double");
    return v;
  }

  std::uint64_t parse_u64() {
    const std::string_view token = number_token();
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      corrupt("bad integer");
    }
    return v;
  }

  static std::uint32_t narrow_u32(std::uint64_t v) {
    if (v > 0xffffffffULL) corrupt("integer out of range");
    return static_cast<std::uint32_t>(v);
  }

  bool parse_bool() {
    skip_ws();
    if (in_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return true;
    }
    if (in_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return false;
    }
    corrupt("expected a boolean");
  }

  std::vector<double> parse_double_array() {
    expect('[');
    std::vector<double> out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_double());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') corrupt("bad array separator");
    }
  }

  /// Skips an unknown scalar or flat array value (forward compatibility).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '[') {
      (void)parse_double_array();
    } else if (c == 't' || c == 'f') {
      (void)parse_bool();
    } else {
      (void)number_token();
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

bool is_segment_file(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.starts_with("seg-") && name.ends_with(".jsonl");
}

}  // namespace

RunStore::RunStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("cannot create run store directory " + dir_.string() +
                     ": " + ec.message());
  }
  load_segments();
}

RunStore::~RunStore() { flush(); }

void RunStore::load_segments() {
  std::vector<std::filesystem::path> segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() && is_segment_file(entry.path())) {
      segments.push_back(entry.path());
    }
  }
  // Name order == creation order (zero-padded index first), so later
  // segments win on duplicate keys.
  std::sort(segments.begin(), segments.end());
  stats_.segments = segments.size();

  for (const auto& path : segments) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        std::string key;
        metrics::RunSummary summary;
        if (RecordParser(line).parse(key, summary)) {
          index_.insert_or_assign(std::move(key), std::move(summary));
        }
        // A foreign schema version parses fine but is never served.
      } catch (const StoreError&) {
        // A killed writer leaves at most one torn line at a segment's tail;
        // anything else unreadable is equally just a missing cache entry.
        ++stats_.corrupt_lines;
      }
    }
  }
  stats_.records = index_.size();
}

void RunStore::open_active_segment() {
  // One segment per writing process: an index one past the largest on disk,
  // made collision-proof across concurrent openers by the pid suffix.
  std::size_t next = 1;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || !is_segment_file(entry.path())) continue;
    const std::string name = entry.path().filename().string();
    std::size_t index = 0;
    const char* begin = name.c_str() + 4;  // past "seg-"
    const auto [p, ec] = std::from_chars(begin, name.c_str() + name.size(),
                                         index);
    (void)p;
    if (ec == std::errc{} && index >= next) next = index + 1;
  }
  char name[64];
  std::snprintf(name, sizeof(name), "seg-%05zu-%ld.jsonl", next,
                static_cast<long>(::getpid()));
  active_path_ = dir_ / name;
  active_.open(active_path_, std::ios::app);
  if (!active_) {
    throw StoreError("cannot open run store segment " +
                     active_path_.string());
  }
  ++stats_.segments;
}

std::optional<metrics::RunSummary> RunStore::find(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void RunStore::put(const std::string& key,
                   const metrics::RunSummary& summary) {
  const std::string record = encode_record(key, summary);
  std::lock_guard lock(mutex_);
  if (!active_.is_open()) open_active_segment();
  active_ << record;
  // Flush to the OS per record: a killed process loses at most the line
  // being written (and reload tolerates that torn tail).
  active_.flush();
  index_.insert_or_assign(key, summary);
  ++stats_.appended;
  stats_.records = index_.size();
}

void RunStore::flush() {
  std::lock_guard lock(mutex_);
  if (active_.is_open()) active_.flush();
}

void RunStore::compact() {
  std::lock_guard lock(mutex_);
  if (active_.is_open()) {
    active_.flush();
    active_.close();
  }

  std::vector<std::filesystem::path> old_segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() && is_segment_file(entry.path())) {
      old_segments.push_back(entry.path());
    }
  }

  // Write everything into a tmp file, then atomically publish it as the next
  // segment. A crash before the rename leaves the old segments untouched; a
  // crash after it leaves duplicates, which reload deduplicates.
  const std::filesystem::path tmp = dir_ / "compact.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw StoreError("cannot write " + tmp.string());
    for (const auto& [key, summary] : index_) {
      out << encode_record(key, summary);
    }
    out.flush();
    if (!out) throw StoreError("failed writing " + tmp.string());
  }
  std::size_t next = 1;
  for (const auto& seg : old_segments) {
    const std::string name = seg.filename().string();
    std::size_t index = 0;
    const auto [p, ec] = std::from_chars(
        name.c_str() + 4, name.c_str() + name.size(), index);
    (void)p;
    if (ec == std::errc{} && index >= next) next = index + 1;
  }
  char name[64];
  std::snprintf(name, sizeof(name), "seg-%05zu-%ld.jsonl", next,
                static_cast<long>(::getpid()));
  std::filesystem::rename(tmp, dir_ / name);
  for (const auto& seg : old_segments) {
    std::error_code ec;
    std::filesystem::remove(seg, ec);  // best effort; duplicates are benign
  }
  stats_.segments = 1;
}

RunStore::Stats RunStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace epi::store
