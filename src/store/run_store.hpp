// RunStore: a persistent, content-addressed cache of RunSummary values.
//
// Layout: a directory of append-only JSONL segment files (`seg-*.jsonl`),
// one JSON record per completed run:
//
//   {"schema":1,"fp":"9c0f...","key":"schema=1|scenario=...","load":25,...}
//
// Durability model:
//   * put() appends one line and flushes it to the OS, so a killed process
//     (SIGKILL, OOM, power-button) loses at most the record being written;
//   * reload tolerates a corrupt or truncated final line — and, defensively,
//     corrupt lines anywhere — by skipping them (counted in stats);
//   * compact() rewrites all live records into a single fresh segment via
//     the tmp+rename idiom, so a crash mid-compaction never loses data
//     (worst case: old segments survive next to the new one; duplicate
//     records are idempotent because cached results are bit-identical).
//
// Every numeric field is serialized with max_digits10 precision, so a
// summary read back from disk is bit-identical to the one written — the
// invariant that lets sweeps mix cached and fresh runs freely.
//
// Concurrency: find()/put()/stats() are thread-safe (one mutex); a store is
// meant to be owned by one process at a time, but concurrent processes on
// POSIX degrade gracefully because each process appends to its own segment.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "metrics/summary.hpp"

namespace epi::store {

class RunStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir` and loads every
  /// segment. Throws StoreError when the directory cannot be created.
  explicit RunStore(std::filesystem::path dir);

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;
  ~RunStore();

  /// Cached summary for `key`, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<metrics::RunSummary> find(
      const std::string& key);

  /// Caches `summary` under `key`: updates the in-memory index and durably
  /// appends one record to the active segment (opened lazily on first put).
  void put(const std::string& key, const metrics::RunSummary& summary);

  /// Flushes the active segment to the OS (put() already flushes per
  /// record; this is a cheap no-op barrier for end-of-sweep callers).
  void flush();

  /// Rewrites every live record into one fresh segment (tmp+rename), then
  /// removes the old segments. Call when segment count grows unwieldy.
  void compact();

  struct Stats {
    std::size_t records = 0;        ///< live (deduplicated) records
    std::size_t segments = 0;       ///< segment files on disk at open
    std::size_t corrupt_lines = 0;  ///< lines skipped on load
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t appended = 0;       ///< records written by this process
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  void load_segments();
  void open_active_segment();  // callers hold mutex_

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, metrics::RunSummary> index_;
  std::ofstream active_;       // lazily opened append stream
  std::filesystem::path active_path_;
  Stats stats_;
};

}  // namespace epi::store
