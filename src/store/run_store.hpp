// RunStore: a persistent, content-addressed, multi-writer cache of
// RunSummary values.
//
// Layout: a directory of append-only JSONL segment files sharded by key
// fingerprint —
//
//   seg-<shard>-<pid>-<seq>.jsonl     shard = fnv1a64(key) % shard_count
//   claims/<fp>.claim                 in-flight work units (see claim.hpp)
//   store.lock                        open-store marker (LOCK_SH per opener)
//
// one JSON record per completed run:
//
//   {"schema":2,"fp":"9c0f...","key":"schema=2|scenario=...","load":25,...}
//
// Multi-writer model:
//   * Every writing process appends to its own per-shard files (the
//     <pid>-<seq> suffix makes names collision-proof), opened O_APPEND and
//     written one whole line per ::write(), so concurrent stores on one
//     directory never interleave bytes and never contend on a file.
//   * Readers union every `seg-*.jsonl` regardless of shard count or
//     naming vintage, so any (threads × processes × shard count) mix sees
//     the same records — and pre-sharding stores load unchanged.
//   * refresh() incrementally tails peers' segments (byte-offset cursors,
//     only '\n'-terminated lines are consumed) so a long-lived store sees
//     records appended by concurrent processes without reopening.
//   * try_claim() hands out advisory-locked work units so N invocations of
//     run_sweep_on partition pending runs instead of duplicating them.
//
// Durability model:
//   * put() appends one line with a single write(2), so a killed process
//     (SIGKILL, OOM, power-button) loses at most the record being written;
//   * reload tolerates a corrupt or truncated final line — and,
//     defensively, corrupt lines anywhere — by skipping them (counted in
//     stats); a partial tail of a *live* writer is simply not consumed
//     until its newline arrives;
//   * compact() rewrites live records into fresh per-shard segments via
//     tmp+rename, and refuses while any other process has the store open
//     (store.lock) or any claim is held — it never drops a concurrent
//     writer's appends.
//
// Every numeric field is serialized with max_digits10 precision, so a
// summary read back from disk is bit-identical to the one written — the
// invariant that lets sweeps mix cached and fresh runs freely, across any
// number of producing processes.
//
// The record schema version is unchanged by sharding: records are
// byte-identical to pre-sharding stores, readers never depended on segment
// names, and simulation semantics did not move — only file layout did.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "metrics/summary.hpp"
#include "store/claim.hpp"

namespace epi::store {

struct StoreOptions {
  /// Number of fingerprint shards for *newly written* segments. Purely a
  /// contention knob: readers union all segments, so any value (and any
  /// mix of values across processes) yields identical contents.
  std::size_t shards = 8;
};

class RunStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir` and loads every
  /// segment. Holds a shared advisory lock on `store.lock` for the
  /// store's lifetime (compact() needs the exclusive upgrade). Throws
  /// StoreError when the directory cannot be created.
  explicit RunStore(std::filesystem::path dir, StoreOptions options = {});

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;
  ~RunStore();

  /// Cached summary for `key`, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<metrics::RunSummary> find(
      const std::string& key);

  /// Caches `summary` under `key`: updates the in-memory index and durably
  /// appends one record to the key's shard segment (opened lazily).
  void put(const std::string& key, const metrics::RunSummary& summary);

  /// No-op barrier retained for end-of-sweep callers: put() already hands
  /// each record to the OS with an unbuffered write(2).
  void flush();

  /// Folds in records appended by other processes since open/last refresh.
  /// Incremental (per-file byte cursors); a torn tail still being written
  /// is left unconsumed, not counted corrupt. Thread-safe.
  void refresh();

  /// Rewrites every live record into fresh per-shard segments (tmp+rename,
  /// sorted by key for byte-stable output), then removes old segments.
  /// Refuses with StoreError while another process has the store open or
  /// any work-unit claim is held, so a concurrent writer's appends are
  /// never dropped. Also sweeps released/stale claim files.
  void compact();

  /// Claims the work unit `unit_key` (usually a run key, or a
  /// "figure/<id>" task key), or nullopt when a live worker owns it. After
  /// claiming a run unit, re-check the store (refresh() + find()) before
  /// executing: the previous owner may have completed it. See claim.hpp.
  [[nodiscard]] std::optional<Claim> try_claim(std::string_view unit_key);

  /// Claim-directory census (held / reclaimable / stuck).
  [[nodiscard]] ClaimDir::Stats claim_stats() const;

  /// Visits every live record in key-sorted order (snapshot taken under
  /// the shard locks; the callback runs unlocked).
  void for_each(
      const std::function<void(const std::string& key,
                               const metrics::RunSummary& summary)>& fn)
      const;

  struct Stats {
    std::size_t records = 0;        ///< live (deduplicated) records
    std::size_t segments = 0;       ///< segment files known
    std::size_t shards = 0;         ///< shard count for new segments
    std::size_t corrupt_lines = 0;  ///< lines skipped on load/refresh
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t appended = 0;       ///< records written by this store
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, metrics::RunSummary> index;
    int fd = -1;  ///< lazily opened O_APPEND segment owned by this store
    std::filesystem::path path;
  };

  [[nodiscard]] std::size_t shard_of(std::string_view key) const;
  void open_shard_segment(Shard& shard, std::size_t shard_index);
  void refresh_locked();  // callers hold scan_mutex_

  std::filesystem::path dir_;
  StoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ClaimDir> claims_;
  int lock_fd_ = -1;  ///< store.lock descriptor, LOCK_SH while open

  /// Guards the refresh cursors; ordering: scan_mutex_ before any shard
  /// mutex, never the reverse.
  mutable std::mutex scan_mutex_;
  std::unordered_map<std::string, std::uint64_t> cursors_;  // name -> bytes
  std::size_t corrupt_lines_ = 0;

  /// Guards own_segments_ only. Always taken last (it is acquired under a
  /// shard mutex by the lazy segment open, and under scan_mutex_ by
  /// refresh), so it must never wrap another lock.
  mutable std::mutex own_mutex_;
  std::vector<std::string> own_segments_;  // names this store appends to

  mutable std::mutex counter_mutex_;  // hits/misses/appended
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t appended_ = 0;
};

/// Result of merging one source directory into a destination store.
struct MergeReport {
  std::size_t scanned = 0;    ///< records read from the source
  std::size_t added = 0;      ///< records new to the destination
  std::size_t identical = 0;  ///< already present with equal content
};

/// Unions the store at `source_dir` into `dest` (in key-sorted order, so
/// repeated merges are idempotent and byte-stable). Records already in
/// `dest` with deterministically equal content are skipped; a key whose
/// source and destination records disagree on any deterministic field
/// raises StoreError — two stores claiming different results for the same
/// inputs means one of them is wrong, and merge refuses to pick.
/// (Wall-clock perf timings legitimately differ across machines and are
/// not compared.)
MergeReport merge_into(RunStore& dest, const std::filesystem::path& source_dir);

}  // namespace epi::store
