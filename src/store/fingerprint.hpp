// Fingerprint: the stable identity of a cached run.
//
// A run's outcome is fully determined by its configuration — the mobility
// generator's parameters, the protocol's parameters, the flow coordinates
// (load, replication, master seed) and the engine constants (buffer
// capacity, slot length, session gap, horizon). The store keys each
// RunSummary by a *canonical key string* spelling out every one of those
// fields at full precision, plus a schema version that is bumped whenever
// engine semantics change in a way that invalidates old results.
//
// The key string is the identity (lookups compare it byte-for-byte, so hash
// collisions are harmless); the 64-bit FNV-1a fingerprint is a compact
// handle used for display and as a fast index.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace epi::store {

/// Bump when a simulation-semantics change makes previously cached
/// summaries wrong for the same key string (e.g. a metric definition
/// change). Purely additive engine changes that keep results bit-identical
/// do not require a bump.
///
/// v2: keys carry the fault-plan block and records carry the deterministic
/// fault counters (perf_slots_lost et al.).
inline constexpr std::uint32_t kSchemaVersion = 2;

/// 64-bit FNV-1a over `bytes` (stable across platforms and builds).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Lower-case 16-hex-digit rendering of fnv1a64(key).
[[nodiscard]] std::string fingerprint_hex(std::string_view key);

}  // namespace epi::store
