// Work-unit claims: the advisory-lock protocol that lets N concurrent
// processes partition a sweep over one shared run store without duplicating
// work (ROADMAP item 3; the partition-by-fingerprint idiom of up4w-core's
// swarm dispatch tables).
//
// One claim file per work unit, named by the unit key's FNV-1a fingerprint
// (`claims/<fp>.claim` under the store directory). Ownership is an
// exclusive flock(2) held on the file for the lifetime of the unit's
// execution:
//
//   * try_claim() opens the file (creating it if needed) and takes
//     LOCK_EX | LOCK_NB. Failure means a live worker owns the unit —
//     skip it and await its result.
//   * The kernel releases a flock when its holder dies, however it dies
//     (SIGKILL, OOM, power loss of the whole box releases everything), so
//     a killed worker's units become reclaimable the moment it is gone —
//     no timeout ever gates crash recovery.
//   * Claimants MUST re-check the store for the unit's record *after*
//     acquiring the claim: between a cache miss and the claim, another
//     worker may have completed the unit and released (released claim
//     files are unlinked). The claim guarantees mutual exclusion, the
//     re-check guarantees exactly-once execution.
//   * release() unlinks the file before closing the descriptor, so the
//     lock is still held while the name disappears; try_claim() verifies
//     (fstat == stat) that the descriptor it locked still names the claim
//     path and retries otherwise, closing the unlink/re-create race.
//
// Filesystems without working flock (some NFS setups) degrade to an
// O_EXCL-create protocol where a claim older than kStaleClaimSeconds may
// be stolen; that fallback is best-effort (a steal can race) and only
// risks duplicated work, never wrong results — records are idempotent.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string_view>

namespace epi::store {

/// RAII ownership of one claimed work unit. Move-only; releasing (or
/// destroying) unlinks the claim file and drops the lock.
class Claim {
 public:
  Claim() = default;
  Claim(Claim&& other) noexcept;
  Claim& operator=(Claim&& other) noexcept;
  ~Claim();
  Claim(const Claim&) = delete;
  Claim& operator=(const Claim&) = delete;

  /// True while this handle owns the unit.
  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

  /// Unlinks the claim file and releases the lock (idempotent). Called by
  /// the destructor; call it explicitly to release before going out of
  /// scope.
  void release() noexcept;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  friend class ClaimDir;
  Claim(int fd, std::filesystem::path path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::filesystem::path path_;
};

class ClaimDir {
 public:
  /// Age past which a claim may be stolen when flock is unavailable, and
  /// past which scan() reports a still-locked claim as `stuck` (a live but
  /// hung owner — never stolen, only reported).
  static constexpr double kStaleClaimSeconds = 900.0;

  /// Opens (creating if needed) the claim directory. Throws StoreError
  /// when it cannot be created.
  explicit ClaimDir(std::filesystem::path dir);

  /// Claims the unit identified by `unit_key`, or nullopt when a live
  /// worker holds it. The claim file records the owner pid and the key
  /// for debuggability; its mtime is the claim time.
  [[nodiscard]] std::optional<Claim> try_claim(std::string_view unit_key);

  struct Stats {
    std::size_t total = 0;        ///< claim files present
    std::size_t held = 0;         ///< flock currently held by a live owner
    std::size_t reclaimable = 0;  ///< owner gone; next try_claim wins it
    std::size_t stuck = 0;        ///< held longer than kStaleClaimSeconds
  };
  /// Probes every claim file (a transient non-blocking flock each; benign
  /// to racing claimants, who simply defer and retry).
  [[nodiscard]] Stats scan() const;

  /// True when any claim is held by a live owner. Cheap form of scan()
  /// used by RunStore::compact() to refuse while writers are mid-unit.
  [[nodiscard]] bool any_held() const;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  std::filesystem::path dir_;
  bool flock_works_ = true;  // flipped on ENOTSUP/ENOLCK; see fallback note
};

}  // namespace epi::store
