// SigintDrain: cooperative Ctrl-C handling for resumable sweeps.
//
// While a guard is alive, the first SIGINT sets a flag instead of killing
// the process: the sweep loop skips runs that have not started, lets
// in-flight runs finish (each is appended to the run store as it
// completes), flushes the store and raises SweepInterrupted — so the
// process exits cleanly and a rerun of the same command resumes from the
// store. A second SIGINT hard-exits immediately (the escape hatch when a
// drain takes too long).
//
// The handler itself only writes a sig_atomic_t flag — fully async-signal
// safe. Guards do not nest; the one caller is the bench CLI scaffolding.
#pragma once

namespace epi::store {

class SigintDrain {
 public:
  /// Installs the drain handler (saving the previous disposition).
  SigintDrain();
  /// Restores the previous handler.
  ~SigintDrain();
  SigintDrain(const SigintDrain&) = delete;
  SigintDrain& operator=(const SigintDrain&) = delete;

  /// True once SIGINT has been received (process-wide).
  [[nodiscard]] static bool interrupted() noexcept;

  /// Clears the flag (tests; or a CLI that wants to survive the drain).
  static void reset() noexcept;
};

}  // namespace epi::store
