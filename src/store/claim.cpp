#include "store/claim.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <system_error>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/error.hpp"
#include "store/fingerprint.hpp"

namespace epi::store {
namespace {

/// Writes all of `text` to `fd`, retrying on EINTR and short writes.
void write_full(int fd, std::string_view text) {
  while (!text.empty()) {
    const ssize_t n = ::write(fd, text.data(), text.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stamp is advisory; losing it never affects correctness
    }
    text.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// True when `errno_value` means "this filesystem has no flock support".
bool flock_unsupported(int errno_value) {
  return errno_value == ENOLCK || errno_value == ENOTSUP ||
         errno_value == EOPNOTSUPP || errno_value == EINVAL;
}

double age_seconds(const struct stat& st) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double now_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(now).count();
  return now_s - static_cast<double>(st.st_mtime);
}

}  // namespace

Claim::Claim(Claim&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

Claim& Claim::operator=(Claim&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Claim::~Claim() { release(); }

void Claim::release() noexcept {
  if (fd_ < 0) return;
  // Unlink while the lock is still held: a racing try_claim that opened the
  // old inode sees its fstat/stat mismatch and retries against the new name.
  ::unlink(path_.c_str());
  ::close(fd_);  // drops the flock
  fd_ = -1;
}

ClaimDir::ClaimDir(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("cannot create claim directory " + dir_.string() + ": " +
                     ec.message());
  }
}

std::optional<Claim> ClaimDir::try_claim(std::string_view unit_key) {
  const std::filesystem::path path =
      dir_ / (fingerprint_hex(unit_key) + ".claim");
  const std::string stamp = "pid=" + std::to_string(::getpid()) +
                            "\nkey=" + std::string(unit_key) + "\n";

  for (int attempt = 0; attempt < 3 && flock_works_; ++attempt) {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw StoreError("cannot open claim file " + path.string() + ": " +
                       std::strerror(errno));
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      const int err = errno;
      ::close(fd);
      if (err == EWOULDBLOCK || err == EINTR) return std::nullopt;
      if (flock_unsupported(err)) {
        flock_works_ = false;
        break;  // degrade to the O_EXCL protocol below
      }
      throw StoreError("flock failed on " + path.string() + ": " +
                       std::strerror(err));
    }
    // We hold the lock — but possibly on an inode the previous owner
    // unlinked between our open and our flock. Only a descriptor that
    // still names `path` is a valid claim.
    struct stat by_fd{};
    struct stat by_name{};
    if (::fstat(fd, &by_fd) == 0 && ::stat(path.c_str(), &by_name) == 0 &&
        by_fd.st_ino == by_name.st_ino && by_fd.st_dev == by_name.st_dev) {
      if (::ftruncate(fd, 0) == 0) write_full(fd, stamp);
      return Claim(fd, path);
    }
    ::close(fd);  // stale inode; the live file (if any) gets the next try
  }
  if (flock_works_) return std::nullopt;  // three stale-inode races in a row

  // Fallback for filesystems without flock: O_EXCL creation is the claim,
  // and only age can tell a live owner from a dead one.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
      write_full(fd, stamp);
      return Claim(fd, path);
    }
    if (errno != EEXIST) {
      throw StoreError("cannot create claim file " + path.string() + ": " +
                       std::strerror(errno));
    }
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) continue;  // vanished; retry create
    if (age_seconds(st) < kStaleClaimSeconds) return std::nullopt;
    ::unlink(path.c_str());  // stale — steal it (best effort; see header)
  }
  return std::nullopt;
}

ClaimDir::Stats ClaimDir::scan() const {
  Stats stats;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return stats;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != ".claim") {
      continue;
    }
    ++stats.total;
    const int fd = ::open(entry.path().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      ++stats.reclaimable;  // unlinked under us — owner just released
      continue;
    }
    struct stat st{};
    const bool stale =
        ::fstat(fd, &st) == 0 && age_seconds(st) > kStaleClaimSeconds;
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      ::flock(fd, LOCK_UN);
      ++stats.reclaimable;
    } else if (errno == EWOULDBLOCK) {
      ++stats.held;
      if (stale) ++stats.stuck;
    } else {
      // No flock support: only age distinguishes live from dead.
      if (stale) ++stats.reclaimable; else ++stats.held;
    }
    ::close(fd);
  }
  return stats;
}

bool ClaimDir::any_held() const { return scan().held > 0; }

}  // namespace epi::store
