#include "store/fingerprint.hpp"

#include <array>

namespace epi::store {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string fingerprint_hex(std::string_view key) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::uint64_t h = fnv1a64(key);
  std::array<char, 16> out;
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kHex[h & 0xf];
    h >>= 4;
  }
  return std::string(out.data(), out.size());
}

}  // namespace epi::store
