#include "store/interrupt.hpp"

#include <csignal>

#include <unistd.h>

namespace epi::store {
namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void (*g_previous)(int) = SIG_DFL;

void on_sigint(int) {
  if (g_interrupted != 0) {
    // Second Ctrl-C: the user wants out *now*. _exit is async-signal-safe;
    // 130 = 128 + SIGINT, the conventional interrupted-exit status.
    _exit(130);
  }
  g_interrupted = 1;
  // Async-signal-safe breadcrumb so a quiet drain does not look like a hang.
  static const char msg[] =
      "\n[store] interrupt: draining in-flight runs (Ctrl-C again to abort "
      "hard)\n";
  const auto n = write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)n;
}

}  // namespace

SigintDrain::SigintDrain() { g_previous = std::signal(SIGINT, on_sigint); }

SigintDrain::~SigintDrain() { std::signal(SIGINT, g_previous); }

bool SigintDrain::interrupted() noexcept { return g_interrupted != 0; }

void SigintDrain::reset() noexcept { g_interrupted = 0; }

}  // namespace epi::store
