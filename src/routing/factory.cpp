#include "routing/factory.hpp"

#include "core/error.hpp"
#include "routing/baselines.hpp"
#include "routing/cumulative_immunity.hpp"
#include "routing/ec_epidemic.hpp"
#include "routing/immunity_epidemic.hpp"
#include "routing/pq_epidemic.hpp"
#include "routing/pure_epidemic.hpp"
#include "routing/ttl_epidemic.hpp"

namespace epi::routing {

std::unique_ptr<Protocol> make_protocol(const ProtocolParams& params) {
  params.validate();
  switch (params.kind) {
    case ProtocolKind::kPureEpidemic:
      return std::make_unique<PureEpidemic>();
    case ProtocolKind::kPqEpidemic:
      return std::make_unique<PqEpidemic>(params.p, params.q,
                                          params.immunity_records_per_contact);
    case ProtocolKind::kFixedTtl:
      return std::make_unique<FixedTtlEpidemic>(params.fixed_ttl);
    case ProtocolKind::kDynamicTtl:
      return std::make_unique<DynamicTtlEpidemic>(
          params.ttl_multiplier, params.dynamic_ttl_fallback);
    case ProtocolKind::kEncounterCount:
      return std::make_unique<EcEpidemic>();
    case ProtocolKind::kEcTtl:
      return std::make_unique<EcTtlEpidemic>(
          params.ec_threshold, params.ec_ttl_base, params.ec_ttl_step,
          params.ec_min_evict);
    case ProtocolKind::kImmunity:
      return std::make_unique<ImmunityEpidemic>(
          params.immunity_records_per_contact);
    case ProtocolKind::kCumulativeImmunity:
      return std::make_unique<CumulativeImmunityEpidemic>();
    case ProtocolKind::kDirectDelivery:
      return std::make_unique<DirectDelivery>();
    case ProtocolKind::kSprayAndWait:
      return std::make_unique<SprayAndWait>(params.spray_copies);
  }
  throw ConfigError("unhandled protocol kind");
}

}  // namespace epi::routing
