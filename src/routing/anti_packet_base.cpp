#include "routing/anti_packet_base.hpp"

#include "routing/engine.hpp"

namespace epi::routing {

AntiPacketBase::AntiPacketBase(PurgePolicy policy,
                               std::uint32_t records_per_contact)
    : policy_(policy), records_per_contact_(records_per_contact) {}

void AntiPacketBase::on_contact_start(Engine& engine, SessionId,
                                      dtn::DtnNode& a, dtn::DtnNode& b,
                                      SimTime now) {
  // Immunity tables are unit messages pushed wholesale at each encounter
  // ("the destination transmits an immunity table for each node that it
  //  meets"; relays do the same): the signaling cost of the contact is the
  // size of both i-lists. The peer absorbs at most records_per_contact_ new
  // records per direction — N tables must be received to delete N bundles,
  // which is the slow, load-proportional dissemination the cumulative
  // enhancement eliminates.
  const std::uint64_t records = a.ilist().size() + b.ilist().size();
  engine.count_signaling(records, records * kControlRecordBytes);
  const std::size_t to_a =
      a.ilist().merge_limited(b.ilist(), records_per_contact_);
  const std::size_t to_b =
      b.ilist().merge_limited(a.ilist(), records_per_contact_);

  if (to_a > 0) apply_records(engine, a, now);
  if (to_b > 0) apply_records(engine, b, now);
}

void AntiPacketBase::on_delivered(Engine& engine, dtn::DtnNode& sender,
                                  dtn::DtnNode& destination, BundleId id,
                                  SimTime now) {
  destination.ilist().add(id);
  // The deliverer learns immediately (it is mid-contact with the
  // destination): one anti-packet crosses back.
  if (sender.ilist().add(id)) {
    engine.count_signaling(1, kControlRecordBytes);
    apply_records(engine, sender, now);
  }
}

bool AntiPacketBase::make_room(Engine& engine, dtn::DtnNode& receiver,
                               BundleId incoming, SimTime now) {
  if (!receiver.buffer().full()) return true;
  if (policy_ == PurgePolicy::kEager) {
    // Nothing lazy to reuse; defer to the configured fallback policy
    // (refuses under the drop-tail default, exactly as before).
    return Protocol::make_room(engine, receiver, incoming, now);
  }

  // Lazy overwrite: sacrifice the oldest vaccinated copy.
  const dtn::StoredBundle* victim = nullptr;
  for (const auto& entry : receiver.buffer().entries()) {
    if (receiver.ilist().immune(entry.id)) {
      victim = &entry;
      break;  // entries are in FIFO order
    }
  }
  if (victim == nullptr) {
    return Protocol::make_room(engine, receiver, incoming, now);
  }
  engine.purge(receiver, victim->id, dtn::RemoveReason::kImmunized, now);
  // A purge at the source refills the buffer; report honestly.
  return !receiver.buffer().full();
}

void AntiPacketBase::apply_records(Engine& engine, dtn::DtnNode& node,
                                   SimTime now) {
  if (policy_ != PurgePolicy::kEager) return;
  // Collect-then-purge into the engine's scratch (purging mid-iteration
  // would shuffle buffer storage under the loop). The borrow is capacity-
  // bounded by the buffer, so no per-contact allocation.
  auto lease = engine.scratch_ids();
  for (const auto& entry : node.buffer().entries()) {
    if (node.ilist().immune(entry.id)) lease.ids().push_back(entry.id);
  }
  for (const BundleId id : lease.ids()) {
    engine.purge(node, id, dtn::RemoveReason::kImmunized, now);
  }
}

}  // namespace epi::routing
