// Epidemic with TTL — fixed (Harras et al. 2005) and dynamic (paper SIII,
// enhancement 1, Algo 1).
//
// Fixed: every stored copy gets the same TTL; a successful transmission
// renews the sender's copy (and the receiver's copy starts fresh); expired
// copies are purged. The paper shows a constant TTL is a poor fit for DTNs:
// whenever the encounter interval exceeds the TTL, bundles die in the buffer
// before they can be forwarded (Fig. 14).
//
// Dynamic (Algo 1): TTL = ttl_multiplier x the interval between the storing
// node's last two encounters — sparse networks buffer longer, dense ones
// shorter. Until a node has witnessed two encounters it has no interval; the
// copy then gets `dynamic_ttl_fallback` (default: no expiry, since guessing
// a constant would reintroduce exactly the failure mode being fixed).
#pragma once

#include "routing/protocol.hpp"

namespace epi::routing {

class FixedTtlEpidemic final : public Protocol {
 public:
  explicit FixedTtlEpidemic(SimTime ttl);

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kFixedTtl;
  }

  [[nodiscard]] SimTime expiry_on_store(const dtn::DtnNode& node,
                                        const dtn::StoredBundle& copy,
                                        const dtn::DtnNode* from,
                                        SimTime now) const override;

  void after_transfer(Engine& engine, dtn::DtnNode& sender,
                      dtn::DtnNode& receiver, dtn::StoredBundle& sender_copy,
                      dtn::StoredBundle& receiver_copy,
                      SimTime now) override;

  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

 private:
  SimTime ttl_;
};

class DynamicTtlEpidemic final : public Protocol {
 public:
  DynamicTtlEpidemic(double multiplier, SimTime fallback_ttl);

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kDynamicTtl;
  }

  [[nodiscard]] SimTime expiry_on_store(const dtn::DtnNode& node,
                                        const dtn::StoredBundle& copy,
                                        const dtn::DtnNode* from,
                                        SimTime now) const override;

  void after_transfer(Engine& engine, dtn::DtnNode& sender,
                      dtn::DtnNode& receiver, dtn::StoredBundle& sender_copy,
                      dtn::StoredBundle& receiver_copy,
                      SimTime now) override;

  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

 private:
  /// Algo 1: deadline = now + multiplier * (inter-encounter interval). The
  /// interval is taken between the node's last two *encounter sessions*
  /// (contact starts within SimulationConfig::encounter_session_gap of each
  /// other form one session): the raw contact-level interval collapses to
  /// minutes inside a gathering, where several contacts begin back to back,
  /// and would give pathologically short TTLs on bursty human traces.
  [[nodiscard]] SimTime deadline_for(const dtn::DtnNode& node,
                                     const dtn::DtnNode* peer,
                                     SimTime now) const;

  double multiplier_;
  SimTime fallback_ttl_;
};

}  // namespace epi::routing
