#include "routing/protocol.hpp"

namespace epi::routing {

void Protocol::on_injected(Engine&, dtn::DtnNode&, dtn::StoredBundle&,
                           SimTime) {}

SimTime Protocol::expiry_on_store(const dtn::DtnNode&,
                                  const dtn::StoredBundle&,
                                  const dtn::DtnNode*, SimTime) const {
  return kNoExpiry;
}

void Protocol::on_contact_start(Engine&, SessionId, dtn::DtnNode&,
                                dtn::DtnNode&, SimTime) {}

void Protocol::on_contact_end(Engine&, SessionId, SimTime) {}

bool Protocol::may_offer(Engine&, SessionId, const dtn::DtnNode&,
                         const dtn::DtnNode&, const dtn::StoredBundle&, bool) {
  return true;
}

bool Protocol::make_room(Engine&, dtn::DtnNode& receiver, BundleId, SimTime) {
  // Default admission policy: refuse when full (pure epidemic, TTL and
  // immunity variants never evict; their buffers drain via TTL / purges).
  return !receiver.buffer().full();
}

void Protocol::after_transfer(Engine&, dtn::DtnNode&, dtn::DtnNode&,
                              dtn::StoredBundle&, dtn::StoredBundle&,
                              SimTime) {}

void Protocol::on_delivered(Engine&, dtn::DtnNode&, dtn::DtnNode&, BundleId,
                            SimTime) {}

}  // namespace epi::routing
