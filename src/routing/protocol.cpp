#include "routing/protocol.hpp"

#include "routing/engine.hpp"

namespace epi::routing {

void Protocol::on_injected(Engine&, dtn::DtnNode&, dtn::StoredBundle&,
                           SimTime) {}

SimTime Protocol::expiry_on_store(const dtn::DtnNode&,
                                  const dtn::StoredBundle&,
                                  const dtn::DtnNode*, SimTime) const {
  return kNoExpiry;
}

void Protocol::on_contact_start(Engine&, SessionId, dtn::DtnNode&,
                                dtn::DtnNode&, SimTime) {}

void Protocol::on_contact_end(Engine&, SessionId, SimTime) {}

bool Protocol::may_offer(Engine&, SessionId, const dtn::DtnNode&,
                         const dtn::DtnNode&, const dtn::StoredBundle&, bool) {
  return true;
}

bool Protocol::make_room(Engine& engine, dtn::DtnNode& receiver, BundleId,
                         SimTime now) {
  // Generic admission: apply the configured eviction policy. The default
  // (drop-tail) selects no victim and therefore refuses when full — the
  // paper's implicit behavior for the pure epidemic, TTL and immunity
  // variants, whose buffers otherwise drain via TTL / purges.
  if (!receiver.buffer().full()) return true;
  const dtn::BundleBuffer::EvictionQuery query{
      engine.config().eviction_policy,
      /*min_ec=*/1,
      engine.replica_counts(),
  };
  const BundleId victim = receiver.buffer().select_victim(query);
  if (victim == kInvalidBundle) return false;
  engine.purge(receiver, victim, dtn::RemoveReason::kEvicted, now);
  // Purging at the source refills the buffer immediately; only report room
  // if the eviction actually freed a slot.
  return !receiver.buffer().full();
}

void Protocol::after_transfer(Engine&, dtn::DtnNode&, dtn::DtnNode&,
                              dtn::StoredBundle&, dtn::StoredBundle&,
                              SimTime) {}

void Protocol::on_delivered(Engine&, dtn::DtnNode&, dtn::DtnNode&, BundleId,
                            SimTime) {}

}  // namespace epi::routing
