// Epidemic with (per-bundle) immunity tables (Mundur et al. 2008; paper
// SII-B). Forwarding is unrestricted (pure-epidemic style); the i-list is
// the m-list/i-list mechanism: one immunity record per delivered bundle,
// merged on every contact, purging redundant copies. Its weakness — the
// number of immunity tables is proportional to the load — is what the
// cumulative-immunity enhancement fixes.
#pragma once

#include "routing/anti_packet_base.hpp"

namespace epi::routing {

class ImmunityEpidemic final : public AntiPacketBase {
 public:
  explicit ImmunityEpidemic(std::uint32_t records_per_contact)
      : AntiPacketBase(PurgePolicy::kEager, records_per_contact) {}

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kImmunity;
  }
};

}  // namespace epi::routing
