#include "routing/baselines.hpp"

#include <cassert>

#include "routing/engine.hpp"

namespace epi::routing {
namespace {

/// Purges every copy of `holder` that `peer` has already consumed as a
/// destination (learned from the peer's summary vector at contact start).
void drop_copies_consumed_by_peer(Engine& engine, dtn::DtnNode& holder,
                                  const dtn::DtnNode& peer, SimTime now) {
  auto lease = engine.scratch_ids();  // collect-then-purge, allocation-free
  for (const auto& entry : holder.buffer().entries()) {
    if (peer.has_delivered(entry.id)) lease.ids().push_back(entry.id);
  }
  for (const BundleId id : lease.ids()) {
    engine.purge(holder, id, dtn::RemoveReason::kConsumed, now);
  }
}

}  // namespace

bool DirectDelivery::may_offer(Engine& engine, SessionId,
                               const dtn::DtnNode&,
                               const dtn::DtnNode& receiver,
                               const dtn::StoredBundle& copy, bool) {
  return receiver.id() == engine.bundle(copy.id).destination;
}

void DirectDelivery::on_delivered(Engine& engine, dtn::DtnNode& sender,
                                  dtn::DtnNode&, BundleId id, SimTime now) {
  engine.purge(sender, id, dtn::RemoveReason::kConsumed, now);
}

SprayAndWait::SprayAndWait(std::uint32_t copy_quota)
    : copy_quota_(copy_quota) {
  assert(copy_quota_ >= 1);
}

void SprayAndWait::on_injected(Engine&, dtn::DtnNode&,
                               dtn::StoredBundle& copy, SimTime) {
  copy.tokens = copy_quota_;
}

void SprayAndWait::on_contact_start(Engine& engine, SessionId,
                                    dtn::DtnNode& a, dtn::DtnNode& b,
                                    SimTime now) {
  drop_copies_consumed_by_peer(engine, a, b, now);
  drop_copies_consumed_by_peer(engine, b, a, now);
}

bool SprayAndWait::may_offer(Engine& engine, SessionId, const dtn::DtnNode&,
                             const dtn::DtnNode& receiver,
                             const dtn::StoredBundle& copy, bool) {
  if (receiver.id() == engine.bundle(copy.id).destination) return true;
  return copy.tokens > 1;  // spray phase only
}

void SprayAndWait::after_transfer(Engine&, dtn::DtnNode&, dtn::DtnNode&,
                                  dtn::StoredBundle& sender_copy,
                                  dtn::StoredBundle& receiver_copy,
                                  SimTime) {
  // Binary spray: hand over half the remaining quota.
  assert(sender_copy.tokens > 1 && "wait-phase copy was sprayed");
  const std::uint32_t given = sender_copy.tokens / 2;
  receiver_copy.tokens = given;
  sender_copy.tokens -= given;
}

void SprayAndWait::on_delivered(Engine& engine, dtn::DtnNode& sender,
                                dtn::DtnNode&, BundleId id, SimTime now) {
  engine.purge(sender, id, dtn::RemoveReason::kConsumed, now);
}

}  // namespace epi::routing
