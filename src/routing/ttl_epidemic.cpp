#include "routing/ttl_epidemic.hpp"

#include <cassert>
#include <cmath>

#include "routing/engine.hpp"

namespace epi::routing {

// --- fixed TTL ---------------------------------------------------------------

FixedTtlEpidemic::FixedTtlEpidemic(SimTime ttl) : ttl_(ttl) {
  assert(ttl_ > 0.0);
}

SimTime FixedTtlEpidemic::expiry_on_store(const dtn::DtnNode&,
                                          const dtn::StoredBundle& copy,
                                          const dtn::DtnNode*,
                                          SimTime now) const {
  // "Once they are transmitted and stored in a buffer, their TTL begins to
  //  reduce": the countdown starts with the first transmission, so the
  //  source's pristine copy (EC 0) does not age while it waits for a
  //  contact.
  if (copy.ec == 0) return kNoExpiry;
  return now + ttl_;
}

void FixedTtlEpidemic::after_transfer(Engine& engine, dtn::DtnNode& sender,
                                      dtn::DtnNode&,
                                      dtn::StoredBundle& sender_copy,
                                      dtn::StoredBundle&, SimTime now) {
  // "If a bundle is transmitted to other nodes before its TTL expires, the
  //  bundle's TTL value is renewed." The receiver's copy is already fresh.
  engine.set_expiry(sender, sender_copy.id, now + ttl_, now);
}

void FixedTtlEpidemic::on_delivered(Engine& engine, dtn::DtnNode& sender,
                                    dtn::DtnNode&, BundleId id, SimTime now) {
  engine.set_expiry(sender, id, now + ttl_, now);
}

// --- dynamic TTL (Algo 1) ----------------------------------------------------

DynamicTtlEpidemic::DynamicTtlEpidemic(double multiplier, SimTime fallback_ttl)
    : multiplier_(multiplier), fallback_ttl_(fallback_ttl) {
  assert(multiplier_ > 0.0 && fallback_ttl_ > 0.0);
}

SimTime DynamicTtlEpidemic::deadline_for(const dtn::DtnNode& node,
                                         const dtn::DtnNode*,
                                         SimTime now) const {
  // Algo 1 on the session level: a sparse network (long gaps between a
  // node's encounter sessions) buffers longer, a dense one shorter.
  if (const auto interval = node.last_session_interval()) {
    return now + multiplier_ * *interval;
  }
  if (std::isinf(fallback_ttl_)) return kNoExpiry;
  return now + fallback_ttl_;
}

SimTime DynamicTtlEpidemic::expiry_on_store(const dtn::DtnNode& node,
                                            const dtn::StoredBundle& copy,
                                            const dtn::DtnNode* from,
                                            SimTime now) const {
  // As with the fixed variant, the countdown starts with the first
  // transmission (see FixedTtlEpidemic::expiry_on_store).
  if (copy.ec == 0) return kNoExpiry;
  return deadline_for(node, from, now);
}

void DynamicTtlEpidemic::after_transfer(Engine& engine, dtn::DtnNode& sender,
                                        dtn::DtnNode& receiver,
                                        dtn::StoredBundle& sender_copy,
                                        dtn::StoredBundle&, SimTime now) {
  engine.set_expiry(sender, sender_copy.id,
                    deadline_for(sender, &receiver, now), now);
}

void DynamicTtlEpidemic::on_delivered(Engine& engine, dtn::DtnNode& sender,
                                      dtn::DtnNode& destination, BundleId id,
                                      SimTime now) {
  engine.set_expiry(sender, id, deadline_for(sender, &destination, now), now);
}

}  // namespace epi::routing
