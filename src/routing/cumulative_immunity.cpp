#include "routing/cumulative_immunity.hpp"

#include "routing/engine.hpp"

namespace epi::routing {

void CumulativeImmunityEpidemic::on_contact_start(Engine& engine, SessionId,
                                                  dtn::DtnNode& a,
                                                  dtn::DtnNode& b,
                                                  SimTime now) {
  // Each side pushes its (single) cumulative table — one unit message per
  // direction, independent of the load; compare with the i-list-sized push
  // of per-bundle immunity.
  const BundleId ha = a.cumulative().horizon();
  const BundleId hb = b.cumulative().horizon();
  const std::uint64_t records = (ha > 0 ? 1u : 0u) + (hb > 0 ? 1u : 0u);
  engine.count_signaling(records, records * kControlRecordBytes);
  if (ha > hb) {
    offer_table(engine, b, ha, now);
  } else if (hb > ha) {
    offer_table(engine, a, hb, now);
  }
}

void CumulativeImmunityEpidemic::on_delivered(Engine& engine,
                                              dtn::DtnNode& sender,
                                              dtn::DtnNode& destination,
                                              BundleId, SimTime now) {
  // mark_delivered (already done by the engine) advanced the destination's
  // delivered prefix; fold it into the table it advertises.
  destination.cumulative().adopt(destination.delivered_prefix());
  // the table pushed back to the deliverer
  engine.count_signaling(1, kControlRecordBytes);
  offer_table(engine, sender, destination.cumulative().horizon(), now);
}

void CumulativeImmunityEpidemic::offer_table(Engine& engine,
                                             dtn::DtnNode& node,
                                             BundleId table, SimTime now) {
  if (!node.cumulative().adopt(table)) return;

  // Collect-then-purge via the engine's scratch lease: purging while
  // iterating would shuffle buffer storage under the loop, and a fresh
  // vector here would allocate on every table adoption.
  auto lease = engine.scratch_ids();
  for (const auto& entry : node.buffer().entries()) {
    if (node.cumulative().immune(entry.id)) lease.ids().push_back(entry.id);
  }
  for (const BundleId id : lease.ids()) {
    engine.purge(node, id, dtn::RemoveReason::kImmunized, now);
  }
}

}  // namespace epi::routing
