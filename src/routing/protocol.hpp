// Protocol: the strategy interface all eight epidemic variants implement.
//
// The Engine owns the generic mechanics the paper fixes for *all* protocols
// (SIV): contacts from a trace, one bundle per 100 s slot, lower-id node
// sends first, anti-entropy candidate filtering (never offer what the peer
// already holds, has consumed, or knows to be immune). A Protocol customises
// only the four decision points in which the variants differ:
//
//   * expiry_on_store  — which TTL (if any) a freshly stored copy gets;
//   * on_contact_start — control-plane exchange (anti-packets, i-lists,
//                        cumulative tables) and the purges they trigger;
//   * may_offer        — per-bundle forwarding gate (P-Q probabilities);
//   * make_room        — receiver-side admission when the buffer is full
//                        (the EC eviction policy);
//   * after_transfer / on_delivered — post-transfer bookkeeping: EC
//                        synchronisation, TTL renewal, immunity generation.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "dtn/bundle.hpp"
#include "dtn/node.hpp"

namespace epi::routing {

class Engine;

/// Identifies one contact session, so protocols can keep per-encounter state
/// (e.g. the memoized P-Q coin flips) across that contact's slots.
using SessionId = std::uint64_t;

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual ProtocolKind kind() const noexcept = 0;

  /// Initialises protocol state on a freshly injected copy at the source
  /// (e.g. the spray-and-wait replication quota). Runs before
  /// expiry_on_store.
  virtual void on_injected(Engine& engine, dtn::DtnNode& source,
                           dtn::StoredBundle& copy, SimTime now);

  /// Absolute expiry deadline for a copy stored at `node` at time `now`.
  /// `from` is the transmitting peer, or nullptr when the copy is a fresh
  /// injection at the source. kNoExpiry means the copy never times out.
  [[nodiscard]] virtual SimTime expiry_on_store(const dtn::DtnNode& node,
                                                const dtn::StoredBundle& copy,
                                                const dtn::DtnNode* from,
                                                SimTime now) const;

  /// Control-plane exchange at contact start (both directions). Runs after
  /// the engine updated both nodes' encounter histories. Implementations
  /// must report transferred control records (and their wire bytes) through
  /// Engine::count_signaling().
  virtual void on_contact_start(Engine& engine, SessionId session,
                                dtn::DtnNode& a, dtn::DtnNode& b, SimTime now);

  /// Clean-up hook for per-session protocol state.
  virtual void on_contact_end(Engine& engine, SessionId session, SimTime now);

  /// Whether `sender` may offer this copy to `receiver` in this session.
  /// The engine has already excluded bundles the receiver holds, has
  /// consumed, or knows to be immune. `sender_is_source` distinguishes the
  /// P-Q protocol's P (source) from Q (relay).
  [[nodiscard]] virtual bool may_offer(Engine& engine, SessionId session,
                                       const dtn::DtnNode& sender,
                                       const dtn::DtnNode& receiver,
                                       const dtn::StoredBundle& copy,
                                       bool sender_is_source);

  /// Makes room at `receiver` for one incoming bundle. Returns true when a
  /// slot is (now) free. The default refuses when full; the EC family evicts
  /// the highest-EC copy.
  virtual bool make_room(Engine& engine, dtn::DtnNode& receiver,
                         BundleId incoming, SimTime now);

  /// After a relay-to-relay transfer. `sender_copy` and `receiver_copy` are
  /// both stored; implementations synchronise EC and renew TTLs here.
  virtual void after_transfer(Engine& engine, dtn::DtnNode& sender,
                              dtn::DtnNode& receiver,
                              dtn::StoredBundle& sender_copy,
                              dtn::StoredBundle& receiver_copy, SimTime now);

  /// After a delivery (the destination consumed the bundle; it holds no
  /// relay copy). `sender_copy` is still stored at the sender unless the
  /// implementation purges it (immunity protocols do).
  virtual void on_delivered(Engine& engine, dtn::DtnNode& sender,
                            dtn::DtnNode& destination, BundleId id,
                            SimTime now);
};

}  // namespace epi::routing
