// Epidemic with a cumulative immunity table (paper SIII, enhancement 3).
//
// Instead of one immunity record per bundle, the destination advertises a
// single cumulative table <H> meaning "bundles 1..H have all arrived" (ids
// are injection-sequential). Any node holding a larger table supersedes a
// smaller one ("the node will delete the immunity table that covers the
// first 30 bundles"), so exactly one record crosses the air per contact in
// which the tables differ — an order of magnitude less signaling than
// per-bundle immunity, while one received table can purge many bundles at
// once.
#pragma once

#include "routing/protocol.hpp"

namespace epi::routing {

class CumulativeImmunityEpidemic final : public Protocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kCumulativeImmunity;
  }

  /// The node with the larger table transmits it (one control record); the
  /// adopter purges every buffered bundle with id <= H.
  void on_contact_start(Engine& engine, SessionId session, dtn::DtnNode& a,
                        dtn::DtnNode& b, SimTime now) override;

  /// The destination refreshes its own table from its delivered prefix and
  /// immediately shares it with the deliverer.
  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

 private:
  /// Hands `table` to `node`; if it supersedes the node's table, counts one
  /// control record and purges all now-immune bundles.
  static void offer_table(Engine& engine, dtn::DtnNode& node, BundleId table,
                          SimTime now);
};

}  // namespace epi::routing
