#include "routing/ec_epidemic.hpp"

#include <cassert>

#include "routing/engine.hpp"

namespace epi::routing {

bool EcEpidemic::make_room(Engine& engine, dtn::DtnNode& receiver,
                           BundleId incoming, SimTime now) {
  if (!receiver.buffer().full()) return true;

  // Highest EC among evictable copies (oldest-stored first among ties).
  // When EC protection leaves no victim, defer to the configured fallback
  // policy — under the drop-tail default that refuses, exactly as before.
  const BundleId victim = receiver.buffer().select_victim(
      {EvictionPolicy::kDropLargestEc, min_evict_ec(), {}});
  if (victim == kInvalidBundle) {
    return Protocol::make_room(engine, receiver, incoming, now);
  }

  engine.purge(receiver, victim, dtn::RemoveReason::kEvicted, now);
  // Purging at the source refills the buffer immediately; only report room
  // if the eviction actually freed a slot.
  return !receiver.buffer().full();
}

void EcEpidemic::after_transfer(Engine& engine, dtn::DtnNode& sender,
                                dtn::DtnNode& receiver,
                                dtn::StoredBundle& sender_copy,
                                dtn::StoredBundle& receiver_copy,
                                SimTime now) {
  const BundleId id = sender_copy.id;
  const std::uint32_t ec = sender_copy.ec;
  assert(receiver_copy.ec == ec && "engine synchronises EC on transfer");
  (void)receiver_copy;
  // The hooks may purge either copy (EC+TTL with a non-positive TTL); the
  // references must not be touched afterwards, so pass ids.
  on_ec_changed(engine, sender, id, ec, now);
  on_ec_changed(engine, receiver, id, ec, now);
}

void EcEpidemic::on_delivered(Engine& engine, dtn::DtnNode& sender,
                              dtn::DtnNode&, BundleId id, SimTime now) {
  const dtn::StoredBundle* copy = sender.buffer().find(id);
  assert(copy != nullptr);
  on_ec_changed(engine, sender, id, copy->ec, now);
}

std::uint32_t EcEpidemic::min_evict_ec() const {
  // "A high EC means there are many duplicates in the network, and thus can
  //  be safely overwritten": a never-transmitted copy (EC 0) has NO
  //  duplicates — overwriting it destroys the bundle outright, so it is
  //  protected. Only the source ever holds EC-0 copies.
  return 1;
}

void EcEpidemic::on_ec_changed(Engine&, dtn::DtnNode&, BundleId,
                               std::uint32_t, SimTime) {}

EcTtlEpidemic::EcTtlEpidemic(std::uint32_t ec_threshold, SimTime ttl_base,
                             SimTime ttl_step, std::uint32_t min_evict_ec)
    : ec_threshold_(ec_threshold),
      ttl_base_(ttl_base),
      ttl_step_(ttl_step),
      min_evict_ec_(min_evict_ec) {
  assert(ttl_base_ >= 0.0 && ttl_step_ > 0.0);
}

std::uint32_t EcTtlEpidemic::min_evict_ec() const { return min_evict_ec_; }

void EcTtlEpidemic::on_ec_changed(Engine& engine, dtn::DtnNode& holder,
                                  BundleId id, std::uint32_t ec, SimTime now) {
  if (ec <= ec_threshold_) return;
  const SimTime ttl =
      ttl_base_ - static_cast<double>(ec - ec_threshold_ - 1) * ttl_step_;
  // set_expiry purges immediately when the deadline is not in the future.
  engine.set_expiry(holder, id, now + ttl, now);
}

}  // namespace epi::routing
