#include "routing/engine.hpp"

#include <cassert>
#include <chrono>
#include <string>

#include "core/error.hpp"

namespace epi::routing {

Engine::Engine(FromSource, SimulationConfig config,
               std::unique_ptr<Protocol> protocol, std::uint64_t seed)
    : config_(std::move(config)),
      protocol_(std::move(protocol)),
      seed_(seed),
      rng_(Rng::derive(seed, 0x454e47ULL /*'ENG'*/)),
      recorder_(config_.node_count, config_.buffer_capacity) {
  config_.validate();
  if (!protocol_) throw ConfigError("engine needs a protocol");
  protocol_name_ = to_string(protocol_->kind());
  codec_ = dtn::make_summary_codec(config_.summary);
  compact_ads_ = config_.summary.compact();

  // Per-node state splits hot from cold: the encounter history every contact
  // event touches lives in the struct-of-arrays table, the nodes themselves
  // (buffer, exchange sets) are held by value in one contiguous vector.
  encounters_ = dtn::EncounterState(config_.node_count,
                                    config_.encounter_session_gap);
  nodes_.reserve(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    nodes_.emplace_back(id, config_.capacity_of(id));
  }
  for (auto& n : nodes_) n.attach_encounters(&encounters_);
  // Heterogeneous capacities change the occupancy normalisation; the
  // recorder keeps the legacy uniform expression when this is empty.
  recorder_.set_node_capacities(config_.node_capacities);

  flows_ = config_.resolved_flows();
  injected_.assign(flows_.size(), 0);
  flow_delivered_.assign(flows_.size(), 0);
  for (const auto& flow : flows_) {
    flow_sources_.insert(flow.source);
    total_load_ += flow.load;
  }
  bundles_.resize(static_cast<std::size_t>(total_load_) + 1);
  replica_counts_.assign(static_cast<std::size_t>(total_load_) + 1, 0);

  // Pre-size every per-node dense-id bitset for the full id range 1..load:
  // contact-path inserts and merges then never grow word storage.
  for (auto& n : nodes_) {
    n.reserve_bundle_ids(static_cast<BundleId>(total_load_));
  }

  // Both contact-path scratch buffers are bounded by the largest buffer
  // capacity (an offer scan or purge sweep visits at most one buffer's worth
  // of ids), so reserving it here makes the steady-state contact path
  // allocation-free even under heterogeneous per-node capacities.
  offer_scratch_.reserve(config_.max_capacity());
  purge_scratch_.reserve(config_.max_capacity());

  // The timeline sampler is self-rescheduling; sample k fires at exactly
  // k * sample_interval. (Scheduling it before the feeder is primed is
  // harmless: EventClass tiers, not insertion order, break same-time ties.)
  if (config_.record_timeline) {
    at_clamped(0.0, core::EventClass::kSampler, [this] { take_sample(); });
  }
}

Engine::Engine(SimulationConfig config, const mobility::ContactTrace& trace,
               std::unique_ptr<Protocol> protocol, std::uint64_t seed)
    : Engine(FromSource{}, std::move(config), std::move(protocol), seed) {
  if (trace.node_count() > config_.node_count) {
    throw TraceError("trace uses node ids beyond config.node_count (" +
                     std::to_string(trace.node_count()) + " > " +
                     std::to_string(config_.node_count) + ")");
  }
  // The adapter hands the whole trace out as one chunk: the lazy cursor
  // walks the trace's own storage, exactly as before streaming existed. The
  // ContactTrace constructor already validated it.
  trace_adapter_.emplace(trace);
  source_ = &*trace_adapter_;
  validate_chunks_ = false;
  prime_feeder();
}

Engine::Engine(SimulationConfig config, mobility::ContactSource& source,
               std::unique_ptr<Protocol> protocol, std::uint64_t seed)
    : Engine(FromSource{}, std::move(config), std::move(protocol), seed) {
  if (source.node_count() > config_.node_count) {
    throw TraceError("trace uses node ids beyond config.node_count (" +
                     std::to_string(source.node_count()) + " > " +
                     std::to_string(config_.node_count) + ")");
  }
  source_ = &source;
  validate_chunks_ = true;
  prime_feeder();
}

const mobility::Contact* Engine::peek_contact() {
  while (feed_cursor_ >= chunk_.size()) {
    if (source_done_ || source_ == nullptr) return nullptr;
    chunk_ = source_->next_chunk();
    feed_cursor_ = 0;
    if (chunk_.empty()) {
      source_done_ = true;
      return nullptr;
    }
    if (validate_chunks_) validate_chunk(chunk_);
  }
  return &chunk_[feed_cursor_];
}

void Engine::validate_chunk(std::span<const mobility::Contact> chunk) {
  for (const mobility::Contact& c : chunk) {
    if (c.a >= c.b) {
      throw TraceError("contact source: contacts must be normalized (a < b)");
    }
    if (c.b >= config_.node_count) {
      throw TraceError("contact source: node id " + std::to_string(c.b) +
                       " beyond config.node_count");
    }
    if (c.start < 0.0 || c.end <= c.start) {
      throw TraceError(
          "contact source: non-positive duration or negative time");
    }
    if (any_validated_ && mobility::ContactBefore{}(c, last_validated_)) {
      throw TraceError(
          "contact source: chunks must be globally start-time ordered");
    }
    last_validated_ = c;
    any_validated_ = true;
  }
}

void Engine::prime_feeder() {
  // Contacts are fed lazily: only the next start instant is ever pending,
  // instead of one event per contact up front (the former design's peak
  // queue depth was the whole trace).
  const mobility::Contact* first = peek_contact();
  if (first != nullptr && first->start <= config_.horizon) {
    at_clamped(first->start, core::EventClass::kFeeder,
               [this] { feed_contacts(); });
  }
}

void Engine::feed_contacts() {
  const SimTime now = sim_.now();
  const mobility::Contact* next = nullptr;
  while ((next = peek_contact()) != nullptr && next->start <= now) {
    ++feed_cursor_;
    start_contact(*next);
  }
  if (next != nullptr && next->start <= config_.horizon) {
    at_clamped(next->start, core::EventClass::kFeeder,
               [this] { feed_contacts(); });
  }
}

void Engine::take_sample() {
  recorder_.sample(sim_.now(), total_load_);
  const SimTime next =
      static_cast<double>(++sample_index_) * config_.sample_interval;
  if (next <= config_.horizon) {
    at_clamped(next, core::EventClass::kSampler, [this] { take_sample(); });
  }
}

metrics::RunSummary Engine::run() {
  assert(!ran_ && "Engine::run() is single-shot");
  ran_ = true;
  const auto wall_start = std::chrono::steady_clock::now();
  try_inject(0.0);
  const SimTime end = sim_.run(config_.horizon);
  if (sink_ != nullptr) flush_trace();
  recorder_.finalize(end);
  metrics::RunSummary summary =
      metrics::summarize(recorder_, total_load_, seed_, config_.horizon);
  summary.end_time = end;
  summary.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  summary.perf.events_processed = sim_.events_processed();
  summary.perf.peak_queue_depth = sim_.peak_pending();
  summary.perf.transfers = recorder_.bundle_transmissions();
  summary.perf.contacts = recorder_.contacts();
  summary.perf.scratch_reuses = scratch_reuses_;
  summary.perf.scratch_allocs = scratch_allocs_;
  summary.perf.slots_lost = slots_lost_;
  summary.perf.down_slots = down_slots_;
  summary.perf.control_dropped = control_dropped_;
  summary.perf.contacts_truncated = contacts_truncated_;
  summary.perf.transfers_refused_full = transfers_refused_;
  summary.perf.summary_exchanges = summary_exchanges_;
  summary.perf.summary_ad_bytes = summary_ad_bytes_;
  summary.perf.control_bytes = control_bytes_;
  summary.perf.transfers_suppressed_fp = transfers_suppressed_fp_;
  summary.flow_delivery.reserve(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    summary.flow_delivery.push_back(
        static_cast<double>(flow_delivered_[f]) /
        static_cast<double>(flows_[f].load));
  }
  return summary;
}

void Engine::start_contact(const mobility::Contact& contact) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(session_slots_.size());
    assert(slot <= kSessionSlotMask && "session slot pool overflow");
    session_slots_.emplace_back();
  }
  Session& session = session_slots_[slot];
  session.id = (next_session_++ << kSessionSlotBits) | slot;
  session.contact = contact;
  // Truncation fires before any slot is scheduled: the stored contact's end
  // moves earlier, so the slot chain below naturally strands everything past
  // the cut (including bundles mid-flight in the lost slots).
  const bool truncated =
      injector_ != nullptr && injector_->truncate(session.contact);
  if (truncated) ++contacts_truncated_;
  const SessionId id = session.id;
  recorder_.on_contact();
  if (sink_ != nullptr) {
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kContactUp;
      ev.a = contact.a;
      ev.b = contact.b;
    });
    if (truncated) {
      trace([&](obs::TraceEvent& ev) {
        ev.kind = obs::EventKind::kFault;
        ev.fault = obs::FaultKind::kTruncation;
        ev.a = contact.a;
        ev.b = contact.b;
      });
    }
  }

  dtn::DtnNode& a = node(contact.a);
  dtn::DtnNode& b = node(contact.b);
  const SimTime now = sim_.now();
  // Summary advertisement: at contact start each side tells the peer what it
  // buffers (the anti-entropy substrate the offer rules implement). The
  // codec bills the exchange into the summary PerfCounters — never into the
  // recorder, so the golden control_records metric is untouched.
  advertise_summaries(contact);
  // One SoA write pair instead of scattering over both nodes' members.
  encounters_.on_contact_start(contact.a, contact.b, now);

  // Control-plane impairment: the contact-start exchange is suppressed when
  // the control draw says drop or when either endpoint is duty-cycled down
  // (a down node neither emits nor absorbs anti-packets / immunity tables).
  // The draw is taken on every contact start — independent of duty state —
  // so the control stream stays aligned to the contact sequence.
  bool control_ok = true;
  if (injector_ != nullptr) {
    const bool dropped = injector_->drop_control();
    if (dropped) {
      ++control_dropped_;
      if (sink_ != nullptr) {
        trace([&](obs::TraceEvent& ev) {
          ev.kind = obs::EventKind::kFault;
          ev.fault = obs::FaultKind::kControlDrop;
          ev.a = contact.a;
          ev.b = contact.b;
        });
      }
    }
    control_ok = !dropped && injector_->node_up(contact.a, now) &&
                 injector_->node_up(contact.b, now);
  }
  if (control_ok) protocol_->on_contact_start(*this, id, a, b, now);

  // The control exchange may have unblocked injection at the source (e.g.
  // P-Q learned an anti-packet and can now overwrite a vaccinated copy, EC
  // gained an evictable transmitted copy).
  try_inject(now);

  // Slot and end events are chained lazily: only the contact's next event is
  // pending at any instant, and nothing past the horizon is ever enqueued.
  // The whole chain's tie-break ranks are reserved here — the exact point
  // the former design scheduled every slot — so same-time ordering against
  // other events (e.g. TTL expiries landing on a slot boundary) is
  // unchanged.
  const std::uint32_t slots = session.contact.slots(config_.slot_seconds);
  session.base_rank = sim_.reserve_ranks(std::uint64_t{slots} + 1);
  schedule_contact_step(session, 0);
}

void Engine::schedule_contact_step(const Session& session,
                                   std::uint32_t slot_index) {
  const mobility::Contact& contact = session.contact;
  const SessionId id = session.id;
  if (slot_index < contact.slots(config_.slot_seconds)) {
    const SimTime done =
        contact.start +
        static_cast<double>(slot_index + 1) * config_.slot_seconds;
    if (done <= config_.horizon) {
      assert(done >= sim_.now());
      sim_.at_ranked(done, session.base_rank + slot_index,
                     [this, id, slot_index] { run_slot(id, slot_index); });
    }
    // A slot past the horizon implies the contact end is past it too: the
    // rest of this contact can never fire.
    return;
  }
  if (contact.end <= config_.horizon) {
    sim_.at_ranked(contact.end,
                   session.base_rank + contact.slots(config_.slot_seconds),
                   [this, id] { end_contact(id); });
  }
}

void Engine::run_slot(SessionId session, std::uint32_t slot_index) {
  Session* live = find_session(session);
  if (live == nullptr) return;  // contact already torn down
  const mobility::Contact contact = live->contact;  // copy: pool may grow
  const SimTime now = sim_.now();

  // Chain the next step before transferring; its reserved rank already fixes
  // the same-time tie order, this just keeps the queue primed.
  schedule_contact_step(*live, slot_index + 1);

  // Fault gates, cheapest first: a slot with a duty-cycled-down endpoint is
  // suppressed without consuming a loss draw (down state is closed-form, so
  // the slot-loss stream stays aligned to the up-slot sequence); an up slot
  // can still be consumed by transfer loss — 100 s spent, nothing delivered.
  if (injector_ != nullptr) {
    if (!injector_->node_up(contact.a, now) ||
        !injector_->node_up(contact.b, now)) {
      ++down_slots_;
      if (sink_ != nullptr) {
        trace([&](obs::TraceEvent& ev) {
          ev.kind = obs::EventKind::kFault;
          ev.fault = obs::FaultKind::kDownSlot;
          ev.a = contact.a;
          ev.b = contact.b;
        });
      }
      return;
    }
    if (injector_->lose_slot()) {
      ++slots_lost_;
      if (sink_ != nullptr) {
        trace([&](obs::TraceEvent& ev) {
          ev.kind = obs::EventKind::kFault;
          ev.fault = obs::FaultKind::kSlotLoss;
          ev.a = contact.a;
          ev.b = contact.b;
        });
      }
      return;
    }
  }

  // Compact advertisements go stale between slots — every concurrent
  // contact mutates both buffers — so a lossy codec re-issues (and re-bills)
  // them at each surviving transfer slot. The exact codec reads the live
  // buffers and advertises only at contact start, as it always did.
  if (codec_->per_slot_advertisements()) advertise_summaries(contact);

  // "The node with the lower ID will send first"; directions alternate so
  // both sides get slots. If the designated sender has nothing to offer the
  // slot is not wasted: the other side may use it.
  const bool low_first = (slot_index % 2 == 0);
  dtn::DtnNode& low = node(contact.a);   // contacts are normalized: a < b
  dtn::DtnNode& high = node(contact.b);
  dtn::DtnNode& first = low_first ? low : high;
  dtn::DtnNode& second = low_first ? high : low;

  if (!try_transfer(session, first, second, now, low_first ? 1 : 0)) {
    try_transfer(session, second, first, now, low_first ? 0 : 1);
  }
  // A transfer may have made the source's buffer admissible again (a fresh
  // EC-evictable copy, a vaccinated copy, a purge).
  try_inject(now);
}

void Engine::end_contact(SessionId session) {
  Session* live = find_session(session);
  if (live == nullptr) return;
  protocol_->on_contact_end(*this, session, sim_.now());
  if (sink_ != nullptr) {
    const mobility::Contact& contact = live->contact;
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kContactDown;
      ev.a = contact.a;
      ev.b = contact.b;
    });
  }
  live->id = 0;  // free the slot; stale event handles no longer match
  free_slots_.push_back(static_cast<std::uint32_t>(session & kSessionSlotMask));
}

void Engine::advertise_summaries(const mobility::Contact& contact) {
  dtn::DtnNode& a = node(contact.a);
  dtn::DtnNode& b = node(contact.b);
  const std::uint64_t bytes =
      codec_->advertise(0, a.buffer()) + codec_->advertise(1, b.buffer());
  ++summary_exchanges_;
  summary_ad_bytes_ += bytes;
  if (sink_ != nullptr) {
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kSummaryVector;
      ev.a = contact.a;
      ev.b = contact.b;
      ev.count = std::uint64_t{a.buffer().size()} + b.buffer().size();
      ev.bytes = bytes;
    });
  }
}

bool Engine::try_transfer(SessionId session, dtn::DtnNode& sender,
                          dtn::DtnNode& receiver, SimTime now,
                          int receiver_side) {
  // Deterministic fair offer order: never-transmitted copies first (by id),
  // then least-recently-transmitted. A slot budget of 1-2 bundles per
  // contact would otherwise starve high ids behind low ones forever. The
  // buffer maintains the order incrementally, so no per-slot sort; the ids
  // are copied out because a transfer can grow the sender's buffer through
  // the source-refill path (store_copy -> purge -> try_inject).
  const std::size_t offer_capacity = offer_scratch_.capacity();
  offer_scratch_.clear();
  for (const auto& entry : sender.buffer().offer_order()) {
    offer_scratch_.push_back(entry.id);
  }
  if (offer_scratch_.capacity() == offer_capacity) {
    ++scratch_reuses_;
  } else {
    ++scratch_allocs_;
  }

  bool receiver_rejected_for_space = false;
  for (const BundleId id : offer_scratch_) {
    // Anti-entropy: never transmit a bundle either side knows is
    // delivered/immune, nor one the peer's advertisement claims it holds.
    if (sender.knows_immune(id)) continue;
    if (compact_ads_) {
      if (codec_->claims(receiver_side, receiver.buffer(), id)) {
        // A compact claim may be a false positive; the offer is suppressed
        // either way, but only the FP case lost a real transfer (or even a
        // delivery — the filter cannot tell the destination apart).
        if (!receiver.buffer().contains(id)) ++transfers_suppressed_fp_;
        continue;
      }
      // A same-slot store (source refill via purge/try_inject) can outrun
      // the advertisement; the live set still guards insert().
      if (receiver.buffer().contains(id)) continue;
    } else if (receiver.buffer().contains(id)) {
      continue;
    }
    if (receiver.has_delivered(id)) continue;
    if (receiver.knows_immune(id)) continue;

    dtn::StoredBundle* sender_copy = sender.buffer().find(id);
    assert(sender_copy != nullptr);
    const dtn::Bundle& meta = bundle(id);
    const bool sender_is_source = (sender.id() == meta.source);
    if (!protocol_->may_offer(*this, session, sender, receiver, *sender_copy,
                              sender_is_source)) {
      continue;
    }

    if (receiver.id() == meta.destination) {
      deliver(sender, receiver, *sender_copy, now);
      return true;
    }

    if (receiver_rejected_for_space) continue;
    if (receiver.buffer().full() &&
        !protocol_->make_room(*this, receiver, id, now)) {
      // A refusing admission policy (drop-tail, or no evictable victim)
      // turns down every relay bundle; keep scanning only for potential
      // deliveries. Booked once per refusal event — the slot is wasted
      // whether one or ten bundles were turned away.
      count_transfer_refused();
      receiver_rejected_for_space = true;
      continue;
    }

    // The transmission itself is the engine's bookkeeping: the encounter
    // count of the copy grows by one, and sender and receiver see the same
    // new value (paper SII-B, Fig. "EC").
    dtn::StoredBundle incoming;
    incoming.id = id;
    incoming.ec = sender_copy->ec + 1;
    incoming.stored_at = now;
    store_copy(receiver, incoming, &sender, now);

    // store_copy can trigger purges (via the source refill path), which
    // shuffle buffer storage; re-find the sender copy before mutating.
    dtn::StoredBundle* fresh_sender = sender.buffer().find(id);
    assert(fresh_sender != nullptr);
    fresh_sender->ec += 1;
    sender.buffer().mark_transmitted(id, now);

    recorder_.on_transfer(id, now);
    if (sink_ != nullptr) {
      trace([&](obs::TraceEvent& ev) {
        ev.kind = obs::EventKind::kTransferred;
        ev.a = sender.id();
        ev.b = receiver.id();
        ev.bundle = id;
      });
    }
    dtn::StoredBundle* fresh_receiver = receiver.buffer().find(id);
    if (fresh_receiver != nullptr) {
      protocol_->after_transfer(*this, sender, receiver, *fresh_sender,
                                *fresh_receiver, now);
    }
    return true;
  }
  return false;
}

void Engine::deliver(dtn::DtnNode& sender, dtn::DtnNode& destination,
                     dtn::StoredBundle& sender_copy, SimTime now) {
  const BundleId id = sender_copy.id;
  sender_copy.ec += 1;  // a delivery is a transmission too
  sender.buffer().mark_transmitted(id, now);
  recorder_.on_transfer(id, now);
  destination.mark_delivered(id);
  recorder_.on_delivered(id, now);
  if (sink_ != nullptr) {
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kTransferred;
      ev.a = sender.id();
      ev.b = destination.id();
      ev.bundle = id;
    });
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kDelivered;
      ev.a = sender.id();
      ev.b = destination.id();
      ev.bundle = id;
    });
  }
  ++delivered_;
  ++flow_delivered_[bundle(id).flow];

  protocol_->on_delivered(*this, sender, destination, id, now);

  if (delivered_ >= total_load_) {
    sim_.stop();  // "once the destination received all bundles, the
                  //  simulation ends" — metrics integrate to this instant
  }
}

void Engine::try_inject(SimTime now) {
  if (injecting_) return;  // a purge inside this loop re-enters; let the
                           // outer loop pick up the freed slot
  injecting_ = true;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const FlowSpec& flow = flows_[f];
    dtn::DtnNode& source = node(flow.source);
    while (injected_[f] < flow.load) {
      // Injection is an admission like any other arrival: protocols with an
      // eviction policy (EC family: overwrite the most-duplicated copy;
      // P-Q: overwrite a vaccinated copy) make room for the fresh bundle,
      // the rest wait until the source buffer drains.
      if (source.buffer().full() &&
          !protocol_->make_room(*this, source, next_id_, now)) {
        break;
      }
      const BundleId id = next_id_++;
      ++injected_[f];
      bundles_[id] = dtn::Bundle{id, flow.source, flow.destination, now,
                                 static_cast<std::uint32_t>(f)};
      recorder_.on_created(id, now);
      if (sink_ != nullptr) {
        trace([&](obs::TraceEvent& ev) {
          ev.kind = obs::EventKind::kCreated;
          ev.a = flow.source;
          ev.bundle = id;
        });
      }
      dtn::StoredBundle copy;
      copy.id = id;
      copy.stored_at = now;
      store_copy(source, copy, nullptr, now);
    }
  }
  injecting_ = false;
}

dtn::StoredBundle& Engine::store_copy(dtn::DtnNode& holder,
                                      dtn::StoredBundle copy,
                                      const dtn::DtnNode* from, SimTime now) {
  dtn::StoredBundle& stored = holder.buffer().insert(copy);
  ++replica_counts_[stored.id];
  recorder_.on_stored(holder.id(), stored.id, now);
  if (sink_ != nullptr) {
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kStored;
      ev.a = holder.id();
      ev.b = from != nullptr ? from->id() : kInvalidNode;
      ev.bundle = stored.id;
    });
  }
  if (from == nullptr) {
    protocol_->on_injected(*this, holder, stored, now);
  }
  const SimTime expiry = protocol_->expiry_on_store(holder, stored, from, now);
  if (expiry != kNoExpiry) {
    set_expiry(holder, stored.id, expiry, now);
  }
  return stored;
}

void Engine::purge(dtn::DtnNode& holder, BundleId id, dtn::RemoveReason why,
                   SimTime now) {
  dtn::StoredBundle* copy = holder.buffer().find(id);
  if (copy == nullptr) return;
  sim_.cancel(copy->expiry_event);
  holder.buffer().remove(id);
  assert(replica_counts_[id] > 0);
  --replica_counts_[id];
  recorder_.on_removed(holder.id(), id, now, why);
  if (sink_ != nullptr) {
    trace([&](obs::TraceEvent& ev) {
      ev.kind = obs::EventKind::kRemoved;
      ev.a = holder.id();
      ev.bundle = id;
      ev.reason = why;
    });
  }
  if (flow_sources_.contains(holder.id())) try_inject(now);
}

void Engine::set_expiry(dtn::DtnNode& holder, BundleId id, SimTime expiry,
                        SimTime now) {
  dtn::StoredBundle* copy = holder.buffer().find(id);
  if (copy == nullptr) return;
  sim_.cancel(copy->expiry_event);
  copy->expiry = expiry;
  copy->expiry_event = {};
  if (expiry == kNoExpiry) return;
  if (expiry <= now) {
    purge(holder, id, dtn::RemoveReason::kExpired, now);
    return;
  }
  // A deadline past the horizon can never fire; the copy keeps its `expiry`
  // for protocol reads, but no event is enqueued (a renewal within the
  // horizon schedules afresh).
  if (expiry > config_.horizon) return;
  const NodeId holder_id = holder.id();
  copy->expiry_event = at_clamped(expiry, core::EventClass::kNormal,
                                  [this, holder_id, id] {
    dtn::DtnNode& n = node(holder_id);
    // The event is cancelled on renewal/removal, so firing means the copy is
    // still present with this deadline; the guard protects against future
    // refactors breaking that invariant.
    const dtn::StoredBundle* c = n.buffer().find(id);
    if (c != nullptr && c->expiry <= sim_.now()) {
      purge(n, id, dtn::RemoveReason::kExpired, sim_.now());
    }
  });
}

}  // namespace epi::routing
