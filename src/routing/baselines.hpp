// Non-epidemic baselines used to situate the epidemic family's trade-offs
// (the paper's SI taxonomy: epidemic vs data-ferry vs statistical routing).
//
// Direct delivery — the zero-overhead extreme: the source keeps its bundles
// until it meets the destination itself. One transmission per bundle, no
// relay storage, but delay equals the source-destination meeting time and
// delivery fails whenever they never meet.
//
// Spray and wait (Spyropoulos et al., binary variant) — the classic bounded
// -replication compromise: each bundle starts with a copy quota L; at every
// hand-over the sender gives half of its remaining quota to the receiver;
// a copy whose quota has shrunk to 1 is in the "wait" phase and is only
// handed to the destination itself.
#pragma once

#include <cstdint>

#include "routing/protocol.hpp"

namespace epi::routing {

class DirectDelivery final : public Protocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kDirectDelivery;
  }

  [[nodiscard]] bool may_offer(Engine& engine, SessionId session,
                               const dtn::DtnNode& sender,
                               const dtn::DtnNode& receiver,
                               const dtn::StoredBundle& copy,
                               bool sender_is_source) override;

  /// Handing the bundle to its destination is an implicit ACK: the sender
  /// drops its copy (unlike the TTL/EC epidemic variants, which per the
  /// paper keep duplicates until their own policy removes them).
  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;
};

class SprayAndWait final : public Protocol {
 public:
  explicit SprayAndWait(std::uint32_t copy_quota);

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kSprayAndWait;
  }

  /// Fresh source copies carry the full quota.
  void on_injected(Engine& engine, dtn::DtnNode& source,
                   dtn::StoredBundle& copy, SimTime now) override;

  /// Anti-entropy learning: meeting the destination reveals (via its
  /// summary vector) which bundles it already consumed; carriers drop those
  /// copies. Without this, a wait-phase copy of a bundle some other relay
  /// delivered would squat in its holder's buffer forever.
  void on_contact_start(Engine& engine, SessionId session, dtn::DtnNode& a,
                        dtn::DtnNode& b, SimTime now) override;

  /// Spray phase requires quota > 1; the wait phase only delivers directly.
  [[nodiscard]] bool may_offer(Engine& engine, SessionId session,
                               const dtn::DtnNode& sender,
                               const dtn::DtnNode& receiver,
                               const dtn::StoredBundle& copy,
                               bool sender_is_source) override;

  /// Binary split: the receiver takes floor(quota / 2).
  void after_transfer(Engine& engine, dtn::DtnNode& sender,
                      dtn::DtnNode& receiver, dtn::StoredBundle& sender_copy,
                      dtn::StoredBundle& receiver_copy,
                      SimTime now) override;

  /// Implicit ACK on delivery, as in DirectDelivery.
  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

 private:
  std::uint32_t copy_quota_;
};

}  // namespace epi::routing
