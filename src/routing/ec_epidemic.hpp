// Epidemic with Encounter Count — plain (Davis et al. 2001) and the EC+TTL
// enhancement (paper SIII, enhancement 2, Algo 2).
//
// Plain EC: every copy carries an encounter count, incremented on each
// transmission and synchronised between sender and receiver (paper Fig.
// "EC": after A sends bundle 4 to B, both see EC 4). Nothing is dropped
// early; when a buffer is full the copy with the highest EC is evicted to
// admit the incoming bundle ("undelivered bundles have higher priority even
// though they have a higher EC value" — a bundle new to the node is always
// admitted). The result the paper criticises: buffers stay near-full and
// delivery drags.
//
// EC+TTL (Algo 2): copies are immortal until their EC exceeds a threshold
// (8 in the paper); past it they receive TTL = base - (EC - threshold) *
// step (300 - ... * 100 s), so heavily duplicated bundles age out instead of
// squatting in buffers.
#pragma once

#include <cstdint>

#include "routing/protocol.hpp"

namespace epi::routing {

class EcEpidemic : public Protocol {
 public:
  EcEpidemic() = default;

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kEncounterCount;
  }

  /// Evicts the evictable copy with the highest EC (oldest first among
  /// ties) to admit the incoming bundle — a bundle new to the node is
  /// always admitted, "even though it has a higher EC value".
  bool make_room(Engine& engine, dtn::DtnNode& receiver, BundleId incoming,
                 SimTime now) override;

  /// The engine already synchronised EC on both copies; this forwards the
  /// new value to the EC-threshold hook.
  void after_transfer(Engine& engine, dtn::DtnNode& sender,
                      dtn::DtnNode& receiver, dtn::StoredBundle& sender_copy,
                      dtn::StoredBundle& receiver_copy,
                      SimTime now) override;

  /// Delivery is a transmission too (engine bumped the sender's EC).
  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

 protected:
  /// Minimum EC a copy needs to be evictable (the select_victim min_ec).
  /// Plain EC: 1 — a never-transmitted copy (EC 0) has NO duplicates, so
  /// overwriting it would destroy the bundle outright.
  [[nodiscard]] virtual std::uint32_t min_evict_ec() const;

  /// Post-EC-change hook for the EC+TTL subclass; plain EC does nothing.
  virtual void on_ec_changed(Engine& engine, dtn::DtnNode& holder,
                             BundleId id, std::uint32_t ec, SimTime now);
};

class EcTtlEpidemic final : public EcEpidemic {
 public:
  EcTtlEpidemic(std::uint32_t ec_threshold, SimTime ttl_base, SimTime ttl_step,
                std::uint32_t min_evict_ec);

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kEcTtl;
  }

 protected:
  /// "A minimum EC value before nodes are allowed to delete a bundle":
  /// under-duplicated copies are protected from eviction.
  [[nodiscard]] std::uint32_t min_evict_ec() const override;

  /// Algo 2: while EC <= threshold, store unconditionally; past it the copy
  /// gets TTL = ttl_base - (EC - threshold - 1) * ttl_step ("bundles
  /// transmitted over eight times get a TTL of 300; each additional
  /// transmission reduces it by 100"); a non-positive TTL purges at once.
  void on_ec_changed(Engine& engine, dtn::DtnNode& holder, BundleId id,
                     std::uint32_t ec, SimTime now) override;

 private:
  std::uint32_t ec_threshold_;
  SimTime ttl_base_;
  SimTime ttl_step_;
  std::uint32_t min_evict_ec_;
};

}  // namespace epi::routing
