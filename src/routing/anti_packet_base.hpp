// Shared anti-packet / immunity-table machinery (paper SII-B, Fig. 3).
//
// Both P-Q epidemic and epidemic-with-immunity pair every bundle with an
// "anti-packet" ("infection and vaccination"): the destination records each
// received bundle; the records spread between nodes at contact start; a node
// holding a record never transmits or re-accepts the matching bundle.
//
// Immunity tables are unit-sized messages, so their dissemination is slow
// and proportional to the load ("nodes need to receive N immunity tables in
// order to delete N bundles ... the number of immunity tables transmitted is
// proportional to the load"): per contact each direction carries at most
// `records_per_contact` records.
//
// The two protocols differ in what a record does to the buffer:
//   * eager (immunity): the copy is purged the moment the record arrives —
//     buffers drain, occupancy is ~10% below P-Q (paper Figs. 11/12);
//   * lazy (P-Q): the copy stays ("the protocol does not have any mechanism
//     to purge these bundles") but is dead weight: it is never transmitted
//     again and is the first thing overwritten when the buffer is full and a
//     new bundle (including a fresh injection at the source) needs a slot.
#pragma once

#include <cstdint>

#include "routing/protocol.hpp"

namespace epi::routing {

class AntiPacketBase : public Protocol {
 public:
  enum class PurgePolicy { kEager, kLazy };

  AntiPacketBase(PurgePolicy policy, std::uint32_t records_per_contact);

  /// Exchanges up to `records_per_contact` i-list records per direction
  /// (lowest ids first); under the eager policy newly learned records purge
  /// the matching copies.
  void on_contact_start(Engine& engine, SessionId session, dtn::DtnNode& a,
                        dtn::DtnNode& b, SimTime now) override;

  /// The destination appends the bundle to its i-list and hands the fresh
  /// anti-packet straight back to the deliverer (they are mid-contact).
  void on_delivered(Engine& engine, dtn::DtnNode& sender,
                    dtn::DtnNode& destination, BundleId id,
                    SimTime now) override;

  /// Lazy policy only: a full buffer overwrites a vaccinated copy (lowest
  /// id first) to admit the incoming bundle.
  bool make_room(Engine& engine, dtn::DtnNode& receiver, BundleId incoming,
                 SimTime now) override;

 protected:
  /// Applies this protocol's purge policy after `node` learned new records.
  void apply_records(Engine& engine, dtn::DtnNode& node, SimTime now);

 private:
  PurgePolicy policy_;
  std::uint32_t records_per_contact_;
};

}  // namespace epi::routing
