#include "routing/pq_epidemic.hpp"

#include <cassert>

#include "routing/engine.hpp"

namespace epi::routing {

PqEpidemic::PqEpidemic(double p, double q,
                       std::uint32_t records_per_contact)
    : AntiPacketBase(PurgePolicy::kLazy, records_per_contact),
      p_(p),
      q_(q) {
  assert(p_ >= 0.0 && p_ <= 1.0 && q_ >= 0.0 && q_ <= 1.0);
}

bool PqEpidemic::may_offer(Engine& engine, SessionId session,
                           const dtn::DtnNode& sender, const dtn::DtnNode&,
                           const dtn::StoredBundle& copy,
                           bool sender_is_source) {
  const double prob = sender_is_source ? p_ : q_;
  if (prob >= 1.0) return true;

  const CoinKey key =
      (static_cast<std::uint64_t>(sender.id()) << 32) | copy.id;
  auto& session_coins = coins_[session];
  if (const auto it = session_coins.find(key); it != session_coins.end()) {
    return it->second;
  }
  const bool allowed = engine.rng().chance(prob);
  session_coins.emplace(key, allowed);
  return allowed;
}

void PqEpidemic::on_contact_end(Engine&, SessionId session, SimTime) {
  coins_.erase(session);
}

}  // namespace epi::routing
