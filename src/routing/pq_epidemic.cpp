#include "routing/pq_epidemic.hpp"

#include <cassert>

#include "routing/engine.hpp"

namespace epi::routing {

PqEpidemic::PqEpidemic(double p, double q,
                       std::uint32_t records_per_contact)
    : AntiPacketBase(PurgePolicy::kLazy, records_per_contact),
      p_(p),
      q_(q) {
  assert(p_ >= 0.0 && p_ <= 1.0 && q_ >= 0.0 && q_ <= 1.0);
}

bool PqEpidemic::may_offer(Engine& engine, SessionId session,
                           const dtn::DtnNode& sender, const dtn::DtnNode&,
                           const dtn::StoredBundle& copy,
                           bool sender_is_source) {
  const double prob = sender_is_source ? p_ : q_;
  if (prob >= 1.0) return true;

  const CoinKey key =
      (static_cast<std::uint64_t>(sender.id()) << 32) | copy.id;
  SessionCoins& table = *session_coins(session, /*create=*/true);
  for (const auto& [seen, allowed] : table.coins) {
    if (seen == key) return allowed;
  }
  const bool allowed = engine.rng().chance(prob);
  table.coins.emplace_back(key, allowed);
  return allowed;
}

void PqEpidemic::on_contact_end(Engine&, SessionId session, SimTime) {
  if (SessionCoins* table = session_coins(session, /*create=*/false)) {
    table->session = 0;     // recycle the entry...
    table->coins.clear();   // ...keeping its coin capacity
  }
}

PqEpidemic::SessionCoins* PqEpidemic::session_coins(SessionId session,
                                                    bool create) {
  SessionCoins* free_entry = nullptr;
  for (auto& entry : coins_) {
    if (entry.session == session) return &entry;
    if (entry.session == 0 && free_entry == nullptr) free_entry = &entry;
  }
  if (!create) return nullptr;
  if (free_entry == nullptr) free_entry = &coins_.emplace_back();
  free_entry->session = session;
  return free_entry;
}

}  // namespace epi::routing
