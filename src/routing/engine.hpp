// Engine: the unified simulation harness (paper SIV).
//
// One Engine executes one run: one protocol, one contact trace, one flow of
// `load` bundles from a source to a destination. The mechanics fixed across
// all protocols live here:
//
//   * the trace is processed event by event; transmission begins/ends with
//     each encounter;
//   * a contact of duration d carries floor(d / 100 s) bundle slots; slot i
//     completes at start + (i+1) * 100 s; the lower-id node sends in the
//     first slot and directions alternate ("the node with the lower ID will
//     send first");
//   * anti-entropy: a node never offers a bundle its peer buffers, has
//     consumed as destination, or knows to be immune;
//   * the source injects bundle ids 1..load in order, whenever its buffer
//     has room (bundles are never regenerated: a bundle whose last copy
//     disappears before delivery is lost);
//   * the run stops when the destination has consumed all `load` bundles or
//     the horizon is reached ("failed" in the paper's terms).
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include <optional>

#include "core/config.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "dtn/encounter_state.hpp"
#include "dtn/node.hpp"
#include "dtn/summary_codec.hpp"
#include "fault/injector.hpp"
#include "metrics/recorder.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_source.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/trace_sink.hpp"
#include "routing/protocol.hpp"

namespace epi::routing {

class Engine {
 public:
  /// The trace must fit the config (node ids < node_count). Throws
  /// ConfigError / TraceError on inconsistencies. The engine feeds contacts
  /// lazily from a cursor over the trace, so `trace` must outlive the engine
  /// (not just the constructor).
  Engine(SimulationConfig config, const mobility::ContactTrace& trace,
         std::unique_ptr<Protocol> protocol, std::uint64_t seed);

  /// Streaming variant: contacts are pulled chunk by chunk from `source`
  /// (which must outlive the engine), so a run never materialises the full
  /// contact vector. Chunks are validated as they arrive — normalized pairs,
  /// in-range node ids, global start-time order — and a violation throws
  /// TraceError at the offending pull, not at construction.
  Engine(SimulationConfig config, mobility::ContactSource& source,
         std::unique_ptr<Protocol> protocol, std::uint64_t seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the run to completion and returns its summary. Callable once.
  metrics::RunSummary run();

  /// Attaches an event-level trace sink (non-owning; may be nullptr to
  /// detach). `replication` stamps every emitted record so one sink can
  /// watch a whole sweep. Call before run(). Events are delivered in
  /// batches (see TraceSink::emit_batch); the final batch flushes before
  /// run() returns.
  void set_trace_sink(obs::TraceSink* sink,
                      std::uint32_t replication = 0) {
    sink_ = sink;
    replication_ = replication;
    if (sink != nullptr) trace_batch_.reserve(kTraceBatchSize);
  }

  /// Attaches a fault injector (owned; may be nullptr to detach). Without
  /// one — the default — no fault code path runs and no fault stream is
  /// ever touched, so results are bit-identical to a build without the
  /// fault layer. Call before run().
  void set_fault_injector(std::unique_ptr<fault::Injector> injector) noexcept {
    injector_ = std::move(injector);
  }

  // --- services used by Protocol implementations ----------------------------

  [[nodiscard]] core::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] metrics::Recorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] dtn::DtnNode& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const dtn::Bundle& bundle(BundleId id) const {
    return bundles_.at(id);
  }

  /// The run's shared struct-of-arrays encounter table (see
  /// dtn::EncounterState); nodes answer their encounter queries out of it.
  [[nodiscard]] const dtn::EncounterState& encounters() const noexcept {
    return encounters_;
  }

  /// Removes a copy from `holder`, cancelling its expiry event, feeding the
  /// recorder, and letting the source refill its buffer. No-op if absent.
  void purge(dtn::DtnNode& holder, BundleId id, dtn::RemoveReason why,
             SimTime now);

  /// Sets/renews the expiry deadline of a stored copy, (re)scheduling the
  /// expiry event. An expiry <= now purges the copy immediately.
  void set_expiry(dtn::DtnNode& holder, BundleId id, SimTime expiry,
                  SimTime now);

  /// Overhead accounting: control-plane records (anti-packets, i-list
  /// entries, cumulative tables) moved across the air, plus their wire cost
  /// under the byte model (core/summary_mode.hpp). One surface for every
  /// protocol and both summary codecs: `records` feeds the paper's
  /// control_records metric, `bytes` the deterministic signaling counters.
  void count_signaling(std::uint64_t records, std::uint64_t bytes) {
    recorder_.on_control_records(records);
    control_bytes_ += bytes;
    if (sink_ != nullptr) {
      trace([&](obs::TraceEvent& ev) {
        ev.kind = obs::EventKind::kControl;
        ev.count = records;
        ev.bytes = bytes;
      });
    }
  }

  /// Borrow of the engine-owned contact-path id scratch: cleared on claim,
  /// released on destruction. Protocol hooks collect purge victims here
  /// instead of allocating a vector per contact; the release books the
  /// borrow into PerfCounters as a reuse (capacity sufficed) or a fresh
  /// allocation (the vector had to grow). One borrow at a time (asserted):
  /// the collect-then-purge loops never nest across hooks.
  class ScratchLease {
   public:
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ~ScratchLease() {
      engine_.scratch_busy_ = false;
      if (ids_.capacity() == claimed_capacity_) {
        ++engine_.scratch_reuses_;
      } else {
        ++engine_.scratch_allocs_;
      }
    }
    [[nodiscard]] std::vector<BundleId>& ids() noexcept { return ids_; }

   private:
    friend class Engine;
    ScratchLease(Engine& engine, std::vector<BundleId>& ids)
        : engine_(engine), ids_(ids), claimed_capacity_(ids.capacity()) {
      assert(!engine_.scratch_busy_ && "nested contact-path scratch borrow");
      engine_.scratch_busy_ = true;
      ids_.clear();
    }
    Engine& engine_;
    std::vector<BundleId>& ids_;
    std::size_t claimed_capacity_;
  };

  /// Borrows the contact-path scratch (pre-sized to the buffer capacity, the
  /// most ids any purge sweep can collect, so steady state never allocates).
  [[nodiscard]] ScratchLease scratch_ids() {
    return ScratchLease(*this, purge_scratch_);
  }

  /// Dense per-bundle live replica counts (index = BundleId, 1-based like
  /// the bundles themselves), maintained exactly from every store/purge the
  /// engine performs. This is the replica estimate the kDropMostReplicated
  /// eviction policy consults — an omniscient-simulator count, standing in
  /// for the gossip-built estimates a real deployment would carry.
  [[nodiscard]] std::span<const std::uint32_t> replica_counts() const noexcept {
    return replica_counts_;
  }

  /// Books one transfer refused because the receiver's buffer was full and
  /// the admission policy found no victim. Counted once per (sender,
  /// receiver, slot) refusal event — the wasted-slot unit — and exported as
  /// the deterministic `transfers_refused_full` PerfCounter.
  void count_transfer_refused() noexcept { ++transfers_refused_; }

 private:
  /// A live contact session in the slot pool. `id` doubles as the occupancy
  /// marker: 0 is a free slot, and a session's packed id (see
  /// kSessionSlotBits) never equals a stale handle's, so events that outlive
  /// their contact fall through find_session() harmlessly.
  struct Session {
    SessionId id = 0;
    mobility::Contact contact;
    /// First of the slots+1 FIFO ranks reserved for this contact's chained
    /// slot and end events (slot i gets base_rank + i, the end gets
    /// base_rank + slots); keeps same-time ties identical to scheduling the
    /// whole contact up front.
    std::uint64_t base_rank = 0;
  };

  /// A SessionId packs (sequence << kSessionSlotBits) | pool slot: the slot
  /// gives O(1) allocation-free lookup, the unique sequence makes reuse of a
  /// slot detectable (the run_slot/end_contact events of a torn-down contact
  /// must not touch its slot's next tenant).
  static constexpr std::uint32_t kSessionSlotBits = 20;
  static constexpr std::uint64_t kSessionSlotMask =
      (std::uint64_t{1} << kSessionSlotBits) - 1;

  /// The live session with this exact id, or nullptr when the contact was
  /// already torn down (or the slot re-let to a newer contact).
  [[nodiscard]] Session* find_session(SessionId id) noexcept {
    const auto slot = static_cast<std::size_t>(id & kSessionSlotMask);
    if (slot >= session_slots_.size()) return nullptr;
    Session& session = session_slots_[slot];
    return session.id == id ? &session : nullptr;
  }

  /// Events per sink hand-off: big enough to amortize the virtual dispatch
  /// and keep the sink's working set hot across a whole block, small enough
  /// (256 x ~64 B = 16 KiB) not to crowd the engine out of L1/L2.
  static constexpr std::size_t kTraceBatchSize = 256;

  /// Appends one TraceEvent (run coordinates pre-filled) to the outgoing
  /// batch, flushing to the sink when full. Callers guard with
  /// `sink_ != nullptr` so the disabled path stays a single predictable
  /// branch and the batch buffer is never even reserved.
  template <typename Fill>
  void trace(Fill&& fill) {
    obs::TraceEvent& ev = trace_batch_.emplace_back();
    ev.t = sim_.now();
    ev.protocol = protocol_name_;
    ev.load = total_load_;
    ev.replication = replication_;
    fill(ev);
    if (trace_batch_.size() == kTraceBatchSize) flush_trace();
  }

  /// Hands the buffered events to the sink in simulation order. Called when
  /// the batch fills and once after the event loop drains, so every emitted
  /// event reaches the sink before run() returns.
  void flush_trace() {
    if (trace_batch_.empty()) return;
    sink_->emit_batch(trace_batch_.data(), trace_batch_.size());
    trace_batch_.clear();
  }

  /// Tag + common constructor: everything both public constructors share
  /// (validation, nodes, flows, scratch) except the contact-source hookup.
  struct FromSource {};
  Engine(FromSource, SimulationConfig config, std::unique_ptr<Protocol> protocol,
         std::uint64_t seed);

  /// The next contact of the stream without consuming it, pulling (and
  /// validating) fresh chunks as the current one drains; nullptr once the
  /// source is exhausted. The pointer is invalidated by the next peek that
  /// crosses a chunk boundary.
  [[nodiscard]] const mobility::Contact* peek_contact();

  /// Enforces the ContactSource contract on an externally produced chunk.
  void validate_chunk(std::span<const mobility::Contact> chunk);

  /// Schedules the first feeder event (constructor tail, after the source
  /// is wired up).
  void prime_feeder();

  /// Starts every contact beginning at the current instant and reschedules
  /// itself for the next distinct start time within the horizon. Runs in
  /// EventClass::kFeeder so same-time ties resolve exactly as the former
  /// schedule-everything-up-front design did.
  void feed_contacts();

  /// Takes one timeline sample and reschedules itself (EventClass::kSampler)
  /// for `(sample_index_ + 1) * sample_interval` — an integer-indexed grid,
  /// immune to the drift of accumulating `t += interval` in floating point.
  void take_sample();

  void start_contact(const mobility::Contact& contact);

  /// Chains the next pending event of a contact: slot `slot_index` if the
  /// contact still affords one, else the contact end — each only when it
  /// falls within the horizon, at the contact's reserved rank.
  void schedule_contact_step(const Session& session,
                             std::uint32_t slot_index);

  void run_slot(SessionId session, std::uint32_t slot_index);
  void end_contact(SessionId session);

  /// Schedules `action` at `time`, asserting the horizon clamp: the engine
  /// never enqueues an event that cannot fire, so queue depth tracks live
  /// work only.
  template <typename F>
  core::EventHandle at_clamped(SimTime time, core::EventClass klass,
                               F&& action) {
    assert(time <= config_.horizon && "event scheduled past the horizon");
    return sim_.at(time, klass, std::forward<F>(action));
  }

  /// Re-encodes both sides' buffer advertisements through the summary codec
  /// and books the exchange: one summary_exchanges tick, the ad bytes, and
  /// (sink attached) one kSummaryVector event carrying entry count + bytes.
  void advertise_summaries(const mobility::Contact& contact);

  /// Tries to move one bundle from `sender` to `receiver`; true on transfer.
  /// `receiver_side` is the receiver's codec side (0 = contact.a, 1 =
  /// contact.b) so the offer loop queries the right advertisement.
  bool try_transfer(SessionId session, dtn::DtnNode& sender,
                    dtn::DtnNode& receiver, SimTime now, int receiver_side);

  void deliver(dtn::DtnNode& sender, dtn::DtnNode& destination,
               dtn::StoredBundle& sender_copy, SimTime now);

  /// Injects pending bundles of every flow while their sources have room.
  void try_inject(SimTime now);

  /// Stores a copy at `holder` (insert + recorder + initial TTL). `from` is
  /// the transmitting peer, nullptr for fresh injections at the source.
  dtn::StoredBundle& store_copy(dtn::DtnNode& holder, dtn::StoredBundle copy,
                                const dtn::DtnNode* from, SimTime now);

  SimulationConfig config_;
  std::unique_ptr<Protocol> protocol_;
  std::uint64_t seed_;
  Rng rng_;

  core::Simulator sim_;
  metrics::Recorder recorder_;
  std::vector<dtn::DtnNode> nodes_;   ///< contiguous; index == NodeId
  dtn::EncounterState encounters_;    ///< SoA encounter history (hot path)
  std::vector<dtn::Bundle> bundles_;  // index 0 unused; ids are 1-based

  /// Contact input: a stream of sorted chunks. For the ContactTrace
  /// constructor the stream is the owned adapter below (one chunk, zero
  /// copies — the pre-streaming memory behaviour); for the ContactSource
  /// constructor it is caller-owned and every chunk is validated on arrival.
  mobility::ContactSource* source_ = nullptr;
  std::optional<mobility::TraceContactSource> trace_adapter_;
  std::span<const mobility::Contact> chunk_;  ///< current chunk (source-owned)
  std::size_t feed_cursor_ = 0;   ///< next contact within chunk_
  bool source_done_ = false;      ///< saw the empty (exhausted) chunk
  bool validate_chunks_ = false;  ///< off for the pre-validated trace adapter
  mobility::Contact last_validated_{};  ///< cross-chunk ordering check
  bool any_validated_ = false;
  std::uint64_t sample_index_ = 0;  ///< next timeline sample number

  std::vector<BundleId> offer_scratch_;  ///< reused by try_transfer
  std::vector<BundleId> purge_scratch_;  ///< leased out via scratch_ids()
  bool scratch_busy_ = false;
  std::uint64_t scratch_reuses_ = 0;
  std::uint64_t scratch_allocs_ = 0;

  /// Contact session pool: slot-indexed, with freed slots recycled LIFO.
  /// Steady state (concurrent contacts at their high-water mark) allocates
  /// nothing per contact — unlike the former unordered_map, which paid one
  /// node allocation per emplace.
  std::vector<Session> session_slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_session_ = 1;  ///< sequence part of packed SessionIds

  std::vector<FlowSpec> flows_;
  std::vector<std::uint32_t> injected_;        // per flow
  std::vector<std::uint32_t> flow_delivered_;  // per flow
  std::unordered_set<NodeId> flow_sources_;
  std::uint32_t total_load_ = 0;
  BundleId next_id_ = 1;
  std::uint32_t delivered_ = 0;
  bool injecting_ = false;  // re-entrancy guard: purge() calls try_inject()
  bool ran_ = false;

  obs::TraceSink* sink_ = nullptr;  // non-owning; nullptr = tracing off
  std::uint32_t replication_ = 0;   // stamped into every trace record
  std::string_view protocol_name_;  // cached to_string(protocol kind)
  std::vector<obs::TraceEvent> trace_batch_;  // outgoing events, in order

  std::unique_ptr<fault::Injector> injector_;  // nullptr = no faults
  std::uint64_t slots_lost_ = 0;
  std::uint64_t down_slots_ = 0;
  std::uint64_t control_dropped_ = 0;
  std::uint64_t contacts_truncated_ = 0;

  /// Live copies per bundle id (see replica_counts()); index 0 unused.
  std::vector<std::uint32_t> replica_counts_;
  std::uint64_t transfers_refused_ = 0;  ///< full-buffer refusal events

  /// The summary-exchange codec (always constructed; ExactCodec by default)
  /// and its cached mode bit, hoisted out of the offer loop. The codec is
  /// engine scratch — run_slot re-encodes before consulting it, so no
  /// advertisement state is stored per session.
  std::unique_ptr<dtn::SummaryCodec> codec_;
  bool compact_ads_ = false;
  std::uint64_t summary_exchanges_ = 0;
  std::uint64_t summary_ad_bytes_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t transfers_suppressed_fp_ = 0;
};

}  // namespace epi::routing
