// (P,Q)-epidemic routing (Matsuda & Takine 2008; paper SII-B, Fig. 4).
//
// Anti-packet machinery as in AntiPacketBase, plus a probabilistic
// forwarding gate: in each encounter a *source* node offers each of its own
// bundles with probability P, while a relay offers carried bundles with
// probability Q. The coin is flipped once per (encounter, bundle, sender) —
// an encounter either includes the bundle in its offer set or it does not —
// and memoized for the encounter's remaining slots.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/anti_packet_base.hpp"

namespace epi::routing {

class PqEpidemic final : public AntiPacketBase {
 public:
  /// `p`, `q` in [0, 1]. With P = Q = 1 forwarding degenerates to epidemic
  /// with immunity (the paper exploits this: both have the same trace
  /// delay); the protocols still differ in buffer policy — P-Q keeps
  /// vaccinated copies until the space is needed (lazy overwrite), which is
  /// why its buffer occupancy is the highest of all protocols (Figs. 11/12).
  PqEpidemic(double p, double q, std::uint32_t records_per_contact);

  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kPqEpidemic;
  }

  [[nodiscard]] bool may_offer(Engine& engine, SessionId session,
                               const dtn::DtnNode& sender,
                               const dtn::DtnNode& receiver,
                               const dtn::StoredBundle& copy,
                               bool sender_is_source) override;

  void on_contact_end(Engine& engine, SessionId session, SimTime now) override;

 private:
  double p_;
  double q_;

  // Memoized per-encounter coins: session -> (sender, bundle) -> allowed.
  // Stored as a pooled flat table instead of nested hash maps: entries whose
  // session cleared to 0 are recycled (keeping their coin capacity), so the
  // steady-state contact path allocates nothing. Linear scans are fine — the
  // concurrent-session count is small and a session holds at most two
  // buffers' worth of coins.
  using CoinKey = std::uint64_t;  // (sender << 32) | bundle
  struct SessionCoins {
    SessionId session = 0;  // 0 = free entry, ready for reuse
    std::vector<std::pair<CoinKey, bool>> coins;
  };
  /// The coin table of `session`, creating (preferring a recycled entry)
  /// when absent and `create` is set; nullptr when absent otherwise.
  [[nodiscard]] SessionCoins* session_coins(SessionId session, bool create);

  std::vector<SessionCoins> coins_;
};

}  // namespace epi::routing
