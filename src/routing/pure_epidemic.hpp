// Pure epidemic routing (Vahdat & Becker 2002), the base of the taxonomy.
//
// Nodes flood every bundle the peer lacks (anti-entropy over summary
// vectors) and never delete anything; a full buffer simply refuses further
// relay bundles. All behaviour is the engine's shared skeleton, so this
// class is the Protocol default behaviour with a name.
#pragma once

#include "routing/protocol.hpp"

namespace epi::routing {

class PureEpidemic final : public Protocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kPureEpidemic;
  }
};

}  // namespace epi::routing
