// Protocol factory: ProtocolParams -> concrete Protocol instance.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "routing/protocol.hpp"

namespace epi::routing {

/// Builds the protocol described by `params` (validated first; throws
/// ConfigError on invalid parameters).
[[nodiscard]] std::unique_ptr<Protocol> make_protocol(
    const ProtocolParams& params);

}  // namespace epi::routing
