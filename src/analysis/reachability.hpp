// Time-respecting reachability analysis of a contact trace.
//
// A bundle can only travel along a time-respecting path: a sequence of
// contacts whose transfer instants are non-decreasing in time. Under the
// paper's transmission model a transfer instant is a *slot completion*
// (contact start + k * 100 s, k >= 1, within the contact), so the earliest
// time a bundle created at `start` on `source` can reach node v is a
// label-correcting sweep over slot completions in chronological order.
//
// Why this matters: "epidemic routing protocols are able to achieve minimum
// delivery delay" (paper SI, citing Zhang et al.). With unbounded buffers
// and a single bundle, flooding IS the earliest-arrival oracle — which gives
// an end-to-end correctness check of the whole engine (test_oracle.cpp) and
// a lower bound against which the buffer-managed protocols' extra delay can
// be measured (bench_oracle).
#pragma once

#include <vector>

#include "core/types.hpp"
#include "mobility/contact_trace.hpp"

namespace epi::analysis {

/// Earliest arrival time at every node for a bundle available at `source`
/// from time `start`, moving one hop per slot completion. Unreachable nodes
/// get kNoExpiry (infinity). `slot_seconds` must be positive.
[[nodiscard]] std::vector<SimTime> earliest_arrivals(
    const mobility::ContactTrace& trace, NodeId source, SimTime start,
    SimTime slot_seconds = defaults::kSlotSeconds);

/// Earliest arrival at one destination (kNoExpiry if unreachable).
[[nodiscard]] SimTime earliest_arrival(const mobility::ContactTrace& trace,
                                       NodeId source, NodeId destination,
                                       SimTime start,
                                       SimTime slot_seconds =
                                           defaults::kSlotSeconds);

/// Fraction of ordered (source, destination) pairs connected by a
/// time-respecting path starting at time 0 — an upper bound on any
/// protocol's delivery ratio on this trace.
[[nodiscard]] double reachable_pair_fraction(
    const mobility::ContactTrace& trace,
    SimTime slot_seconds = defaults::kSlotSeconds);

/// Per-hop earliest-arrival matrix row summary used by reports: the mean
/// oracle delay of reachable destinations from `source` (0 if none).
[[nodiscard]] double mean_oracle_delay(const mobility::ContactTrace& trace,
                                       NodeId source, SimTime start,
                                       SimTime slot_seconds =
                                           defaults::kSlotSeconds);

}  // namespace epi::analysis
