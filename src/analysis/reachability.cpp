#include "analysis/reachability.hpp"

#include <algorithm>
#include <cassert>

#include "core/error.hpp"

namespace epi::analysis {
namespace {

/// One transfer opportunity: at instant `when`, a bundle held by either end
/// of the pair (since before `when`) can cross to the other end.
struct SlotEvent {
  SimTime when;
  NodeId a;
  NodeId b;
};

std::vector<SlotEvent> slot_events(const mobility::ContactTrace& trace,
                                   SimTime slot_seconds) {
  if (slot_seconds <= 0.0) {
    throw ConfigError("slot_seconds must be positive");
  }
  std::vector<SlotEvent> events;
  for (const auto& contact : trace.contacts()) {
    const std::uint32_t slots = contact.slots(slot_seconds);
    for (std::uint32_t k = 1; k <= slots; ++k) {
      events.push_back(SlotEvent{
          contact.start + static_cast<double>(k) * slot_seconds, contact.a,
          contact.b});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SlotEvent& x, const SlotEvent& y) {
              if (x.when != y.when) return x.when < y.when;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return events;
}

}  // namespace

std::vector<SimTime> earliest_arrivals(const mobility::ContactTrace& trace,
                                      NodeId source, SimTime start,
                                      SimTime slot_seconds) {
  const std::uint32_t n = std::max(trace.node_count(), source + 1);
  std::vector<SimTime> arrival(n, kNoExpiry);
  arrival[source] = start;

  // Chronological sweep: arrival labels only ever decrease toward earlier
  // events already processed, so one pass suffices. A bundle can use a slot
  // at time t if it arrived at the sender strictly before t (the engine
  // decides each transfer from state established by earlier events).
  for (const auto& event : slot_events(trace, slot_seconds)) {
    const SimTime ta = arrival[event.a];
    const SimTime tb = arrival[event.b];
    if (ta < event.when && event.when < arrival[event.b]) {
      arrival[event.b] = event.when;
    }
    if (tb < event.when && event.when < arrival[event.a]) {
      arrival[event.a] = event.when;
    }
  }
  return arrival;
}

SimTime earliest_arrival(const mobility::ContactTrace& trace, NodeId source,
                         NodeId destination, SimTime start,
                         SimTime slot_seconds) {
  const auto arrival = earliest_arrivals(trace, source, start, slot_seconds);
  if (destination >= arrival.size()) return kNoExpiry;
  return arrival[destination];
}

double reachable_pair_fraction(const mobility::ContactTrace& trace,
                               SimTime slot_seconds) {
  const std::uint32_t n = trace.node_count();
  if (n < 2) return 0.0;
  std::size_t reachable = 0;
  for (NodeId src = 0; src < n; ++src) {
    const auto arrival = earliest_arrivals(trace, src, 0.0, slot_seconds);
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != src && arrival[dst] != kNoExpiry) ++reachable;
    }
  }
  return static_cast<double>(reachable) /
         static_cast<double>(static_cast<std::size_t>(n) * (n - 1));
}

double mean_oracle_delay(const mobility::ContactTrace& trace, NodeId source,
                         SimTime start, SimTime slot_seconds) {
  const auto arrival = earliest_arrivals(trace, source, start, slot_seconds);
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId v = 0; v < arrival.size(); ++v) {
    if (v == source || arrival[v] == kNoExpiry) continue;
    sum += arrival[v] - start;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace epi::analysis
