#include "metrics/summary.hpp"

#include <cassert>
#include <cmath>

#include "metrics/recorder.hpp"

namespace epi::metrics {

RunSummary summarize(const Recorder& recorder, std::uint32_t load,
                     std::uint64_t seed, SimTime horizon) {
  RunSummary s;
  s.load = load;
  s.seed = seed;
  // Ratios are against the intended load: bundles the source never managed
  // to inject (buffer squeezed shut) count as undelivered, exactly like
  // bundles lost en route.
  s.delivery_ratio = load == 0 ? 0.0
                               : static_cast<double>(recorder.delivered_count()) /
                                     static_cast<double>(load);
  s.complete = recorder.delivered_count() >= load;
  s.completion_time = s.complete ? recorder.last_delivery_time() : horizon;
  s.mean_bundle_delay = recorder.mean_bundle_delay();
  s.buffer_occupancy = recorder.avg_buffer_occupancy();
  s.duplication_rate = recorder.avg_duplication_rate();
  s.bundle_transmissions = recorder.bundle_transmissions();
  s.control_records = recorder.control_records();
  s.contacts = recorder.contacts();
  s.drops_expired = recorder.removed(dtn::RemoveReason::kExpired);
  s.drops_evicted = recorder.removed(dtn::RemoveReason::kEvicted);
  s.drops_immunized = recorder.removed(dtn::RemoveReason::kImmunized);
  return s;
}

bool deterministic_equal(const RunSummary& a, const RunSummary& b) noexcept {
  return a.load == b.load && a.seed == b.seed &&
         a.delivery_ratio == b.delivery_ratio && a.complete == b.complete &&
         a.completion_time == b.completion_time &&
         a.mean_bundle_delay == b.mean_bundle_delay &&
         a.buffer_occupancy == b.buffer_occupancy &&
         a.duplication_rate == b.duplication_rate &&
         a.bundle_transmissions == b.bundle_transmissions &&
         a.control_records == b.control_records && a.contacts == b.contacts &&
         a.drops_expired == b.drops_expired &&
         a.drops_evicted == b.drops_evicted &&
         a.drops_immunized == b.drops_immunized && a.end_time == b.end_time &&
         a.flow_delivery == b.flow_delivery &&
         a.perf.events_processed == b.perf.events_processed &&
         a.perf.peak_queue_depth == b.perf.peak_queue_depth &&
         a.perf.transfers == b.perf.transfers &&
         a.perf.contacts == b.perf.contacts &&
         a.perf.slots_lost == b.perf.slots_lost &&
         a.perf.down_slots == b.perf.down_slots &&
         a.perf.control_dropped == b.perf.control_dropped &&
         a.perf.contacts_truncated == b.perf.contacts_truncated &&
         a.perf.transfers_refused_full == b.perf.transfers_refused_full &&
         a.perf.summary_exchanges == b.perf.summary_exchanges &&
         a.perf.summary_ad_bytes == b.perf.summary_ad_bytes &&
         a.perf.control_bytes == b.perf.control_bytes &&
         a.perf.transfers_suppressed_fp == b.perf.transfers_suppressed_fp;
}

double Aggregate::ci95_half_width() const {
  if (count < 2) return 0.0;
  // Two-sided 97.5% Student-t quantiles for small samples; the tail decays
  // toward the normal 1.96.
  static constexpr double kT[] = {0.0,   0.0,   12.706, 4.303, 3.182, 2.776,
                                  2.571, 2.447, 2.365,  2.306, 2.262, 2.228,
                                  2.201, 2.179, 2.160,  2.145, 2.131, 2.120,
                                  2.110, 2.101, 2.093,  2.086};
  const double t = count < std::size(kT) ? kT[count] : 1.96;
  return t * stddev / std::sqrt(static_cast<double>(count));
}

Aggregate aggregate(std::span<const double> values) {
  Aggregate a;
  a.count = values.size();
  if (values.empty()) return a;
  a.min = values.front();
  a.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    if (v < a.min) a.min = v;
    if (v > a.max) a.max = v;
  }
  a.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - a.mean) * (v - a.mean);
  // Sample standard deviation (n-1); zero for a single observation.
  a.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return a;
}

LoadPoint aggregate_runs(std::span<const RunSummary> runs) {
  LoadPoint p;
  if (runs.empty()) return p;
  p.load = runs.front().load;

  std::vector<double> v;
  v.reserve(runs.size());
  const auto collect = [&](auto field) {
    v.clear();
    for (const auto& r : runs) v.push_back(static_cast<double>(field(r)));
    return aggregate(v);
  };

  p.delivery_ratio = collect([](const RunSummary& r) { return r.delivery_ratio; });
  p.delay = collect([](const RunSummary& r) { return r.completion_time; });
  p.mean_bundle_delay =
      collect([](const RunSummary& r) { return r.mean_bundle_delay; });
  p.buffer_occupancy =
      collect([](const RunSummary& r) { return r.buffer_occupancy; });
  p.duplication_rate =
      collect([](const RunSummary& r) { return r.duplication_rate; });
  p.control_records =
      collect([](const RunSummary& r) { return r.control_records; });
  p.bundle_transmissions =
      collect([](const RunSummary& r) { return r.bundle_transmissions; });
  p.signaling_bytes =
      collect([](const RunSummary& r) { return r.perf.signaling_bytes(); });
  return p;
}

}  // namespace epi::metrics
