#include "metrics/recorder.hpp"

#include <cassert>
#include <utility>

namespace epi::metrics {

Recorder::Recorder(std::uint32_t node_count, std::uint32_t buffer_capacity)
    : node_count_(node_count),
      buffer_capacity_(buffer_capacity),
      nodes_(node_count) {
  assert(node_count_ > 0 && buffer_capacity_ > 0);
}

void Recorder::set_node_capacities(std::vector<std::uint32_t> capacities) {
  assert(capacities.empty() || capacities.size() == node_count_);
  node_capacities_ = std::move(capacities);
}

Recorder::BundleTally& Recorder::tally(BundleId id) {
  assert(id != kInvalidBundle);
  if (bundles_.size() <= id) bundles_.resize(id + 1);
  return bundles_[id];
}

void Recorder::advance_bundle(BundleTally& b, SimTime t) {
  if (!b.frozen) {
    b.copy_integral += static_cast<double>(b.copies) * (t - b.last_change);
  }
  b.last_change = t;
}

void Recorder::advance_node(NodeTally& n, SimTime t) {
  n.size_integral += static_cast<double>(n.size) * (t - n.last_change);
  n.last_change = t;
}

void Recorder::on_created(BundleId id, SimTime t) {
  BundleTally& b = tally(id);
  b.created = t;
  b.last_change = t;
  created_order_.push_back(id);
}

void Recorder::on_stored(NodeId node, BundleId id, SimTime t) {
  assert(node < node_count_);
  BundleTally& b = tally(id);
  advance_bundle(b, t);
  ++b.copies;
  if (b.copies > b.peak_copies) b.peak_copies = b.copies;
  NodeTally& n = nodes_[node];
  advance_node(n, t);
  ++n.size;
}

void Recorder::on_removed(NodeId node, BundleId id, SimTime t,
                          dtn::RemoveReason why) {
  assert(node < node_count_);
  BundleTally& b = tally(id);
  advance_bundle(b, t);
  assert(b.copies > 0);
  --b.copies;
  NodeTally& n = nodes_[node];
  advance_node(n, t);
  assert(n.size > 0);
  --n.size;
  ++removed_[static_cast<std::size_t>(why)];
}

void Recorder::on_transfer(BundleId, SimTime) { ++transmissions_; }

void Recorder::on_delivered(BundleId id, SimTime t) {
  BundleTally& b = tally(id);
  advance_bundle(b, t);
  b.delivered = t;
  b.frozen = true;
  ++delivered_count_;
  last_delivery_ = t;
  delay_sum_ += t - b.created;
}

void Recorder::sample(SimTime t, std::uint32_t intended_load) {
  TimelinePoint point;
  point.t = t;
  std::uint64_t copies = 0;
  for (const auto& n : nodes_) copies += n.size;
  point.live_copies = copies;
  if (node_capacities_.empty()) {
    point.buffer_occupancy =
        static_cast<double>(copies) /
        (static_cast<double>(node_count_) *
         static_cast<double>(buffer_capacity_));
  } else {
    // Mean of per-node fill fractions: a small node at 100% counts as much
    // as a large node at 100%.
    double fill = 0.0;
    for (std::uint32_t n = 0; n < node_count_; ++n) {
      fill += static_cast<double>(nodes_[n].size) /
              static_cast<double>(node_capacities_[n]);
    }
    point.buffer_occupancy = fill / static_cast<double>(node_count_);
  }
  point.delivered_fraction =
      intended_load == 0 ? 0.0
                         : static_cast<double>(delivered_count_) /
                               static_cast<double>(intended_load);
  point.transmissions = transmissions_;
  timeline_.push_back(point);
}

void Recorder::finalize(SimTime t) {
  assert(!end_ && "finalize called twice");
  for (auto& n : nodes_) advance_node(n, t);
  for (const BundleId id : created_order_) advance_bundle(bundles_[id], t);
  end_ = t;
}

double Recorder::delivery_ratio() const {
  if (created_order_.empty()) return 0.0;
  return static_cast<double>(delivered_count_) /
         static_cast<double>(created_order_.size());
}

std::optional<SimTime> Recorder::completion_time() const {
  if (created_order_.empty() || delivered_count_ < created_order_.size()) {
    return std::nullopt;
  }
  return last_delivery_;
}

double Recorder::mean_bundle_delay() const {
  if (delivered_count_ == 0) return 0.0;
  return delay_sum_ / static_cast<double>(delivered_count_);
}

double Recorder::avg_buffer_occupancy() const {
  assert(end_ && "finalize() must run first");
  if (*end_ <= 0.0) return 0.0;
  if (node_capacities_.empty()) {
    double total = 0.0;
    for (const auto& n : nodes_) total += n.size_integral;
    return total / (static_cast<double>(node_count_) *
                    static_cast<double>(buffer_capacity_) * *end_);
  }
  // Heterogeneous: time-average of the mean per-node fill fraction,
  // sum_n (integral_n / C_n) / (N * T).
  double weighted = 0.0;
  for (std::uint32_t n = 0; n < node_count_; ++n) {
    weighted += nodes_[n].size_integral /
                static_cast<double>(node_capacities_[n]);
  }
  return weighted / (static_cast<double>(node_count_) * *end_);
}

double Recorder::avg_duplication_rate() const {
  if (created_order_.empty()) return 0.0;
  double sum = 0.0;
  for (const BundleId id : created_order_) {
    sum += static_cast<double>(bundles_[id].peak_copies) /
           static_cast<double>(node_count_);
  }
  return sum / static_cast<double>(created_order_.size());
}

double Recorder::avg_time_duplication_rate() const {
  assert(end_ && "finalize() must run first");
  if (created_order_.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (const BundleId id : created_order_) {
    const BundleTally& b = bundles_[id];
    const SimTime cutoff = b.delivered.value_or(*end_);
    const double span = cutoff - b.created;
    if (span <= 0.0) continue;  // delivered instantly: no routed lifetime
    sum += b.copy_integral / (span * static_cast<double>(node_count_));
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

std::uint64_t Recorder::removed(dtn::RemoveReason why) const {
  return removed_[static_cast<std::size_t>(why)];
}

}  // namespace epi::metrics
