// Recorder: exact, event-driven measurement of the paper's four metrics.
//
// Instead of periodic sampling, occupancy statistics are exact time
// integrals updated at every store/remove event:
//
//   buffer occupancy level  = (1/T) * (1/N) * sum_n INT_0^T size_n(t) dt / C
//
// where T is the run end (the paper stops a run once the destination has
// everything, or at the trace horizon on failure).
//
// Bundle duplication rate ("the number of nodes in the network that has a
// copy of a given bundle over the total number of nodes") is reported as the
// mean over bundles of the *peak* spread max_t copies_b(t) / N — how much of
// the network a bundle ever infected. This is the reading consistent with
// every ordering in the paper: protocols whose copies linger (P-Q's lazy
// anti-packets, immunity's slow per-bundle tables) keep spreading after
// delivery and score high; protocols that cut copies early (EC eviction,
// TTL expiry, the cumulative table's bulk purge) score low. A secondary
// time-averaged variant is exposed for analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "dtn/bundle.hpp"

namespace epi::metrics {

class Recorder {
 public:
  Recorder(std::uint32_t node_count, std::uint32_t buffer_capacity);

  /// Installs heterogeneous per-node capacities (size must be node_count or
  /// zero). When set, occupancy statistics weight each node by its own
  /// capacity; when empty (the default) the uniform expressions — and their
  /// exact floating-point results — are unchanged.
  void set_node_capacities(std::vector<std::uint32_t> capacities);

  // --- event feed (called by the engine) ------------------------------------
  void on_created(BundleId id, SimTime t);
  void on_stored(NodeId node, BundleId id, SimTime t);
  void on_removed(NodeId node, BundleId id, SimTime t, dtn::RemoveReason why);
  void on_transfer(BundleId id, SimTime t);  ///< one bundle transmission
  void on_delivered(BundleId id, SimTime t);
  void on_control_records(std::uint64_t records) { control_records_ += records; }
  void on_contact() { ++contacts_; }

  /// One snapshot of the network state, taken by the periodic sampler when
  /// SimulationConfig::record_timeline is set.
  struct TimelinePoint {
    SimTime t = 0.0;
    double buffer_occupancy = 0.0;   ///< instantaneous mean fill fraction
    double delivered_fraction = 0.0; ///< delivered / intended load
    std::uint64_t live_copies = 0;   ///< bundle copies buffered network-wide
    std::uint64_t transmissions = 0; ///< cumulative bundle transmissions
  };

  /// Appends a snapshot for time `t` (`intended_load` scales the delivered
  /// fraction).
  void sample(SimTime t, std::uint32_t intended_load);

  [[nodiscard]] const std::vector<TimelinePoint>& timeline() const {
    return timeline_;
  }

  /// Closes all integrals at run end `t`. Must be called exactly once,
  /// after which the accessors below are valid.
  void finalize(SimTime t);

  // --- results ---------------------------------------------------------------
  [[nodiscard]] std::size_t created_count() const { return created_order_.size(); }
  [[nodiscard]] std::size_t delivered_count() const { return delivered_count_; }

  /// delivered / created (0 when nothing was created).
  [[nodiscard]] double delivery_ratio() const;

  /// Time of the last delivery if *all* created bundles were delivered.
  [[nodiscard]] std::optional<SimTime> completion_time() const;

  /// Time of the most recent delivery (0 when none happened yet).
  [[nodiscard]] SimTime last_delivery_time() const { return last_delivery_; }

  /// Mean per-bundle delay over delivered bundles (0 if none).
  [[nodiscard]] double mean_bundle_delay() const;

  /// Time- and node-averaged buffer utilisation in [0, 1].
  [[nodiscard]] double avg_buffer_occupancy() const;

  /// Mean over bundles of peak spread (max copies ever / node count).
  [[nodiscard]] double avg_duplication_rate() const;

  /// Secondary: mean over bundles of the time-averaged copies/N between
  /// creation and delivery (or run end when undelivered).
  [[nodiscard]] double avg_time_duplication_rate() const;

  [[nodiscard]] std::uint64_t bundle_transmissions() const {
    return transmissions_;
  }
  [[nodiscard]] std::uint64_t control_records() const {
    return control_records_;
  }
  [[nodiscard]] std::uint64_t contacts() const { return contacts_; }
  [[nodiscard]] std::uint64_t removed(dtn::RemoveReason why) const;

 private:
  struct BundleTally {
    SimTime created = 0.0;
    std::optional<SimTime> delivered;
    std::uint32_t copies = 0;
    std::uint32_t peak_copies = 0;
    SimTime last_change = 0.0;
    double copy_integral = 0.0;  // INT copies dt up to last_change
    bool frozen = false;         // delivery freezes the integral
  };
  struct NodeTally {
    std::uint32_t size = 0;
    SimTime last_change = 0.0;
    double size_integral = 0.0;
  };

  BundleTally& tally(BundleId id);
  void advance_bundle(BundleTally& b, SimTime t);
  void advance_node(NodeTally& n, SimTime t);

  std::uint32_t node_count_;
  std::uint32_t buffer_capacity_;
  std::vector<std::uint32_t> node_capacities_;  // empty = uniform

  std::vector<NodeTally> nodes_;
  std::vector<BundleTally> bundles_;   // indexed by id (ids start at 1)
  std::vector<BundleId> created_order_;

  std::size_t delivered_count_ = 0;
  SimTime last_delivery_ = 0.0;
  double delay_sum_ = 0.0;

  std::uint64_t transmissions_ = 0;
  std::uint64_t control_records_ = 0;
  std::uint64_t contacts_ = 0;
  std::uint64_t removed_[4] = {0, 0, 0, 0};

  std::vector<TimelinePoint> timeline_;

  std::optional<SimTime> end_;
};

}  // namespace epi::metrics
