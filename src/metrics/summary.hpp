// RunSummary: the scalar outcome of one simulation run, plus aggregation
// helpers for the paper's "10 replications averaged" methodology.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "obs/perf_counters.hpp"

namespace epi::obs {
struct StatsProfile;
}

namespace epi::metrics {

class Recorder;

/// Everything a figure or table needs from one run.
struct RunSummary {
  // configuration echo
  std::uint32_t load = 0;
  std::uint64_t seed = 0;

  // outcomes
  double delivery_ratio = 0.0;
  bool complete = false;           ///< all bundles delivered before horizon
  SimTime completion_time = 0.0;   ///< last delivery if complete, else horizon
                                   ///< (paper: failed runs record no delay; we
                                   ///< conservatively charge the horizon)
  double mean_bundle_delay = 0.0;  ///< over delivered bundles
  double buffer_occupancy = 0.0;
  double duplication_rate = 0.0;
  std::uint64_t bundle_transmissions = 0;
  std::uint64_t control_records = 0;
  std::uint64_t contacts = 0;
  std::uint64_t drops_expired = 0;
  std::uint64_t drops_evicted = 0;
  std::uint64_t drops_immunized = 0;
  SimTime end_time = 0.0;

  /// Per-flow delivery ratios (one entry per flow, in flow order). A single
  /// flow — the paper's setup — yields one entry equal to delivery_ratio.
  std::vector<double> flow_delivery;

  /// Run instrumentation (wall clock, event counts, queue depth). The
  /// event-count fields are deterministic; wall_seconds is not.
  obs::PerfCounters perf;

  /// Streaming-statistics payload (see obs/stats.hpp); null unless the run
  /// was executed with stats collection enabled. Deliberately excluded from
  /// deterministic_equal and the run-store record encoding — like
  /// perf.wall_seconds, it is an observation *about* the run, not a
  /// simulation outcome, and cached summaries never carry one.
  std::shared_ptr<const obs::StatsProfile> stats;
};

/// Builds a RunSummary from a finalized Recorder.
[[nodiscard]] RunSummary summarize(const Recorder& recorder,
                                   std::uint32_t load, std::uint64_t seed,
                                   SimTime horizon);

/// True when every simulation-determined field of the two summaries is
/// bit-identical — doubles compared exactly, never by tolerance. The
/// deterministic perf counters (events, peak queue, transfers, contacts)
/// are included; perf.wall_seconds is the one excluded field, being wall
/// clock. This is the run store's core invariant: a cached summary must be
/// deterministic_equal to the fresh run it stands in for.
[[nodiscard]] bool deterministic_equal(const RunSummary& a,
                                       const RunSummary& b) noexcept;

/// Mean / spread of one scalar across replications.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  /// Half-width of the two-sided 95% confidence interval of the mean
  /// (Student's t; 0 for fewer than two observations). The paper reports
  /// plain 10-replication averages; the interval quantifies how much the
  /// endpoint lottery moves them.
  [[nodiscard]] double ci95_half_width() const;
};

[[nodiscard]] Aggregate aggregate(std::span<const double> values);

/// Per-metric aggregates over a batch of replications of one configuration.
struct LoadPoint {
  std::uint32_t load = 0;
  Aggregate delivery_ratio;
  Aggregate delay;  ///< completion_time (horizon-charged when incomplete)
  Aggregate mean_bundle_delay;
  Aggregate buffer_occupancy;
  Aggregate duplication_rate;
  Aggregate control_records;
  Aggregate bundle_transmissions;
  Aggregate signaling_bytes;  ///< perf.signaling_bytes() under the byte model
};

[[nodiscard]] LoadPoint aggregate_runs(std::span<const RunSummary> runs);

}  // namespace epi::metrics
