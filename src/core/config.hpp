// Simulation and protocol configuration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/eviction.hpp"
#include "core/summary_mode.hpp"
#include "core/types.hpp"

namespace epi {

/// The eight protocols studied by the paper (SII existing + SIII enhanced),
/// plus the Vahdat-Becker base protocol.
enum class ProtocolKind {
  kPureEpidemic,        // Vahdat & Becker 2002 (base, no buffer management)
  kPqEpidemic,          // Matsuda & Takine 2008: probabilistic + anti-packets
  kFixedTtl,            // Harras et al. 2005: constant TTL, renewed on tx
  kEncounterCount,      // Davis et al. 2001: drop-largest-EC when full
  kImmunity,            // Mundur et al. 2008: per-bundle immunity tables
  kDynamicTtl,          // Enhancement 1 (Algo 1): TTL = 2 x last interval
  kEcTtl,               // Enhancement 2 (Algo 2): EC threshold then TTL
  kCumulativeImmunity,  // Enhancement 3: cumulative ACK table

  // Non-epidemic baselines (the paper's SI taxonomy context): useful to
  // situate the epidemic family's delay/resource trade-off.
  kDirectDelivery,      // source holds until it meets the destination
  kSprayAndWait,        // binary spray with a fixed copy quota, then wait
};

/// Canonical lower_snake name used by the factory, CLIs and reports.
[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

/// Parses a canonical name; throws ConfigError on unknown names.
[[nodiscard]] ProtocolKind protocol_from_string(std::string_view name);

/// Tunables for all protocols; each protocol reads only its own fields.
struct ProtocolParams {
  ProtocolKind kind = ProtocolKind::kPureEpidemic;

  // --- P-Q epidemic ---
  double p = 1.0;  ///< source transmission probability (paper SII-B)
  double q = 1.0;  ///< relay transmission probability

  // --- fixed TTL ---
  SimTime fixed_ttl = defaults::kFixedTtl;

  // --- dynamic TTL (Algo 1) ---
  double ttl_multiplier = 2.0;  ///< TTL = multiplier x last inter-contact gap
  /// TTL used before a node has witnessed two contacts (no interval yet).
  /// Defaults to "no expiry": guessing a constant here would reintroduce the
  /// premature-discard failure mode the enhancement exists to fix.
  SimTime dynamic_ttl_fallback = kNoExpiry;

  // --- EC+TTL (Algo 2) ---
  std::uint32_t ec_threshold = defaults::kEcThreshold;
  SimTime ec_ttl_base = defaults::kEcTtlBase;
  SimTime ec_ttl_step = defaults::kEcTtlStep;
  /// "We define a minimum EC value before nodes are allowed to delete a
  /// bundle" (SIII): EC+TTL only evicts copies transmitted at least this
  /// many times. The default (1) protects exactly the never-transmitted
  /// copies; raise it to protect under-duplicated bundles more aggressively
  /// (see bench_ablation_ecthreshold for the trade-off: large values choke
  /// injection at the source).
  std::uint32_t ec_min_evict = 1;

  // --- immunity (per-bundle i-lists / anti-packets) ---
  /// Immunity tables are unit-sized messages ("nodes need to receive N
  /// immunity tables in order to delete N bundles"); per contact a node
  /// transfers at most this many records per direction. Their slow,
  /// load-proportional dissemination is the overhead the cumulative table
  /// eliminates.
  std::uint32_t immunity_records_per_contact = 5;

  // --- spray-and-wait baseline ---
  /// Copy quota per bundle (binary spray halves it at each hand-over).
  std::uint32_t spray_copies = 8;

  /// Throws ConfigError when a field is out of its valid domain.
  void validate() const;
};

/// One unicast flow: `load` bundles from `source` to `destination`.
struct FlowSpec {
  NodeId source = 0;
  NodeId destination = 1;
  std::uint32_t load = 10;
};

/// Full description of one simulation run (one protocol, one or more flows,
/// one mobility input). The contact schedule itself is supplied separately.
struct SimulationConfig {
  std::uint32_t node_count = 12;  // paper SIV: 12 iMote devices
  std::uint32_t buffer_capacity = defaults::kBufferCapacity;
  SimTime slot_seconds = defaults::kSlotSeconds;
  SimTime horizon = defaults::kTraceHorizon;

  /// Per-node buffer capacities; empty (the default) means every node gets
  /// the uniform `buffer_capacity`. When non-empty the size must equal
  /// node_count and every entry be >= 1. Heterogeneous capacities model
  /// mixed device classes (the paper's iMotes are uniform; real deployments
  /// rarely are).
  std::vector<std::uint32_t> node_capacities;

  /// The buffer capacity node `node` actually gets.
  [[nodiscard]] std::uint32_t capacity_of(NodeId node) const noexcept {
    return node_capacities.empty() ? buffer_capacity : node_capacities[node];
  }

  /// The largest per-node capacity (bounds the engine's scratch buffers).
  [[nodiscard]] std::uint32_t max_capacity() const noexcept;

  /// What a full receiver buffer does with an incoming bundle. Protocols
  /// with their own admission rule (the EC family's drop-largest-EC, the
  /// anti-packet family's vaccinated-copy overwrite) apply that rule first
  /// and fall back to this policy only when it finds no victim. The default
  /// (drop-tail) reproduces the paper's implicit refuse-when-full behavior
  /// bit-identically.
  EvictionPolicy eviction_policy = EvictionPolicy::kDropTail;

  /// How contacts advertise buffer contents to each other. The default
  /// (exact) reproduces the paper's free summary-vector exchange
  /// bit-identically; bloom mode pays advertisement bytes for a compact
  /// filter whose false positives suppress transfers.
  SummaryCodecParams summary;

  /// Number of bundles the source sends to the destination ("load" k).
  /// The paper's experiments are single-flow; these three fields describe
  /// that flow. For multi-flow workloads (e.g. one-to-all dissemination)
  /// fill `flows` instead — it takes precedence when non-empty.
  std::uint32_t load = 10;
  NodeId source = 0;
  NodeId destination = 1;

  /// Optional explicit flow set; empty means "the single flow above".
  std::vector<FlowSpec> flows;

  /// The canonical flow list (either `flows` or the legacy single flow).
  [[nodiscard]] std::vector<FlowSpec> resolved_flows() const;

  /// Sum of all flows' loads.
  [[nodiscard]] std::uint32_t total_load() const;

  /// When set, the engine snapshots network state (instantaneous buffer
  /// fill, delivered fraction, live copies) every `sample_interval` seconds
  /// into Recorder::timeline() — for time-series analysis of a run.
  bool record_timeline = false;
  SimTime sample_interval = 1'000.0;

  /// Contacts beginning within this gap of a node's previous contact count
  /// as the same encounter session (dynamic TTL works on session intervals).
  SimTime encounter_session_gap = 1'800.0;

  ProtocolParams protocol;

  /// Throws ConfigError when the configuration is inconsistent.
  void validate() const;
};

}  // namespace epi
