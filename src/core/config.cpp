#include "core/config.hpp"

#include <array>
#include <string>
#include <utility>

#include "core/error.hpp"

namespace epi {
namespace {

constexpr std::array<std::pair<ProtocolKind, std::string_view>, 10> kNames{{
    {ProtocolKind::kPureEpidemic, "pure_epidemic"},
    {ProtocolKind::kPqEpidemic, "pq_epidemic"},
    {ProtocolKind::kFixedTtl, "fixed_ttl"},
    {ProtocolKind::kEncounterCount, "encounter_count"},
    {ProtocolKind::kImmunity, "immunity"},
    {ProtocolKind::kDynamicTtl, "dynamic_ttl"},
    {ProtocolKind::kEcTtl, "ec_ttl"},
    {ProtocolKind::kCumulativeImmunity, "cumulative_immunity"},
    {ProtocolKind::kDirectDelivery, "direct_delivery"},
    {ProtocolKind::kSprayAndWait, "spray_and_wait"},
}};

}  // namespace

std::string_view to_string(ProtocolKind kind) noexcept {
  for (const auto& [k, name] : kNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

ProtocolKind protocol_from_string(std::string_view name) {
  for (const auto& [k, n] : kNames) {
    if (n == name) return k;
  }
  throw ConfigError("unknown protocol name: " + std::string(name));
}

void ProtocolParams::validate() const {
  if (p < 0.0 || p > 1.0) throw ConfigError("P must lie in [0,1]");
  if (q < 0.0 || q > 1.0) throw ConfigError("Q must lie in [0,1]");
  if (fixed_ttl <= 0.0) throw ConfigError("fixed_ttl must be positive");
  if (ttl_multiplier <= 0.0)
    throw ConfigError("ttl_multiplier must be positive");
  if (dynamic_ttl_fallback <= 0.0)
    throw ConfigError("dynamic_ttl_fallback must be positive");
  if (ec_ttl_base < 0.0) throw ConfigError("ec_ttl_base must be >= 0");
  if (ec_ttl_step <= 0.0) throw ConfigError("ec_ttl_step must be positive");
  if (immunity_records_per_contact == 0)
    throw ConfigError("immunity_records_per_contact must be >= 1");
  if (spray_copies == 0) throw ConfigError("spray_copies must be >= 1");
}

std::uint32_t SimulationConfig::max_capacity() const noexcept {
  std::uint32_t max = buffer_capacity;
  if (!node_capacities.empty()) {
    max = node_capacities.front();
    for (const std::uint32_t c : node_capacities) {
      if (c > max) max = c;
    }
  }
  return max;
}

std::vector<FlowSpec> SimulationConfig::resolved_flows() const {
  if (!flows.empty()) return flows;
  return {FlowSpec{source, destination, load}};
}

std::uint32_t SimulationConfig::total_load() const {
  std::uint32_t total = 0;
  for (const auto& flow : resolved_flows()) total += flow.load;
  return total;
}

void SimulationConfig::validate() const {
  if (node_count < 2) throw ConfigError("need at least two nodes");
  if (buffer_capacity == 0) throw ConfigError("buffer_capacity must be > 0");
  if (!node_capacities.empty()) {
    if (node_capacities.size() != node_count) {
      throw ConfigError("node_capacities must name every node (" +
                        std::to_string(node_capacities.size()) + " != " +
                        std::to_string(node_count) + ")");
    }
    for (const std::uint32_t c : node_capacities) {
      if (c == 0) throw ConfigError("every node capacity must be >= 1");
    }
  }
  if (slot_seconds <= 0.0) throw ConfigError("slot_seconds must be positive");
  if (horizon <= 0.0) throw ConfigError("horizon must be positive");
  const auto resolved = resolved_flows();
  for (const auto& flow : resolved) {
    if (flow.load == 0) throw ConfigError("flow load must be >= 1");
    if (flow.source >= node_count) throw ConfigError("source out of range");
    if (flow.destination >= node_count)
      throw ConfigError("destination out of range");
    if (flow.source == flow.destination)
      throw ConfigError("source and destination must differ");
  }
  if (resolved.size() > 1 &&
      protocol.kind == ProtocolKind::kCumulativeImmunity) {
    // The cumulative table is defined on ONE sequential id space
    // ("an immunity table with a bundle ID of 30 means the destination has
    // received bundles 1 to 30") — it has no meaning across interleaved
    // flows.
    throw ConfigError(
        "cumulative_immunity is defined for a single flow only");
  }
  if (sample_interval <= 0.0)
    throw ConfigError("sample_interval must be positive");
  if (encounter_session_gap <= 0.0)
    throw ConfigError("encounter_session_gap must be positive");
  protocol.validate();
  summary.validate();
}

}  // namespace epi
