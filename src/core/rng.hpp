// Deterministic random number generation.
//
// Experiments are replicated across threads; to keep results bit-identical
// regardless of thread count, every run derives its own independent stream
// from (master_seed, load, replication) via SplitMix64, and the stream itself
// is xoshiro256** (public domain, Blackman & Vigna). We avoid std::mt19937 /
// std::uniform_*_distribution because their outputs are not guaranteed
// identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace epi {

/// SplitMix64: used to expand a 64-bit seed into stream state. Also a fine
/// standalone generator for hashing-style seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** with convenience distributions. All distribution code is
/// self-contained so that two builds on different platforms agree bit-for-bit.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by expanding `seed` through SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derives an independent stream for a tagged sub-experiment. Mixing is by
  /// SplitMix64 over the concatenation of the seed and tags, so streams with
  /// different tags are statistically uncorrelated.
  [[nodiscard]] static Rng derive(std::uint64_t master, std::uint64_t tag_a,
                                  std::uint64_t tag_b = 0,
                                  std::uint64_t tag_c = 0) noexcept;

  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (for std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method with
  /// rejection, so it is unbiased.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Log-normal such that the *median* of the distribution is `median` and
  /// the log-space standard deviation is `sigma`.
  double lognormal_median(double median, double sigma) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace epi
