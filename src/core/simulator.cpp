#include "core/simulator.hpp"

namespace epi::core {

SimTime Simulator::run(SimTime horizon) {
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [time, action] = queue_.pop();
    // Events never run backwards; equal times are allowed.
    assert(time >= now_);
    now_ = time;
    ++events_processed_;
    action();
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
  return now_;
}

}  // namespace epi::core
