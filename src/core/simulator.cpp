#include "core/simulator.hpp"

namespace epi::core {

SimTime Simulator::run(SimTime horizon) {
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    // Depth is sampled before each pop, so it also covers events scheduled
    // by the previous callback (the deepest the queue ever gets).
    if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
    auto [time, action] = queue_.pop();
    // Events never run backwards; equal times are allowed.
    assert(time >= now_);
    now_ = time;
    ++events_processed_;
    action();
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
  return now_;
}

}  // namespace epi::core
