// Summary-exchange codec selection and the signaling byte model.
//
// The enum and its parameter block live in core beside ProtocolKind and
// EvictionPolicy so SimulationConfig, RunSpec and the store-key serializer
// can all name them; the codec mechanics (ExactCodec, BloomCodec) live on
// dtn::SummaryCodec (dtn/summary_codec.hpp).
#pragma once

#include <cstdint>
#include <string_view>

namespace epi {

// The signaling byte model shared by the engine counters and the streaming
// stats collector. One summary-vector entry and one control record (an
// anti-packet id or an immunity high-water mark) each cost four bytes on the
// wire — a 32-bit bundle id. Advertised Bloom filters cost their bit length
// rounded up to whole bytes.
inline constexpr std::uint64_t kControlRecordBytes = 4;
inline constexpr std::uint64_t kSummaryEntryBytes = 4;

/// How a contact advertises its buffer contents to the peer.
enum class SummaryMode : std::uint8_t {
  kExact = 0,  ///< word-packed exact set (the paper's free summary vector)
  kBloom = 1,  ///< Bloom filter: m/n bits per bundle, false positives
};

[[nodiscard]] std::string_view to_string(SummaryMode mode) noexcept;

/// Parses "exact" / "bloom"; throws ConfigError on anything else.
[[nodiscard]] SummaryMode summary_mode_from_string(std::string_view name);

/// Parameters of the summary codec. Defaults reproduce the legacy exact
/// exchange; the Bloom fields follow Marandi et al.'s m/n (bits-per-bundle)
/// and k (hash count) parameterisation.
struct SummaryCodecParams {
  SummaryMode mode = SummaryMode::kExact;

  /// Bloom filter size as bits per buffered bundle (m/n). The filter built
  /// for a buffer of n bundles has m = filter_bits * n bits.
  std::uint32_t filter_bits = 8;

  /// Number of hash probes k; 0 derives the FP-optimal k = round(m/n · ln 2)
  /// (clamped to at least one probe).
  std::uint32_t hashes = 0;

  /// True when advertisements are compact (lossy) rather than exact sets.
  [[nodiscard]] bool compact() const noexcept {
    return mode == SummaryMode::kBloom;
  }

  /// The hash count actually used: `hashes`, or the derived optimum when 0.
  [[nodiscard]] std::uint32_t resolved_hashes() const noexcept;

  /// Analytic false-positive probability (1 - e^{-kn/m})^k of the resolved
  /// configuration, independent of buffer size by the m/n parameterisation.
  [[nodiscard]] double analytic_fp_rate() const noexcept;

  /// Hard-errors (ConfigError) on out-of-range m/n or k, regardless of mode
  /// so a bad Bloom block never rides silently under mode=exact.
  void validate() const;

  friend bool operator==(const SummaryCodecParams&,
                         const SummaryCodecParams&) = default;
};

}  // namespace epi
