#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace epi {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state would be absorbing; SplitMix64 cannot produce four zero
  // outputs in a row from any seed, so no explicit guard is needed, but keep
  // one for safety against future refactors.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng Rng::derive(std::uint64_t master, std::uint64_t tag_a, std::uint64_t tag_b,
                std::uint64_t tag_c) noexcept {
  SplitMix64 sm(master);
  std::uint64_t h = sm.next();
  h ^= SplitMix64(tag_a ^ 0x5851F42D4C957F2DULL).next();
  h = SplitMix64(h).next();
  h ^= SplitMix64(tag_b ^ 0x14057B7EF767814FULL).next();
  h = SplitMix64(h).next();
  h ^= SplitMix64(tag_c ^ 0x2545F4914F6CDD1DULL).next();
  return Rng(SplitMix64(h).next());
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Classic unbiased rejection: 2^64 = q*n + r with r = 2^64 mod n; values
  // below r are rejected so the remaining range is an exact multiple of n.
  const std::uint64_t reject_below = (0 - n) % n;
  std::uint64_t x = next();
  while (x < reject_below) x = next();
  return x % n;
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  // uniform() can return exactly 0; use 1 - u which lies in (0, 1].
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal() noexcept {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

}  // namespace epi
