#include "core/summary_mode.hpp"

#include <cmath>
#include <string>

#include "core/error.hpp"

namespace epi {

namespace {

constexpr double kLn2 = 0.6931471805599453;

// Bounds for the Bloom parameter block. 64 bits per bundle is already far
// past the point of diminishing returns (FP rate ~1e-13 at optimal k); 16
// probes likewise.
constexpr std::uint32_t kMaxFilterBits = 64;
constexpr std::uint32_t kMaxHashes = 16;

}  // namespace

std::string_view to_string(SummaryMode mode) noexcept {
  switch (mode) {
    case SummaryMode::kExact:
      return "exact";
    case SummaryMode::kBloom:
      return "bloom";
  }
  return "?";
}

SummaryMode summary_mode_from_string(std::string_view name) {
  if (name == "exact") return SummaryMode::kExact;
  if (name == "bloom") return SummaryMode::kBloom;
  throw ConfigError("unknown summary mode '" + std::string(name) +
                    "' (expected exact or bloom)");
}

std::uint32_t SummaryCodecParams::resolved_hashes() const noexcept {
  if (hashes != 0) return hashes;
  const auto k = static_cast<std::uint32_t>(
      std::lround(static_cast<double>(filter_bits) * kLn2));
  return k < 1 ? 1 : k;
}

double SummaryCodecParams::analytic_fp_rate() const noexcept {
  const double k = static_cast<double>(resolved_hashes());
  const double bits = static_cast<double>(filter_bits);
  return std::pow(1.0 - std::exp(-k / bits), k);
}

void SummaryCodecParams::validate() const {
  if (filter_bits < 1 || filter_bits > kMaxFilterBits) {
    throw ConfigError("SummaryCodecParams.filter_bits must be in [1, " +
                      std::to_string(kMaxFilterBits) + "], got " +
                      std::to_string(filter_bits));
  }
  if (hashes > kMaxHashes) {
    throw ConfigError("SummaryCodecParams.hashes must be in [0, " +
                      std::to_string(kMaxHashes) + "] (0 = derive), got " +
                      std::to_string(hashes));
  }
}

}  // namespace epi
