// The simulation clock and run loop.
//
// A Simulator owns an EventQueue and a monotonically advancing clock. Client
// code (mobility drivers, protocols, metric samplers) schedules callbacks at
// absolute times; run() drains the queue until a horizon is reached, the
// queue empties, or stop() is called from inside a callback.
#pragma once

#include <cassert>
#include <utility>

#include "core/event_queue.hpp"
#include "core/types.hpp"

namespace epi::core {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at`. Scheduling in the past is a
  /// programming error (asserted); same-time events fire in FIFO order
  /// within their EventClass (lower classes first).
  template <typename F>
  EventHandle at(SimTime time, F&& action) {
    return at(time, EventClass::kNormal, std::forward<F>(action));
  }

  template <typename F>
  EventHandle at(SimTime time, EventClass klass, F&& action) {
    assert(time >= now_ && "cannot schedule into the past");
    return queue_.schedule(time, klass, std::forward<F>(action));
  }

  /// Schedules `action` after a relative delay (>= 0).
  template <typename F>
  EventHandle after(SimTime delay, F&& action) {
    assert(delay >= 0.0);
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// Reserves `count` consecutive same-time tie-break ranks; see
  /// EventQueue::reserve_ranks. Lets chained (lazily scheduled) events keep
  /// the FIFO position an eager scheduler would have given them.
  std::uint64_t reserve_ranks(std::uint64_t count) {
    return queue_.reserve_ranks(count);
  }

  /// Schedules `action` at `time` with a reserved rank.
  template <typename F>
  EventHandle at_ranked(SimTime time, std::uint64_t rank, F&& action) {
    assert(time >= now_ && "cannot schedule into the past");
    return queue_.schedule_ranked(time, rank, std::forward<F>(action));
  }

  void cancel(EventHandle handle) { queue_.cancel(handle); }

  /// Runs until `horizon` (inclusive: events at exactly `horizon` fire), the
  /// queue drains, or stop() is called. Returns the final clock value.
  SimTime run(SimTime horizon);

  /// Requests that run() return after the current callback completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Deepest the pending-event queue ever got during run() — a proxy for
  /// the scheduling working set (deterministic for a given run).
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace epi::core
