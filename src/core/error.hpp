// Exception hierarchy. Configuration and input-format problems are reported
// by throwing; simulation-internal invariant violations use assertions.
#pragma once

#include <stdexcept>
#include <string>

namespace epi {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An invalid SimulationConfig / protocol parameter block.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// A malformed contact-trace file or in-memory trace.
class TraceError : public Error {
 public:
  using Error::Error;
};

/// A run-store directory that cannot be created or written.
class StoreError : public Error {
 public:
  using Error::Error;
};

}  // namespace epi
