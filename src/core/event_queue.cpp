#include "core/event_queue.hpp"

#include <cassert>
#include <utility>

namespace epi::core {

EventHandle EventQueue::schedule(SimTime at, Action action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(action)});
  queued_.insert(seq);
  return EventHandle{seq};
}

void EventQueue::cancel(EventHandle handle) {
  // If the seq is not live (already fired or already cancelled), ignore.
  queued_.erase(handle.seq);
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const&; the Entry must be moved out via
  // const_cast, which is safe because pop() immediately removes it.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.action)};
  queued_.erase(top.seq);
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  queued_.clear();
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !queued_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

}  // namespace epi::core
