#include "core/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace epi::core {

namespace {

constexpr int kArity = 4;
constexpr std::uint64_t kOrderBits = 62;  // class lives in the top 2 bits

[[nodiscard]] constexpr std::uint64_t pack_order(EventClass klass,
                                                 std::uint64_t fifo) noexcept {
  return (static_cast<std::uint64_t>(klass) << kOrderBits) | fifo;
}

}  // namespace

EventHandle EventQueue::schedule(SimTime at, EventClass klass, Action action) {
  assert(next_order_ < (std::uint64_t{1} << kOrderBits));
  return push(at, pack_order(klass, next_order_++), std::move(action));
}

std::uint64_t EventQueue::reserve_ranks(std::uint64_t count) {
  const std::uint64_t first = next_order_;
  next_order_ += count;
  assert(next_order_ < (std::uint64_t{1} << kOrderBits));
  return first;
}

EventHandle EventQueue::schedule_ranked(SimTime at, std::uint64_t rank,
                                        Action action) {
  assert(rank < next_order_ && "rank was never reserved");
  return push(at, pack_order(EventClass::kNormal, rank), std::move(action));
}

EventHandle EventQueue::push(SimTime at, std::uint64_t order, Action action) {
  const std::uint32_t slot = acquire_slot(std::move(action));
  const Node node{at, order, slot};
  heap_.push_back(node);
  slots_[slot].pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return EventHandle{(static_cast<std::uint64_t>(slots_[slot].generation)
                      << 32) |
                     slot};
}

void EventQueue::cancel(EventHandle handle) {
  // Decode and validate: a stale generation (event fired or was cancelled, or
  // the slot was reused) and the null handle are harmless no-ops.
  const auto slot = static_cast<std::uint32_t>(handle.seq & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(handle.seq >> 32);
  if (generation == 0 || slot >= slots_.size() ||
      slots_[slot].generation != generation) {
    return;
  }
  const std::uint32_t pos = slots_[slot].pos;
  release_slot(slot);
  remove_at(pos);
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  assert(!heap_.empty());
  const Node top = heap_.front();
  Popped out{top.time, std::move(slots_[top.slot].action)};
  release_slot(top.slot);
  remove_at(0);
  return out;
}

void EventQueue::clear() {
  for (const Node& node : heap_) release_slot(node.slot);
  heap_.clear();
}

std::uint32_t EventQueue::acquire_slot(Action action) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].action = std::move(action);
    return slot;
  }
  assert(slots_.size() < 0xffffffffu);
  slots_.push_back(Slot{1, 0, std::move(action)});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  // The generation bump invalidates every outstanding handle to this slot.
  // (A single slot would need 2^32 reuses for a stale handle to collide.)
  ++slots_[slot].generation;
  slots_[slot].action = nullptr;
  free_slots_.push_back(slot);
}

void EventQueue::remove_at(std::size_t pos) {
  assert(pos < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    place(pos, heap_[last]);
    heap_.pop_back();
    // The moved-in node may violate the heap property in either direction.
    sift_up(pos);
    sift_down(pos);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::place(std::size_t pos, Node node) noexcept {
  heap_[pos] = node;
  slots_[node.slot].pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_up(std::size_t pos) {
  const Node node = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(node, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, node);
}

void EventQueue::sift_down(std::size_t pos) {
  const Node node = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], node)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, node);
}

}  // namespace epi::core
