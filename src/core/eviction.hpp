// Buffer-eviction policy: what a full BundleBuffer does when one more copy
// wants a slot.
//
// The paper fixes buffers at 10 bundles and leaves the drop behavior
// implicit: a full buffer simply refuses relay bundles (drop-tail). Making
// the policy explicit turns that silent refusal into a first-class,
// configurable admission decision — the protocol-level lever Chen et al.
// study (buffer occupancy / delivery reliability trade-offs). The enum lives
// in core beside ProtocolKind so SimulationConfig, RunSpec and the store-key
// serializer can all name it; the victim-selection mechanics live on
// dtn::BundleBuffer (select_victim).
#pragma once

#include <string_view>

namespace epi {

enum class EvictionPolicy {
  /// Refuse the incoming copy; nothing stored is ever sacrificed. The
  /// paper's implicit behavior and the default everywhere — runs configured
  /// with it are bit-identical to builds that predate the policy seam.
  kDropTail,
  /// Evict the longest-stored copy (FIFO head).
  kDropOldest,
  /// Evict the copy with the most live replicas network-wide, per the
  /// engine's dense-id replica estimate; ties fall to the oldest copy.
  kDropMostReplicated,
  /// Evict the copy with the largest encounter count (the EC family's rule,
  /// generalised); never-transmitted copies are protected. Ties fall to the
  /// oldest copy.
  kDropLargestEc,
};

/// Canonical lower_snake name used by CLIs, reports and the run-store key.
[[nodiscard]] std::string_view to_string(EvictionPolicy policy) noexcept;

/// Parses a canonical name; throws ConfigError on unknown names.
[[nodiscard]] EvictionPolicy eviction_policy_from_string(std::string_view name);

}  // namespace epi
