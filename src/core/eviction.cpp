#include "core/eviction.hpp"

#include <array>
#include <string>
#include <utility>

#include "core/error.hpp"

namespace epi {
namespace {

constexpr std::array<std::pair<EvictionPolicy, std::string_view>, 4>
    kPolicyNames{{
        {EvictionPolicy::kDropTail, "drop_tail"},
        {EvictionPolicy::kDropOldest, "drop_oldest"},
        {EvictionPolicy::kDropMostReplicated, "drop_most_replicated"},
        {EvictionPolicy::kDropLargestEc, "drop_largest_ec"},
    }};

}  // namespace

std::string_view to_string(EvictionPolicy policy) noexcept {
  for (const auto& [p, name] : kPolicyNames) {
    if (p == policy) return name;
  }
  return "unknown";
}

EvictionPolicy eviction_policy_from_string(std::string_view name) {
  for (const auto& [p, n] : kPolicyNames) {
    if (n == name) return p;
  }
  throw ConfigError("unknown eviction policy name: " + std::string(name));
}

}  // namespace epi
