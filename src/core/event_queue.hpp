// A stable discrete-event queue.
//
// Events scheduled for the same instant pop in scheduling order (FIFO), which
// makes simulations reproducible: the paper's trace is processed "event by
// event", and tie order matters when several contacts begin simultaneously.
// Cancellation is supported through handles; cancelled events are dropped
// lazily when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"

namespace epi::core {

/// Token identifying a scheduled event; usable to cancel it.
struct EventHandle {
  std::uint64_t seq = 0;
  friend bool operator==(EventHandle, EventHandle) = default;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to fire at absolute time `at`.
  EventHandle schedule(SimTime at, Action action);

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was cancelled) is a harmless no-op.
  void cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return queued_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return queued_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Popped {
    SimTime time;
    Action action;
  };
  Popped pop();

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  // `mutable` so that const queries can discard cancelled heads lazily.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> queued_;  // live seqs
  std::uint64_t next_seq_ = 1;
};

}  // namespace epi::core
