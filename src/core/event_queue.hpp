// A stable discrete-event queue.
//
// Events scheduled for the same instant pop in scheduling order (FIFO), which
// makes simulations reproducible: the paper's trace is processed "event by
// event", and tie order matters when several contacts begin simultaneously.
//
// Implementation: an indexed 4-ary heap. Every live event owns a slot in a
// side table holding its action and its current heap position, so cancel()
// removes the entry from the heap in O(log n) — no tombstones, no per-event
// hash lookups, and size()/empty() are always exact. The 4-ary layout halves
// the sift depth of a binary heap and keeps sibling comparisons in one cache
// line (heap nodes are 24 bytes; actions stay put in the slot table).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"

namespace epi::core {

/// Token identifying a scheduled event; usable to cancel it.
///
/// `seq` packs the event's slot index (low 32 bits) and the slot's generation
/// (high 32 bits, always >= 1 for live events), so a handle validates in O(1)
/// without hashing. seq 0 — the default-constructed handle — never identifies
/// a live event.
struct EventHandle {
  std::uint64_t seq = 0;
  friend bool operator==(EventHandle, EventHandle) = default;
};

/// Deterministic tie-break tier for events scheduled at the same instant:
/// lower classes fire first, FIFO within a class. The engine's lazily
/// rescheduled feeders reproduce the event order of an eager scheduler this
/// way: trace-feed events beat samplers, samplers beat ordinary actions.
enum class EventClass : std::uint8_t {
  kFeeder = 0,   ///< input-feed cursors (contact starts)
  kSampler = 1,  ///< periodic measurement probes
  kNormal = 2,   ///< everything else (slots, contact ends, expiries)
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` to fire at absolute time `at`.
  EventHandle schedule(SimTime at, Action action) {
    return schedule(at, EventClass::kNormal, std::move(action));
  }
  EventHandle schedule(SimTime at, EventClass klass, Action action);

  /// Reserves `count` consecutive FIFO ranks in EventClass::kNormal and
  /// returns the first. schedule_ranked() spends them: a caller can chain
  /// events lazily (one pending at a time) while same-time ties break
  /// exactly as if the whole chain had been scheduled eagerly at
  /// reservation time. Each rank must be used at most once.
  std::uint64_t reserve_ranks(std::uint64_t count);

  /// Schedules `action` at `at` with a rank from reserve_ranks().
  EventHandle schedule_ranked(SimTime at, std::uint64_t rank, Action action);

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was cancelled) is a harmless no-op.
  void cancel(EventHandle handle);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Popped {
    SimTime time;
    Action action;
  };
  Popped pop();

  void clear();

 private:
  // One heap node: 24 bytes, moved freely during sifts. `order` packs the
  // EventClass (top 2 bits) above a monotonic FIFO counter, so the ordering
  // key is the lexicographic (time, order).
  struct Node {
    SimTime time;
    std::uint64_t order;
    std::uint32_t slot;
  };
  // Side table entry: the slot index is what handles address. `generation`
  // is bumped on release so stale handles never match a reused slot.
  struct Slot {
    std::uint32_t generation = 1;
    std::uint32_t pos = 0;  ///< index into heap_ while live
    Action action;
  };

  [[nodiscard]] static bool before(const Node& a, const Node& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  }

  EventHandle push(SimTime at, std::uint64_t order, Action action);
  std::uint32_t acquire_slot(Action action);
  void release_slot(std::uint32_t slot) noexcept;
  void remove_at(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void place(std::size_t pos, Node node) noexcept;

  std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_order_ = 0;  ///< FIFO counter (low 62 bits of `order`)
};

}  // namespace epi::core
