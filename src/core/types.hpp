// Fundamental vocabulary types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace epi {

/// Simulation time in seconds. The paper's traces use integer seconds, but
/// derived quantities (averages, speeds) are fractional, so we keep a double.
using SimTime = double;

/// Identifier of a DTN node (device carried by a student/zebra/vehicle).
using NodeId = std::uint32_t;

/// Identifier of a bundle. Bundles of one flow are numbered sequentially from
/// 1 so that a cumulative immunity table <H> can mean "bundles 1..H arrived".
using BundleId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr BundleId kInvalidBundle = 0;

/// Sentinel meaning "no deadline / infinite TTL".
inline constexpr SimTime kNoExpiry = std::numeric_limits<SimTime>::infinity();

namespace defaults {

/// Paper SIV: each bundle transfer occupies 100 s of contact time; a contact
/// of duration d carries floor(d/100) bundle slots.
inline constexpr SimTime kSlotSeconds = 100.0;

/// Paper SIV: "We set each node to hold 10 bundles."
inline constexpr std::uint32_t kBufferCapacity = 10;

/// Paper SIV: maximum recorded time of the Cambridge iMote trace.
inline constexpr SimTime kTraceHorizon = 524'162.0;

/// Paper SIV: RWP experiments simulate a 600,000 s period.
inline constexpr SimTime kRwpHorizon = 600'000.0;

/// Paper SV: fixed-TTL experiments in the comparison figures use 300 s.
inline constexpr SimTime kFixedTtl = 300.0;

/// Paper SIII (Algo 2): EC threshold after which a bundle acquires a TTL.
inline constexpr std::uint32_t kEcThreshold = 8;

/// Paper SIII (Algo 2): base TTL granted when the EC threshold is crossed.
inline constexpr SimTime kEcTtlBase = 300.0;

/// Paper SIII (Algo 2): TTL reduction per transmission past the threshold.
inline constexpr SimTime kEcTtlStep = 100.0;

}  // namespace defaults
}  // namespace epi
