// ZebraNet-style wildlife tracking (the paper's motivating example [1]):
// collared zebras roam a park and occasionally wander near a ranger station;
// sensed data must reach the station despite there never being a
// contemporaneous path.
//
// The herd is modelled with the subscriber-point mobility generator
// (watering holes = subscriber points); the station is the node the flow
// targets. Compares a TTL-based protocol against the cumulative-immunity
// enhancement for battery- and storage-constrained collars.
//
//   ./zebranet [herd_size] [readings]
#include <cstdlib>
#include <iostream>

#include "exp/runner.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "exp/scenario.hpp"
#include "mobility/rwp.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const auto herd =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10u;
  const auto readings =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 30u;

  try {
    // Park mobility: zebras drift between watering holes across 4 km^2; the
    // station is just another "node" that happens to sit at a few holes.
    mobility::RwpParams park;
    park.node_count = herd + 1;  // + the ranger station
    park.area_side_m = 2'000.0;
    park.subscriber_points = 25;      // watering holes
    park.max_pause_s = 3'000.0;       // grazing stops are long
    park.horizon = 1'000'000.0;       // ~11 days of tracking
    park.max_contact_s = 900.0;       // herds mingle for a while

    const mobility::ContactTrace trace = mobility::generate_rwp(park, 2024);
    const auto stats = trace.stats();
    std::cout << "park: " << stats.contact_count << " contacts among " << herd
              << " zebras + 1 station over " << park.horizon / 86'400.0
              << " days\n"
              << "      mean inter-contact " << stats.mean_inter_contact
              << " s, mean contact " << stats.mean_duration << " s\n\n";

    // One zebra's collar uploads `readings` sensor bundles to the station
    // (node herd). Collars have tiny buffers.
    for (const char* name : {"fixed_ttl", "dynamic_ttl", "encounter_count",
                             "ec_ttl", "cumulative_immunity"}) {
      SimulationConfig config;
      config.node_count = park.node_count;
      config.buffer_capacity = 8;  // collars store very little
      config.load = readings;
      config.source = 0;            // the tracked zebra
      config.destination = herd;    // the ranger station
      config.horizon = trace.end_time();
      config.protocol.kind = protocol_from_string(name);

      routing::Engine engine(config, trace,
                             routing::make_protocol(config.protocol), 7);
      const metrics::RunSummary run = engine.run();
      std::cout << "  " << name << ": delivered "
                << static_cast<int>(run.delivery_ratio * readings) << "/"
                << readings << " readings";
      if (run.complete) {
        std::cout << " in " << run.completion_time / 3'600.0 << " h";
      }
      std::cout << ", collar storage used " << run.buffer_occupancy * 100.0
                << "%, radio signaling " << run.control_records
                << " msgs\n";
    }
    std::cout << "\nTakeaway: on sparse wildlife contact graphs a constant "
                 "TTL loses readings;\nthe adaptive and immunity-based "
                 "variants get everything to the station while\nkeeping "
                 "collar storage low.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
