// Buffer dynamics over time: WHY the buffer-occupancy figures come out the
// way they do. Renders an ASCII time series of network-wide buffer fill for
// four contrasting protocols on the same flow:
//
//   * P-Q keeps vaccinated copies until the space is needed (plateau),
//   * immunity purges eagerly (sawtooth decay),
//   * EC holds everything and swaps (ratchets up and stays),
//   * fixed TTL drains within minutes of each burst (spikes).
//
//   ./buffer_dynamics [load]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace {

void render(const std::string& name,
            const std::vector<epi::metrics::Recorder::TimelinePoint>& series,
            double horizon) {
  constexpr int kColumns = 72;
  constexpr int kRows = 8;
  // Downsample the series into kColumns buckets (max within each bucket).
  std::vector<double> columns(kColumns, 0.0);
  for (const auto& point : series) {
    const int c = std::min(
        kColumns - 1, static_cast<int>(point.t / horizon * kColumns));
    columns[static_cast<std::size_t>(c)] =
        std::max(columns[static_cast<std::size_t>(c)],
                 point.buffer_occupancy);
  }
  std::cout << name << "\n";
  for (int row = kRows; row >= 1; --row) {
    const double threshold = static_cast<double>(row) / kRows;
    std::cout << std::setw(4) << static_cast<int>(threshold * 100) << "% |";
    for (const double v : columns) std::cout << (v >= threshold ? '#' : ' ');
    std::cout << "\n";
  }
  std::cout << "      +" << std::string(kColumns, '-') << "\n"
            << "       0" << std::setw(kColumns) << std::fixed
            << std::setprecision(0) << horizon << " s\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epi;
  const auto load =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 30u;

  try {
    const exp::ScenarioSpec scenario = exp::trace_scenario();
    const mobility::ContactTrace trace =
        exp::build_contact_trace(scenario, 42);

    std::cout << "network-wide buffer occupancy over time, load " << load
              << " (campus trace)\n\n";
    for (const char* name :
         {"pq_epidemic", "immunity", "encounter_count", "fixed_ttl"}) {
      SimulationConfig config;
      config.node_count = trace.node_count();
      config.load = load;
      config.source = 0;
      config.destination = 5;
      config.horizon = trace.end_time();
      config.record_timeline = true;
      config.sample_interval = 500.0;
      config.protocol.kind = protocol_from_string(name);

      routing::Engine engine(config, trace,
                             routing::make_protocol(config.protocol), 3);
      const metrics::RunSummary run = engine.run();
      // Scale the x-axis to the run's actual extent (runs stop once the
      // destination has everything).
      render(std::string(name) + "  (delivery " +
                 std::to_string(run.delivery_ratio).substr(0, 4) + ")",
             engine.recorder().timeline(), std::max(run.end_time, 1.0));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
