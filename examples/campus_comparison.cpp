// Campus deployment study: which epidemic variant should route messages
// between students' devices on a university campus (the paper's Fig. 1
// scenario)?
//
// Runs every protocol on the campus-like contact trace across the full load
// sweep and prints a ranked decision table: delivery ratio, delay, buffer
// cost and signaling overhead.
//
//   ./campus_comparison [replications]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const auto replications =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10u;

  struct Candidate {
    const char* name;
    ProtocolKind kind;
  };
  const std::vector<Candidate> candidates{
      {"P-Q epidemic (P=Q=1)", ProtocolKind::kPqEpidemic},
      {"fixed TTL (300 s)", ProtocolKind::kFixedTtl},
      {"encounter count", ProtocolKind::kEncounterCount},
      {"immunity tables", ProtocolKind::kImmunity},
      {"dynamic TTL", ProtocolKind::kDynamicTtl},
      {"EC + TTL", ProtocolKind::kEcTtl},
      {"cumulative immunity", ProtocolKind::kCumulativeImmunity},
  };

  try {
    std::vector<ProtocolParams> protocols;
    for (const auto& c : candidates) {
      ProtocolParams params;
      params.kind = c.kind;
      protocols.push_back(params);
    }

    std::cout << "running " << candidates.size() << " protocols x "
              << exp::paper_loads().size() << " loads x " << replications
              << " replications on the campus trace...\n\n";
    const auto results =
        exp::run_sweeps(exp::trace_scenario(), protocols, /*master_seed=*/42,
                        replications);

    struct Row {
      const char* name;
      double delivery = 0.0;
      double delay = 0.0;
      double buffer = 0.0;
      double overhead = 0.0;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < results.size(); ++i) {
      Row row{candidates[i].name};
      for (const auto& point : results[i].points) {
        row.delivery += point.delivery_ratio.mean;
        row.delay += point.delay.mean;
        row.buffer += point.buffer_occupancy.mean;
        row.overhead += point.control_records.mean;
      }
      const auto n = static_cast<double>(results[i].points.size());
      row.delivery /= n;
      row.delay /= n;
      row.buffer /= n;
      row.overhead /= n;
      rows.push_back(row);
    }

    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.delivery > b.delivery;
    });

    std::cout << std::left << std::setw(24) << "protocol" << std::right
              << std::setw(10) << "delivery" << std::setw(12) << "delay(s)"
              << std::setw(10) << "buffer" << std::setw(12) << "signaling"
              << "\n";
    for (const auto& row : rows) {
      std::cout << std::left << std::setw(24) << row.name << std::right
                << std::fixed << std::setprecision(3) << std::setw(10)
                << row.delivery << std::setprecision(0) << std::setw(12)
                << row.delay << std::setprecision(3) << std::setw(10)
                << row.buffer << std::setprecision(0) << std::setw(12)
                << row.overhead << "\n";
    }
    std::cout << "\n(averages over the full load sweep; lower delay/buffer/"
                 "signaling is better)\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
