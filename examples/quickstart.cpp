// Quickstart: simulate one epidemic protocol on the synthetic Cambridge-like
// trace and print the paper's four metrics.
//
//   ./quickstart [protocol] [load] [--trace-out=FILE]
//
// protocol: pure_epidemic | pq_epidemic | fixed_ttl | dynamic_ttl |
//           encounter_count | ec_ttl | immunity | cumulative_immunity
//
// --trace-out streams one JSONL record per engine event (contacts, stores,
// transfers, drops, deliveries) — the fastest way to see *why* a metric came
// out the way it did.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/jsonl_sink.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  std::string trace_out;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--trace-out=")) {
      trace_out = arg.substr(std::string_view("--trace-out=").size());
    } else {
      positional.emplace_back(arg);
    }
  }
  const std::string protocol_name =
      !positional.empty() ? positional[0] : "cumulative_immunity";
  const std::uint32_t load =
      positional.size() > 1
          ? static_cast<std::uint32_t>(std::atoi(positional[1].c_str()))
          : 25;

  try {
    // 1. Build the mobility input: a statistical twin of the Cambridge
    //    iMote trace (12 students, 5 days of encounters).
    const exp::ScenarioSpec scenario = exp::trace_scenario();
    const mobility::ContactTrace trace =
        exp::build_contact_trace(scenario, /*seed=*/42);
    const mobility::TraceStats stats = trace.stats();
    std::cout << "mobility: " << stats.contact_count << " contacts among "
              << stats.node_count << " nodes over " << stats.last_end
              << " s\n"
              << "          mean contact " << stats.mean_duration
              << " s, mean inter-contact " << stats.mean_inter_contact
              << " s\n\n";

    // 2. Configure one run: `load` bundles from a random source to a random
    //    destination, routed by the chosen protocol.
    exp::RunSpec spec;
    spec.protocol.kind = protocol_from_string(protocol_name);
    spec.load = load;
    spec.horizon = scenario.horizon();

    std::unique_ptr<obs::JsonlSink> sink;
    if (!trace_out.empty()) {
      sink = std::make_unique<obs::JsonlSink>(trace_out);
      spec.trace_sink = sink.get();
    }

    // 3. Run and report.
    const metrics::RunSummary run = exp::run_single(spec, trace);
    if (sink != nullptr) {
      std::cout << "event trace:        " << sink->records()
                << " records -> " << trace_out << "\n";
    }
    std::cout << "protocol:           " << protocol_name << "\n"
              << "load (bundles):     " << load << "\n"
              << "delivery ratio:     " << run.delivery_ratio << "\n"
              << "complete:           " << (run.complete ? "yes" : "no")
              << "\n"
              << "completion time:    " << run.completion_time << " s\n"
              << "mean bundle delay:  " << run.mean_bundle_delay << " s\n"
              << "buffer occupancy:   " << run.buffer_occupancy << "\n"
              << "duplication rate:   " << run.duplication_rate << "\n"
              << "transmissions:      " << run.bundle_transmissions << "\n"
              << "signaling records:  " << run.control_records << "\n"
              << "contacts processed: " << run.contacts << "\n"
              << "sim events:         " << run.perf.events_processed << " ("
              << run.perf.events_per_second() << " ev/s, peak queue "
              << run.perf.peak_queue_depth << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
