// Quickstart: simulate one epidemic protocol on the synthetic Cambridge-like
// trace and print the paper's four metrics.
//
//   ./quickstart [protocol] [load]
//
// protocol: pure_epidemic | pq_epidemic | fixed_ttl | dynamic_ttl |
//           encounter_count | ec_ttl | immunity | cumulative_immunity
#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const std::string protocol_name =
      argc > 1 ? argv[1] : "cumulative_immunity";
  const std::uint32_t load =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 25;

  try {
    // 1. Build the mobility input: a statistical twin of the Cambridge
    //    iMote trace (12 students, 5 days of encounters).
    const exp::ScenarioSpec scenario = exp::trace_scenario();
    const mobility::ContactTrace trace =
        exp::build_contact_trace(scenario, /*seed=*/42);
    const mobility::TraceStats stats = trace.stats();
    std::cout << "mobility: " << stats.contact_count << " contacts among "
              << stats.node_count << " nodes over " << stats.last_end
              << " s\n"
              << "          mean contact " << stats.mean_duration
              << " s, mean inter-contact " << stats.mean_inter_contact
              << " s\n\n";

    // 2. Configure one run: `load` bundles from a random source to a random
    //    destination, routed by the chosen protocol.
    exp::RunSpec spec;
    spec.protocol.kind = protocol_from_string(protocol_name);
    spec.load = load;
    spec.horizon = scenario.horizon();

    // 3. Run and report.
    const metrics::RunSummary run = exp::run_single(spec, trace);
    std::cout << "protocol:           " << protocol_name << "\n"
              << "load (bundles):     " << load << "\n"
              << "delivery ratio:     " << run.delivery_ratio << "\n"
              << "complete:           " << (run.complete ? "yes" : "no")
              << "\n"
              << "completion time:    " << run.completion_time << " s\n"
              << "mean bundle delay:  " << run.mean_bundle_delay << " s\n"
              << "buffer occupancy:   " << run.buffer_occupancy << "\n"
              << "duplication rate:   " << run.duplication_rate << "\n"
              << "transmissions:      " << run.bundle_transmissions << "\n"
              << "signaling records:  " << run.control_records << "\n"
              << "contacts processed: " << run.contacts << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
