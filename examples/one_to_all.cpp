// One-to-all dissemination (the paper's second motivating use case:
// "epidemic routing protocols are also critical to one-to-all communication
// schemes, which can be used to disseminate advertisements or events").
//
// A campaign node pushes the same `ads` bundles to every other device on the
// campus, expressed as one unicast flow per recipient (multi-flow engine).
// Compares the flooding family against bounded-replication baselines on
// time-to-full-coverage and radio cost.
//
//   ./one_to_all [ads]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const auto ads =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3u;

  try {
    const exp::ScenarioSpec scenario = exp::trace_scenario();
    const mobility::ContactTrace trace =
        exp::build_contact_trace(scenario, 42);
    const NodeId campaign = 0;

    std::cout << "disseminating " << ads << " ads from node " << campaign
              << " to " << trace.node_count() - 1
              << " recipients on the campus trace\n\n"
              << std::left << std::setw(22) << "protocol" << std::right
              << std::setw(10) << "coverage" << std::setw(9) << "worst"
              << std::setw(14)
              << "all-seen (h)" << std::setw(12) << "bundle tx"
              << std::setw(12) << "signaling" << "\n";

    for (const char* name :
         {"pure_epidemic", "pq_epidemic", "fixed_ttl", "dynamic_ttl",
          "encounter_count", "ec_ttl", "immunity", "spray_and_wait",
          "direct_delivery"}) {
      SimulationConfig config;
      config.node_count = trace.node_count();
      config.horizon = trace.end_time();
      config.protocol.kind = protocol_from_string(name);
      for (NodeId recipient = 0; recipient < config.node_count; ++recipient) {
        if (recipient != campaign) {
          config.flows.push_back(FlowSpec{campaign, recipient, ads});
        }
      }

      routing::Engine engine(config, trace,
                             routing::make_protocol(config.protocol), 7);
      const metrics::RunSummary run = engine.run();
      // Worst-served recipient: the number dissemination studies care about.
      double worst = 1.0;
      for (const double d : run.flow_delivery) worst = std::min(worst, d);
      std::cout << std::left << std::setw(22) << name << std::right
                << std::fixed << std::setprecision(2) << std::setw(9)
                << run.delivery_ratio * 100.0 << "%" << std::setw(8)
                << worst * 100.0 << "%" << std::setprecision(1)
                << std::setw(14)
                << (run.complete ? run.completion_time / 3'600.0 : -1.0)
                << std::setw(12) << run.bundle_transmissions << std::setw(12)
                << run.control_records << "\n";
    }
    std::cout << "\n(all-seen = hours until every recipient has every ad; "
                 "-1 = never within the trace)\n"
              << "The broadcast workload stresses source-buffer reclamation: "
                 "protocols with\ndelivery feedback (anti-packets, immunity, "
                 "implicit ACKs) push all "
              << ads * (trace.node_count() - 1)
              << " bundles\nthrough a 10-slot buffer, while pure epidemic "
                 "and fixed TTL choke on the backlog.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
