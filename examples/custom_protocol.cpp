// Extending the library with a custom protocol: hop-limited epidemic.
//
// The Protocol interface was designed so that a new variant only overrides
// the decision points in which it differs from pure flooding. Here we build
// a two-hop "spray" variant (bundles are only forwarded while their copy has
// travelled fewer than `max_hops` hops — the engine's encounter count is the
// hop depth of a copy's lineage) and benchmark it against pure epidemic and
// cumulative immunity on the campus trace.
#include <iostream>
#include <memory>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "routing/protocol.hpp"

namespace {

/// Bundles stop being forwarded once their copy lineage is `max_hops` deep.
/// Delivery to the destination is always allowed — the hop limit gates relay
/// fan-out, not the final hop (checked by the engine before make_room).
class HopLimitedEpidemic final : public epi::routing::Protocol {
 public:
  explicit HopLimitedEpidemic(std::uint32_t max_hops) : max_hops_(max_hops) {}

  [[nodiscard]] epi::ProtocolKind kind() const noexcept override {
    return epi::ProtocolKind::kPureEpidemic;  // reported family
  }

  [[nodiscard]] bool may_offer(epi::routing::Engine& engine,
                               epi::routing::SessionId,
                               const epi::dtn::DtnNode&,
                               const epi::dtn::DtnNode& receiver,
                               const epi::dtn::StoredBundle& copy,
                               bool) override {
    // Relay fan-out only below the hop budget; the final hop to the
    // destination is always permitted.
    if (receiver.id() == engine.bundle(copy.id).destination) return true;
    return copy.ec < max_hops_;
  }

 private:
  std::uint32_t max_hops_;
};

void report(const char* name, const epi::metrics::RunSummary& run) {
  std::cout << "  " << name << ": delivery " << run.delivery_ratio
            << ", transmissions " << run.bundle_transmissions
            << ", peak spread " << run.duplication_rate << ", buffer "
            << run.buffer_occupancy << "\n";
}

}  // namespace

int main() {
  using namespace epi;
  try {
    const exp::ScenarioSpec scenario = exp::trace_scenario();
    const mobility::ContactTrace trace =
        exp::build_contact_trace(scenario, 42);

    SimulationConfig config;
    config.node_count = trace.node_count();
    config.load = 20;
    config.source = 0;
    config.destination = 5;
    config.horizon = trace.end_time();

    std::cout << "hop-limited epidemic vs library protocols (load "
              << config.load << "):\n";

    for (const std::uint32_t hops : {1u, 2u, 4u}) {
      routing::Engine engine(config, trace,
                             std::make_unique<HopLimitedEpidemic>(hops), 1);
      report(("hop limit " + std::to_string(hops)).c_str(), engine.run());
    }

    for (const auto kind :
         {ProtocolKind::kPureEpidemic, ProtocolKind::kCumulativeImmunity}) {
      config.protocol.kind = kind;
      routing::Engine engine(config, trace,
                             routing::make_protocol(config.protocol), 1);
      report(std::string(to_string(kind)).c_str(), engine.run());
    }

    std::cout << "\nA one-hop limit saves transmissions but struggles to "
                 "reach the destination;\nwider budgets converge to "
                 "flooding. Custom policies need only override the\n"
                 "Protocol decision points they change.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
