// trace_tool: generate, inspect and convert contact traces.
//
//   ./trace_tool gen <haggle|rwp|interval400|interval2000> <seed> <out.txt>
//   ./trace_tool stats <trace.txt>
//
// The text format is one contact per line: "<a> <b> <start_s> <end_s>".
// A real CRAWDAD iMote trace converted to this format drops straight into
// every experiment in this repository.
#include <iostream>
#include <string>

#include "exp/scenario.hpp"
#include "mobility/trace_io.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_tool gen <haggle|rwp|interval400|interval2000> "
               "<seed> <out.txt>\n"
               "  trace_tool stats <trace.txt>\n";
  return 2;
}

int generate(const std::string& kind, std::uint64_t seed,
             const std::string& path) {
  using namespace epi;
  exp::ScenarioSpec spec;
  if (kind == "haggle") {
    spec = exp::trace_scenario();
  } else if (kind == "rwp") {
    spec = exp::rwp_scenario();
  } else if (kind == "interval400") {
    spec = exp::interval_scenario(400.0);
  } else if (kind == "interval2000") {
    spec = exp::interval_scenario(2000.0);
  } else {
    return usage();
  }
  const mobility::ContactTrace trace = exp::build_contact_trace(spec, seed);
  mobility::write_trace_file(path, trace,
                             "generator=" + kind +
                                 " seed=" + std::to_string(seed));
  std::cout << "wrote " << trace.size() << " contacts to " << path << "\n";
  return 0;
}

int stats(const std::string& path) {
  using namespace epi;
  const mobility::ContactTrace trace = mobility::read_trace_file(path);
  const mobility::TraceStats s = trace.stats();
  std::cout << "contacts:              " << s.contact_count << "\n"
            << "nodes:                 " << s.node_count << "\n"
            << "first contact start:   " << s.first_start << " s\n"
            << "last contact end:      " << s.last_end << " s\n"
            << "duration mean/med/p90: " << s.mean_duration << " / "
            << s.median_duration << " / " << s.p90_duration << " s\n"
            << "inter-contact mean:    " << s.mean_inter_contact << " s\n"
            << "inter-contact med/p90: " << s.median_inter_contact << " / "
            << s.p90_inter_contact << " s\n"
            << "max inter-contact:     " << s.max_inter_contact << " s\n"
            << "mean contacts/node:    " << s.mean_contacts_per_node << "\n"
            << "bundle slots (100 s):  " << s.total_slots << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 5 && std::string(argv[1]) == "gen") {
      return generate(argv[2],
                      static_cast<std::uint64_t>(std::atoll(argv[3])),
                      argv[4]);
    }
    if (argc == 3 && std::string(argv[1]) == "stats") {
      return stats(argv[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
