// Perf-regression baseline: end-to-end engine runs for every protocol
// family on both canonical scenarios, written as machine-readable JSON.
//
//   bench_baseline [--out FILE] [--reps N] [--quick]
//
// Per case it reports ns/run (best of N reps, steady_clock around the whole
// run including engine construction) and engine events/s from PerfCounters,
// plus the deterministic counters (events_processed, peak_queue_depth,
// transfers) that scripts/compare_bench.py checks bit-exactly: a perf number
// may drift with the machine, a counter may not.
//
// The committed repo baseline is BENCH_engine.json at the repo root;
// regenerate it with `bench_baseline --out BENCH_engine.json` after an
// intentional engine change and let the compare script arbitrate the rest.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "fault/plan.hpp"

namespace {

struct CaseResult {
  std::string name;
  double ns_per_run = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events_processed = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t transfers = 0;
  // Deterministic fault counters (all zero for the fault-free suites).
  std::uint64_t slots_lost = 0;
  std::uint64_t down_slots = 0;
  std::uint64_t control_dropped = 0;
  std::uint64_t contacts_truncated = 0;
  std::uint64_t transfers_refused_full = 0;
  // Deterministic signaling counters (ad bytes are codec-dependent; the
  // suppression counter is nonzero only under a compact codec's FPs).
  std::uint64_t summary_exchanges = 0;
  std::uint64_t summary_ad_bytes = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t transfers_suppressed_fp = 0;
};

constexpr const char* kTraceProtocols[] = {
    "immunity",     "encounter_count", "cumulative_immunity", "pure_epidemic",
    "pq_epidemic",  "fixed_ttl",       "dynamic_ttl",         "ec_ttl",
};
constexpr const char* kRwpProtocols[] = {
    "pure_epidemic", "encounter_count", "immunity",
    "spray_and_wait", "direct_delivery",
};
// Large-N suite: the protocols whose contact path leans on the exchange
// sets (i-lists, anti-packets) plus the pure baseline. The cumulative-table
// protocol is absent by necessity: it is defined for a single flow only.
constexpr const char* kLargeProtocols[] = {
    "pure_epidemic", "immunity", "pq_epidemic",
};

template <std::size_t N>
void run_suite_impl(
    std::vector<CaseResult>& results, std::string_view scenario_name,
    const epi::exp::ScenarioSpec& scenario,
    const char* const (&protocols)[N], std::uint32_t reps,
    const std::vector<epi::FlowSpec>& flows,
    const epi::fault::FaultPlan& fault, epi::EvictionPolicy eviction,
    const epi::SummaryCodecParams& summary,
    const std::function<epi::metrics::RunSummary(const epi::exp::RunSpec&)>&
        run_once) {
  using clock = std::chrono::steady_clock;
  std::uint32_t total_load = 0;
  for (const auto& f : flows) total_load += f.load;
  for (const char* protocol : protocols) {
    CaseResult r;
    r.name = std::string(scenario_name) + "/" + protocol;
    epi::ProtocolParams params;
    params.kind = epi::protocol_from_string(protocol);
    const epi::exp::RunSpec spec =
        epi::exp::RunSpecBuilder()
            .protocol(params)
            .scenario(scenario)
            .load(flows.empty() ? 25 : total_load)
            .flows(flows)
            .replication(1)  // fixed: every rep times the identical run
            .fault(fault)
            .eviction(eviction)
            .summary(summary)
            .build();
    double best_seconds = std::numeric_limits<double>::infinity();
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      const auto t0 = clock::now();
      const auto summary = run_once(spec);
      const double seconds =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (seconds < best_seconds) best_seconds = seconds;
      if (rep == 0) {
        r.events_processed = summary.perf.events_processed;
        r.peak_queue_depth = summary.perf.peak_queue_depth;
        r.transfers = summary.perf.transfers;
        r.slots_lost = summary.perf.slots_lost;
        r.down_slots = summary.perf.down_slots;
        r.control_dropped = summary.perf.control_dropped;
        r.contacts_truncated = summary.perf.contacts_truncated;
        r.transfers_refused_full = summary.perf.transfers_refused_full;
        r.summary_exchanges = summary.perf.summary_exchanges;
        r.summary_ad_bytes = summary.perf.summary_ad_bytes;
        r.control_bytes = summary.perf.control_bytes;
        r.transfers_suppressed_fp = summary.perf.transfers_suppressed_fp;
      } else if (summary.perf.events_processed != r.events_processed ||
                 summary.perf.transfers != r.transfers ||
                 summary.perf.slots_lost != r.slots_lost ||
                 summary.perf.contacts_truncated != r.contacts_truncated ||
                 summary.perf.transfers_refused_full !=
                     r.transfers_refused_full ||
                 summary.perf.summary_ad_bytes != r.summary_ad_bytes ||
                 summary.perf.transfers_suppressed_fp !=
                     r.transfers_suppressed_fp) {
        std::fprintf(stderr, "non-deterministic repetition in %s\n",
                     r.name.c_str());
        std::exit(1);
      }
    }
    r.ns_per_run = best_seconds * 1e9;
    r.events_per_sec =
        static_cast<double>(r.events_processed) / best_seconds;
    std::fprintf(stderr, "%-28s %12.0f ns/run %12.3g ev/s\n", r.name.c_str(),
                 r.ns_per_run, r.events_per_sec);
    results.push_back(std::move(r));
  }
}

template <std::size_t N>
void run_suite(std::vector<CaseResult>& results, std::string_view scenario_name,
               const epi::exp::ScenarioSpec& scenario,
               const epi::mobility::ContactTrace& trace,
               const char* const (&protocols)[N], std::uint32_t reps,
               const std::vector<epi::FlowSpec>& flows = {},
               const epi::fault::FaultPlan& fault = {},
               epi::EvictionPolicy eviction = epi::EvictionPolicy::kDropTail,
               const epi::SummaryCodecParams& summary = {}) {
  run_suite_impl(results, scenario_name, scenario, protocols, reps, flows,
                 fault, eviction, summary,
                 [&](const epi::exp::RunSpec& spec) {
                   return epi::exp::run_single(spec, trace);
                 });
}

// Streamed variant: contacts are pulled from the scenario's ContactSource
// instead of a pre-materialised trace, so the timing includes generation —
// the honest cost of the city-scale path, whose point is never holding the
// full contact vector. A fresh source is built per rep (sources are
// single-pass).
template <std::size_t N>
void run_suite_streamed(std::vector<CaseResult>& results,
                        std::string_view scenario_name,
                        const epi::exp::ScenarioSpec& scenario,
                        const char* const (&protocols)[N], std::uint32_t reps,
                        const std::vector<epi::FlowSpec>& flows = {}) {
  run_suite_impl(results, scenario_name, scenario, protocols, reps, flows, {},
                 epi::EvictionPolicy::kDropTail, {},
                 [&](const epi::exp::RunSpec& spec) {
                   const auto source = epi::exp::build_contact_source(
                       scenario, 42);
                   return epi::exp::run_single(spec, *source);
                 });
}

void write_json(const std::string& path, const std::vector<CaseResult>& results,
                std::uint32_t reps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"suite\": \"engine_baseline\",\n");
  std::fprintf(f, "  \"reps\": %u,\n  \"load\": 25,\n  \"benchmarks\": [\n",
               reps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_run\": %.0f, "
                 "\"events_per_sec\": %.0f, \"events_processed\": %llu, "
                 "\"peak_queue_depth\": %llu, \"transfers\": %llu, "
                 "\"slots_lost\": %llu, \"down_slots\": %llu, "
                 "\"control_dropped\": %llu, \"contacts_truncated\": %llu, "
                 "\"transfers_refused_full\": %llu, "
                 "\"summary_exchanges\": %llu, \"summary_ad_bytes\": %llu, "
                 "\"control_bytes\": %llu, "
                 "\"transfers_suppressed_fp\": %llu}%s\n",
                 r.name.c_str(), r.ns_per_run, r.events_per_sec,
                 static_cast<unsigned long long>(r.events_processed),
                 static_cast<unsigned long long>(r.peak_queue_depth),
                 static_cast<unsigned long long>(r.transfers),
                 static_cast<unsigned long long>(r.slots_lost),
                 static_cast<unsigned long long>(r.down_slots),
                 static_cast<unsigned long long>(r.control_dropped),
                 static_cast<unsigned long long>(r.contacts_truncated),
                 static_cast<unsigned long long>(r.transfers_refused_full),
                 static_cast<unsigned long long>(r.summary_exchanges),
                 static_cast<unsigned long long>(r.summary_ad_bytes),
                 static_cast<unsigned long long>(r.control_bytes),
                 static_cast<unsigned long long>(r.transfers_suppressed_fp),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_engine.json";
  std::uint32_t reps = 5;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const auto next = [&]() -> std::string {
      if (has_inline) return std::string(inline_value);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %.*s\n",
                     static_cast<int>(arg.size()), arg.data());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out = next();
    } else if (arg == "--reps") {
      reps = epi::bench::parse_unsigned<std::uint32_t>(arg, next());
    } else if (arg == "--quick") {
      reps = 1;  // CI smoke: one timing rep per case
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--out FILE] [--reps N] [--quick]\n", argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      return 2;
    }
  }
  if (reps == 0) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 2;
  }

  std::vector<CaseResult> results;
  const auto trace_spec = epi::exp::trace_scenario();
  const auto rwp_spec = epi::exp::rwp_scenario();
  const auto trace = epi::exp::build_contact_trace(trace_spec, 42);
  const auto rwp = epi::exp::build_contact_trace(rwp_spec, 42);
  run_suite(results, "trace", trace_spec, trace, kTraceProtocols, reps);
  run_suite(results, "rwp", rwp_spec, rwp, kRwpProtocols, reps);
  // Robustness suite: the same protocol families under a composite fault
  // plan (transfer loss + truncation + duty cycling + control loss). The
  // repetition check above doubles as a fault-determinism gate, and the
  // fault counters land in the JSON for compare_bench.py to pin.
  const epi::fault::FaultPlan fault_plan = epi::fault::FaultPlanBuilder()
                                               .slot_loss(0.2)
                                               .truncation(0.1)
                                               .duty_cycle(0.25, 7'200.0)
                                               .control_loss(0.2)
                                               .build();
  run_suite(results, "trace+fault", trace_spec, trace, kTraceProtocols, reps,
            {}, fault_plan);
  run_suite(results, "rwp+fault", rwp_spec, rwp, kRwpProtocols, reps, {},
            fault_plan);
  // Eviction-policy suite (guarded as "new" by compare_bench.py until the
  // committed baseline carries it): drop-oldest on the trace scenario, where
  // buffer pressure is highest and the non-default admission path actually
  // runs. One protocol family without its own admission rule keeps the row
  // cheap while exercising the generic Protocol::make_room eviction.
  constexpr const char* kEvictionProtocols[] = {"pure_epidemic"};
  run_suite(results, "trace+dropoldest", trace_spec, trace, kEvictionProtocols,
            reps, {}, {}, epi::EvictionPolicy::kDropOldest);
  // Compact-advertisement suite (guarded as "new" by compare_bench.py until
  // the committed baseline carries it): the Bloom codec at its 8 bits/bundle
  // default on the trace scenario, exercising the per-slot re-advertisement
  // path and the FP-suppression counter for every protocol family.
  epi::SummaryCodecParams bloom8;
  bloom8.mode = epi::SummaryMode::kBloom;
  bloom8.filter_bits = 8;
  run_suite(results, "trace+bloom8", trace_spec, trace, kTraceProtocols, reps,
            {}, {}, epi::EvictionPolicy::kDropTail, bloom8);
  // Large-N stress entries (multi-flow; see exp::large_scenario): the cases
  // where per-contact exchange-set costs dominate instead of hiding.
  for (const std::uint32_t n : {128u, 512u}) {
    const auto spec = epi::exp::large_scenario(n);
    const auto large_trace = epi::exp::build_contact_trace(spec, 42);
    run_suite(results, spec.name, spec, large_trace, kLargeProtocols, reps,
              epi::exp::large_flows(n, 8, 16));
  }
  // City-sized stress entry (guarded as "new" by compare_bench.py until the
  // committed baseline carries it), streamed through the windowed RWP
  // generator: the full contact vector is never materialised, which is the
  // only way an 8192-node trace fits a bench budget.
  {
    const auto spec = epi::exp::large_scenario(8192);
    run_suite_streamed(results, spec.name, spec, kLargeProtocols, reps,
                       epi::exp::large_flows(8192, 8, 16));
  }
  write_json(out, results, reps);
  std::printf("wrote %zu benchmarks to %s\n", results.size(), out.c_str());
  return 0;
}
