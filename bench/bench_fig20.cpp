#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig20,
                                 "same orderings as RWP: enhancements duplicate slightly more, cumulative immunity less (trace file)");
}
