// Signaling-overhead comparison (abstract claim): per-bundle immunity tables
// vs the cumulative immunity table, on both mobility inputs.
//
// `--stats-overhead` instead times the streaming-stats collector itself on
// the paper's canonical sweep (trace scenario, immunity, load 25): the same
// serial sweep with stats collection off and on, trials interleaved and the
// per-variant minimum taken (thermal drift otherwise biases whichever
// variant runs later), verifying that the collector perturbs no metric and
// gating two costs:
//
//   - per observed event (--max-event-ns, default 150 ns): the
//     scale-invariant number. Measured ~35-50 ns against ~190 ns of engine
//     work per emitted event, which is why full-stream observation costs
//     ~20-25% of wall time on this engine at *any* scenario size — both
//     sides of the ratio are per-event.
//   - end-to-end slowdown (--max-slowdown, default 40%): a coarse tripwire
//     well above the measured ~20-25% so scheduler noise cannot flake CI,
//     but low enough to catch a regression that doubles the hot path.
//
// The stats-DISABLED path is a single branch-on-nullptr per hook (PR-1
// discipline) plus one untaken branch in the sweep runner; its zero cost is
// pinned structurally by the unchanged engine goldens and the cross-PR
// BENCH_engine.json counters, not re-measured here — there is no
// feature-absent binary to diff against at run time.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/stats.hpp"

namespace {

double timed_sweep_seconds(const epi::exp::SweepSpec& spec,
                           const epi::mobility::ContactTrace& trace,
                           epi::exp::SweepResult& out) {
  const auto begin = std::chrono::steady_clock::now();
  out = epi::exp::run_sweep_on(spec, trace);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return elapsed.count();
}

int stats_overhead_main(const epi::bench::Args& args, double max_slowdown,
                        double max_event_ns) {
  epi::exp::SweepSpec spec;
  spec.scenario = epi::exp::trace_scenario();
  spec.protocol = epi::exp::immunity_params();  // control + data plane busy
  spec.loads = {25};
  spec.replications = args.options.replications;
  spec.master_seed = args.options.master_seed;
  spec.threads = 1;  // serial: wall time is the hot path, not the pool
  const epi::mobility::ContactTrace trace =
      epi::exp::build_contact_trace(spec.scenario, spec.master_seed);

  constexpr int kTrials = 5;
  double off_best = 0.0;
  double on_best = 0.0;
  epi::exp::SweepResult off_result;
  epi::exp::SweepResult on_result;
  for (int trial = 0; trial < kTrials; ++trial) {
    spec.collect_stats = false;
    const double off = timed_sweep_seconds(spec, trace, off_result);
    spec.collect_stats = true;
    const double on = timed_sweep_seconds(spec, trace, on_result);
    if (trial == 0 || off < off_best) off_best = off;
    if (trial == 0 || on < on_best) on_best = on;
  }

  // Correctness before speed: collection must be pure observation, and
  // every enabled run must actually carry its profile.
  std::uint64_t total_events = 0;
  std::uint64_t total_runs = 0;
  for (std::size_t li = 0; li < off_result.runs.size(); ++li) {
    for (std::size_t r = 0; r < off_result.runs[li].size(); ++r) {
      const auto& off_run = off_result.runs[li][r];
      const auto& on_run = on_result.runs[li][r];
      if (!epi::metrics::deterministic_equal(off_run, on_run)) {
        std::cerr << "FAIL: stats collection perturbed run metrics (load "
                  << off_result.loads[li] << ", rep " << r << ")\n";
        return 1;
      }
      if (on_run.stats == nullptr) {
        std::cerr << "FAIL: stats-enabled run carries no profile (load "
                  << off_result.loads[li] << ", rep " << r << ")\n";
        return 1;
      }
      total_events += on_run.stats->events;
      ++total_runs;
    }
  }
  if (total_events == 0) {
    std::cerr << "FAIL: stats-enabled runs observed no events\n";
    return 1;
  }

  const double slowdown =
      off_best > 0.0 ? (on_best / off_best - 1.0) * 100.0 : 0.0;
  const double event_ns =
      (on_best - off_best) * 1e9 / static_cast<double>(total_events);
  std::cout << "[stats-overhead] off " << off_best << " s, on " << on_best
            << " s over " << total_runs << " runs / " << total_events
            << " events (interleaved best of " << kTrials << ")\n"
            << "[stats-overhead] " << event_ns << " ns per observed event"
            << " (gate " << max_event_ns << " ns), slowdown " << slowdown
            << "% (gate " << max_slowdown << "%)\n";
  if (event_ns > max_event_ns) {
    std::cerr << "FAIL: stats observation costs " << event_ns
              << " ns/event, exceeding the " << max_event_ns
              << " ns budget\n";
    return 1;
  }
  if (slowdown > max_slowdown) {
    std::cerr << "FAIL: stats-enabled overhead " << slowdown
              << "% exceeds the " << max_slowdown << "% budget\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel the mode flags; everything else flows to the common parser.
  bool stats_overhead = false;
  double max_slowdown = 40.0;
  double max_event_ns = 150.0;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--stats-overhead") {
      stats_overhead = true;
    } else if (arg.starts_with("--max-slowdown=")) {
      max_slowdown = std::atof(argv[i] + std::strlen("--max-slowdown="));
    } else if (arg.starts_with("--max-event-ns=")) {
      max_event_ns = std::atof(argv[i] + std::strlen("--max-event-ns="));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const epi::bench::Args args =
      epi::bench::parse_args(static_cast<int>(rest.size()), rest.data());
  try {
    if (stats_overhead) {
      return stats_overhead_main(args, max_slowdown, max_event_ns);
    }
    for (const bool rwp : {false, true}) {
      const epi::exp::Figure figure = epi::exp::run_overhead(args.options, rwp);
      epi::exp::print_figure(std::cout, figure);
      if (args.csv) {
        std::cout << "\n";
        epi::exp::print_figure_csv(std::cout, figure);
      }
      const double imm = figure.series_mean(figure.series("Immunity"));
      const double cum = figure.series_mean(figure.series("CumImmunity"));
      std::cout << "overhead ratio (immunity / cumulative): "
                << (cum > 0.0 ? imm / cum : 0.0) << "x\n\n";
    }
    std::cout << "paper shape: cumulative immunity incurs an order of "
                 "magnitude less signaling\noverhead than per-bundle "
                 "immunity tables, growing with load.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
