// Signaling-overhead comparison (abstract claim): per-bundle immunity tables
// vs the cumulative immunity table, on both mobility inputs.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    for (const bool rwp : {false, true}) {
      const epi::exp::Figure figure = epi::exp::run_overhead(args.options, rwp);
      epi::exp::print_figure(std::cout, figure);
      if (args.csv) {
        std::cout << "\n";
        epi::exp::print_figure_csv(std::cout, figure);
      }
      const double imm = figure.series_mean(figure.series("Immunity"));
      const double cum = figure.series_mean(figure.series("CumImmunity"));
      std::cout << "overhead ratio (immunity / cumulative): "
                << (cum > 0.0 ? imm / cum : 0.0) << "x\n\n";
    }
    std::cout << "paper shape: cumulative immunity incurs an order of "
                 "magnitude less signaling\noverhead than per-bundle "
                 "immunity tables, growing with load.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
