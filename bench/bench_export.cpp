// Export: regenerates every figure and writes machine-readable CSVs and
// JSON to a results directory (for plotting the paper's figures with any
// external tool, and for CI regression checks on the raw per-replication
// values). Two files per figure: results/figXX.csv and results/figXX.json.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  bench::Args args = bench::parse_args(argc, argv);
  const std::filesystem::path dir = "results";
  bench::Observability observability;
  try {
    std::filesystem::create_directories(dir);
    observability.attach(args);

    // The registry's paper figures, in paper order — exactly the former
    // hardcoded list, so the exported files are byte-identical.
    std::size_t exported = 0;
    for (const exp::FigureSpec& spec : exp::figure_registry()) {
      if (!spec.paper_figure) continue;
      ++exported;
      const char* name = spec.id;
      const exp::Figure figure = spec.run(args.options);
      const std::filesystem::path path = dir / (std::string(name) + ".csv");
      std::ofstream out(path);
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
      out << "# " << figure.title << "\n# metric: "
          << exp::metric_name(figure.metric) << "\n";
      exp::print_figure_csv(out, figure);
      std::cout << "wrote " << path.string() << "\n";

      const std::filesystem::path json_path =
          dir / (std::string(name) + ".json");
      std::ofstream json_out(json_path);
      if (!json_out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
      }
      exp::print_figure_json(json_out, figure);
      std::cout << "wrote " << json_path.string() << "\n";
    }
    observability.finish(std::cout);
    std::cout << "\nall figure series exported (" << 2 * exported
              << " files, " << args.options.replications
              << " replications each)\n\n";
  } catch (const exp::SweepInterrupted&) {
    if (observability.store != nullptr) observability.store->flush();
    std::cerr << "\ninterrupted: completed runs saved to "
              << (observability.store != nullptr
                      ? observability.store->dir().string()
                      : std::string("(no store)"))
              << "; rerun the same command to resume\n";
    return 130;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
