// Engine microbenchmarks (google-benchmark): the hot paths of the simulator.
#include <benchmark/benchmark.h>

#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "dtn/buffer.hpp"
#include "dtn/summary_vector.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace {

void BM_RngNext(benchmark::State& state) {
  epi::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngLognormal(benchmark::State& state) {
  epi::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(500.0, 1.0));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  epi::Rng rng(7);
  for (auto _ : state) {
    epi::core::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(rng.uniform(0.0, 1e6), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BufferInsertFindRemove(benchmark::State& state) {
  for (auto _ : state) {
    epi::dtn::BundleBuffer buffer(10);
    for (epi::BundleId id = 1; id <= 10; ++id) {
      epi::dtn::StoredBundle copy;
      copy.id = id;
      buffer.insert(copy);
    }
    for (epi::BundleId id = 1; id <= 10; ++id) {
      benchmark::DoNotOptimize(buffer.find(id));
    }
    benchmark::DoNotOptimize(buffer.select_victim(
        {epi::EvictionPolicy::kDropLargestEc, 0, {}}));
    for (epi::BundleId id = 1; id <= 10; ++id) {
      benchmark::DoNotOptimize(buffer.remove(id).has_value());
    }
  }
}
BENCHMARK(BM_BufferInsertFindRemove);

void BM_SummaryVectorDifference(benchmark::State& state) {
  const auto n = static_cast<epi::BundleId>(state.range(0));
  epi::dtn::SummaryVector a;
  epi::dtn::SummaryVector b;
  for (epi::BundleId id = 1; id <= n; ++id) {
    a.insert(id);
    if (id % 2 == 0) b.insert(id);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.difference(b).size());
  }
}
BENCHMARK(BM_SummaryVectorDifference)->Arg(16)->Arg(256);

void BM_GenerateHaggleTrace(benchmark::State& state) {
  epi::mobility::SyntheticHaggleParams params;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        epi::mobility::generate_synthetic_haggle(params, ++seed).size());
  }
}
BENCHMARK(BM_GenerateHaggleTrace);

// Protocol families for the end-to-end benches. The first three keep their
// historic argument indices so old and new runs stay A/B-comparable.
constexpr const char* kTraceProtocols[] = {
    "immunity",     "encounter_count", "cumulative_immunity", "pure_epidemic",
    "pq_epidemic",  "fixed_ttl",       "dynamic_ttl",         "ec_ttl",
};
constexpr const char* kRwpProtocols[] = {
    "pure_epidemic", "encounter_count", "immunity",
    "spray_and_wait", "direct_delivery",
};
constexpr const char* kLargeProtocols[] = {
    "pure_epidemic", "immunity", "pq_epidemic",
};

/// One end-to-end simulation — the unit of work the sweeps parallelise.
/// Reports both ns/run and engine events/s (the sweep throughput metric).
template <std::size_t N>
void full_run(benchmark::State& state, const epi::exp::ScenarioSpec& scenario,
              const epi::mobility::ContactTrace& trace,
              const char* const (&protocols)[N],
              const std::vector<epi::FlowSpec>& flows = {}) {
  const char* protocol = protocols[static_cast<std::size_t>(state.range(0))];
  std::uint32_t total_load = 0;
  for (const auto& f : flows) total_load += f.load;
  std::uint32_t rep = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    epi::exp::RunSpec spec;
    spec.protocol.kind = epi::protocol_from_string(protocol);
    spec.load = flows.empty() ? 25 : total_load;
    spec.flows = flows;
    spec.replication = ++rep;
    spec.horizon = scenario.horizon();
    spec.session_gap = scenario.session_gap;
    const auto summary = epi::exp::run_single(spec, trace);
    benchmark::DoNotOptimize(summary.delivery_ratio);
    events += summary.perf.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(protocol);
}

void BM_FullRun(benchmark::State& state) {
  static const auto scenario = epi::exp::trace_scenario();
  static const auto trace = epi::exp::build_contact_trace(scenario, 42);
  full_run(state, scenario, trace, kTraceProtocols);
}
BENCHMARK(BM_FullRun)->DenseRange(0, 7);

void BM_FullRunRwp(benchmark::State& state) {
  static const auto scenario = epi::exp::rwp_scenario();
  static const auto trace = epi::exp::build_contact_trace(scenario, 42);
  full_run(state, scenario, trace, kRwpProtocols);
}
BENCHMARK(BM_FullRunRwp)->DenseRange(0, 4);

// Large-N stress runs (multi-flow RWP; see exp::large_scenario): the
// scenarios where exchange-set costs dominate the contact path.
void BM_FullRunLarge128(benchmark::State& state) {
  static const auto scenario = epi::exp::large_scenario(128);
  static const auto trace = epi::exp::build_contact_trace(scenario, 42);
  static const auto flows = epi::exp::large_flows(128, 8, 16);
  full_run(state, scenario, trace, kLargeProtocols, flows);
}
BENCHMARK(BM_FullRunLarge128)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_FullRunLarge512(benchmark::State& state) {
  static const auto scenario = epi::exp::large_scenario(512);
  static const auto trace = epi::exp::build_contact_trace(scenario, 42);
  static const auto flows = epi::exp::large_flows(512, 8, 16);
  full_run(state, scenario, trace, kLargeProtocols, flows);
}
BENCHMARK(BM_FullRunLarge512)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
