// Engine microbenchmarks (google-benchmark): the hot paths of the simulator.
#include <benchmark/benchmark.h>

#include "core/event_queue.hpp"
#include "core/rng.hpp"
#include "dtn/buffer.hpp"
#include "dtn/summary_vector.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace {

void BM_RngNext(benchmark::State& state) {
  epi::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngLognormal(benchmark::State& state) {
  epi::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_median(500.0, 1.0));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  epi::Rng rng(7);
  for (auto _ : state) {
    epi::core::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(rng.uniform(0.0, 1e6), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BufferInsertFindRemove(benchmark::State& state) {
  for (auto _ : state) {
    epi::dtn::BundleBuffer buffer(10);
    for (epi::BundleId id = 1; id <= 10; ++id) {
      epi::dtn::StoredBundle copy;
      copy.id = id;
      buffer.insert(copy);
    }
    for (epi::BundleId id = 1; id <= 10; ++id) {
      benchmark::DoNotOptimize(buffer.find(id));
    }
    benchmark::DoNotOptimize(buffer.highest_ec_bundle());
    for (epi::BundleId id = 1; id <= 10; ++id) {
      benchmark::DoNotOptimize(buffer.remove(id).has_value());
    }
  }
}
BENCHMARK(BM_BufferInsertFindRemove);

void BM_SummaryVectorDifference(benchmark::State& state) {
  const auto n = static_cast<epi::BundleId>(state.range(0));
  epi::dtn::SummaryVector a;
  epi::dtn::SummaryVector b;
  for (epi::BundleId id = 1; id <= n; ++id) {
    a.insert(id);
    if (id % 2 == 0) b.insert(id);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.difference(b).size());
  }
}
BENCHMARK(BM_SummaryVectorDifference)->Arg(16)->Arg(256);

void BM_GenerateHaggleTrace(benchmark::State& state) {
  epi::mobility::SyntheticHaggleParams params;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        epi::mobility::generate_synthetic_haggle(params, ++seed).size());
  }
}
BENCHMARK(BM_GenerateHaggleTrace);

void BM_FullRun(benchmark::State& state) {
  // One end-to-end simulation: the unit of work the sweeps parallelise.
  const auto scenario = epi::exp::trace_scenario();
  const auto trace = epi::exp::build_contact_trace(scenario, 42);
  const char* protocol =
      state.range(0) == 0 ? "immunity"
                          : (state.range(0) == 1 ? "encounter_count"
                                                 : "cumulative_immunity");
  std::uint32_t rep = 0;
  for (auto _ : state) {
    epi::exp::RunSpec spec;
    spec.protocol.kind = epi::protocol_from_string(protocol);
    spec.load = 25;
    spec.replication = ++rep;
    spec.horizon = trace.end_time();
    benchmark::DoNotOptimize(
        epi::exp::run_single(spec, trace).delivery_ratio);
  }
  state.SetLabel(protocol);
}
BENCHMARK(BM_FullRun)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
