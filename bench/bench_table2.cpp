// Reproduces Table II: sweep-average delivery ratio, buffer occupancy level
// and duplication rate (percent) for the six protocols, under both the RWP
// model and the trace file.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    const auto rows = epi::exp::run_table2(args.options);
    epi::exp::print_table2(std::cout, rows);
    std::cout
        << "\npaper shape: dynamic TTL lifts delivery over fixed TTL in "
           "both mobility models;\n"
           "EC+TTL cuts EC's buffer occupancy while matching or beating its "
           "delivery;\ncumulative immunity matches immunity's delivery with "
           "a lower buffer level\nand duplication rate.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
