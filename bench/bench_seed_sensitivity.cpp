// Seed sensitivity: the mobility inputs are synthetic, so every conclusion
// must survive regenerating them. Reruns the Table-II-style sweep averages
// under several master seeds and checks the paper's headline orderings on
// each.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "exp/sweep.hpp"

namespace {

struct Row {
  double ttl = 0.0;
  double dyn = 0.0;
  double ec = 0.0;
  double ecttl = 0.0;
  double imm = 0.0;
  double cum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace epi;
  const bench::Args args = bench::parse_args(argc, argv);
  try {
    std::cout << "== seed sensitivity of the headline orderings (trace, "
              << args.options.replications << " reps each) ==\n\n"
              << std::left << std::setw(8) << "seed" << std::right
              << std::setw(12) << "dyn>TTL" << std::setw(14) << "ECTTL<=EC buf"
              << std::setw(13) << "cum<=imm buf" << std::setw(13)
              << "imm 100% dlv" << "\n";

    int all_hold = 0;
    const std::uint64_t seeds[] = {42, 7, 1234, 31337, 2026};
    for (const std::uint64_t seed : seeds) {
      const auto sweep_mean = [&](ProtocolParams params,
                                  bool buffer) -> double {
        exp::SweepSpec spec;
        spec.scenario = exp::trace_scenario();
        spec.protocol = params;
        spec.replications = args.options.replications;
        spec.master_seed = seed;
        const exp::SweepResult result = exp::run_sweep(spec);
        double sum = 0.0;
        for (const auto& point : result.points) {
          sum += buffer ? point.buffer_occupancy.mean
                        : point.delivery_ratio.mean;
        }
        return sum / static_cast<double>(result.points.size());
      };

      const double ttl = sweep_mean(exp::fixed_ttl_params(), false);
      const double dyn = sweep_mean(exp::dynamic_ttl_params(), false);
      const double ec_buf = sweep_mean(exp::ec_params(), true);
      const double ecttl_buf = sweep_mean(exp::ec_ttl_params(), true);
      const double imm_buf = sweep_mean(exp::immunity_params(), true);
      const double cum_buf =
          sweep_mean(exp::cumulative_immunity_params(), true);
      const double imm_dlv = sweep_mean(exp::immunity_params(), false);

      const bool o1 = dyn > ttl + 0.2;          // abstract: +20% delivery
      const bool o2 = ecttl_buf <= ec_buf;      // enhancement 2
      const bool o3 = cum_buf <= imm_buf + 0.02;  // enhancement 3
      const bool o4 = imm_dlv > 0.99;
      all_hold += (o1 && o2 && o3 && o4) ? 1 : 0;

      const auto mark = [](bool ok) { return ok ? "yes" : "NO"; };
      std::cout << std::left << std::setw(8) << seed << std::right
                << std::setw(12) << mark(o1) << std::setw(14) << mark(o2)
                << std::setw(13) << mark(o3) << std::setw(13) << mark(o4)
                << "\n";
    }
    std::cout << "\n" << all_hold << "/" << std::size(seeds)
              << " seeds reproduce all four headline orderings.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
