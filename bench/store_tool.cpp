// store_tool: operate on run-store directories from the command line.
//
//   store_tool stats DIR            record/segment/claim census
//   store_tool merge DEST SRC...    union each SRC store into DEST
//   store_tool compact DIR          rewrite DIR into one segment per shard
//
// merge is the fleet-aggregation path: N machines (or N result trees) each
// produce a store, and one merge folds them into a single cache that can
// serve every figure. It is idempotent — records are visited in key-sorted
// order and already-present identical records are skipped — and it hard-
// errors when two stores disagree on the same key's deterministic content,
// because silently picking a side would let a corrupted store poison the
// merged one.
//
// compact refuses while any other process holds the store open or while
// any work-unit claim is held, so it can never rewrite segments under a
// live writer.
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>

#include "store/run_store.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " stats DIR | merge DEST SRC... | compact DIR\n";
  return 2;
}

int cmd_stats(const std::filesystem::path& dir) {
  const epi::store::RunStore store(dir);
  const epi::store::RunStore::Stats s = store.stats();
  const epi::store::ClaimDir::Stats c = store.claim_stats();
  std::cout << dir.string() << ": " << s.records << " records in "
            << s.segments << " segment(s), " << s.shards
            << " shard(s) for new writes";
  if (s.corrupt_lines > 0) {
    std::cout << ", " << s.corrupt_lines << " corrupt line(s) skipped";
  }
  std::cout << "\n";
  if (c.total > 0) {
    std::cout << "claims: " << c.held << " held, " << c.reclaimable
              << " reclaimable (owner gone), " << c.stuck
              << " stuck (no flock; not yet stale)\n";
  } else {
    std::cout << "claims: none\n";
  }
  return 0;
}

int cmd_merge(const std::filesystem::path& dest_dir, char** sources,
              int count) {
  epi::store::RunStore dest(dest_dir);
  std::size_t added = 0, identical = 0;
  for (int i = 0; i < count; ++i) {
    const std::filesystem::path src = sources[i];
    const epi::store::MergeReport report = epi::store::merge_into(dest, src);
    std::cout << src.string() << " -> " << dest_dir.string() << ": "
              << report.scanned << " scanned, " << report.added << " added, "
              << report.identical << " identical\n";
    added += report.added;
    identical += report.identical;
  }
  const epi::store::RunStore::Stats s = dest.stats();
  std::cout << "merged " << count << " store(s): " << added << " added, "
            << identical << " identical; " << dest_dir.string() << " now has "
            << s.records << " records\n";
  return 0;
}

int cmd_compact(const std::filesystem::path& dir) {
  epi::store::RunStore store(dir);
  const std::size_t before = store.stats().segments;
  store.compact();
  const epi::store::RunStore::Stats s = store.stats();
  std::cout << dir.string() << ": " << before << " segment(s) -> "
            << s.segments << ", " << s.records << " records\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string_view cmd = argv[1];
  try {
    if (cmd == "stats") {
      if (argc != 3) return usage(argv[0]);
      return cmd_stats(argv[2]);
    }
    if (cmd == "merge") {
      if (argc < 4) return usage(argv[0]);
      return cmd_merge(argv[2], argv + 3, argc - 3);
    }
    if (cmd == "compact") {
      if (argc != 3) return usage(argv[0]);
      return cmd_compact(argv[2]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
