#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig19,
                                 "dynamic TTL duplicates slightly more than fixed; EC+TTL >= EC past load 30; cumulative below immunity (RWP + interval)");
}
