#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, *epi::exp::find_figure("fig11"));
}
