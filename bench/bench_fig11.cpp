#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig11,
                                 "P-Q consumes the most buffer (>80% past load 10); immunity ~10% below it; TTL lowest (trace file)");
}
