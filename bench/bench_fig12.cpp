#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig12,
                                 "same ordering as the trace: P-Q highest, then EC, immunity, TTL lowest (RWP)");
}
