#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig13,
                                 "both EC and TTL delivery ratios fall as load rises; TTL falls further (trace file)");
}
