// Ablation: how many unit-sized immunity records a contact can carry. The
// paper's complaint — "the number of immunity tables transmitted is
// proportional to the load" — manifests as slow vaccination when the
// per-contact budget is small; the cumulative table is immune to it.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi::exp;
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    std::vector<SeriesDef> series;
    for (const std::uint32_t rate : {1u, 5u, 20u, 100u}) {
      epi::ProtocolParams params = immunity_params();
      params.immunity_records_per_contact = rate;
      series.push_back({"imm rate=" + std::to_string(rate), trace_scenario(),
                        params});
    }
    series.push_back(
        {"cumulative", trace_scenario(), cumulative_immunity_params()});
    for (const Metric metric :
         {Metric::kBufferOccupancy, Metric::kControlRecords}) {
      const Figure figure = run_figure(
          "ablation_immrate",
          "Immunity-record budget per contact (trace)", metric, series,
          args.options);
      print_figure(std::cout, figure);
      if (args.csv) print_figure_csv(std::cout, figure);
      std::cout << "\n";
    }
    std::cout << "design note: starving the record budget slows vaccination "
                 "and raises buffer\noccupancy; the cumulative table gets "
                 "full coverage from a single record.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
