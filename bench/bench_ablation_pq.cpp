// Ablation: the P and Q transmission probabilities (paper SIV experiments
// with 0.1, 0.5 and 1). SII-C's argument: probabilities below one squander
// scarce encounters, so delay rises and delivery falls.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi::exp;
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    std::vector<SeriesDef> series;
    for (const double pq : {0.1, 0.5, 1.0}) {
      series.push_back({"P=Q=" + std::to_string(pq).substr(0, 3),
                        trace_scenario(), pq_params(pq, pq)});
    }
    for (const Metric metric :
         {Metric::kDeliveryRatio, Metric::kDelay}) {
      const Figure figure = run_figure(
          "ablation_pq", "P-Q epidemic: transmission probability sweep (trace)",
          metric, series, args.options);
      print_figure(std::cout, figure);
      if (args.csv) print_figure_csv(std::cout, figure);
      std::cout << "\n";
    }
    std::cout << "paper shape: P=Q<1 wastes encounters: delivery drops and "
                 "delay rises as the\nprobabilities shrink (SII-C).\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
