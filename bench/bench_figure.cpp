// bench_figure: one driver for every registered figure.
//
//   bench_figure --list                 enumerate figure ids and claims
//   bench_figure --fig 07 [flags...]    reproduce one figure; remaining
//                                       flags are the shared bench flags
//                                       (see bench_common.hpp)
//
// `--fig fig07`, `--fig 07` and `--fig 7` are equivalent; robustness sweeps
// use their full ids (e.g. --fig robust_trace_delivery). Output is byte-
// identical to the legacy bench_figXX binary of the same figure.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using epi::exp::FigureSpec;

  // Peel off the driver's own flags; everything else goes to parse_args
  // (which hard-errors on anything it does not know).
  std::string fig;
  bool list = false;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--fig") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --fig\n";
        return 2;
      }
      fig = argv[++i];
    } else if (arg.starts_with("--fig=")) {
      fig = arg.substr(6);
    } else {
      rest.push_back(argv[i]);
    }
  }

  if (list) {
    for (const FigureSpec& spec : epi::exp::figure_registry()) {
      std::printf("%-22s %s%s\n", spec.id,
                  spec.paper_figure ? "" : "[extra] ", spec.paper_claim);
    }
    return 0;
  }
  if (fig.empty()) {
    std::cerr << "usage: " << argv[0]
              << " --fig ID [bench flags...] | --list\n";
    return 2;
  }
  const FigureSpec* spec = epi::exp::find_figure(fig);
  if (spec == nullptr) {
    std::cerr << "unknown figure '" << fig << "' (run --list for the ids)\n";
    return 2;
  }
  return epi::bench::figure_main(static_cast<int>(rest.size()), rest.data(),
                                 *spec);
}
