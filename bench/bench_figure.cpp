// bench_figure: one driver for every registered figure.
//
//   bench_figure --list                 enumerate figure ids and claims
//   bench_figure --fig 07 [flags...]    reproduce one figure; remaining
//                                       flags are the shared bench flags
//                                       (see bench_common.hpp)
//   bench_figure --all [--jobs N] [--only IDS] [--out DIR] [flags...]
//                                       fleet mode: treat figures as a work
//                                       queue, fork N worker processes that
//                                       partition it through the shared run
//                                       store, and write one
//                                       <DIR>/<id>.json per figure
//
// `--fig fig07`, `--fig 07` and `--fig 7` are equivalent; robustness sweeps
// use their full ids (e.g. --fig robust_trace_delivery). Output is byte-
// identical to the legacy bench_figXX binary of the same figure.
//
// Fleet mode details:
//   * The queue defaults to the paper's 14 figures; `--only fig07,fig08`
//     restricts it (any registry id is accepted, including the robustness
//     and capacity sweeps).
//   * Figures are partitioned with store claims (`figure/<id>`), and each
//     worker additionally runs its sweeps with per-run claims, so even
//     independently launched invocations sharing the store split the work
//     instead of duplicating it. `--jobs N` with N > 1 therefore requires
//     the store.
//   * A figure is done when `<DIR>/<id>.json` exists (written via tmp +
//     rename, so a half-written file is never mistaken for done). Rerunning
//     after a crash or Ctrl-C resumes: finished figures are skipped, killed
//     workers' claims are reclaimed, and their completed runs are served
//     from the store.
//   * When `--threads` is unset, each worker gets hardware_concurrency / N
//     threads (at least 1) so N workers saturate the machine instead of
//     oversubscribing it N-fold.
//   * Workers keep stderr quiet and mirror machine-readable progress to
//     <DIR>/.fleet-<pid>/progress-*.jsonl; the driver tails those into one
//     aggregate `[fleet]` line.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "store/claim.hpp"

namespace {

namespace fs = std::filesystem;
using epi::exp::FigureSpec;

/// Fleet-mode flags peeled off ahead of the shared bench flags.
struct FleetArgs {
  bool all = false;
  std::size_t jobs = 1;
  std::string only;             // comma-separated registry ids
  std::string out = "results";  // per-figure JSON output directory
};

/// Splits `--only fig07,fig08` into resolved registry entries; exits 2 on
/// an unknown id so a typo cannot silently shrink the queue.
std::vector<const FigureSpec*> resolve_queue(const std::string& only) {
  std::vector<const FigureSpec*> queue;
  if (only.empty()) {
    for (const FigureSpec& spec : epi::exp::figure_registry()) {
      if (spec.paper_figure) queue.push_back(&spec);
    }
    return queue;
  }
  std::size_t begin = 0;
  while (begin <= only.size()) {
    const std::size_t comma = only.find(',', begin);
    const std::string id =
        only.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!id.empty()) {
      const FigureSpec* spec = epi::exp::find_figure(id);
      if (spec == nullptr) {
        std::cerr << "unknown figure '" << id
                  << "' in --only (run --list for the ids)\n";
        std::exit(2);
      }
      queue.push_back(spec);
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (queue.empty()) {
    std::cerr << "--only named no figures\n";
    std::exit(2);
  }
  return queue;
}

/// One worker process: claim figures off the queue, run each, write its
/// JSON atomically. Returns a process exit code.
int fleet_worker(epi::bench::Args args,
                 const std::vector<const FigureSpec*>& queue,
                 const fs::path& out_dir, const fs::path& marker_dir,
                 std::size_t index, bool quiet) {
  using namespace epi;
  args.options.progress_path =
      (marker_dir / ("progress-" + std::to_string(getpid()) + "-" +
                     std::to_string(index) + ".jsonl"))
          .string();
  bench::Observability observability;
  try {
    observability.attach(args);
    if (quiet) args.options.progress = false;
    // Partition runs across any concurrent invocation sharing this store,
    // not just our sibling workers.
    if (observability.store != nullptr) args.options.claim_units = true;
    bool all_done = false;
    while (!all_done) {
      all_done = true;
      bool progressed = false;
      for (const FigureSpec* spec : queue) {
        const fs::path json_path = out_dir / (std::string(spec->id) + ".json");
        if (fs::exists(json_path)) continue;
        std::optional<store::Claim> claim;
        if (observability.store != nullptr) {
          claim = observability.store->try_claim(std::string("figure/") +
                                                 spec->id);
          if (!claim.has_value()) {
            // A live peer owns it; a dead peer's lock auto-releases, so a
            // later pass will win the reclaim.
            all_done = false;
            continue;
          }
          if (fs::exists(json_path)) continue;  // finished while we raced
        }
        const exp::Figure figure = spec->run(args.options);
        const fs::path tmp =
            out_dir / (std::string(spec->id) + ".json.tmp-" +
                       std::to_string(getpid()));
        {
          std::ofstream out(tmp, std::ios::trunc);
          if (!out) {
            throw std::runtime_error("cannot write " + tmp.string());
          }
          exp::print_figure_json(out, figure);
          if (!out.flush()) {
            throw std::runtime_error("short write to " + tmp.string());
          }
        }
        fs::rename(tmp, json_path);
        std::cout << "wrote " + json_path.string() + "\n" << std::flush;
        progressed = true;
      }
      if (!all_done && !progressed) {
        // Everything left is claimed elsewhere. Wait for the owners to
        // finish (their JSON appears) or die (their claim frees up).
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    }
    if (!quiet) observability.finish(std::cout);
  } catch (const exp::SweepInterrupted&) {
    if (observability.store != nullptr) observability.store->flush();
    std::cerr << "\ninterrupted: completed runs saved to "
              << (observability.store != nullptr
                      ? observability.store->dir().string()
                      : std::string("(no store)"))
              << "; rerun the same command to resume\n";
    return 130;
  } catch (const std::exception& e) {
    std::cerr << "worker error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

/// Sums the latest snapshot of every (progress file, figure label) pair
/// into one `[fleet]` stderr line. Totals cover *started* figures only —
/// the driver cannot know an unstarted figure's run count, and inventing
/// one would make the line lie.
void print_fleet_progress(const fs::path& marker_dir, std::size_t figs_done,
                          std::size_t figs_total, double elapsed,
                          bool final) {
  std::size_t completed = 0, cached = 0, total = 0;
  std::uint64_t events = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(marker_dir, ec)) {
    if (entry.path().extension() != ".jsonl") continue;
    std::ifstream in(entry.path());
    std::map<std::string, epi::obs::ProgressSnapshot> latest;
    std::string line;
    while (std::getline(in, line)) {
      epi::obs::ProgressSnapshot snap;
      if (epi::obs::parse_progress_line(line, snap)) {
        latest.insert_or_assign(snap.label, snap);
      }
    }
    for (const auto& [label, snap] : latest) {
      completed += snap.completed;
      cached += snap.cached;
      total += snap.total;
      events += snap.events;
    }
  }
  const double rate =
      elapsed > 0.0 ? static_cast<double>(events) / elapsed : 0.0;
  const std::size_t simulated = completed - cached;
  char line[224];
  if (final) {
    std::snprintf(line, sizeof(line),
                  "\r[fleet] %zu/%zu figures, %zu runs (%zu cached, %zu "
                  "simulated), %s ev/s, %.1fs total          \n",
                  figs_done, figs_total, completed, cached, simulated,
                  epi::obs::humanize_rate(rate).c_str(), elapsed);
  } else {
    const double eta =
        simulated > 0 ? elapsed / static_cast<double>(simulated) *
                            static_cast<double>(total - completed)
                      : 0.0;
    std::snprintf(line, sizeof(line),
                  "\r[fleet] %zu/%zu figures, %zu/%zu runs (%zu cached), "
                  "%s ev/s, ETA %.0fs   ",
                  figs_done, figs_total, completed, total, cached,
                  epi::obs::humanize_rate(rate).c_str(), eta);
  }
  std::fputs(line, stderr);
  std::fflush(stderr);
}

std::size_t count_done(const std::vector<const FigureSpec*>& queue,
                       const fs::path& out_dir) {
  std::size_t done = 0;
  for (const FigureSpec* spec : queue) {
    if (fs::exists(out_dir / (std::string(spec->id) + ".json"))) ++done;
  }
  return done;
}

/// `--all` entry point: forks the workers, tails their progress, and
/// succeeds iff every queued figure's JSON exists at the end.
int fleet_main(const FleetArgs& fleet, epi::bench::Args args) {
  const std::vector<const FigureSpec*> queue = resolve_queue(fleet.only);
  const fs::path out_dir = fleet.out;
  if (fleet.jobs > 1) {
    if (args.store_dir.empty()) {
      std::cerr << "--jobs " << fleet.jobs
                << " needs the run store to partition work "
                   "(drop --no-store)\n";
      return 2;
    }
    if (!args.trace_out.empty() || !args.chrome_out.empty() ||
        !args.stats_out.empty()) {
      std::cerr << "--trace-out/--chrome-trace/--stats-out are per-process "
                   "outputs and are not supported with --jobs > 1\n";
      return 2;
    }
  }
  // Divide the machine across workers instead of oversubscribing it: N
  // workers x (cores / N) threads. Explicit --threads overrides per worker.
  if (args.options.threads == 0 && fleet.jobs > 1) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned jobs =
        static_cast<unsigned>(std::min<std::size_t>(fleet.jobs, hw));
    args.options.threads = std::max(1u, hw / jobs);
  }
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << out_dir.string() << ": " << ec.message()
              << "\n";
    return 1;
  }
  const fs::path marker_dir =
      out_dir / (".fleet-" + std::to_string(getpid()));
  fs::create_directories(marker_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << marker_dir.string() << ": "
              << ec.message() << "\n";
    return 1;
  }

  if (fleet.jobs <= 1) {
    // Single-job mode runs inline: same queue/claim/resume semantics, no
    // fork, terminal progress allowed.
    const int rc =
        fleet_worker(std::move(args), queue, out_dir, marker_dir,
                     /*index=*/0, /*quiet=*/false);
    fs::remove_all(marker_dir, ec);
    return rc;
  }

  // Fork every worker before this process creates any thread or opens the
  // store; children must start from a clean single-threaded image.
  std::vector<pid_t> pids;
  for (std::size_t j = 0; j < fleet.jobs; ++j) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      // Already-forked workers still finish the whole queue on their own;
      // wait for them rather than leaving orphans.
      break;
    }
    if (pid == 0) {
      _exit(fleet_worker(std::move(args), queue, out_dir, marker_dir, j,
                         /*quiet=*/true));
    }
    pids.push_back(pid);
  }
  if (pids.empty()) return 1;

  // Ctrl-C goes to the whole foreground process group; the workers drain
  // and save, the driver just keeps reaping and reports the resume hint.
  std::signal(SIGINT, SIG_IGN);

  const auto start = std::chrono::steady_clock::now();
  std::vector<int> status(pids.size(), -1);
  std::size_t alive = pids.size();
  const auto elapsed_seconds = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  while (alive > 0) {
    for (std::size_t j = 0; j < pids.size(); ++j) {
      if (status[j] != -1) continue;
      int st = 0;
      const pid_t got = waitpid(pids[j], &st, WNOHANG);
      if (got == pids[j]) {
        status[j] = WIFEXITED(st) ? WEXITSTATUS(st)
                                  : 128 + (WIFSIGNALED(st) ? WTERMSIG(st) : 0);
        --alive;
      }
    }
    if (alive == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    print_fleet_progress(marker_dir, count_done(queue, out_dir), queue.size(),
                         elapsed_seconds(), /*final=*/false);
  }
  const std::size_t done = count_done(queue, out_dir);
  print_fleet_progress(marker_dir, done, queue.size(), elapsed_seconds(),
                       /*final=*/true);

  int rc = 0;
  bool interrupted = false;
  for (std::size_t j = 0; j < pids.size(); ++j) {
    if (status[j] == 130) interrupted = true;
    if (status[j] != 0 && status[j] != -1) {
      std::cerr << "worker " << j << " (pid " << pids[j]
                << ") exited with status " << status[j] << "\n";
      if (rc == 0) rc = status[j];
    }
  }
  if (done == queue.size()) {
    // Every figure landed; a worker that died mid-queue was covered by its
    // siblings, which is the whole point of the claim protocol.
    if (rc != 0) {
      std::cerr << "note: all " << done
                << " figures completed despite worker failures\n";
    }
    rc = 0;
  } else if (rc == 0) {
    rc = interrupted ? 130 : 1;
  }
  if (rc != 0) {
    std::cerr << "\n" << (queue.size() - done) << " figure(s) incomplete; "
              << "rerun the same command to resume\n";
  }
  fs::remove_all(marker_dir, ec);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the driver's own flags; everything else goes to parse_args
  // (which hard-errors on anything it does not know).
  std::string fig;
  bool list = false;
  FleetArgs fleet;
  bool jobs_seen = false, only_seen = false, out_seen = false;
  std::vector<char*> rest{argv[0]};
  const auto value_of = [&](std::string_view arg, int& i) -> std::string {
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) return std::string(arg.substr(eq + 1));
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << arg << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    const std::string_view flag = arg.substr(0, arg.find('='));
    if (flag == "--list") {
      list = true;
    } else if (flag == "--fig") {
      fig = value_of(arg, i);
    } else if (flag == "--all") {
      fleet.all = true;
    } else if (flag == "--jobs") {
      fleet.jobs = epi::bench::parse_unsigned<std::size_t>(
          flag, value_of(arg, i));
      jobs_seen = true;
      if (fleet.jobs == 0) {
        std::cerr << "--jobs must be at least 1\n";
        return 2;
      }
    } else if (flag == "--only") {
      fleet.only = value_of(arg, i);
      only_seen = true;
    } else if (flag == "--out") {
      fleet.out = value_of(arg, i);
      out_seen = true;
      if (fleet.out.empty()) {
        std::cerr << "--out needs a directory\n";
        return 2;
      }
    } else {
      rest.push_back(argv[i]);
    }
  }

  if (list) {
    for (const FigureSpec& spec : epi::exp::figure_registry()) {
      std::printf("%-22s %s%s\n", spec.id,
                  spec.paper_figure ? "" : "[extra] ", spec.paper_claim);
    }
    return 0;
  }
  if (fleet.all && !fig.empty()) {
    std::cerr << "--all and --fig are mutually exclusive\n";
    return 2;
  }
  if (!fleet.all && (jobs_seen || only_seen || out_seen)) {
    std::cerr << "--jobs/--only/--out require --all\n";
    return 2;
  }
  if (fleet.all) {
    return fleet_main(fleet, epi::bench::parse_args(
                                 static_cast<int>(rest.size()), rest.data()));
  }
  if (fig.empty()) {
    std::cerr << "usage: " << argv[0]
              << " --fig ID [bench flags...] | --all [--jobs N] [--only IDS]"
                 " [--out DIR] [bench flags...] | --list\n";
    return 2;
  }
  const FigureSpec* spec = epi::exp::find_figure(fig);
  if (spec == nullptr) {
    std::cerr << "unknown figure '" << fig << "' (run --list for the ids)\n";
    return 2;
  }
  return epi::bench::figure_main(static_cast<int>(rest.size()), rest.data(),
                                 *spec);
}
