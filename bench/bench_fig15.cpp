#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig15,
                                 "dynamic TTL beats fixed TTL at both interval settings; EC+TTL >= EC; immunity ~ cumulative (RWP + interval)");
}
