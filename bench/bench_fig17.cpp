#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig17,
                                 "dynamic TTL buffers more than fixed but stays moderate; EC+TTL below EC; cumulative below immunity (RWP + interval)");
}
