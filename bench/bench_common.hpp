// Shared CLI scaffolding for the figure-reproduction benches.
//
// Every binary accepts:
//   --reps N            replications per load point (default 10, the paper's)
//   --seed S            master seed (default 42)
//   --threads T         worker threads (default: hardware concurrency)
//   --csv               additionally dump machine-readable CSV
//   --trace-out=FILE    stream one JSONL record per engine event to FILE
//   --perf              live progress line on stderr + perf totals at the end
//   --chrome-trace=FILE write per-replication spans (chrome://tracing format)
//   --stats-out=FILE    collect per-run streaming statistics (encounter,
//                       occupancy, signaling profiles) and write the merged
//                       JSON document to FILE; bypasses cache lookups
//   --store DIR         persistent run store (default results/runstore):
//                       cached runs are served without simulating, fresh
//                       ones appended; Ctrl-C drains + saves, rerun resumes
//   --no-store          disable the run store for this invocation
//   --store-stats       print hit/miss/append counts at the end
//   --store-shards N    fingerprint shards for newly written segments
//                       (default 8; readers union all segments, so any
//                       value yields identical results)
//   --claim             partition missing runs with store work-unit claims,
//                       so N concurrent invocations sharing one store split
//                       the sweep instead of duplicating it
//   --evict POLICY      receiver-side admission policy when a buffer is
//                       full: drop_tail (default, the paper's behavior),
//                       drop_oldest, drop_most_replicated, drop_largest_ec
//   --summary-mode MODE summary-exchange codec: exact (default, the paper's
//                       free advertisement) or bloom (compact Bloom-filter
//                       advertisements with visible false positives)
//   --filter-bits N     Bloom filter density in bits per buffered bundle,
//                       1..64 (default 8; only meaningful with
//                       --summary-mode=bloom)
//   --filter-hashes K   Bloom hash count, 1..16; 0 (default) derives the
//                       FP-optimal k = round(bits * ln 2)
//
// Flags taking a value accept both `--flag VALUE` and `--flag=VALUE`.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/stats_report.hpp"
#include "exp/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/progress.hpp"
#include "store/interrupt.hpp"
#include "store/run_store.hpp"

namespace epi::bench {

struct Args {
  exp::FigureOptions options;
  bool csv = false;
  bool perf = false;
  std::string trace_out;   ///< empty = event tracing off
  std::string chrome_out;  ///< empty = chrome trace off
  std::string stats_out;   ///< empty = stats collection off
  std::string store_dir = "results/runstore";  ///< empty = store off
  bool store_stats = false;
  std::size_t store_shards = 8;  ///< shard count for new segments
};

/// Parses a full unsigned decimal value; exits 2 on anything else (empty,
/// sign, trailing garbage, overflow) — `--reps abc` must not silently run
/// with 0 replications.
template <typename T>
inline T parse_unsigned(std::string_view flag, std::string_view value) {
  T out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    std::cerr << "invalid value for " << flag << ": '" << value
              << "' (expected an unsigned integer)\n";
    std::exit(2);
  }
  return out;
}

inline Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string_view> seen;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // Split `--flag=VALUE` into flag and inline value.
    std::string_view inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    // A repeated flag is a hard error, not a silent last-one-wins: the two
    // occurrences usually carry different values, and guessing which one the
    // user meant mis-runs a potentially hours-long sweep.
    if (std::find(seen.begin(), seen.end(), arg) != seen.end()) {
      std::cerr << "duplicate flag " << arg
                << ": each flag may be given at most once\n";
      std::exit(2);
    }
    seen.push_back(arg);
    const auto next = [&]() -> std::string {
      if (has_inline) return std::string(inline_value);
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // Boolean flags take no value; `--csv=nonsense` is a user error, not an
    // enable.
    const auto boolean = [&]() {
      if (has_inline) {
        std::cerr << arg << " takes no value (got '" << inline_value
                  << "')\n";
        std::exit(2);
      }
      return true;
    };
    if (arg == "--reps") {
      args.options.replications = parse_unsigned<std::uint32_t>(arg, next());
    } else if (arg == "--seed") {
      args.options.master_seed = parse_unsigned<std::uint64_t>(arg, next());
    } else if (arg == "--threads") {
      args.options.threads = parse_unsigned<unsigned>(arg, next());
    } else if (arg == "--csv") {
      args.csv = boolean();
    } else if (arg == "--perf") {
      args.perf = boolean();
    } else if (arg == "--trace-out") {
      args.trace_out = next();
    } else if (arg == "--chrome-trace") {
      args.chrome_out = next();
    } else if (arg == "--stats-out") {
      args.stats_out = next();
      if (args.stats_out.empty()) {
        std::cerr << "--stats-out needs a file name\n";
        std::exit(2);
      }
    } else if (arg == "--store") {
      args.store_dir = next();
      if (args.store_dir.empty()) {
        std::cerr << "--store needs a directory (use --no-store to disable)\n";
        std::exit(2);
      }
    } else if (arg == "--no-store") {
      boolean();
      args.store_dir.clear();
    } else if (arg == "--store-stats") {
      args.store_stats = boolean();
    } else if (arg == "--store-shards") {
      args.store_shards = parse_unsigned<std::size_t>(arg, next());
      if (args.store_shards == 0) {
        std::cerr << "--store-shards must be at least 1\n";
        std::exit(2);
      }
    } else if (arg == "--claim") {
      args.options.claim_units = boolean();
    } else if (arg == "--evict") {
      try {
        args.options.eviction = eviction_policy_from_string(next());
      } catch (const std::exception& e) {
        std::cerr << "invalid value for --evict: " << e.what() << "\n";
        std::exit(2);
      }
    } else if (arg == "--summary-mode") {
      try {
        args.options.summary.mode = summary_mode_from_string(next());
      } catch (const std::exception& e) {
        std::cerr << "invalid value for --summary-mode: " << e.what() << "\n";
        std::exit(2);
      }
    } else if (arg == "--filter-bits") {
      args.options.summary.filter_bits =
          parse_unsigned<std::uint32_t>(arg, next());
      if (args.options.summary.filter_bits == 0 ||
          args.options.summary.filter_bits > 64) {
        std::cerr << "--filter-bits must be in 1..64 (bits per buffered "
                     "bundle)\n";
        std::exit(2);
      }
    } else if (arg == "--filter-hashes") {
      args.options.summary.hashes = parse_unsigned<std::uint32_t>(arg, next());
      if (args.options.summary.hashes > 16) {
        std::cerr << "--filter-hashes must be in 0..16 (0 derives the "
                     "FP-optimal count)\n";
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      boolean();
      std::cout << "usage: " << argv[0]
                << " [--reps N] [--seed S] [--threads T] [--csv] [--perf]"
                   " [--trace-out=FILE] [--chrome-trace=FILE]"
                   " [--stats-out=FILE] [--store=DIR] [--no-store]"
                   " [--store-stats] [--store-shards=N] [--claim]"
                   " [--evict=POLICY] [--summary-mode=exact|bloom]"
                   " [--filter-bits=N] [--filter-hashes=K]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return args;
}

/// Owns the sinks a bench wires into FigureOptions, so `run(options)` can
/// trace without every bench managing sink lifetime itself.
struct Observability {
  std::unique_ptr<obs::JsonlSink> sink;
  std::unique_ptr<obs::ChromeTraceWriter> chrome;
  std::string chrome_out;
  std::unique_ptr<store::RunStore> store;
  std::unique_ptr<store::SigintDrain> sigint;
  bool store_stats = false;
  std::string stats_out;  ///< where figure_main writes the stats document

  /// Instantiates the sinks the flags ask for and points `args.options` at
  /// them. Throws std::runtime_error when an output file cannot be opened.
  /// A store directory that cannot be opened only disables caching (with a
  /// warning): a read-only checkout must not break the benches.
  void attach(Args& args) {
    if (!args.trace_out.empty()) {
      sink = std::make_unique<obs::JsonlSink>(args.trace_out);
      args.options.trace_sink = sink.get();
    }
    if (!args.chrome_out.empty()) {
      chrome = std::make_unique<obs::ChromeTraceWriter>();
      args.options.chrome = chrome.get();
      chrome_out = args.chrome_out;
    }
    args.options.progress = args.perf;
    store_stats = args.store_stats;
    if (!args.stats_out.empty()) {
      args.options.collect_stats = true;
      stats_out = args.stats_out;
    }
    if (!args.store_dir.empty()) {
      try {
        store = std::make_unique<store::RunStore>(
            args.store_dir, store::StoreOptions{args.store_shards});
        args.options.store = store.get();
        // Ctrl-C now drains and saves instead of discarding finished runs.
        sigint = std::make_unique<store::SigintDrain>();
      } catch (const std::exception& e) {
        std::cerr << "warning: run store disabled: " << e.what() << "\n";
      }
    }
  }

  /// Flushes file-backed outputs and reports where they went.
  void finish(std::ostream& out) {
    if (chrome != nullptr) {
      chrome->write_file(chrome_out);
      out << "chrome trace: " << chrome_out << " (" << chrome->span_count()
          << " spans; open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (sink != nullptr) {
      out << "event trace: " << sink->records() << " JSONL records";
      if (sink->truncated() > 0) {
        out << " (" << sink->truncated() << " oversized record(s) dropped)";
        // A dropped record means the trace is incomplete — shout where
        // scripts piping stdout will still see it.
        std::cerr << "warning: event trace dropped " << sink->truncated()
                  << " oversized record(s) (over JsonlSink::kMaxRecordBytes); "
                     "the JSONL output is incomplete\n";
      }
      out << "\n";
    }
    if (store != nullptr && store_stats) {
      const store::RunStore::Stats s = store->stats();
      // Every simulated run is appended on completion (and vice versa), so
      // `appended` is the honest "simulated this invocation" count even when
      // event tracing bypassed the cache lookups.
      out << "[store] " << store->dir().string() << ": " << s.hits
          << " cached, " << s.appended << " simulated, " << s.appended
          << " appended; " << s.records << " records in " << s.segments
          << " segment(s)";
      if (s.corrupt_lines > 0) {
        out << ", " << s.corrupt_lines << " corrupt line(s) skipped";
      }
      out << "\n";
    }
  }
};

/// Aggregated PerfCounters of every replication in a figure.
inline void print_perf(std::ostream& out, const exp::Figure& figure) {
  std::size_t runs = 0;
  double wall = 0.0;
  std::uint64_t events = 0;
  std::uint64_t transfers = 0;
  std::uint64_t contacts = 0;
  std::size_t peak_queue = 0;
  for (const auto& result : figure.results) {
    for (const auto& batch : result.runs) {
      for (const auto& run : batch) {
        ++runs;
        wall += run.perf.wall_seconds;
        events += run.perf.events_processed;
        transfers += run.perf.transfers;
        contacts += run.perf.contacts;
        peak_queue = std::max(peak_queue, run.perf.peak_queue_depth);
      }
    }
  }
  const double rate = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  out << "[perf] " << runs << " runs, " << events << " events, "
      << obs::humanize_rate(rate) << " ev/s (cpu), peak queue " << peak_queue
      << ", "
      << (contacts > 0
              ? static_cast<double>(transfers) / static_cast<double>(contacts)
              : 0.0)
      << " transfers/contact\n";
}

/// Runs one figure bench: executes the experiment, prints the table, then a
/// note stating the paper's shape claim for eyeball comparison.
inline int figure_main(int argc, char** argv,
                       const std::function<exp::Figure(
                           const exp::FigureOptions&)>& run,
                       std::string_view paper_claim) {
  Args args = parse_args(argc, argv);
  Observability observability;
  try {
    observability.attach(args);
    const exp::Figure figure = run(args.options);
    exp::print_figure(std::cout, figure);
    if (args.csv) {
      std::cout << "\n";
      exp::print_figure_csv(std::cout, figure);
    }
    if (args.perf) print_perf(std::cout, figure);
    if (!observability.stats_out.empty()) {
      std::ofstream stats_file(observability.stats_out);
      if (!stats_file) {
        throw std::runtime_error("cannot open --stats-out file: " +
                                 observability.stats_out);
      }
      exp::write_stats_json(stats_file, figure);
      std::cout << "stats profile: " << observability.stats_out << "\n";
    }
    observability.finish(std::cout);
    std::cout << "\npaper shape: " << paper_claim << "\n\n";
  } catch (const exp::SweepInterrupted&) {
    // The drain already persisted every completed run; rerunning the same
    // command serves those from the store and computes only the rest.
    if (observability.store != nullptr) observability.store->flush();
    std::cerr << "\ninterrupted: completed runs saved to "
              << (observability.store != nullptr
                      ? observability.store->dir().string()
                      : std::string("(no store)"))
              << "; rerun the same command to resume\n";
    return 130;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

/// Registry-driven figure bench: same output, claim sourced from the
/// FigureSpec. The legacy bench_figXX binaries are thin wrappers over this.
inline int figure_main(int argc, char** argv, const exp::FigureSpec& spec) {
  return figure_main(argc, argv, spec.run, spec.paper_claim);
}

}  // namespace epi::bench
