// Shared CLI scaffolding for the figure-reproduction benches.
//
// Every binary accepts:
//   --reps N     replications per load point (default 10, the paper's count)
//   --seed S     master seed (default 42)
//   --threads T  worker threads (default: hardware concurrency)
//   --csv        additionally dump machine-readable CSV
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>

#include "exp/figures.hpp"
#include "exp/report.hpp"

namespace epi::bench {

struct Args {
  exp::FigureOptions options;
  bool csv = false;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      args.options.replications =
          static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      args.options.master_seed =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      args.options.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--reps N] [--seed S] [--threads T] [--csv]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return args;
}

/// Runs one figure bench: executes the experiment, prints the table, then a
/// note stating the paper's shape claim for eyeball comparison.
inline int figure_main(int argc, char** argv,
                       const std::function<exp::Figure(
                           const exp::FigureOptions&)>& run,
                       std::string_view paper_claim) {
  const Args args = parse_args(argc, argv);
  try {
    const exp::Figure figure = run(args.options);
    exp::print_figure(std::cout, figure);
    if (args.csv) {
      std::cout << "\n";
      exp::print_figure_csv(std::cout, figure);
    }
    std::cout << "\npaper shape: " << paper_claim << "\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace epi::bench
