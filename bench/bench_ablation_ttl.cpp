// Ablation: the fixed TTL value (paper SIV experiments with 50, 100, 150 and
// 200 s, plus the 300 s used in the comparison figures). SII-C: small TTLs
// discard bundles prematurely, large ones hoard delivered bundles.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi::exp;
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    std::vector<SeriesDef> series;
    for (const double ttl : {50.0, 100.0, 150.0, 200.0, 300.0}) {
      series.push_back({"TTL=" + std::to_string(static_cast<int>(ttl)),
                        trace_scenario(), fixed_ttl_params(ttl)});
    }
    series.push_back({"dynamic", trace_scenario(), dynamic_ttl_params()});
    for (const Metric metric :
         {Metric::kDeliveryRatio, Metric::kBufferOccupancy}) {
      const Figure figure =
          run_figure("ablation_ttl", "Fixed TTL value sweep (trace)", metric,
                     series, args.options);
      print_figure(std::cout, figure);
      if (args.csv) print_figure_csv(std::cout, figure);
      std::cout << "\n";
    }
    std::cout << "paper shape: delivery improves with larger TTL values but "
                 "every constant loses\nto the dynamic TTL, which adapts to "
                 "the encounter interval (SIII).\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
