// Baselines bench: situate the epidemic family against direct delivery and
// binary spray-and-wait (the paper's SI framing — epidemic buys minimum
// delay with maximum resource usage; bounded-replication schemes sit in
// between).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi::exp;
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    std::vector<SeriesDef> series;
    {
      epi::ProtocolParams direct;
      direct.kind = epi::ProtocolKind::kDirectDelivery;
      series.push_back({"direct", trace_scenario(), direct});
      for (const std::uint32_t quota : {4u, 8u}) {
        epi::ProtocolParams spray;
        spray.kind = epi::ProtocolKind::kSprayAndWait;
        spray.spray_copies = quota;
        series.push_back({"spray L=" + std::to_string(quota),
                          trace_scenario(), spray});
      }
      series.push_back({"epidemic (imm)", trace_scenario(), immunity_params()});
      series.push_back(
          {"epidemic (cum)", trace_scenario(), cumulative_immunity_params()});
    }
    for (const Metric metric :
         {Metric::kDeliveryRatio, Metric::kDelay, Metric::kTransmissions,
          Metric::kBufferOccupancy}) {
      const Figure figure =
          run_figure("baselines", "Epidemic family vs DTN baselines (trace)",
                     metric, series, args.options);
      print_figure(std::cout, figure);
      if (args.csv) print_figure_csv(std::cout, figure);
      std::cout << "\n";
    }
    std::cout << "expected shape: direct delivery spends one transmission "
                 "per bundle but pays the\nlongest delays and misses "
                 "never-meeting pairs; spray-and-wait interpolates;\n"
                 "epidemic flooding minimises delay at the highest "
                 "transmission/buffer cost.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
