// City-scale streaming smoke: generates the contact process of a
// city_scale(N) scenario through RwpContactSource — chunk by chunk, never
// holding the full contact vector — and checks the run stays inside a
// wall-clock and peak-RSS envelope. CI runs this with N=10000 to pin the
// bounded-memory claim of the windowed spatial-hash generator: a regression
// that silently materialises (or quadratically sweeps) blows the RSS or
// time bound and fails the job.
//
//   bench_city_smoke [--nodes N] [--max-seconds S] [--max-rss-mb M]
//
// Bounds of 0 disable the respective check (for local profiling). Exit
// status: 0 within bounds, 1 on a breach, 2 on usage errors.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "bench_common.hpp"
#include "exp/scenario.hpp"
#include "mobility/contact.hpp"
#include "mobility/rwp.hpp"

namespace {

/// Peak resident set size of this process in MiB, from /proc/self/status
/// (VmHWM). Returns 0 where the proc interface is unavailable (non-Linux);
/// the RSS check then degrades to a no-op rather than a false failure.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t nodes = 10'000;
  double max_seconds = 0.0;
  double max_rss_mb = 0.0;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const auto next = [&]() -> std::string {
      if (has_inline) return std::string(inline_value);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %.*s\n",
                     static_cast<int>(arg.size()), arg.data());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = epi::bench::parse_unsigned<std::uint32_t>(arg, next());
    } else if (arg == "--max-seconds") {
      max_seconds = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--max-rss-mb") {
      max_rss_mb = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--nodes N] [--max-seconds S] [--max-rss-mb M]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      return 2;
    }
  }

  const auto spec = epi::exp::city_scale(nodes);
  epi::mobility::RwpContactSource source(spec.rwp, 42);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t contacts = 0;
  std::size_t max_chunk = 0;
  double total_duration = 0.0;
  double last_start = 0.0;
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    contacts += chunk.size();
    max_chunk = std::max(max_chunk, chunk.size());
    for (const epi::mobility::Contact& c : chunk) {
      total_duration += c.duration();
      last_start = c.start;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rss_mib = peak_rss_mib();

  std::printf(
      "city%u: %llu contacts (last start %.0f s, mean duration %.1f s), "
      "max chunk %zu, %.2f s, peak RSS %.1f MiB\n",
      nodes, static_cast<unsigned long long>(contacts), last_start,
      contacts > 0 ? total_duration / static_cast<double>(contacts) : 0.0,
      max_chunk, seconds, rss_mib);

  bool ok = true;
  if (contacts == 0) {
    std::fprintf(stderr, "FAIL: generator produced no contacts\n");
    ok = false;
  }
  if (max_seconds > 0.0 && seconds > max_seconds) {
    std::fprintf(stderr, "FAIL: %.2f s exceeds --max-seconds %.2f\n", seconds,
                 max_seconds);
    ok = false;
  }
  if (max_rss_mb > 0.0 && rss_mib > max_rss_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MiB exceeds --max-rss-mb %.1f\n",
                 rss_mib, max_rss_mb);
    ok = false;
  }
  return ok ? 0 : 1;
}
