#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig10,
                                 "EC lowest, immunity/P-Q highest duplication rate (RWP)");
}
