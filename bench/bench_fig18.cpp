#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig18,
                                 "EC highest buffer occupancy; EC+TTL ~20% below; cumulative below immunity; TTL lowest (trace file)");
}
