#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig08,
                                 "EC has the worst delay; fixed TTL sits above immunity; P-Q is best (RWP)");
}
