#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig09,
                                 "EC has the lowest duplication rate; immunity exceeds 60%; P-Q is high (trace file)");
}
