// Scenario characterisation: the mobility-side context for every figure
// (the role the paper's Table I plays for prior work). For each mobility
// input: contact counts, duration and inter-contact distributions, slot
// budget, time-respecting connectivity and the oracle delay scale.
#include <iomanip>
#include <iostream>

#include "analysis/reachability.hpp"
#include "bench_common.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const bench::Args args = bench::parse_args(argc, argv);
  try {
    std::cout << "== scenario characterisation (seed "
              << args.options.master_seed << ") ==\n\n";
    for (const exp::ScenarioSpec& spec :
         {exp::trace_scenario(), exp::rwp_scenario(),
          exp::interval_scenario(400.0), exp::interval_scenario(2000.0)}) {
      const mobility::ContactTrace trace =
          exp::build_contact_trace(spec, args.options.master_seed);
      const mobility::TraceStats s = trace.stats();
      std::cout << std::left << std::setw(14) << spec.name << std::right
                << std::fixed << std::setprecision(0) << "  contacts "
                << std::setw(6) << s.contact_count << "  nodes "
                << std::setw(3) << s.node_count << "  span " << std::setw(7)
                << s.last_end << " s  slots " << std::setw(6)
                << s.total_slots << "\n"
                << "              duration s (mean/med/p90): "
                << s.mean_duration << " / " << s.median_duration << " / "
                << s.p90_duration << "\n"
                << "              inter-contact s (mean/med/p90/max): "
                << s.mean_inter_contact << " / " << s.median_inter_contact
                << " / " << s.p90_inter_contact << " / "
                << s.max_inter_contact << "\n"
                << std::setprecision(1)
                << "              temporal connectivity: "
                << analysis::reachable_pair_fraction(trace) * 100.0
                << "%   mean oracle delay from node 0: " << std::setprecision(0)
                << analysis::mean_oracle_delay(trace, 0, 0.0) << " s\n\n";
    }
    std::cout << "context: the trace twin is bursty (median inter-contact "
                 "minutes, p90 hours);\nthe RWP model is denser and more "
                 "homogeneous; the interval scenarios bound the\ngap between "
                 "a node's encounters at 400 vs 2000 s (Fig. 14's control "
                 "variable).\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
