#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig07,
                                 "delay grows fastest for EC and slowest for P-Q as load rises (trace file)");
}
