// Ablation: the EC threshold of Algo 2 ("when bundles are transmitted over
// eight times, bundles will be given a TTL"). Small thresholds age copies
// aggressively (EC-like buffer relief, TTL-like delivery risk); huge ones
// degenerate to plain EC.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace epi::exp;
  const epi::bench::Args args = epi::bench::parse_args(argc, argv);
  try {
    std::vector<SeriesDef> series;
    series.push_back({"plain EC", trace_scenario(), ec_params()});
    for (const std::uint32_t threshold : {2u, 4u, 8u, 16u}) {
      epi::ProtocolParams params = ec_ttl_params();
      params.ec_threshold = threshold;
      series.push_back({"EC+TTL thr=" + std::to_string(threshold),
                        trace_scenario(), params});
    }
    for (const Metric metric :
         {Metric::kDeliveryRatio, Metric::kBufferOccupancy}) {
      const Figure figure =
          run_figure("ablation_ecthr", "EC+TTL threshold sweep (trace)",
                     metric, series, args.options);
      print_figure(std::cout, figure);
      if (args.csv) print_figure_csv(std::cout, figure);
      std::cout << "\n";
    }
    std::cout << "design note: the threshold trades buffer relief against "
                 "premature aging; the\npaper's value (8) keeps delivery at "
                 "EC level while draining buffers.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
