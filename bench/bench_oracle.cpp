// Oracle bench: how close does each protocol get to the minimum possible
// delay (paper SI, citing Zhang et al.: "epidemic routing protocols are
// able to achieve minimum delivery delay, but at the expense of higher
// resource usage")?
//
// For each replication's flow, the time-respecting earliest-arrival oracle
// gives the optimum time to deliver one bundle; the measured mean bundle
// delay at load 5 (little buffer contention) is compared against it.
#include <iomanip>
#include <iostream>
#include <vector>

#include "analysis/reachability.hpp"
#include "bench_common.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const bench::Args args = bench::parse_args(argc, argv);
  try {
    for (const bool rwp : {false, true}) {
      const exp::ScenarioSpec scenario =
          rwp ? exp::rwp_scenario() : exp::trace_scenario();
      const mobility::ContactTrace trace =
          exp::build_contact_trace(scenario, args.options.master_seed);

      std::cout << "== oracle_" << scenario.name
                << ": delay inflation over the earliest-arrival bound ==\n";
      std::cout << "time-respecting connectivity: "
                << analysis::reachable_pair_fraction(trace) * 100.0
                << "% of ordered pairs\n";

      const std::vector<std::pair<const char*, ProtocolKind>> protocols{
          {"pure_epidemic", ProtocolKind::kPureEpidemic},
          {"pq_epidemic", ProtocolKind::kPqEpidemic},
          {"fixed_ttl", ProtocolKind::kFixedTtl},
          {"dynamic_ttl", ProtocolKind::kDynamicTtl},
          {"encounter_count", ProtocolKind::kEncounterCount},
          {"ec_ttl", ProtocolKind::kEcTtl},
          {"immunity", ProtocolKind::kImmunity},
          {"cumulative_immunity", ProtocolKind::kCumulativeImmunity},
      };

      std::cout << std::left << std::setw(22) << "protocol" << std::right
                << std::setw(14) << "oracle(s)" << std::setw(14)
                << "measured(s)" << std::setw(12) << "inflation"
                << std::setw(11) << "delivered" << "\n";

      for (const auto& [name, kind] : protocols) {
        double oracle_sum = 0.0;
        double measured_sum = 0.0;
        double delivered = 0.0;
        std::size_t counted = 0;
        for (std::uint32_t rep = 0; rep < args.options.replications; ++rep) {
          exp::RunSpec spec;
          spec.protocol.kind = kind;
          spec.load = 5;
          spec.replication = rep;
          spec.master_seed = args.options.master_seed;
          spec.horizon = trace.end_time();
          spec.session_gap = scenario.session_gap;

          const exp::FlowEndpoints flow = exp::pick_endpoints(
              spec.master_seed, spec.load, rep, trace.node_count());
          const SimTime bound = analysis::earliest_arrival(
              trace, flow.source, flow.destination, 0.0);
          if (bound == kNoExpiry) continue;  // oracle-unreachable flow

          const metrics::RunSummary run = exp::run_single(spec, trace);
          oracle_sum += bound;
          if (run.mean_bundle_delay > 0.0) {
            measured_sum += run.mean_bundle_delay;
            ++counted;
          }
          delivered += run.delivery_ratio;
        }
        const double reps = static_cast<double>(args.options.replications);
        const double oracle_mean = counted ? oracle_sum / reps : 0.0;
        const double measured_mean =
            counted ? measured_sum / static_cast<double>(counted) : 0.0;
        std::cout << std::left << std::setw(22) << name << std::right
                  << std::fixed << std::setprecision(0) << std::setw(14)
                  << oracle_mean << std::setw(14) << measured_mean
                  << std::setprecision(2) << std::setw(11)
                  << (oracle_mean > 0.0 ? measured_mean / oracle_mean : 0.0)
                  << "x" << std::setprecision(2) << std::setw(11)
                  << delivered / reps << "\n";
      }
      std::cout << "\n";
    }
    std::cout << "paper shape: flooding-style protocols track the oracle "
                 "bound; buffer management\ntrades delay (and sometimes "
                 "delivery) for space.\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
