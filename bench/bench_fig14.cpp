#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig14,
                                 "TTL=300 delivers markedly less when encounter intervals stretch from 400 to 2000 s");
}
