#include "bench_common.hpp"

int main(int argc, char** argv) {
  return epi::bench::figure_main(argc, argv, epi::exp::run_fig16,
                                 "dynamic TTL beats TTL=300 by >20%; EC+TTL clearly above EC at high load; immunity variants ~100% (trace file)");
}
