// Validating-builder and figure-registry tests.
//
// The builders (exp/builders.hpp, fault/plan.hpp) are the supported path
// for assembling specs from user input; every rejection must fire at
// build() time with a message naming the offending field and value. The
// figure registry (exp/figures.hpp) is the single source of truth behind
// bench_figure, the legacy bench_figXX wrappers and bench_export, so its
// ids must be unique and lookup must accept every documented spelling.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "exp/builders.hpp"
#include "exp/figures.hpp"
#include "exp/scenario.hpp"
#include "fault/plan.hpp"

namespace epi {
namespace {

/// Expects `expr` to throw ConfigError whose message contains `fragment`.
#define EXPECT_CONFIG_ERROR(expr, fragment)                            \
  do {                                                                 \
    try {                                                              \
      (void)(expr);                                                    \
      FAIL() << "expected ConfigError from " #expr;                    \
    } catch (const ConfigError& e) {                                   \
      EXPECT_NE(std::string_view(e.what()).find(fragment),             \
                std::string_view::npos)                                \
          << "message was: " << e.what();                              \
    }                                                                  \
  } while (false)

// --- RunSpecBuilder -----------------------------------------------------------

TEST(RunSpecBuilder, DefaultsBuildAndMatchAggregateDefaults) {
  const exp::RunSpec built = exp::RunSpecBuilder().build();
  const exp::RunSpec plain;
  EXPECT_EQ(built.load, plain.load);
  EXPECT_EQ(built.master_seed, plain.master_seed);
  EXPECT_DOUBLE_EQ(built.horizon, plain.horizon);
  EXPECT_DOUBLE_EQ(built.session_gap, plain.session_gap);
  EXPECT_FALSE(built.options.fault.any());
}

TEST(RunSpecBuilder, AdoptsScenarioHorizonAndGap) {
  const auto scenario = exp::trace_scenario();
  const exp::RunSpec spec =
      exp::RunSpecBuilder().scenario(scenario).load(25).build();
  EXPECT_DOUBLE_EQ(spec.horizon, scenario.horizon());
  EXPECT_DOUBLE_EQ(spec.session_gap, scenario.session_gap);
}

TEST(RunSpecBuilder, RejectsNonPositiveHorizon) {
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().horizon(0.0).build(),
                      "horizon");
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().horizon(-1.0).build(),
                      "horizon");
}

TEST(RunSpecBuilder, RejectsNonPositiveSlotSeconds) {
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().slot_seconds(0.0).build(),
                      "slot_seconds");
}

TEST(RunSpecBuilder, RejectsZeroBufferCapacity) {
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().buffer_capacity(0).build(),
                      "buffer_capacity");
}

TEST(RunSpecBuilder, RejectsExplicitSubSlotSessionGap) {
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().session_gap(50.0).build(),
                      "session_gap");
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().session_gap(0.0).build(),
                      "session_gap");
}

TEST(RunSpecBuilder, ScenarioSanctionsSubSlotGap) {
  // The controlled-interval scenarios use gap=25 < slot=100 on purpose.
  const auto interval = exp::interval_scenario(400.0);
  ASSERT_LT(interval.session_gap, 100.0);
  const exp::RunSpec spec =
      exp::RunSpecBuilder().scenario(interval).build();
  EXPECT_DOUBLE_EQ(spec.session_gap, interval.session_gap);
  // An explicit override after scenario() clears the sanction.
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder()
                          .scenario(interval)
                          .session_gap(interval.session_gap)
                          .build(),
                      "session_gap");
}

TEST(RunSpecBuilder, RejectsInvalidFaultPlan) {
  fault::FaultPlan plan;
  plan.slot_loss = 1.5;
  EXPECT_CONFIG_ERROR(exp::RunSpecBuilder().fault(plan).build(),
                      "slot_loss");
}

// --- ScenarioSpecBuilder ------------------------------------------------------

TEST(ScenarioSpecBuilder, PassesThroughCannedScenario) {
  const auto base = exp::rwp_scenario();
  const auto built = exp::ScenarioSpecBuilder(base).build();
  EXPECT_EQ(built.name, base.name);
  EXPECT_EQ(built.node_count(), base.node_count());
  EXPECT_DOUBLE_EQ(built.horizon(), base.horizon());
}

TEST(ScenarioSpecBuilder, RejectsNonPositiveSessionGap) {
  EXPECT_CONFIG_ERROR(
      exp::ScenarioSpecBuilder(exp::trace_scenario()).session_gap(0.0).build(),
      "session_gap");
}

TEST(ScenarioSpecBuilder, RejectsDegenerateNodeCount) {
  auto params = exp::rwp_scenario().rwp;
  params.node_count = 1;
  EXPECT_CONFIG_ERROR(
      exp::ScenarioSpecBuilder(exp::rwp_scenario()).rwp(params).build(),
      "node_count");
}

// --- FaultPlanBuilder ---------------------------------------------------------

TEST(FaultPlanBuilder, RejectsOutOfRangeProbabilities) {
  EXPECT_CONFIG_ERROR(fault::FaultPlanBuilder().slot_loss(-0.1).build(),
                      "slot_loss");
  EXPECT_CONFIG_ERROR(fault::FaultPlanBuilder().truncation(1.01).build(),
                      "truncation_prob");
  EXPECT_CONFIG_ERROR(fault::FaultPlanBuilder().control_loss(2.0).build(),
                      "control_loss");
}

TEST(FaultPlanBuilder, RejectsDegenerateDutyCycle) {
  // off fraction 1.0 means a permanently-down network: rejected.
  EXPECT_CONFIG_ERROR(fault::FaultPlanBuilder().duty_cycle(1.0, 100.0).build(),
                      "duty_off_fraction");
  EXPECT_CONFIG_ERROR(fault::FaultPlanBuilder().duty_cycle(0.5, 0.0).build(),
                      "duty_period");
}

TEST(FaultPlanBuilder, ValidPlanRoundTrips) {
  const fault::FaultPlan plan = fault::FaultPlanBuilder()
                                    .slot_loss(0.25)
                                    .truncation(0.1)
                                    .duty_cycle(0.2, 3'600.0)
                                    .control_loss(0.05)
                                    .build();
  EXPECT_TRUE(plan.any());
  EXPECT_DOUBLE_EQ(plan.slot_loss, 0.25);
  EXPECT_DOUBLE_EQ(plan.truncation_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.duty_off_fraction, 0.2);
  EXPECT_DOUBLE_EQ(plan.duty_period, 3'600.0);
  EXPECT_DOUBLE_EQ(plan.control_loss, 0.05);
}

TEST(FaultPlanKey, EveryFieldJoinsTheKey) {
  const fault::FaultPlan base;
  std::string base_key;
  fault::append_key(base_key, base);
  EXPECT_NE(base_key.find("fault{"), std::string::npos);

  fault::FaultPlan tweaked = base;
  tweaked.duty_period = 7'201.0;  // inactive field: must still change the key
  std::string tweaked_key;
  fault::append_key(tweaked_key, tweaked);
  EXPECT_NE(base_key, tweaked_key);
}

// --- figure registry ----------------------------------------------------------

TEST(FigureRegistry, IdsAreUniqueAndSpecsComplete) {
  std::set<std::string_view> ids;
  std::size_t paper_figures = 0;
  for (const exp::FigureSpec& spec : exp::figure_registry()) {
    ASSERT_NE(spec.id, nullptr);
    ASSERT_NE(spec.paper_claim, nullptr);
    ASSERT_NE(spec.run, nullptr);
    EXPECT_TRUE(ids.insert(spec.id).second) << "duplicate id " << spec.id;
    if (spec.paper_figure) ++paper_figures;
  }
  // The paper's 14 figures (07-20) plus the robustness extras.
  EXPECT_EQ(paper_figures, 14u);
  EXPECT_GE(ids.size(), 20u);
  for (int n = 7; n <= 20; ++n) {
    char id[8];
    std::snprintf(id, sizeof(id), "fig%02d", n);
    EXPECT_TRUE(ids.contains(id)) << "missing " << id;
  }
  EXPECT_TRUE(ids.contains("robust_trace_delivery"));
  EXPECT_TRUE(ids.contains("robust_rwp_delay"));
}

TEST(FigureRegistry, FindFigureAcceptsEverySpelling) {
  const exp::FigureSpec* canonical = exp::find_figure("fig07");
  ASSERT_NE(canonical, nullptr);
  EXPECT_EQ(exp::find_figure("07"), canonical);
  EXPECT_EQ(exp::find_figure("7"), canonical);
  ASSERT_NE(exp::find_figure("robust_trace_delivery"), nullptr);
  EXPECT_EQ(exp::find_figure("fig99"), nullptr);
  EXPECT_EQ(exp::find_figure("99"), nullptr);
  EXPECT_EQ(exp::find_figure(""), nullptr);
  EXPECT_EQ(exp::find_figure("bogus"), nullptr);
}

}  // namespace
}  // namespace epi
