// Property suite: invariants that must hold for EVERY protocol on EVERY
// mobility model, swept with parameterized tests.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace epi {
namespace {

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kPureEpidemic,  ProtocolKind::kPqEpidemic,
    ProtocolKind::kFixedTtl,      ProtocolKind::kEncounterCount,
    ProtocolKind::kImmunity,      ProtocolKind::kDynamicTtl,
    ProtocolKind::kEcTtl,         ProtocolKind::kCumulativeImmunity,
    ProtocolKind::kDirectDelivery, ProtocolKind::kSprayAndWait,
};

enum class Mob { kTrace, kRwp, kInterval };

exp::ScenarioSpec scenario_for(Mob mob) {
  switch (mob) {
    case Mob::kTrace: {
      auto spec = exp::trace_scenario();
      spec.haggle.horizon = 120'000.0;  // keep the suite fast
      return spec;
    }
    case Mob::kRwp: {
      auto spec = exp::rwp_scenario();
      spec.rwp.horizon = 120'000.0;
      return spec;
    }
    case Mob::kInterval:
      return exp::interval_scenario(400.0);
  }
  return exp::trace_scenario();
}

struct Case {
  ProtocolKind protocol;
  Mob mob;
  std::uint32_t load;
};

class ProtocolProperties
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, Mob>> {};

TEST_P(ProtocolProperties, SummaryInvariantsHold) {
  const auto [kind, mob] = GetParam();
  const auto scenario = scenario_for(mob);
  const auto trace = exp::build_contact_trace(scenario, 42);
  for (const std::uint32_t load : {5u, 25u, 50u}) {
    exp::RunSpec spec;
    spec.protocol.kind = kind;
    spec.load = load;
    spec.horizon = trace.end_time();
    spec.session_gap = scenario.session_gap;
    const auto run = exp::run_single(spec, trace);

    EXPECT_GE(run.delivery_ratio, 0.0);
    EXPECT_LE(run.delivery_ratio, 1.0);
    EXPECT_GE(run.buffer_occupancy, 0.0);
    EXPECT_LE(run.buffer_occupancy, 1.0);
    EXPECT_GE(run.duplication_rate, 0.0);
    EXPECT_LE(run.duplication_rate, 1.0);
    // Delay is bounded by the horizon (failed runs are charged exactly it).
    EXPECT_LE(run.completion_time, spec.horizon + 1e-9);
    if (run.complete) {
      EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
      EXPECT_LE(run.completion_time, spec.horizon);
    } else {
      EXPECT_DOUBLE_EQ(run.completion_time, spec.horizon);
    }
    // Each delivery is a transmission.
    EXPECT_GE(run.bundle_transmissions,
              static_cast<std::uint64_t>(run.delivery_ratio * load + 0.5));
  }
}

TEST_P(ProtocolProperties, DeterministicAcrossIdenticalRuns) {
  const auto [kind, mob] = GetParam();
  const auto scenario = scenario_for(mob);
  const auto trace = exp::build_contact_trace(scenario, 7);
  exp::RunSpec spec;
  spec.protocol.kind = kind;
  spec.load = 20;
  spec.horizon = trace.end_time();
  spec.session_gap = scenario.session_gap;
  const auto a = exp::run_single(spec, trace);
  const auto b = exp::run_single(spec, trace);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.buffer_occupancy, b.buffer_occupancy);
  EXPECT_DOUBLE_EQ(a.duplication_rate, b.duplication_rate);
  EXPECT_EQ(a.bundle_transmissions, b.bundle_transmissions);
  EXPECT_EQ(a.control_records, b.control_records);
}

TEST_P(ProtocolProperties, BuffersNeverExceedCapacity) {
  const auto [kind, mob] = GetParam();
  const auto scenario = scenario_for(mob);
  const auto trace = exp::build_contact_trace(scenario, 13);
  SimulationConfig config;
  config.node_count = std::max(trace.node_count(), 2u);
  config.load = 30;
  config.horizon = trace.end_time();
  config.source = 0;
  config.destination = config.node_count - 1;
  config.encounter_session_gap = scenario.session_gap;
  config.protocol.kind = kind;
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), 3);
  engine.run();
  for (NodeId n = 0; n < config.node_count; ++n) {
    EXPECT_LE(engine.node(n).buffer().size(), config.buffer_capacity);
  }
}

TEST_P(ProtocolProperties, OnlyFlowBundlesExist) {
  const auto [kind, mob] = GetParam();
  const auto scenario = scenario_for(mob);
  const auto trace = exp::build_contact_trace(scenario, 21);
  SimulationConfig config;
  config.node_count = std::max(trace.node_count(), 2u);
  config.load = 15;
  config.horizon = trace.end_time();
  config.source = 0;
  config.destination = 1;
  config.encounter_session_gap = scenario.session_gap;
  config.protocol.kind = kind;
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), 5);
  engine.run();
  for (NodeId n = 0; n < config.node_count; ++n) {
    for (const auto& entry : engine.node(n).buffer().entries()) {
      EXPECT_GE(entry.id, 1u);
      EXPECT_LE(entry.id, config.load);
    }
  }
  EXPECT_LE(engine.recorder().created_count(), config.load);
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, Mob>>& info) {
  const auto [kind, mob] = info.param;
  std::string name{to_string(kind)};
  switch (mob) {
    case Mob::kTrace:
      name += "_trace";
      break;
    case Mob::kRwp:
      name += "_rwp";
      break;
    case Mob::kInterval:
      name += "_interval";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllMobility, ProtocolProperties,
    ::testing::Combine(::testing::ValuesIn(kAllProtocols),
                       ::testing::Values(Mob::kTrace, Mob::kRwp,
                                         Mob::kInterval)),
    case_name);

// Monotone sanity: a protocol cannot deliver more bundles than the source
// injected, and created bundles never exceed the load (checked above); here
// we sweep seeds for flakiness hunting.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ImmunityAlwaysAtLeastMatchesPureEpidemicDelivery) {
  auto scenario = exp::trace_scenario();
  scenario.haggle.horizon = 150'000.0;
  const auto trace = exp::build_contact_trace(scenario, GetParam());
  exp::RunSpec spec;
  spec.load = 30;
  spec.horizon = trace.end_time();

  spec.protocol.kind = ProtocolKind::kPureEpidemic;
  const double pure = exp::run_single(spec, trace).delivery_ratio;
  spec.protocol.kind = ProtocolKind::kImmunity;
  const double immunity = exp::run_single(spec, trace).delivery_ratio;
  // Pure epidemic cannot free its source buffer: immunity (which purges
  // delivered bundles) always injects at least as much and delivers more.
  EXPECT_GE(immunity + 1e-12, pure);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace epi
