// Engine-level eviction-policy tests.
//
// The contract under test: the default drop-tail policy IS the engine's
// historic implicit refuse-when-full behavior — bit-identical summaries,
// byte-identical store keys — while every non-default policy turns the
// silent refusal into observable kEvicted removals, and heterogeneous
// per-node capacities keep the occupancy accounting honest. Per-policy
// victim-selection units live in test_buffer.cpp; this file covers the
// full engine path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/eviction.hpp"
#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "golden_cases.hpp"
#include "metrics/summary.hpp"
#include "obs/stats.hpp"

namespace epi {
namespace {

/// A configuration with real buffer pressure: more bundles than any relay
/// can hold, so the admission path runs constantly.
exp::RunSpec pressured_spec(const exp::ScenarioSpec& scenario,
                            EvictionPolicy policy) {
  ProtocolParams params;
  params.kind = ProtocolKind::kPureEpidemic;
  return exp::RunSpecBuilder()
      .protocol(params)
      .scenario(scenario)
      .load(60)
      .buffer_capacity(6)
      .replication(1)
      .eviction(policy)
      .build();
}

// Differential pin: an explicitly built drop-tail RunSpec reproduces every
// golden case bit-identically. This is the "bugfix changes nothing by
// default" guarantee, checked over both scenarios and all eight protocol
// families of the golden table.
TEST(Eviction, DropTailMatchesImplicitDefaultOnGoldenCases) {
  const auto trace_spec = exp::trace_scenario();
  const auto rwp_spec = exp::rwp_scenario();
  const auto trace = exp::build_contact_trace(trace_spec, 42);
  const auto rwp = exp::build_contact_trace(rwp_spec, 42);
  for (const GoldenCase& c : kGolden) {
    const bool is_rwp = std::string_view(c.scenario) == "rwp";
    const auto& scenario = is_rwp ? rwp_spec : trace_spec;
    const auto& contacts = is_rwp ? rwp : trace;

    exp::RunSpec implicit;  // the pre-policy spec shape, field by field
    implicit.protocol.kind = protocol_from_string(c.protocol);
    implicit.load = c.load;
    implicit.replication = c.replication;
    implicit.horizon = scenario.horizon();
    implicit.session_gap = scenario.session_gap;

    ProtocolParams params;
    params.kind = protocol_from_string(c.protocol);
    const exp::RunSpec explicit_tail = exp::RunSpecBuilder()
                                           .protocol(params)
                                           .scenario(scenario)
                                           .load(c.load)
                                           .replication(c.replication)
                                           .eviction(EvictionPolicy::kDropTail)
                                           .build();

    const auto a = exp::run_single(implicit, contacts);
    const auto b = exp::run_single(explicit_tail, contacts);
    EXPECT_TRUE(metrics::deterministic_equal(a, b))
        << c.scenario << "/" << c.protocol << " load " << c.load;
  }
}

// The same differential across eight master seeds: drop-tail must be the
// identity transformation regardless of flow endpoints and trace shape.
TEST(Eviction, DropTailMatchesImplicitDefaultAcrossSeeds) {
  const auto scenario = exp::trace_scenario();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = exp::build_contact_trace(scenario, seed);

    exp::RunSpec implicit;
    implicit.protocol.kind = ProtocolKind::kPureEpidemic;
    implicit.load = 25;
    implicit.replication = 1;
    implicit.master_seed = seed;
    implicit.horizon = scenario.horizon();
    implicit.session_gap = scenario.session_gap;

    exp::RunSpec explicit_tail = implicit;
    explicit_tail.options.eviction = EvictionPolicy::kDropTail;

    const auto a = exp::run_single(implicit, trace);
    const auto b = exp::run_single(explicit_tail, trace);
    EXPECT_TRUE(metrics::deterministic_equal(a, b)) << "seed " << seed;
  }
}

// Under pressure, drop-tail never evicts for a protocol without its own
// admission rule; every non-default policy produces observable kEvicted
// removals from the identical trace. (Note drop-tail's *refusal* count can
// legitimately be zero even with full buffers: anti-entropy filters offers
// the receiver already holds, so a saturated epidemic stalls silently —
// exactly the behavior the transfers_refused_full counter makes visible
// where it does occur; see the dynamic-TTL test below.)
TEST(Eviction, NonDefaultPoliciesProduceObservableEvictions) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);

  const auto tail =
      exp::run_single(pressured_spec(scenario, EvictionPolicy::kDropTail),
                      trace);
  EXPECT_EQ(tail.drops_evicted, 0u);

  for (const EvictionPolicy policy : {EvictionPolicy::kDropOldest,
                                      EvictionPolicy::kDropMostReplicated,
                                      EvictionPolicy::kDropLargestEc}) {
    const auto s = exp::run_single(pressured_spec(scenario, policy), trace);
    EXPECT_GT(s.drops_evicted, 0u) << to_string(policy);
    // Admission policy must not perturb the contact process itself: the
    // same trace drives both runs, offer order included.
    EXPECT_EQ(s.contacts, tail.contacts) << to_string(policy);
  }
}

// The refusal counter observable end to end: dynamic TTL expires bundles,
// which re-creates content heterogeneity between peers, so full receivers
// keep being offered bundles they lack — the one paper configuration where
// the implicit drop-tail path visibly refuses relay traffic.
TEST(Eviction, RefusalCounterObservableUnderDynamicTtl) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);
  ProtocolParams params;
  params.kind = ProtocolKind::kDynamicTtl;
  const exp::RunSpec spec = exp::RunSpecBuilder()
                                .protocol(params)
                                .scenario(scenario)
                                .load(25)
                                .replication(1)
                                .build();
  const auto s = exp::run_single(spec, trace);
  EXPECT_GT(s.perf.transfers_refused_full, 0u);
  EXPECT_EQ(s.drops_evicted, 0u);  // drop-tail still never evicts
}

// Offer-order consistency: eviction mid-contact reorders buffer storage,
// and a rerun of the identical spec must still walk the identical offer
// sequence — i.e. the whole summary reproduces bit-exactly.
TEST(Eviction, EvictingRunsAreDeterministic) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);
  for (const EvictionPolicy policy : {EvictionPolicy::kDropOldest,
                                      EvictionPolicy::kDropMostReplicated,
                                      EvictionPolicy::kDropLargestEc}) {
    const auto spec = pressured_spec(scenario, policy);
    const auto a = exp::run_single(spec, trace);
    const auto b = exp::run_single(spec, trace);
    EXPECT_TRUE(metrics::deterministic_equal(a, b)) << to_string(policy);
  }
}

// Store-key stability: defaults add no fragments (byte-identical keys, so
// every pre-existing run-store entry stays valid); non-defaults do.
TEST(Eviction, StoreKeyStableUnderDefaults) {
  const auto scenario = exp::trace_scenario();

  exp::RunSpec implicit;
  implicit.protocol.kind = ProtocolKind::kPureEpidemic;
  implicit.load = 25;
  implicit.replication = 1;
  implicit.horizon = scenario.horizon();
  implicit.session_gap = scenario.session_gap;
  const std::string base_key = exp::store_key(scenario, implicit);
  EXPECT_EQ(base_key.find("|evict="), std::string::npos);
  EXPECT_EQ(base_key.find("|caps="), std::string::npos);

  exp::RunSpec explicit_tail = implicit;
  explicit_tail.options.eviction = EvictionPolicy::kDropTail;
  EXPECT_EQ(exp::store_key(scenario, explicit_tail), base_key);

  exp::RunSpec oldest = implicit;
  oldest.options.eviction = EvictionPolicy::kDropOldest;
  const std::string oldest_key = exp::store_key(scenario, oldest);
  EXPECT_NE(oldest_key.find("|evict=drop_oldest;"), std::string::npos);
  EXPECT_NE(oldest_key, base_key);

  exp::RunSpec capped = implicit;
  capped.options.node_capacities.assign(scenario.node_count(), 10);
  const std::string capped_key = exp::store_key(scenario, capped);
  EXPECT_NE(capped_key.find("|caps=["), std::string::npos);
  EXPECT_NE(capped_key, base_key);
}

// Heterogeneous capacities: the stats occupancy histogram must be sized to
// the largest capacity and still integrate to node_count * end_time, and
// the recorder's occupancy must stay a valid fill fraction.
TEST(Eviction, HeterogeneousCapacityOccupancyIntegrates) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);
  const std::uint32_t nodes = scenario.node_count();

  std::vector<std::uint32_t> caps(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) caps[n] = (n % 2 == 0) ? 4 : 12;

  ProtocolParams params;
  params.kind = ProtocolKind::kPureEpidemic;
  const exp::RunSpec spec = exp::RunSpecBuilder()
                                .protocol(params)
                                .scenario(scenario)
                                .load(40)
                                .replication(1)
                                .node_capacities(caps)
                                .collect_stats(true)
                                .build();
  const auto s = exp::run_single(spec, trace);

  ASSERT_NE(s.stats, nullptr);
  EXPECT_EQ(s.stats->buffer_capacity, 12u);  // max over heterogeneous caps
  ASSERT_EQ(s.stats->occupancy_time.size(), 13u);
  double integrated = 0.0;
  for (const double seconds : s.stats->occupancy_time) integrated += seconds;
  const double expected = static_cast<double>(nodes) * s.end_time;
  EXPECT_NEAR(integrated, expected, 1e-6 * expected);

  EXPECT_GE(s.buffer_occupancy, 0.0);
  EXPECT_LE(s.buffer_occupancy, 1.0);
  EXPECT_GT(s.buffer_occupancy, 0.0);  // bundles flowed, buffers filled
}

// A capacity vector that is uniform must reproduce the homogeneous run's
// simulation outcomes; only the occupancy average may move by FP
// reassociation (per-node division versus one shared division).
TEST(Eviction, UniformCapacityVectorMatchesHomogeneousRun) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);

  ProtocolParams params;
  params.kind = ProtocolKind::kPureEpidemic;
  const exp::RunSpec uniform = exp::RunSpecBuilder()
                                   .protocol(params)
                                   .scenario(scenario)
                                   .load(25)
                                   .replication(1)
                                   .build();
  exp::RunSpec vectored = uniform;
  vectored.options.node_capacities.assign(scenario.node_count(),
                                  uniform.buffer_capacity);

  const auto a = exp::run_single(uniform, trace);
  const auto b = exp::run_single(vectored, trace);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.bundle_transmissions, b.bundle_transmissions);
  EXPECT_EQ(a.contacts, b.contacts);
  EXPECT_EQ(a.drops_evicted, b.drops_evicted);
  EXPECT_EQ(a.perf.transfers, b.perf.transfers);
  EXPECT_EQ(a.perf.transfers_refused_full, b.perf.transfers_refused_full);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_NEAR(a.buffer_occupancy, b.buffer_occupancy, 1e-12);
}

}  // namespace
}  // namespace epi
