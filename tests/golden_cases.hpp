// Golden determinism pins shared by test_golden (the bit-identity suite)
// and test_fault (which asserts an all-zero FaultPlan reproduces every pin).
// Full RunSummary values for 14 representative (scenario, protocol, load,
// replication) cases, recorded at maximum precision. Any engine change that
// shifts a simulation outcome — even by one ULP — fails against this table.
// Engine-level perf counters (events_processed, peak_queue_depth) are
// deliberately NOT pinned: they may change when the scheduling strategy
// changes without affecting simulation results; `transfers` is pinned
// because it mirrors the simulation metric.
#pragma once

#include <cstdint>

namespace epi {

struct GoldenCase {
  const char* scenario;
  const char* protocol;
  std::uint32_t load;
  std::uint32_t replication;
  // RunSummary pins.
  double delivery_ratio;
  bool complete;
  double completion_time;
  double mean_bundle_delay;
  double buffer_occupancy;
  double duplication_rate;
  std::uint64_t bundle_transmissions;
  std::uint64_t control_records;
  std::uint64_t contacts;
  std::uint64_t drops_expired;
  std::uint64_t drops_evicted;
  std::uint64_t drops_immunized;
  double end_time;
  std::uint64_t transfers;
};

// clang-format off
inline constexpr GoldenCase kGolden[] = {
    {"trace", "pure_epidemic", 20, 1,
     0.5, false, 524162, 18424.349726293171, 0.88907295413318244, 0.91666666666666663,
     110, 0, 1147, 0, 0, 0, 524162,
     110},
    {"trace", "pq_epidemic", 40, 2,
     1, true, 63728.558611701214, 10020.344095236942, 0.68362763504946367, 0.67291666666666639,
     330, 4549, 214, 0, 0, 220, 63728.558611701214,
     330},
    {"trace", "fixed_ttl", 60, 3,
     0.58333333333333337, false, 524162, 8672.0558392643652, 0.0068856040520155438, 0.30833333333333335,
     230, 0, 1147, 255, 0, 0, 524162,
     230},
    {"trace", "dynamic_ttl", 40, 4,
     0.94999999999999996, false, 524162, 11242.186640860464, 0.35683466488148319, 0.48333333333333339,
     1196, 0, 1147, 1170, 0, 0, 524162,
     1196},
    {"trace", "encounter_count", 80, 5,
     0.875, false, 524162, 12804.793338188882, 0.89834154726197246, 0.49583333333333296,
     1403, 0, 1147, 0, 1303, 0, 524162,
     1403},
    {"trace", "ec_ttl", 60, 6,
     1, true, 63602.193466884091, 11478.002765824107, 0.71892098367624735, 0.4430555555555557,
     607, 0, 209, 0, 497, 0, 63602.193466884091,
     607},
    {"trace", "immunity", 100, 7,
     1, true, 139554.21354056787, 7028.8680774657278, 0.52576123545917519, 0.51416666666666666,
     681, 32300, 396, 0, 0, 593, 139554.21354056787,
     681},
    {"trace", "cumulative_immunity", 100, 8,
     1, true, 122191.8550920078, 8000.4824277477501, 0.43526318736007519, 0.44083333333333335,
     558, 739, 354, 0, 0, 502, 122191.8550920078,
     558},
    {"rwp", "pure_epidemic", 20, 1,
     0.5, false, 600000, 12182.796802435772, 0.90008844652233433, 0.91666666666666663,
     110, 0, 2263, 0, 0, 0, 600000,
     110},
    {"rwp", "encounter_count", 80, 2,
     0.875, false, 600000, 31697.67864485137, 0.89943019506022559, 0.45312499999999983,
     1223, 0, 2263, 0, 1123, 0, 600000,
     1223},
    {"rwp", "immunity", 60, 3,
     1, true, 100453.12267591475, 12991.586063962879, 0.33999182674463846, 0.46805555555555572,
     376, 18749, 381, 0, 0, 366, 100453.12267591475,
     376},
    {"rwp", "cumulative_immunity", 100, 4,
     1, true, 219198.98286311532, 14135.339825908286, 0.42286537955812498, 0.68166666666666675,
     901, 1592, 797, 0, 0, 865, 219198.98286311532,
     901},
    {"rwp", "spray_and_wait", 40, 5,
     1, true, 109070.7359605668, 11594.853368397036, 0.27077423980482873, 0.36249999999999988,
     210, 0, 412, 0, 0, 0, 109070.7359605668,
     210},
    {"rwp", "direct_delivery", 20, 6,
     1, true, 210835.44519197312, 94856.555774777502, 0.074984668484314246, 0.083333333333333301,
     20, 0, 769, 0, 0, 0, 210835.44519197312,
     20},
};
// clang-format on

}  // namespace epi
