// Observability subsystem: JSONL event tracing, perf counters, sweep
// progress and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/progress.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace epi {
namespace {

/// Splits a stream into its non-empty lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Cheap structural well-formedness check for one flat JSON object: starts
/// '{', ends '}', quotes pair up, no nested braces (our schema is flat).
bool looks_like_flat_json(const std::string& line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return false;
  }
  std::size_t quotes = 0;
  for (std::size_t i = 1; i + 1 < line.size(); ++i) {
    if (line[i] == '"') ++quotes;
    if (line[i] == '{' || line[i] == '}') return false;
  }
  return quotes % 2 == 0;
}

std::size_t count_kind(const std::vector<std::string>& lines,
                       std::string_view kind) {
  const std::string needle = "\"ev\":\"" + std::string(kind) + "\"";
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

double field_of(const std::string& line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// A deterministic two-node scenario: three contacts, each affording slots.
mobility::ContactTrace two_node_trace() {
  return mobility::ContactTrace({
      {0, 1, 100.0, 450.0},
      {0, 1, 1'000.0, 1'350.0},
      {0, 1, 2'000.0, 2'250.0},
  });
}

metrics::RunSummary run_two_node(obs::TraceSink* sink) {
  SimulationConfig config;
  config.node_count = 2;
  config.load = 3;
  config.source = 0;
  config.destination = 1;
  config.horizon = 5'000.0;
  config.protocol.kind = ProtocolKind::kPureEpidemic;
  const mobility::ContactTrace trace = two_node_trace();  // must outlive run()
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), /*seed=*/7);
  engine.set_trace_sink(sink, /*replication=*/4);
  return engine.run();
}

TEST(JsonlSink, EmitsWellFormedRecordsInEventOrder) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  const metrics::RunSummary summary = run_two_node(&sink);

  const auto lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.size(), sink.records());

  double last_t = 0.0;
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_flat_json(line)) << line;
    EXPECT_NE(line.find("\"protocol\":\"pure_epidemic\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"load\":3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"rep\":4"), std::string::npos) << line;
    // Records arrive in simulation order.
    const double t = field_of(line, "t");
    EXPECT_GE(t, last_t) << line;
    last_t = t;
  }

  // Every contact is narrated up (the run may stop mid-contact once all
  // bundles are delivered, so contact_down can lag), every creation/store/
  // transfer/delivery appears.
  EXPECT_EQ(count_kind(lines, "contact_up"), summary.contacts);
  EXPECT_LE(count_kind(lines, "contact_down"), summary.contacts);
  EXPECT_EQ(count_kind(lines, "created"), 3u);
  EXPECT_EQ(count_kind(lines, "transferred"), summary.bundle_transmissions);
  EXPECT_EQ(count_kind(lines, "delivered"),
            static_cast<std::size_t>(
                std::lround(summary.delivery_ratio * 3.0)));
}

TEST(JsonlSink, NullSinkAddsNothingAndDoesNotPerturbTheRun) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  const metrics::RunSummary traced = run_two_node(&sink);
  const metrics::RunSummary untraced = run_two_node(nullptr);

  EXPECT_GT(sink.records(), 0u);
  // Tracing is pure observation: every outcome is identical without it.
  EXPECT_EQ(traced.delivery_ratio, untraced.delivery_ratio);
  EXPECT_EQ(traced.completion_time, untraced.completion_time);
  EXPECT_EQ(traced.bundle_transmissions, untraced.bundle_transmissions);
  EXPECT_EQ(traced.contacts, untraced.contacts);
  EXPECT_EQ(traced.perf.events_processed, untraced.perf.events_processed);
  EXPECT_EQ(traced.perf.peak_queue_depth, untraced.perf.peak_queue_depth);
}

TEST(JsonlSink, DropsAndCountsOversizedRecords) {
  std::ostringstream out;
  obs::JsonlSink sink(out);

  // A protocol name longer than the 256-byte line buffer cannot fit; the
  // sink must drop the whole record (a truncated JSON line would poison
  // downstream parsers) and count it.
  const std::string huge(400, 'x');
  obs::TraceEvent big;
  big.kind = obs::EventKind::kCreated;
  big.t = 1.0;
  big.protocol = huge;
  sink.emit(big);
  EXPECT_EQ(sink.records(), 0u);
  EXPECT_EQ(sink.truncated(), 1u);
  EXPECT_TRUE(lines_of(out.str()).empty());

  // An overflow in an appended optional field (not just the prefix) is also
  // caught: 195 pad chars leave the 251-byte prefix inside the 256-byte
  // buffer, so the ,"a":1 append is what overflows.
  const std::string nearly(195, 'y');
  obs::TraceEvent edge;
  edge.kind = obs::EventKind::kTransferred;
  edge.t = 2.0;
  edge.protocol = nearly;
  edge.a = 1;
  edge.b = 2;
  edge.bundle = 3;
  sink.emit(edge);
  EXPECT_EQ(sink.records(), 0u);
  EXPECT_EQ(sink.truncated(), 2u);

  // The sink keeps working: the next normal record is written whole.
  obs::TraceEvent ok;
  ok.kind = obs::EventKind::kDelivered;
  ok.t = 3.0;
  ok.protocol = "pure_epidemic";
  ok.a = 0;
  ok.b = 1;
  ok.bundle = 7;
  sink.emit(ok);
  EXPECT_EQ(sink.records(), 1u);
  EXPECT_EQ(sink.truncated(), 2u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_flat_json(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"ev\":\"delivered\""), std::string::npos);
}

TEST(PerfCounters, PopulatedAndInternallyConsistent) {
  const metrics::RunSummary summary = run_two_node(nullptr);
  EXPECT_GT(summary.perf.events_processed, 0u);
  EXPECT_GT(summary.perf.peak_queue_depth, 0u);
  EXPECT_GE(summary.perf.wall_seconds, 0.0);
  EXPECT_EQ(summary.perf.transfers, summary.bundle_transmissions);
  EXPECT_EQ(summary.perf.contacts, summary.contacts);
  if (summary.perf.wall_seconds > 0.0) {
    EXPECT_GT(summary.perf.events_per_second(), 0.0);
  }
}

exp::SweepSpec small_sweep_spec(unsigned threads) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kFixedTtl;
  spec.loads = {5, 10};
  spec.replications = 3;
  spec.threads = threads;
  return spec;
}

TEST(PerfCounters, DeterministicFieldsIdenticalAcrossThreadCounts) {
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  const exp::SweepResult serial = run_sweep_on(small_sweep_spec(1), trace);
  const exp::SweepResult parallel = run_sweep_on(small_sweep_spec(3), trace);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t li = 0; li < serial.runs.size(); ++li) {
    ASSERT_EQ(serial.runs[li].size(), parallel.runs[li].size());
    for (std::size_t r = 0; r < serial.runs[li].size(); ++r) {
      const auto& a = serial.runs[li][r].perf;
      const auto& b = parallel.runs[li][r].perf;
      EXPECT_EQ(a.events_processed, b.events_processed);
      EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
      EXPECT_EQ(a.transfers, b.transfers);
      EXPECT_EQ(a.contacts, b.contacts);
    }
  }
}

TEST(JsonlSink, SweepTraceReconcilesWithAggregates) {
  // The acceptance check behind `bench_fig07 --trace-out=...`: per-event
  // record counts must reconcile with the run summaries' printed aggregates.
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  std::ostringstream out;
  obs::JsonlSink sink(out);
  exp::SweepSpec spec = small_sweep_spec(2);
  spec.trace_sink = &sink;
  const exp::SweepResult result = run_sweep_on(spec, trace);

  std::uint64_t transfers = 0;
  std::uint64_t contacts = 0;
  std::uint64_t delivered = 0;
  for (std::size_t li = 0; li < result.runs.size(); ++li) {
    for (const auto& run : result.runs[li]) {
      transfers += run.bundle_transmissions;
      contacts += run.contacts;
      delivered += static_cast<std::uint64_t>(
          std::lround(run.delivery_ratio * result.loads[li]));
    }
  }

  const auto lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), sink.records());
  EXPECT_EQ(count_kind(lines, "transferred"), transfers);
  EXPECT_EQ(count_kind(lines, "contact_up"), contacts);
  EXPECT_EQ(count_kind(lines, "delivered"), delivered);
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_flat_json(line)) << line;
  }
}

TEST(ChromeTrace, OneSpanPerReplicationAcrossPoolThreads) {
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  obs::ChromeTraceWriter chrome;
  exp::SweepSpec spec = small_sweep_spec(2);
  spec.chrome = &chrome;
  const exp::SweepResult result = run_sweep_on(spec, trace);

  EXPECT_EQ(chrome.span_count(),
            result.loads.size() * spec.replications);

  std::ostringstream out;
  chrome.write(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One complete ("ph":"X") event per replication, named by its task.
  std::size_t spans = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++spans;
  }
  EXPECT_EQ(spans, result.loads.size() * spec.replications);
  EXPECT_NE(json.find("fixed_ttl/load=5/rep=0"), std::string::npos);
  EXPECT_NE(json.find("fixed_ttl/load=10/rep=2"), std::string::npos);
}

TEST(ProgressReporter, TicksCountAndRender) {
  std::ostringstream out;
  {
    obs::ProgressReporter progress("figXX", 4, out);
    for (int i = 0; i < 4; ++i) progress.tick(1'000);
    EXPECT_EQ(progress.completed(), 4u);
    EXPECT_EQ(progress.total_events(), 4'000u);
    progress.finish();
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("[figXX]"), std::string::npos);
  EXPECT_NE(text.find("4/4 runs"), std::string::npos);
  EXPECT_NE(text.find("ev/s"), std::string::npos);
}

TEST(ProgressReporter, HumanizesRates) {
  EXPECT_EQ(obs::humanize_rate(312.0), "312");
  EXPECT_EQ(obs::humanize_rate(3'217.0), "3.2k");
  EXPECT_EQ(obs::humanize_rate(4'512'345.0), "4.5M");
}

}  // namespace
}  // namespace epi
