// Observability subsystem: JSONL event tracing, perf counters, sweep
// progress and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/progress.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"

namespace epi {
namespace {

/// Splits a stream into its non-empty lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Cheap structural well-formedness check for one flat JSON object: starts
/// '{', ends '}', quotes pair up, no nested braces (our schema is flat).
bool looks_like_flat_json(const std::string& line) {
  if (line.size() < 2 || line.front() != '{' || line.back() != '}') {
    return false;
  }
  std::size_t quotes = 0;
  for (std::size_t i = 1; i + 1 < line.size(); ++i) {
    if (line[i] == '"') ++quotes;
    if (line[i] == '{' || line[i] == '}') return false;
  }
  return quotes % 2 == 0;
}

std::size_t count_kind(const std::vector<std::string>& lines,
                       std::string_view kind) {
  const std::string needle = "\"ev\":\"" + std::string(kind) + "\"";
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

double field_of(const std::string& line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// A deterministic two-node scenario: three contacts, each affording slots.
mobility::ContactTrace two_node_trace() {
  return mobility::ContactTrace({
      {0, 1, 100.0, 450.0},
      {0, 1, 1'000.0, 1'350.0},
      {0, 1, 2'000.0, 2'250.0},
  });
}

metrics::RunSummary run_two_node(obs::TraceSink* sink) {
  SimulationConfig config;
  config.node_count = 2;
  config.load = 3;
  config.source = 0;
  config.destination = 1;
  config.horizon = 5'000.0;
  config.protocol.kind = ProtocolKind::kPureEpidemic;
  const mobility::ContactTrace trace = two_node_trace();  // must outlive run()
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), /*seed=*/7);
  engine.set_trace_sink(sink, /*replication=*/4);
  return engine.run();
}

TEST(JsonlSink, EmitsWellFormedRecordsInEventOrder) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  const metrics::RunSummary summary = run_two_node(&sink);

  const auto lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.size(), sink.records());

  double last_t = 0.0;
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_flat_json(line)) << line;
    EXPECT_NE(line.find("\"protocol\":\"pure_epidemic\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"load\":3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"rep\":4"), std::string::npos) << line;
    // Records arrive in simulation order.
    const double t = field_of(line, "t");
    EXPECT_GE(t, last_t) << line;
    last_t = t;
  }

  // Every contact is narrated up (the run may stop mid-contact once all
  // bundles are delivered, so contact_down can lag), every creation/store/
  // transfer/delivery appears.
  EXPECT_EQ(count_kind(lines, "contact_up"), summary.contacts);
  EXPECT_LE(count_kind(lines, "contact_down"), summary.contacts);
  EXPECT_EQ(count_kind(lines, "created"), 3u);
  EXPECT_EQ(count_kind(lines, "transferred"), summary.bundle_transmissions);
  EXPECT_EQ(count_kind(lines, "delivered"),
            static_cast<std::size_t>(
                std::lround(summary.delivery_ratio * 3.0)));
}

TEST(JsonlSink, NullSinkAddsNothingAndDoesNotPerturbTheRun) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  const metrics::RunSummary traced = run_two_node(&sink);
  const metrics::RunSummary untraced = run_two_node(nullptr);

  EXPECT_GT(sink.records(), 0u);
  // Tracing is pure observation: every outcome is identical without it.
  EXPECT_EQ(traced.delivery_ratio, untraced.delivery_ratio);
  EXPECT_EQ(traced.completion_time, untraced.completion_time);
  EXPECT_EQ(traced.bundle_transmissions, untraced.bundle_transmissions);
  EXPECT_EQ(traced.contacts, untraced.contacts);
  EXPECT_EQ(traced.perf.events_processed, untraced.perf.events_processed);
  EXPECT_EQ(traced.perf.peak_queue_depth, untraced.perf.peak_queue_depth);
}

TEST(JsonlSink, GrowsPastTheStackBufferInsteadOfDropping) {
  std::ostringstream out;
  obs::JsonlSink sink(out);

  // A record past the 256-byte stack fast path is written whole via an
  // exact-size heap retry, not dropped: losing records silently poisoned
  // every downstream reconciliation.
  const std::string huge(400, 'x');
  obs::TraceEvent big;
  big.kind = obs::EventKind::kCreated;
  big.t = 1.0;
  big.protocol = huge;
  sink.emit(big);
  EXPECT_EQ(sink.records(), 1u);
  EXPECT_EQ(sink.truncated(), 0u);

  // The edge case that used to overflow in an appended optional field (the
  // prefix fits, the ,"a":1 append does not) now also writes whole.
  const std::string nearly(195, 'y');
  obs::TraceEvent edge;
  edge.kind = obs::EventKind::kTransferred;
  edge.t = 2.0;
  edge.protocol = nearly;
  edge.a = 1;
  edge.b = 2;
  edge.bundle = 3;
  sink.emit(edge);
  EXPECT_EQ(sink.records(), 2u);
  EXPECT_EQ(sink.truncated(), 0u);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_flat_json(line)) << line;
  }
  EXPECT_NE(lines[0].find(huge), std::string::npos);
  EXPECT_NE(lines[1].find("\"a\":1,\"b\":2,\"bundle\":3"), std::string::npos)
      << lines[1];
}

TEST(JsonlSink, DropsAndCountsRecordsBeyondTheHardCap) {
  std::ostringstream out;
  obs::JsonlSink sink(out);

  // Past kMaxRecordBytes the input is corrupt, not merely verbose; the sink
  // drops the record whole (a truncated JSON line would poison parsers),
  // counts it, and keeps working.
  const std::string absurd(obs::JsonlSink::kMaxRecordBytes, 'x');
  obs::TraceEvent corrupt;
  corrupt.kind = obs::EventKind::kCreated;
  corrupt.t = 1.0;
  corrupt.protocol = absurd;
  sink.emit(corrupt);
  EXPECT_EQ(sink.records(), 0u);
  EXPECT_EQ(sink.truncated(), 1u);
  EXPECT_TRUE(lines_of(out.str()).empty());

  obs::TraceEvent ok;
  ok.kind = obs::EventKind::kDelivered;
  ok.t = 3.0;
  ok.protocol = "pure_epidemic";
  ok.a = 0;
  ok.b = 1;
  ok.bundle = 7;
  sink.emit(ok);
  EXPECT_EQ(sink.records(), 1u);
  EXPECT_EQ(sink.truncated(), 1u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_flat_json(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"ev\":\"delivered\""), std::string::npos);
}

TEST(PerfCounters, PopulatedAndInternallyConsistent) {
  const metrics::RunSummary summary = run_two_node(nullptr);
  EXPECT_GT(summary.perf.events_processed, 0u);
  EXPECT_GT(summary.perf.peak_queue_depth, 0u);
  EXPECT_GE(summary.perf.wall_seconds, 0.0);
  EXPECT_EQ(summary.perf.transfers, summary.bundle_transmissions);
  EXPECT_EQ(summary.perf.contacts, summary.contacts);
  if (summary.perf.wall_seconds > 0.0) {
    EXPECT_GT(summary.perf.events_per_second(), 0.0);
  }
}

exp::SweepSpec small_sweep_spec(unsigned threads) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kFixedTtl;
  spec.loads = {5, 10};
  spec.replications = 3;
  spec.threads = threads;
  return spec;
}

TEST(PerfCounters, DeterministicFieldsIdenticalAcrossThreadCounts) {
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  const exp::SweepResult serial = run_sweep_on(small_sweep_spec(1), trace);
  const exp::SweepResult parallel = run_sweep_on(small_sweep_spec(3), trace);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t li = 0; li < serial.runs.size(); ++li) {
    ASSERT_EQ(serial.runs[li].size(), parallel.runs[li].size());
    for (std::size_t r = 0; r < serial.runs[li].size(); ++r) {
      const auto& a = serial.runs[li][r].perf;
      const auto& b = parallel.runs[li][r].perf;
      EXPECT_EQ(a.events_processed, b.events_processed);
      EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
      EXPECT_EQ(a.transfers, b.transfers);
      EXPECT_EQ(a.contacts, b.contacts);
    }
  }
}

TEST(JsonlSink, SweepTraceReconcilesWithAggregates) {
  // The acceptance check behind `bench_figure --fig 07 --trace-out=...`: per-event
  // record counts must reconcile with the run summaries' printed aggregates.
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  std::ostringstream out;
  obs::JsonlSink sink(out);
  exp::SweepSpec spec = small_sweep_spec(2);
  spec.trace_sink = &sink;
  const exp::SweepResult result = run_sweep_on(spec, trace);

  std::uint64_t transfers = 0;
  std::uint64_t contacts = 0;
  std::uint64_t delivered = 0;
  for (std::size_t li = 0; li < result.runs.size(); ++li) {
    for (const auto& run : result.runs[li]) {
      transfers += run.bundle_transmissions;
      contacts += run.contacts;
      delivered += static_cast<std::uint64_t>(
          std::lround(run.delivery_ratio * result.loads[li]));
    }
  }

  const auto lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), sink.records());
  EXPECT_EQ(count_kind(lines, "transferred"), transfers);
  EXPECT_EQ(count_kind(lines, "contact_up"), contacts);
  EXPECT_EQ(count_kind(lines, "delivered"), delivered);
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_flat_json(line)) << line;
  }
}

TEST(ChromeTrace, OneSpanPerReplicationAcrossPoolThreads) {
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  obs::ChromeTraceWriter chrome;
  exp::SweepSpec spec = small_sweep_spec(2);
  spec.chrome = &chrome;
  const exp::SweepResult result = run_sweep_on(spec, trace);

  EXPECT_EQ(chrome.span_count(),
            result.loads.size() * spec.replications);

  std::ostringstream out;
  chrome.write(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One complete ("ph":"X") event per replication, named by its task.
  std::size_t spans = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++spans;
  }
  EXPECT_EQ(spans, result.loads.size() * spec.replications);
  EXPECT_NE(json.find("fixed_ttl/load=5/rep=0"), std::string::npos);
  EXPECT_NE(json.find("fixed_ttl/load=10/rep=2"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpanNamesForJson) {
  obs::ChromeTraceWriter chrome;
  chrome.record_span("quote\"backslash\\newline\n", 0, 0.0, 1.0);
  chrome.record_span("control\x01" "char", 1, 1.0, 2.0);
  std::ostringstream out;
  chrome.write(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\"backslash\\\\newline\\n"), std::string::npos)
      << json;
  EXPECT_NE(json.find("control\\u0001char"), std::string::npos) << json;
  // No raw quote/control byte survives inside any name.
  EXPECT_EQ(json.find("quote\"backslash"), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(ChromeTrace, PreservesRecordingOrderAndNesting) {
  obs::ChromeTraceWriter chrome;
  // An outer span enclosing an inner one on the same tid: recorded inner
  // first (it closes first), as a real nested instrumentation would.
  chrome.record_span("inner", 0, 10.0, 20.0);
  chrome.record_span("outer", 0, 0.0, 30.0);
  chrome.record_span("later", 1, 40.0, 45.0);
  std::ostringstream out;
  chrome.write(out);
  const std::string json = out.str();
  const auto inner = json.find("\"name\":\"inner\"");
  const auto outer = json.find("\"name\":\"outer\"");
  const auto later = json.find("\"name\":\"later\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  // Events appear in recording order (Chrome nests by ts/dur, not order).
  EXPECT_LT(inner, outer);
  EXPECT_LT(outer, later);
  // The outer span's interval contains the inner's (ts and ts+dur).
  EXPECT_NE(json.find("\"ts\":10,\"dur\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":0,\"dur\":30"), std::string::npos) << json;
  // A span whose end precedes its begin clamps to zero duration.
  obs::ChromeTraceWriter clamped;
  clamped.record_span("backwards", 0, 5.0, 1.0);
  std::ostringstream out2;
  clamped.write(out2);
  EXPECT_NE(out2.str().find("\"ts\":5,\"dur\":0"), std::string::npos)
      << out2.str();
}

TEST(ChromeTrace, TimebaseIsMonotonicNonDecreasing) {
  obs::ChromeTraceWriter chrome;
  double last = chrome.now_us();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 1'000; ++i) {
    const double now = chrome.now_us();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(ProgressReporter, TicksCountAndRender) {
  std::ostringstream out;
  {
    obs::ProgressReporter progress("figXX", 4, out);
    for (int i = 0; i < 4; ++i) progress.tick(1'000);
    EXPECT_EQ(progress.completed(), 4u);
    EXPECT_EQ(progress.total_events(), 4'000u);
    progress.finish();
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("[figXX]"), std::string::npos);
  EXPECT_NE(text.find("4/4 runs"), std::string::npos);
  EXPECT_NE(text.find("ev/s"), std::string::npos);
}

TEST(ProgressReporter, FinalLineSplitsCachedFromSimulated) {
  std::ostringstream out;
  {
    obs::ProgressReporter progress("figYY", 5, out);
    progress.tick_cached();
    progress.tick_cached();
    progress.tick_cached();
    progress.tick(1'000);
    progress.tick(1'000);
    progress.finish();
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("5/5 runs (3 cached, 2 simulated)"), std::string::npos)
      << text;
}

TEST(ProgressReporter, EtaOnMostlyCachedResumeIsPacedBySimulatedRunsOnly) {
  std::ostringstream out;
  obs::ProgressReporter progress("resume", 20, out);
  // A resumed sweep replays a large cached prefix near-instantly...
  for (int i = 0; i < 9; ++i) progress.tick_cached();
  // Cached replays alone predict nothing.
  EXPECT_EQ(progress.eta_seconds(), 0.0);

  // ...then the first simulated run lands after measurable wall time.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  progress.tick(1'000);
  ASSERT_EQ(progress.completed(), 10u);
  ASSERT_EQ(progress.cached(), 9u);

  // 10 runs remain and 1 simulated run took ~all the elapsed time, so the
  // ETA must be ~10x elapsed. Were cached ticks counted as work, the
  // estimate would collapse to ~elapsed (10 "done" in the same time).
  const double eta = progress.eta_seconds();
  EXPECT_GT(eta, 0.0);
  const double elapsed_floor = 0.020;  // the sleep alone
  EXPECT_GE(eta, 10.0 * elapsed_floor * 0.5);  // generous timer slack
  progress.finish();
}

TEST(ProgressReporter, HumanizesRates) {
  EXPECT_EQ(obs::humanize_rate(312.0), "312");
  EXPECT_EQ(obs::humanize_rate(3'217.0), "3.2k");
  EXPECT_EQ(obs::humanize_rate(4'512'345.0), "4.5M");
}

}  // namespace
}  // namespace epi
