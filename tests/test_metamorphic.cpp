// Metamorphic properties: provable relations between runs of the same
// system under controlled input changes.
#include <gtest/gtest.h>

#include "analysis/reachability.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "test_util.hpp"

namespace epi {
namespace {

using test::make_trace;
using test::run_engine;
using test::small_config;

// Adding a contact can only create new time-respecting paths: every node's
// earliest arrival is non-increasing.
TEST(Metamorphic, OracleMonotoneUnderAddedContacts) {
  auto scenario = exp::trace_scenario();
  scenario.haggle.horizon = 80'000.0;
  const auto base = exp::build_contact_trace(scenario, 42);

  std::vector<mobility::Contact> augmented(base.contacts().begin(),
                                           base.contacts().end());
  augmented.push_back({0, 5, 40'000.0, 40'400.0});
  augmented.push_back({3, 7, 55'000.0, 55'250.0});
  const mobility::ContactTrace more{std::move(augmented)};

  for (NodeId source = 0; source < base.node_count(); ++source) {
    const auto before = analysis::earliest_arrivals(base, source, 0.0);
    const auto after = analysis::earliest_arrivals(more, source, 0.0);
    for (std::size_t v = 0; v < before.size(); ++v) {
      EXPECT_LE(after[v], before[v])
          << "added contacts delayed " << source << "->" << v;
    }
  }
}

// Scaling every contact's times by a constant scales the oracle arrivals.
TEST(Metamorphic, OracleScalesWithTime) {
  const auto trace =
      make_trace({{0, 1, 0.0, 200.0}, {1, 2, 1'000.0, 1'200.0}});
  std::vector<mobility::Contact> scaled;
  for (const auto& c : trace.contacts()) {
    scaled.push_back({c.a, c.b, 2.0 * c.start, 2.0 * c.end});
  }
  const mobility::ContactTrace doubled{std::move(scaled)};
  // Slots also double in count; earliest slot completion scales only if the
  // slot size scales — so compare with a doubled slot.
  const SimTime base_arrival = analysis::earliest_arrival(trace, 0, 2, 0.0,
                                                          100.0);
  const SimTime scaled_arrival =
      analysis::earliest_arrival(doubled, 0, 2, 0.0, 200.0);
  EXPECT_DOUBLE_EQ(scaled_arrival, 2.0 * base_arrival);
}

// A longer contact (more slots) never delivers fewer bundles under pure
// epidemic on a two-node topology.
TEST(Metamorphic, MoreSlotsNeverHurtDirectDelivery) {
  double previous = -1.0;
  for (const double duration : {150.0, 250.0, 350.0, 450.0, 550.0}) {
    auto config = small_config(5);
    const auto trace = make_trace({{0, 2, 0.0, duration}});
    const auto run = run_engine(config, trace);
    EXPECT_GE(run.delivery_ratio, previous);
    previous = run.delivery_ratio;
  }
}

// Raising the source's buffer capacity never reduces how many bundles pure
// epidemic injects on a fixed schedule.
TEST(Metamorphic, CapacityMonotoneInjection) {
  const auto trace = make_trace({{0, 2, 0.0, 2'000.0}});
  double previous = -1.0;
  for (const std::uint32_t capacity : {2u, 5u, 10u, 20u}) {
    auto config = small_config(20);
    config.buffer_capacity = capacity;
    const auto run = run_engine(config, trace);
    EXPECT_GE(run.delivery_ratio, previous);
    previous = run.delivery_ratio;
  }
}

// A longer fixed TTL never loses a *relay chain* that a shorter one kept:
// on a single-path topology delivery is monotone in the TTL.
TEST(Metamorphic, FixedTtlMonotoneOnSinglePath) {
  const auto trace = make_trace({{0, 1, 0.0, 150.0},
                                 {1, 2, 400.0, 550.0}});
  double previous = -1.0;
  for (const double ttl : {100.0, 300.0, 500.0, 1'000.0}) {
    auto config = small_config(1);
    config.protocol.kind = ProtocolKind::kFixedTtl;
    config.protocol.fixed_ttl = ttl;
    const auto run = run_engine(config, trace);
    EXPECT_GE(run.delivery_ratio, previous) << "ttl=" << ttl;
    previous = run.delivery_ratio;
  }
}

// Spray-and-wait with a larger quota never reaches fewer nodes on a fixed
// single-source schedule (the split tree only grows).
TEST(Metamorphic, SprayQuotaMonotoneCoverage) {
  std::vector<mobility::Contact> contacts;
  double t = 0.0;
  for (NodeId peer = 1; peer <= 6; ++peer) {
    contacts.push_back({0, peer, t, t + 150.0});
    t += 200.0;
  }
  contacts.push_back({6, 7, t + 1'000.0, t + 1'150.0});
  const mobility::ContactTrace trace{std::move(contacts)};
  double previous = -1.0;
  for (const std::uint32_t quota : {1u, 2u, 4u, 8u, 16u}) {
    SimulationConfig config;
    config.node_count = 8;
    config.load = 1;
    config.source = 0;
    config.destination = 7;
    config.horizon = 100'000.0;
    config.protocol.kind = ProtocolKind::kSprayAndWait;
    config.protocol.spray_copies = quota;
    const auto run = run_engine(config, trace);
    EXPECT_GE(run.duplication_rate, previous) << "quota=" << quota;
    previous = run.duplication_rate;
  }
}

}  // namespace
}  // namespace epi
