// Baseline protocols: direct delivery and binary spray-and-wait.
#include "routing/baselines.hpp"

#include "core/error.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;
using test::small_config;

std::unique_ptr<Engine> make_engine(const SimulationConfig& config,
                                    const mobility::ContactTrace& trace,
                                    std::uint64_t seed = 1) {
  return std::make_unique<Engine>(config, trace,
                                  make_protocol(config.protocol), seed);
}

// -------------------------------------------------------- direct delivery ----

TEST(DirectDelivery, NeverUsesRelays) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kDirectDelivery;
  const auto trace =
      make_trace({{0, 1, 0.0, 500.0}, {1, 2, 1'000.0, 1'500.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.bundle_transmissions, 0u);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
  EXPECT_TRUE(engine->node(1).buffer().empty());
}

TEST(DirectDelivery, DeliversOnDirectContact) {
  auto config = small_config(2);
  config.protocol.kind = ProtocolKind::kDirectDelivery;
  const auto trace = make_trace({{0, 2, 0.0, 250.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_EQ(run.bundle_transmissions, 2u);  // exactly one per bundle
}

TEST(DirectDelivery, MinimalTransmissionCount) {
  // The defining property: transmissions == deliveries, no replication.
  auto config = small_config(5, /*nodes=*/4);
  config.destination = 3;
  const auto trace = make_trace({{0, 1, 0.0, 1'000.0},
                                 {0, 3, 2'000.0, 2'600.0},
                                 {1, 3, 3'000.0, 3'600.0}});
  config.protocol.kind = ProtocolKind::kDirectDelivery;
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.bundle_transmissions,
            static_cast<std::uint64_t>(run.delivery_ratio * 5 + 0.5));
}

// --------------------------------------------------------- spray and wait ----

TEST(SprayAndWait, QuotaAssignedAtInjection) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kSprayAndWait;
  config.protocol.spray_copies = 8;
  const auto trace = make_trace({{1, 2, 0.0, 150.0}});  // no source contact
  auto engine = make_engine(config, trace);
  engine->run();
  ASSERT_NE(engine->node(0).buffer().find(1), nullptr);
  EXPECT_EQ(engine->node(0).buffer().find(1)->tokens, 8u);
}

TEST(SprayAndWait, BinarySplitOnHandover) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kSprayAndWait;
  config.protocol.spray_copies = 8;
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  engine->run();
  EXPECT_EQ(engine->node(0).buffer().find(1)->tokens, 4u);
  EXPECT_EQ(engine->node(1).buffer().find(1)->tokens, 4u);
}

TEST(SprayAndWait, WaitPhaseOnlyDeliversDirect) {
  auto config = small_config(1, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kSprayAndWait;
  config.protocol.spray_copies = 2;
  // After 0 -> 1 both copies have quota 1 (wait phase): 1 must NOT forward
  // to relay 2, but does deliver directly to 3.
  const auto trace = make_trace({{0, 1, 0.0, 150.0},
                                 {1, 2, 500.0, 650.0},
                                 {1, 3, 1'000.0, 1'150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_TRUE(engine->node(2).buffer().empty());  // spray stopped at quota 1
  EXPECT_EQ(run.bundle_transmissions, 2u);
}

TEST(SprayAndWait, TotalCopiesBoundedByQuota) {
  auto config = small_config(1, /*nodes=*/8);
  config.destination = 7;
  config.protocol.kind = ProtocolKind::kSprayAndWait;
  config.protocol.spray_copies = 4;
  // A dense clique schedule that pure epidemic would fully infect.
  std::vector<mobility::Contact> contacts;
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    for (NodeId a = 0; a < 7; ++a) {
      for (NodeId b = a + 1; b < 7; ++b) {  // destination excluded
        contacts.push_back({a, b, t, t + 150.0});
        t += 200.0;
      }
    }
  }
  const mobility::ContactTrace trace{std::move(contacts)};
  auto engine = make_engine(config, trace);
  engine->run();
  std::uint32_t copies = 0;
  for (NodeId n = 0; n < 8; ++n) {
    if (engine->node(n).buffer().contains(1)) ++copies;
  }
  EXPECT_LE(copies, 4u);
  EXPECT_GE(copies, 2u);  // it did spray
}

TEST(SprayAndWait, QuotaOneDegeneratesToDirectDelivery) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kSprayAndWait;
  config.protocol.spray_copies = 1;
  const auto trace =
      make_trace({{0, 1, 0.0, 500.0}, {1, 2, 1'000.0, 1'500.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.bundle_transmissions, 0u);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
}

TEST(SprayAndWait, FactoryRejectsZeroQuota) {
  ProtocolParams params;
  params.kind = ProtocolKind::kSprayAndWait;
  params.spray_copies = 0;
  EXPECT_THROW((void)make_protocol(params), epi::ConfigError);
}

TEST(Baselines, EpidemicDominatesDirectDeliveryDelay) {
  // Epidemic's raison d'etre: relays cut delay whenever a relay path beats
  // the direct meeting.
  auto config = small_config(1);
  const auto trace = make_trace(
      {{0, 1, 0.0, 150.0}, {1, 2, 500.0, 650.0}, {0, 2, 5'000.0, 5'150.0}});
  config.protocol.kind = ProtocolKind::kPureEpidemic;
  const auto epidemic = make_engine(config, trace)->run();
  config.protocol.kind = ProtocolKind::kDirectDelivery;
  const auto direct = make_engine(config, trace)->run();
  EXPECT_DOUBLE_EQ(epidemic.completion_time, 600.0);
  EXPECT_DOUBLE_EQ(direct.completion_time, 5'100.0);
}

}  // namespace
}  // namespace epi::routing
