// Reachability-oracle unit tests plus the strongest end-to-end check in the
// suite: with unbounded buffers and a single bundle, pure epidemic flooding
// must achieve the oracle's earliest arrival exactly (paper SI: "epidemic
// routing protocols are able to achieve minimum delivery delay").
#include "analysis/reachability.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::analysis {
namespace {

using test::make_trace;

TEST(Oracle, DirectContactArrivesAtFirstSlot) {
  const auto trace = make_trace({{0, 1, 0.0, 314.0}});
  EXPECT_DOUBLE_EQ(earliest_arrival(trace, 0, 1, 0.0), 100.0);
}

TEST(Oracle, ShortContactIsUseless) {
  const auto trace = make_trace({{0, 1, 0.0, 99.0}});
  EXPECT_EQ(earliest_arrival(trace, 0, 1, 0.0), kNoExpiry);
}

TEST(Oracle, TwoHopPath) {
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 1'000.0, 1'150.0}});
  EXPECT_DOUBLE_EQ(earliest_arrival(trace, 0, 2, 0.0), 1'100.0);
}

TEST(Oracle, TimeRespectingOnly) {
  // The relay meets the destination BEFORE it gets the bundle: useless.
  const auto trace =
      make_trace({{1, 2, 0.0, 150.0}, {0, 1, 1'000.0, 1'150.0}});
  EXPECT_EQ(earliest_arrival(trace, 0, 2, 0.0), kNoExpiry);
  // The reverse direction works.
  EXPECT_DOUBLE_EQ(earliest_arrival(trace, 2, 0, 0.0), 1'100.0);
}

TEST(Oracle, StartTimeFiltersEarlierContacts) {
  const auto trace = make_trace({{0, 1, 0.0, 500.0}});
  // Available only from t=450: the last usable slot is at 500.
  EXPECT_DOUBLE_EQ(earliest_arrival(trace, 0, 1, 450.0), 500.0);
  // Available from t=500: slot at 500 requires arrival strictly before it.
  EXPECT_EQ(earliest_arrival(trace, 0, 1, 500.0), kNoExpiry);
}

TEST(Oracle, LaterSlotOfSameContactUsable) {
  // Bundle appears mid-contact: it can still ride a later slot.
  const auto trace = make_trace({{0, 1, 0.0, 350.0}});
  EXPECT_DOUBLE_EQ(earliest_arrival(trace, 0, 1, 150.0), 200.0);
}

TEST(Oracle, SourceArrivalIsStart) {
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  const auto arrival = earliest_arrivals(trace, 0, 25.0);
  EXPECT_DOUBLE_EQ(arrival[0], 25.0);
}

TEST(Oracle, RejectsNonPositiveSlot) {
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  EXPECT_THROW((void)earliest_arrival(trace, 0, 1, 0.0, 0.0), ConfigError);
}

TEST(Oracle, ReachablePairFraction) {
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {0, 2, 1'000.0, 1'150.0}});
  // Reachable: 0->1, 1->0 (slot at 100), 0->2, 2->0 (slot at 1100) and
  // 1->2 (via 0). Unreachable: 2->1 -- node 2's only contact comes after
  // node 1's last one. 5 of 6 ordered pairs.
  EXPECT_DOUBLE_EQ(reachable_pair_fraction(trace), 5.0 / 6.0);
}

TEST(Oracle, MeanOracleDelay) {
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 1'000.0, 1'150.0}});
  // From 0: node 1 at 100, node 2 at 1100 -> mean 600.
  EXPECT_DOUBLE_EQ(mean_oracle_delay(trace, 0, 0.0), 600.0);
}

// ---- the flooding-optimality cross-check -----------------------------------

struct OracleCase {
  const char* scenario;
  std::uint64_t seed;
};

class FloodingMatchesOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(FloodingMatchesOracle, SingleBundleUnboundedBuffers) {
  const auto& param = GetParam();
  exp::ScenarioSpec spec;
  if (std::string_view(param.scenario) == "trace") {
    spec = exp::trace_scenario();
    spec.haggle.horizon = 150'000.0;
  } else {
    spec = exp::rwp_scenario();
    spec.rwp.horizon = 150'000.0;
  }
  const auto trace = exp::build_contact_trace(spec, param.seed);

  SimulationConfig config;
  config.node_count = std::max(trace.node_count(), 2u);
  config.buffer_capacity = 100'000;  // effectively unbounded
  config.load = 1;
  config.horizon = trace.end_time() + 1.0;
  config.protocol.kind = ProtocolKind::kPureEpidemic;

  for (NodeId source = 0; source < config.node_count; ++source) {
    const auto arrival = earliest_arrivals(trace, source, 0.0);
    for (NodeId dest = 0; dest < config.node_count; ++dest) {
      if (dest == source) continue;
      config.source = source;
      config.destination = dest;
      routing::Engine engine(config, trace,
                             routing::make_protocol(config.protocol), 1);
      const auto run = engine.run();
      if (arrival[dest] == kNoExpiry) {
        EXPECT_FALSE(run.complete)
            << "unreachable pair delivered: " << source << "->" << dest;
      } else {
        ASSERT_TRUE(run.complete)
            << "reachable pair failed: " << source << "->" << dest;
        EXPECT_DOUBLE_EQ(run.completion_time, arrival[dest])
            << "flooding missed the oracle optimum for " << source << "->"
            << dest;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, FloodingMatchesOracle,
    ::testing::Values(OracleCase{"trace", 1}, OracleCase{"trace", 42},
                      OracleCase{"rwp", 7}, OracleCase{"rwp", 42}),
    [](const ::testing::TestParamInfo<OracleCase>& param_info) {
      return std::string(param_info.param.scenario) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace epi::analysis
