// Golden determinism pins: see tests/golden_cases.hpp for the table and
// the pinning policy. This suite replays each case fresh and checks every
// RunSummary field bit-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "golden_cases.hpp"
#include "metrics/summary.hpp"

namespace epi {
namespace {

class GoldenRun : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRun, SummaryIsBitIdentical) {
  const GoldenCase& c = GetParam();
  const bool is_rwp = std::string_view(c.scenario) == "rwp";
  const auto spec_template = is_rwp ? exp::rwp_scenario() : exp::trace_scenario();
  const auto trace = exp::build_contact_trace(spec_template, 42);

  exp::RunSpec spec;
  spec.protocol.kind = protocol_from_string(c.protocol);
  spec.load = c.load;
  spec.replication = c.replication;
  spec.horizon = spec_template.horizon();
  spec.session_gap = spec_template.session_gap;
  const auto s = exp::run_single(spec, trace);

  EXPECT_DOUBLE_EQ(s.delivery_ratio, c.delivery_ratio);
  EXPECT_EQ(s.complete, c.complete);
  EXPECT_DOUBLE_EQ(s.completion_time, c.completion_time);
  EXPECT_DOUBLE_EQ(s.mean_bundle_delay, c.mean_bundle_delay);
  EXPECT_DOUBLE_EQ(s.buffer_occupancy, c.buffer_occupancy);
  EXPECT_DOUBLE_EQ(s.duplication_rate, c.duplication_rate);
  EXPECT_EQ(s.bundle_transmissions, c.bundle_transmissions);
  EXPECT_EQ(s.control_records, c.control_records);
  EXPECT_EQ(s.contacts, c.contacts);
  EXPECT_EQ(s.drops_expired, c.drops_expired);
  EXPECT_EQ(s.drops_evicted, c.drops_evicted);
  EXPECT_EQ(s.drops_immunized, c.drops_immunized);
  EXPECT_DOUBLE_EQ(s.end_time, c.end_time);
  EXPECT_EQ(s.perf.transfers, c.transfers);
}

// Codec-seam differential: an explicitly-requested ExactCodec must be
// bit-identical to the default path on every golden case — the codec
// extraction may not perturb a single run, and exact-mode filter knobs
// (inert by definition) may not leak into results or store keys.
TEST_P(GoldenRun, ExplicitExactCodecIsBitIdenticalToDefault) {
  const GoldenCase& c = GetParam();
  const bool is_rwp = std::string_view(c.scenario) == "rwp";
  const auto scenario = is_rwp ? exp::rwp_scenario() : exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);

  exp::RunSpec spec;
  spec.protocol.kind = protocol_from_string(c.protocol);
  spec.load = c.load;
  spec.replication = c.replication;
  spec.horizon = scenario.horizon();
  spec.session_gap = scenario.session_gap;

  exp::RunSpec exact = spec;
  exact.options.summary.mode = SummaryMode::kExact;
  exact.options.summary.filter_bits = 16;  // inert under the exact codec
  exact.options.summary.hashes = 4;

  const auto a = exp::run_single(spec, trace);
  const auto b = exp::run_single(exact, trace);
  EXPECT_TRUE(metrics::deterministic_equal(a, b));
  // Exact advertisements cost 4 bytes per summary-vector entry and happen
  // once per contact — the byte counter must reconcile with both.
  EXPECT_EQ(a.perf.summary_exchanges, a.contacts);
  EXPECT_EQ(a.perf.summary_ad_bytes % 4, 0u);
  EXPECT_EQ(a.perf.transfers_suppressed_fp, 0u);
  // The store-key summary fragment joins only for compact modes, so both
  // specs (and the implicit default) share one cache identity.
  EXPECT_EQ(exp::store_key(scenario, spec), exp::store_key(scenario, exact));
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, GoldenRun, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.scenario) + "_" + info.param.protocol +
             "_" + std::to_string(info.param.load) + "_r" +
             std::to_string(info.param.replication);
    });

}  // namespace
}  // namespace epi
