// Multi-writer store behavior: shard layout, cross-process visibility via
// refresh(), the work-unit claim protocol (exactly-once execution under
// contention, dead-owner reclaim), compact's refusal conditions, merge
// semantics, and the fleet progress snapshot format.
//
// "Processes" here are mostly threads each holding their OWN RunStore
// instance on one directory — that exercises the same file-level protocol
// (separate open file descriptions, separate flocks, separate segment
// files) without fork() inside gtest; the true multi-process path is
// covered end-to-end by scripts/store_fleet_smoke.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/progress.hpp"
#include "store/claim.hpp"
#include "store/fingerprint.hpp"
#include "store/run_store.hpp"

namespace epi {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("epi_fleet_" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> segment_files(const fs::path& dir) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string n = entry.path().filename().string();
    if (n.starts_with("seg-") && n.ends_with(".jsonl")) {
      segments.push_back(entry.path());
    }
  }
  return segments;
}

metrics::RunSummary summary_with(double delivery_ratio) {
  metrics::RunSummary s;
  s.load = 25;
  s.seed = 7;
  s.delivery_ratio = delivery_ratio;
  s.mean_bundle_delay = 123.456;
  s.perf.wall_seconds = 0.5;
  return s;
}

// --- shard layout -------------------------------------------------------------

TEST(ShardedStore, DistributesRecordsAcrossShardSegments) {
  const fs::path dir = fresh_dir("distribute");
  {
    store::RunStore store(dir, store::StoreOptions{8});
    for (int i = 0; i < 64; ++i) {
      store.put("key-" + std::to_string(i), summary_with(0.5));
    }
    EXPECT_EQ(store.stats().shards, 8u);
  }
  // 64 FNV-fingerprinted keys over 8 shards: all shards essentially
  // certainly see at least one record, and no shard sees all of them.
  const auto segments = segment_files(dir);
  EXPECT_GT(segments.size(), 1u);
  EXPECT_LE(segments.size(), 8u);

  store::RunStore reopened(dir);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(reopened.find("key-" + std::to_string(i)).has_value()) << i;
  }
}

TEST(ShardedStore, ShardCountIsAWritePreferenceNotAFormat) {
  const fs::path dir = fresh_dir("recount");
  {
    store::RunStore store(dir, store::StoreOptions{8});
    for (int i = 0; i < 16; ++i) {
      store.put("eight-" + std::to_string(i), summary_with(0.25));
    }
  }
  // Reopening with a different shard count reads everything — readers
  // union all segments regardless of who sharded them how.
  store::RunStore store(dir, store::StoreOptions{3});
  EXPECT_EQ(store.stats().records, 16u);
  for (int i = 0; i < 16; ++i) {
    store.put("three-" + std::to_string(i), summary_with(0.75));
  }
  store::RunStore reopened(dir, store::StoreOptions{1});
  EXPECT_EQ(reopened.stats().records, 32u);
}

// --- cross-instance visibility ------------------------------------------------

TEST(ShardedStore, RefreshSeesPeerAppends) {
  const fs::path dir = fresh_dir("peer");
  store::RunStore a(dir);
  store::RunStore b(dir);
  b.put("from-b", summary_with(0.125));
  // a's in-memory index predates the append...
  EXPECT_FALSE(a.find("from-b").has_value());
  // ...and refresh() folds the peer's segment in, bit-identically.
  a.refresh();
  const auto loaded = a.find("from-b");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->delivery_ratio, 0.125);
}

TEST(ShardedStore, RefreshLeavesTornTailPendingThenConsumesCompletion) {
  // Get one canonical encoded record line by writing a single-shard store.
  const fs::path donor_dir = fresh_dir("torn_donor");
  {
    store::RunStore donor(donor_dir, store::StoreOptions{1});
    donor.put("torn-key", summary_with(0.625));
  }
  const auto donor_segments = segment_files(donor_dir);
  ASSERT_EQ(donor_segments.size(), 1u);
  std::string line;
  {
    std::ifstream in(donor_segments[0]);
    ASSERT_TRUE(std::getline(in, line));
  }
  line.push_back('\n');
  const std::size_t half = line.size() / 2;

  // Replay it into a foreign segment of a watched store, half at a time —
  // exactly what a reader sees racing a live writer mid-append.
  const fs::path dir = fresh_dir("torn_live");
  store::RunStore watcher(dir);
  const fs::path foreign = dir / "seg-000-99999-1.jsonl";
  {
    std::ofstream out(foreign, std::ios::binary);
    out << line.substr(0, half);
  }
  watcher.refresh();
  EXPECT_FALSE(watcher.find("torn-key").has_value());
  EXPECT_EQ(watcher.stats().corrupt_lines, 0u);
  {
    std::ofstream out(foreign, std::ios::binary | std::ios::app);
    out << line.substr(half);
  }
  watcher.refresh();
  EXPECT_TRUE(watcher.find("torn-key").has_value());
}

// --- claims -------------------------------------------------------------------

TEST(Claims, SecondClaimantLosesUntilRelease) {
  const fs::path dir = fresh_dir("contend");
  store::RunStore a(dir);
  store::RunStore b(dir);
  std::optional<store::Claim> held = a.try_claim("unit-1");
  ASSERT_TRUE(held.has_value());
  EXPECT_TRUE(held->held());
  // The peer cannot take it while the lock lives...
  EXPECT_FALSE(b.try_claim("unit-1").has_value());
  // ...a different unit is free...
  EXPECT_TRUE(b.try_claim("unit-2").has_value());
  // ...and release hands unit-1 over.
  held->release();
  EXPECT_FALSE(held->held());
  EXPECT_TRUE(b.try_claim("unit-1").has_value());
}

TEST(Claims, DeadOwnersFileIsReclaimable) {
  const fs::path dir = fresh_dir("reclaim");
  store::RunStore store(dir);
  // A claim file with no flock on it is exactly what a SIGKILLed owner
  // leaves behind (the kernel released the lock with the process).
  fs::create_directories(dir / "claims");
  {
    std::ofstream out(dir / "claims" /
                      (store::fingerprint_hex("unit-dead") + ".claim"));
    out << "pid=99999\nkey=unit-dead\n";
  }
  const auto census = store.claim_stats();
  EXPECT_EQ(census.total, 1u);
  EXPECT_EQ(census.held, 0u);
  EXPECT_EQ(census.reclaimable, 1u);
  EXPECT_TRUE(store.try_claim("unit-dead").has_value());
}

TEST(Claims, ExactlyOnceUnderThreadContention) {
  const fs::path dir = fresh_dir("exactly_once");
  constexpr int kWorkers = 4;
  constexpr int kUnits = 32;
  std::atomic<int> executed[kUnits] = {};
  // Claims go into one shared pen so none releases until every worker has
  // finished claiming — a released claim is reclaimable BY DESIGN (that is
  // how dead workers' units get adopted), so exactly-once across release
  // additionally needs the publish-then-recheck step the sweep performs
  // (covered by FleetSweep.ConcurrentClaimedSweepsExecuteEachRunExactlyOnce).
  std::mutex pen_mutex;
  std::vector<store::Claim> pen;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      // Each worker is its own "process": own store instance, own fds.
      store::RunStore store(dir);
      for (int u = 0; u < kUnits; ++u) {
        auto claim = store.try_claim("unit-" + std::to_string(u));
        if (claim.has_value()) {
          executed[u].fetch_add(1);
          std::lock_guard lock(pen_mutex);
          pen.push_back(std::move(*claim));
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int u = 0; u < kUnits; ++u) {
    EXPECT_EQ(executed[u].load(), 1) << "unit " << u;
  }
  EXPECT_EQ(pen.size(), static_cast<std::size_t>(kUnits));
}

// --- claimed sweeps -----------------------------------------------------------

exp::SweepSpec claimed_sweep_spec(store::RunStore* store) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kFixedTtl;
  spec.loads = {5, 10, 15};
  spec.replications = 2;
  spec.threads = 2;
  spec.store = store;
  spec.claim_units = true;
  return spec;
}

void expect_sweeps_deterministic_equal(const exp::SweepResult& a,
                                       const exp::SweepResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t li = 0; li < a.runs.size(); ++li) {
    ASSERT_EQ(a.runs[li].size(), b.runs[li].size());
    for (std::size_t r = 0; r < a.runs[li].size(); ++r) {
      EXPECT_TRUE(metrics::deterministic_equal(a.runs[li][r], b.runs[li][r]))
          << "load index " << li << ", replication " << r;
    }
  }
}

TEST(FleetSweep, ConcurrentClaimedSweepsExecuteEachRunExactlyOnce) {
  const fs::path dir = fresh_dir("claimed_pair");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  exp::SweepSpec reference_spec = claimed_sweep_spec(nullptr);
  reference_spec.claim_units = false;
  const exp::SweepResult reference = run_sweep_on(reference_spec, trace);

  // Two concurrent invocations of the same sweep over one store. The claim
  // protocol — not timing luck — guarantees each of the 6 runs simulates
  // in exactly one of them; the other serves it from the store after the
  // owner's append lands.
  exp::SweepResult result_a, result_b;
  std::size_t appended_a = 0, appended_b = 0;
  std::thread worker_a([&] {
    store::RunStore store(dir);
    result_a = run_sweep_on(claimed_sweep_spec(&store), trace);
    appended_a = store.stats().appended;
  });
  std::thread worker_b([&] {
    store::RunStore store(dir);
    result_b = run_sweep_on(claimed_sweep_spec(&store), trace);
    appended_b = store.stats().appended;
  });
  worker_a.join();
  worker_b.join();

  EXPECT_EQ(appended_a + appended_b, 6u)
      << "every run must be simulated exactly once across the pair";
  expect_sweeps_deterministic_equal(reference, result_a);
  expect_sweeps_deterministic_equal(reference, result_b);

  store::RunStore reopened(dir);
  EXPECT_EQ(reopened.stats().records, 6u);
  EXPECT_EQ(reopened.claim_stats().held, 0u);
}

TEST(FleetSweep, WarmSweepNeverBuildsTheTrace) {
  const fs::path dir = fresh_dir("warm_lazy");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  {
    store::RunStore store(dir);
    exp::SweepSpec spec = claimed_sweep_spec(&store);
    spec.claim_units = false;
    (void)run_sweep_on(spec, trace);
  }
  // Fully warm: the provider must never fire. This is the property that
  // makes resumed fleets fast — no mobility trace is built for figures
  // that are already entirely cached.
  store::RunStore store(dir);
  exp::SweepSpec spec = claimed_sweep_spec(&store);
  const exp::TraceProvider provider = [&]() -> const mobility::ContactTrace& {
    ADD_FAILURE() << "trace built for a fully-cached sweep";
    return trace;
  };
  const exp::SweepResult cached = run_sweep_on(spec, provider);
  EXPECT_EQ(store.stats().hits, 6u);
  EXPECT_EQ(store.stats().appended, 0u);
  (void)cached;
}

// --- compact refusal ----------------------------------------------------------

TEST(Compact, RefusesWhileAClaimIsHeld) {
  const fs::path dir = fresh_dir("compact_claimed");
  store::RunStore store(dir);
  store.put("key", summary_with(0.5));
  auto claim = store.try_claim("unit-busy");
  ASSERT_TRUE(claim.has_value());
  // A held claim means a worker is mid-unit somewhere; rewriting segments
  // under it could orphan the append it is about to make.
  EXPECT_THROW(store.compact(), StoreError);
  claim->release();
  EXPECT_NO_THROW(store.compact());
  EXPECT_TRUE(store.find("key").has_value());
}

TEST(Compact, RefusesWhileAnotherInstanceHasTheStoreOpen) {
  const fs::path dir = fresh_dir("compact_open");
  store::RunStore store(dir);
  store.put("key", summary_with(0.5));
  {
    store::RunStore peer(dir);  // holds its own shared lock on store.lock
    EXPECT_THROW(store.compact(), StoreError);
  }
  EXPECT_NO_THROW(store.compact());
  store::RunStore reopened(dir);
  EXPECT_TRUE(reopened.find("key").has_value());
}

// --- merge --------------------------------------------------------------------

std::string store_bytes(const fs::path& dir) {
  std::string all;
  auto segments = segment_files(dir);
  std::sort(segments.begin(), segments.end());
  for (const auto& path : segments) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream chunk;
    chunk << in.rdbuf();
    all += path.filename().string();
    all += '\0';
    all += chunk.str();
  }
  return all;
}

TEST(Merge, UnionsAndIsIdempotent) {
  const fs::path dest_dir = fresh_dir("merge_dest");
  const fs::path src_dir = fresh_dir("merge_src");
  {
    store::RunStore dest(dest_dir);
    dest.put("shared", summary_with(0.5));
  }
  {
    store::RunStore src(src_dir);
    metrics::RunSummary shared = summary_with(0.5);
    shared.perf.wall_seconds = 99.0;  // machines time differently: no conflict
    src.put("shared", shared);
    src.put("only-src", summary_with(0.25));
  }
  store::RunStore dest(dest_dir);
  const store::MergeReport first = store::merge_into(dest, src_dir);
  EXPECT_EQ(first.scanned, 2u);
  EXPECT_EQ(first.added, 1u);
  EXPECT_EQ(first.identical, 1u);
  EXPECT_TRUE(dest.find("only-src").has_value());

  // Merging again changes nothing — not the counts, not a single byte.
  const std::string before = store_bytes(dest_dir);
  const store::MergeReport second = store::merge_into(dest, src_dir);
  EXPECT_EQ(second.added, 0u);
  EXPECT_EQ(second.identical, 2u);
  EXPECT_EQ(store_bytes(dest_dir), before);
}

TEST(Merge, ConflictingRecordsHardError) {
  const fs::path dest_dir = fresh_dir("conflict_dest");
  const fs::path src_dir = fresh_dir("conflict_src");
  {
    store::RunStore dest(dest_dir);
    dest.put("key", summary_with(0.5));
  }
  {
    store::RunStore src(src_dir);
    src.put("key", summary_with(0.75));  // deterministic field disagrees
  }
  store::RunStore dest(dest_dir);
  // Two stores disagreeing on one key's result means one is wrong; merge
  // must refuse rather than pick a side.
  EXPECT_THROW((void)store::merge_into(dest, src_dir), StoreError);
}

// --- progress snapshots -------------------------------------------------------

TEST(ProgressSnapshot, EncodeParseRoundTrip) {
  obs::ProgressSnapshot snap;
  snap.label = "fig07";
  snap.completed = 42;
  snap.cached = 10;
  snap.total = 110;
  snap.events = 123456789;
  snap.elapsed_seconds = 3.25;
  snap.final = true;
  obs::ProgressSnapshot parsed;
  ASSERT_TRUE(obs::parse_progress_line(obs::encode_progress_line(snap),
                                       parsed));
  EXPECT_EQ(parsed.label, "fig07");
  EXPECT_EQ(parsed.completed, 42u);
  EXPECT_EQ(parsed.cached, 10u);
  EXPECT_EQ(parsed.total, 110u);
  EXPECT_EQ(parsed.events, 123456789u);
  EXPECT_EQ(parsed.elapsed_seconds, 3.25);
  EXPECT_TRUE(parsed.final);
}

TEST(ProgressSnapshot, TornLineParsesFalse) {
  obs::ProgressSnapshot snap;
  snap.label = "figXX";
  const std::string line = obs::encode_progress_line(snap);
  obs::ProgressSnapshot out;
  EXPECT_FALSE(obs::parse_progress_line(line.substr(0, line.size() / 2), out));
  EXPECT_FALSE(obs::parse_progress_line("", out));
  EXPECT_FALSE(obs::parse_progress_line("not json\n", out));
}

TEST(ProgressSnapshot, MirrorFileEndsWithFinalLine) {
  const fs::path dir = fresh_dir("mirror");
  fs::create_directories(dir);
  const fs::path path = dir / "progress.jsonl";
  {
    obs::ProgressReporter reporter("figXX", 2, obs::null_stream());
    reporter.mirror_to(path);
    reporter.tick_cached();
    reporter.tick(1'000);
    reporter.finish();
  }
  std::ifstream in(path);
  std::string line;
  obs::ProgressSnapshot last;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    obs::ProgressSnapshot snap;
    ASSERT_TRUE(obs::parse_progress_line(line + "\n", snap)) << line;
    last = snap;
    ++parsed;
  }
  ASSERT_GT(parsed, 0u);
  EXPECT_TRUE(last.final);
  EXPECT_EQ(last.completed, 2u);
  EXPECT_EQ(last.cached, 1u);
  EXPECT_EQ(last.total, 2u);
}

}  // namespace
}  // namespace epi
