#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace epi::exp {
namespace {

TEST(PickEndpoints, DeterministicAndDistinct) {
  for (std::uint32_t rep = 0; rep < 50; ++rep) {
    const FlowEndpoints a = pick_endpoints(42, 10, rep, 12);
    const FlowEndpoints b = pick_endpoints(42, 10, rep, 12);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.destination, b.destination);
    EXPECT_NE(a.source, a.destination);
    EXPECT_LT(a.source, 12u);
    EXPECT_LT(a.destination, 12u);
  }
}

TEST(PickEndpoints, ChangesAcrossReplications) {
  // "We also change the source and destination node after each run."
  int distinct = 0;
  const FlowEndpoints first = pick_endpoints(42, 10, 0, 12);
  for (std::uint32_t rep = 1; rep < 10; ++rep) {
    const FlowEndpoints e = pick_endpoints(42, 10, rep, 12);
    if (e.source != first.source || e.destination != first.destination) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 5);
}

TEST(PickEndpoints, IndependentOfProtocol) {
  // The derivation takes no protocol input at all — paired comparison is
  // structural. (Compile-time check by signature; verify load/seed matter.)
  EXPECT_NE(pick_endpoints(42, 10, 0, 12).source * 100u +
                pick_endpoints(42, 10, 0, 12).destination,
            pick_endpoints(43, 10, 0, 12).source * 100u +
                pick_endpoints(43, 10, 0, 12).destination);
}

TEST(PickEndpoints, TwoNodeNetworkWorks) {
  for (std::uint32_t rep = 0; rep < 20; ++rep) {
    const FlowEndpoints e = pick_endpoints(1, 5, rep, 2);
    EXPECT_NE(e.source, e.destination);
    EXPECT_LT(e.source, 2u);
    EXPECT_LT(e.destination, 2u);
  }
}

TEST(PaperLoads, FiveToFiftyByFive) {
  const auto loads = paper_loads();
  ASSERT_EQ(loads.size(), 10u);
  EXPECT_EQ(loads.front(), 5u);
  EXPECT_EQ(loads.back(), 50u);
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_EQ(loads[i] - loads[i - 1], 5u);
  }
}

TEST(Scenario, CannedSpecsMatchPaper) {
  const ScenarioSpec trace = trace_scenario();
  EXPECT_EQ(trace.node_count(), 12u);
  EXPECT_DOUBLE_EQ(trace.horizon(), defaults::kTraceHorizon);

  const ScenarioSpec rwp = rwp_scenario();
  EXPECT_EQ(rwp.node_count(), 12u);
  EXPECT_DOUBLE_EQ(rwp.horizon(), defaults::kRwpHorizon);

  const ScenarioSpec iv = interval_scenario(2000.0);
  EXPECT_EQ(iv.node_count(), 20u);
  EXPECT_EQ(iv.name, "interval2000");
}

TEST(Scenario, BuildIsDeterministic) {
  const ScenarioSpec spec = rwp_scenario();
  const auto a = build_contact_trace(spec, 7);
  const auto b = build_contact_trace(spec, 7);
  EXPECT_EQ(a.size(), b.size());
}

class SweepThreadCounts : public ::testing::TestWithParam<unsigned> {};

TEST_P(SweepThreadCounts, ResultsBitIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.scenario = trace_scenario();
  spec.scenario.haggle.horizon = 80'000.0;  // keep the test quick
  spec.protocol.kind = ProtocolKind::kCumulativeImmunity;
  spec.loads = {5, 15};
  spec.replications = 4;
  spec.threads = GetParam();
  const SweepResult result = run_sweep(spec);

  SweepSpec reference = spec;
  reference.threads = 1;
  const SweepResult expected = run_sweep(reference);

  ASSERT_EQ(result.points.size(), expected.points.size());
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.points[i].delivery_ratio.mean,
                     expected.points[i].delivery_ratio.mean);
    EXPECT_DOUBLE_EQ(result.points[i].delay.mean, expected.points[i].delay.mean);
    EXPECT_DOUBLE_EQ(result.points[i].buffer_occupancy.mean,
                     expected.points[i].buffer_occupancy.mean);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SweepThreadCounts,
                         ::testing::Values(2u, 4u, 8u));

TEST(Sweep, DefaultsToPaperLoads) {
  SweepSpec spec;
  spec.scenario = trace_scenario();
  spec.scenario.haggle.horizon = 30'000.0;
  spec.protocol.kind = ProtocolKind::kPureEpidemic;
  spec.replications = 1;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.loads, paper_loads());
  EXPECT_EQ(result.points.size(), 10u);
  EXPECT_EQ(result.runs.size(), 10u);
  EXPECT_EQ(result.runs.front().size(), 1u);
}

TEST(Sweep, MultiProtocolSharesTrace) {
  const ScenarioSpec scenario = [&] {
    ScenarioSpec s = trace_scenario();
    s.haggle.horizon = 50'000.0;
    return s;
  }();
  const std::vector<ProtocolParams> protocols = [&] {
    ProtocolParams imm;
    imm.kind = ProtocolKind::kImmunity;
    ProtocolParams cum;
    cum.kind = ProtocolKind::kCumulativeImmunity;
    return std::vector<ProtocolParams>{imm, cum};
  }();
  const auto results = run_sweeps(scenario, protocols, 42, 2);
  ASSERT_EQ(results.size(), 2u);
  // Same flows, same contacts: both protocols see identical contact counts
  // at every (load, replication).
  for (std::size_t li = 0; li < results[0].runs.size(); ++li) {
    for (std::size_t rep = 0; rep < results[0].runs[li].size(); ++rep) {
      EXPECT_EQ(results[0].runs[li][rep].load, results[1].runs[li][rep].load);
    }
  }
}

}  // namespace
}  // namespace epi::exp
