// Multi-flow engine support: several unicast flows share the network, which
// is how one-to-all dissemination (the paper's advertisement/event use case)
// is expressed.
#include <gtest/gtest.h>

#include <memory>

#include "core/error.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;

std::unique_ptr<Engine> make_engine(const SimulationConfig& config,
                                    const mobility::ContactTrace& trace,
                                    std::uint64_t seed = 1) {
  return std::make_unique<Engine>(config, trace,
                                  make_protocol(config.protocol), seed);
}

SimulationConfig flows_config(std::vector<FlowSpec> flows,
                              std::uint32_t nodes) {
  SimulationConfig config;
  config.node_count = nodes;
  config.flows = std::move(flows);
  config.horizon = 100'000.0;
  return config;
}

TEST(MultiFlow, ConfigValidation) {
  auto config = flows_config({{0, 1, 5}, {1, 2, 5}}, 3);
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.total_load(), 10u);
  ASSERT_EQ(config.resolved_flows().size(), 2u);

  config.flows[1].load = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.flows[1].load = 5;
  config.flows[1].destination = 1;  // == source
  EXPECT_THROW(config.validate(), ConfigError);
  config.flows[1].destination = 9;  // out of range
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(MultiFlow, EmptyFlowsFallBackToLegacyFields) {
  SimulationConfig config;
  config.load = 7;
  config.source = 2;
  config.destination = 5;
  const auto flows = config.resolved_flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].source, 2u);
  EXPECT_EQ(flows[0].destination, 5u);
  EXPECT_EQ(flows[0].load, 7u);
  EXPECT_EQ(config.total_load(), 7u);
}

TEST(MultiFlow, CumulativeImmunityRejectsMultipleFlows) {
  auto config = flows_config({{0, 1, 5}, {1, 2, 5}}, 3);
  config.protocol.kind = ProtocolKind::kCumulativeImmunity;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(MultiFlow, OppositeFlowsBothDeliver) {
  // 0 -> 2 and 2 -> 0 across one long contact each way.
  auto config = flows_config({{0, 2, 2}, {2, 0, 2}}, 3);
  const auto trace = make_trace({{0, 2, 0.0, 450.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_TRUE(run.complete);
  // Slot alternation serves both directions of the single contact.
  EXPECT_EQ(run.bundle_transmissions, 4u);
}

TEST(MultiFlow, SharedRelayCarriesBothFlows) {
  // Flows 0->3 and 2->3 share relay 1.
  auto config = flows_config({{0, 3, 1}, {2, 3, 1}}, 4);
  // Two slots in the middle contact so both directions exchange: the relay
  // hands flow-1's bundle to node 2 AND picks up flow-2's bundle.
  const auto trace = make_trace({{0, 1, 0.0, 150.0},
                                 {1, 2, 500.0, 750.0},
                                 {1, 3, 1'000.0, 1'250.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
}

TEST(MultiFlow, DistinctDestinationsTracked) {
  // The same relay delivers to two different destinations; each node's
  // delivered set is its own.
  auto config = flows_config({{0, 1, 1}, {0, 2, 1}}, 3);
  const auto trace =
      make_trace({{0, 1, 0.0, 250.0}, {0, 2, 500.0, 750.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_TRUE(engine->node(1).has_delivered(1));
  EXPECT_FALSE(engine->node(1).has_delivered(2));
  EXPECT_TRUE(engine->node(2).has_delivered(2));
}

TEST(MultiFlow, ImmunityRecordsDoNotCrossFlows) {
  // Bundle 1 (flow 0->2) delivered; its anti-packet must not purge bundle 2
  // (flow 0->1), which has a different id.
  auto config = flows_config({{0, 2, 1}, {0, 1, 1}}, 3);
  config.protocol.kind = ProtocolKind::kImmunity;
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  engine->run();
  EXPECT_TRUE(engine->node(0).ilist().immune(1));
  EXPECT_FALSE(engine->node(0).ilist().immune(2));
  EXPECT_TRUE(engine->node(0).buffer().contains(2));
}

TEST(MultiFlow, BufferContentionBetweenFlows) {
  // Two flows from the same source with a tiny buffer: total injection is
  // buffer-limited but both flows make progress under an evicting protocol.
  auto config = flows_config({{0, 2, 6}, {0, 1, 6}}, 3);
  config.buffer_capacity = 2;
  config.protocol.kind = ProtocolKind::kEncounterCount;
  const auto trace = make_trace({{0, 1, 0.0, 2'000.0},
                                 {0, 2, 2'500.0, 4'500.0},
                                 {0, 1, 5'000.0, 7'000.0},
                                 {0, 2, 7'500.0, 9'500.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_GT(run.delivery_ratio, 0.3);
  EXPECT_GT(engine->recorder().created_count(), 2u);
}

TEST(MultiFlow, PerFlowDeliveryBreakdown) {
  // Flow 0 (0->2) completes; flow 1 (0->1) never gets a contact.
  auto config = flows_config({{0, 2, 2}, {0, 1, 2}}, 3);
  const auto trace = make_trace({{0, 2, 0.0, 250.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  ASSERT_EQ(run.flow_delivery.size(), 2u);
  EXPECT_DOUBLE_EQ(run.flow_delivery[0], 1.0);
  EXPECT_DOUBLE_EQ(run.flow_delivery[1], 0.0);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.5);
}

TEST(MultiFlow, SingleFlowBreakdownMatchesAggregate) {
  auto config = flows_config({}, 3);  // legacy single-flow fields
  config.load = 2;
  config.source = 0;
  config.destination = 2;
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  ASSERT_EQ(run.flow_delivery.size(), 1u);
  EXPECT_DOUBLE_EQ(run.flow_delivery[0], run.delivery_ratio);
}

TEST(MultiFlow, DeterministicWithManyFlows) {
  std::vector<FlowSpec> flows;
  for (NodeId d = 1; d < 6; ++d) flows.push_back({0, d, 3});
  auto config = flows_config(flows, 6);
  const auto trace = make_trace({{0, 1, 0.0, 500.0},
                                 {1, 2, 800.0, 1'300.0},
                                 {2, 3, 1'500.0, 2'000.0},
                                 {3, 4, 2'200.0, 2'700.0},
                                 {4, 5, 3'000.0, 3'500.0},
                                 {0, 5, 4'000.0, 4'500.0}});
  auto a = make_engine(config, trace, 9);
  auto b = make_engine(config, trace, 9);
  const auto ra = a->run();
  const auto rb = b->run();
  EXPECT_DOUBLE_EQ(ra.delivery_ratio, rb.delivery_ratio);
  EXPECT_EQ(ra.bundle_transmissions, rb.bundle_transmissions);
}

}  // namespace
}  // namespace epi::routing
