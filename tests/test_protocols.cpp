// Per-protocol behaviour on hand-crafted contact schedules. Engines are
// built directly so node state can be inspected after the run.
#include <gtest/gtest.h>

#include <memory>

#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;
using test::small_config;

std::unique_ptr<Engine> make_engine(const SimulationConfig& config,
                                    const mobility::ContactTrace& trace,
                                    std::uint64_t seed = 1) {
  return std::make_unique<Engine>(config, trace,
                                  make_protocol(config.protocol), seed);
}

// ------------------------------------------------------------- fixed TTL ----

TEST(FixedTtl, SourceCopyImmortalUntilTransmitted) {
  // "Once they are transmitted and stored in a buffer, their TTL begins to
  //  reduce": a contact long after creation still delivers.
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  const auto trace = make_trace({{0, 2, 50'000.0, 50'150.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 1.0);
}

TEST(FixedTtl, RelayCopyExpiresBeforeLateContact) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  // Relay receives at t=100; copy expires at 400; relay meets the
  // destination only at 500.
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 500.0, 650.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
  EXPECT_GE(run.drops_expired, 1u);
  EXPECT_FALSE(engine->node(1).buffer().contains(1));
}

TEST(FixedTtl, RelayCopySurvivesEarlyContact) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  // Relay receives at t=100 (expiry 400) and meets the destination at 250.
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 200.0, 350.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 1.0);
}

TEST(FixedTtl, TransmissionRenewsSenderTtl) {
  auto config = small_config(1, /*nodes=*/4);
  config.destination = 2;
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  // Node 1 receives at 100 (expiry 400), retransmits to node 3 at 350
  // (renewed to 650), and can therefore still deliver at 600.
  const auto trace = make_trace({{0, 1, 0.0, 150.0},
                                 {1, 3, 250.0, 390.0},
                                 {1, 2, 500.0, 650.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 1.0);
}

TEST(FixedTtl, AllCopiesExpireWithoutFurtherContacts) {
  // Paper Fig. "TTL": after a transfer both sides hold ticking copies; with
  // no more contacts every copy disappears.
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.drops_expired, 2u);  // source copy (renewed at tx) + relay
  EXPECT_TRUE(engine->node(0).buffer().empty());
  EXPECT_TRUE(engine->node(1).buffer().empty());
}

// ----------------------------------------------------------- dynamic TTL ----

TEST(DynamicTtl, UsesSessionIntervalForTtl) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kDynamicTtl;
  config.protocol.ttl_multiplier = 2.0;
  // Relay 1 has sessions at 0 and 5000 -> interval 5000 -> TTL 10000 on the
  // copy it stores at ~5100. It can still deliver at 12000 (far beyond any
  // fixed 300 s TTL).
  const auto trace = make_trace({{1, 2, 0.0, 50.0},
                                 {0, 1, 5'000.0, 5'150.0},
                                 {1, 2, 12'000.0, 12'150.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 1.0);
}

TEST(DynamicTtl, ShortIntervalMeansShortTtl) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kDynamicTtl;
  config.protocol.ttl_multiplier = 2.0;
  config.encounter_session_gap = 100.0;
  // Relay sessions at 0 and 400 -> interval 400 -> TTL 800 from the 500
  // transfer: expired well before the 9000 contact.
  const auto trace = make_trace({{1, 2, 0.0, 50.0},
                                 {0, 1, 400.0, 550.0},
                                 {1, 2, 9'000.0, 9'150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
  EXPECT_GE(run.drops_expired, 1u);
}

TEST(DynamicTtl, InfiniteFallbackBeforeTwoSessions) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kDynamicTtl;  // default fallback: inf
  // Relay 1 has only one session before receiving: the copy never expires,
  // so a very late delivery still succeeds.
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 80'000.0, 80'150.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 1.0);
}

TEST(DynamicTtl, FiniteFallbackApplies) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kDynamicTtl;
  config.protocol.dynamic_ttl_fallback = 300.0;
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 80'000.0, 80'150.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 0.0);
}

// -------------------------------------------------------------------- EC ----

TEST(Ec, TransferSynchronisesEncounterCounts) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kEncounterCount;
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  engine->run();
  ASSERT_NE(engine->node(0).buffer().find(1), nullptr);
  ASSERT_NE(engine->node(1).buffer().find(1), nullptr);
  EXPECT_EQ(engine->node(0).buffer().find(1)->ec, 1u);
  EXPECT_EQ(engine->node(1).buffer().find(1)->ec, 1u);
}

TEST(Ec, FullBufferEvictsHighestEc) {
  auto config = small_config(3, /*nodes=*/4);
  config.buffer_capacity = 2;
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kEncounterCount;
  // Relay 1 receives bundles 1, 2 (capacity full). It then retransmits
  // bundle 1 to node 2 (raising its EC to 2). When the source offers bundle
  // 3, the relay evicts bundle 1 (highest EC) to admit it.
  const auto trace = make_trace({{0, 1, 0.0, 250.0},      // bundles 1,2 -> relay
                                 {1, 2, 300.0, 410.0},    // bundle 1 EC -> 2
                                 {0, 1, 500.0, 610.0}});  // bundle 3 evicts 1
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_GE(run.drops_evicted, 1u);
  EXPECT_FALSE(engine->node(1).buffer().contains(1));
  EXPECT_TRUE(engine->node(1).buffer().contains(2));
  EXPECT_TRUE(engine->node(1).buffer().contains(3));
}

TEST(Ec, NeverEvictsUntransmittedCopies) {
  // The source's EC-0 originals are the only copies in existence; EC must
  // not destroy them to admit new arrivals.
  auto config = small_config(2, /*nodes=*/3);
  config.buffer_capacity = 1;
  config.protocol.kind = ProtocolKind::kEncounterCount;
  const auto trace = make_trace({{1, 2, 0.0, 120.0}});  // no source contact
  auto engine = make_engine(config, trace);
  engine->run();
  // Bundle 1 (EC 0) still at the source; bundle 2 was never injected.
  EXPECT_TRUE(engine->node(0).buffer().contains(1));
  EXPECT_EQ(engine->recorder().created_count(), 1u);
}

TEST(Ec, SourceChurnsBufferViaEviction) {
  // After transmitting, the source's copies are evictable, so injection
  // continues past the buffer capacity.
  auto config = small_config(6, /*nodes=*/3);
  config.buffer_capacity = 2;
  config.protocol.kind = ProtocolKind::kEncounterCount;
  const auto trace = make_trace({{0, 1, 0.0, 1'000.0}});
  auto engine = make_engine(config, trace);
  engine->run();
  EXPECT_GT(engine->recorder().created_count(), 2u);
}

// ---------------------------------------------------------------- EC+TTL ----

TEST(EcTtl, CopiesAboveThresholdAgeOut) {
  auto config = small_config(1, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kEcTtl;
  config.protocol.ec_threshold = 1;  // TTL kicks in at EC 2
  config.protocol.ec_ttl_base = 300.0;
  config.protocol.ec_ttl_step = 100.0;
  // Transfers: 0->1 (EC 1), 1->2 (EC 2 -> TTL 300 on both copies at ~400).
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 300.0, 450.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_GE(run.drops_expired, 2u);
  EXPECT_FALSE(engine->node(1).buffer().contains(1));
  EXPECT_FALSE(engine->node(2).buffer().contains(1));
  // The source's copy is still EC 1 (at the threshold): immortal.
  EXPECT_TRUE(engine->node(0).buffer().contains(1));
}

TEST(EcTtl, TtlShrinksWithEachFurtherTransmission) {
  ProtocolParams params;
  params.kind = ProtocolKind::kEcTtl;
  params.ec_threshold = 1;
  params.ec_ttl_base = 300.0;
  params.ec_ttl_step = 100.0;
  // EC 2 -> 300 s, EC 3 -> 200 s, EC 4 -> 100 s, EC 5 -> immediate purge.
  // Exercise the immediate-purge branch: a chain long enough that the last
  // receiver's copy gets a non-positive TTL and vanishes on arrival.
  auto config = small_config(1, /*nodes=*/6);
  config.destination = 5;
  config.protocol = params;
  const auto trace = make_trace({{0, 1, 0.0, 150.0},
                                 {1, 2, 200.0, 350.0},
                                 {2, 3, 400.0, 550.0},
                                 {3, 4, 600.0, 750.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  // Node 4 received at EC 5: purged immediately.
  EXPECT_FALSE(engine->node(4).buffer().contains(1));
  EXPECT_GE(run.drops_expired, 1u);
}

TEST(EcTtl, MinEvictProtectsFreshCopies) {
  auto config = small_config(3, /*nodes=*/3);
  config.buffer_capacity = 2;
  config.protocol.kind = ProtocolKind::kEcTtl;
  config.protocol.ec_min_evict = 5;  // nothing reaches EC 5 here
  const auto trace = make_trace({{0, 1, 0.0, 10'000.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.drops_evicted, 0u);
  // Source buffer pinned at capacity: the third bundle was never injected.
  EXPECT_EQ(engine->recorder().created_count(), 2u);
}

// -------------------------------------------------------------- immunity ----

TEST(Immunity, DelivererPurgesOwnCopy) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kImmunity;
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_GE(run.drops_immunized, 1u);
  EXPECT_TRUE(engine->node(0).buffer().empty());
  EXPECT_TRUE(engine->node(0).ilist().immune(1));
}

TEST(Immunity, RecordsPropagateAndPurgeRelays) {
  // Load 2, but only bundle 1 reaches the destination (one slot), so the
  // run keeps going after the delivery and the anti-packet can propagate.
  auto config = small_config(2, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kImmunity;
  const auto trace = make_trace({{0, 1, 0.0, 250.0},      // copies 1,2 -> 1
                                 {0, 2, 300.0, 550.0},    // copies 1,2 -> 2
                                 {2, 3, 600.0, 710.0},    // 2 delivers b.1
                                 {1, 2, 800.0, 810.0}});  // 1 learns + purges
  auto engine = make_engine(config, trace);
  engine->run();
  EXPECT_TRUE(engine->node(1).ilist().immune(1));
  EXPECT_FALSE(engine->node(1).buffer().contains(1));  // purged
  EXPECT_TRUE(engine->node(1).buffer().contains(2));   // still routed
}

TEST(Immunity, ImmuneBundleNeverReaccepted) {
  auto config = small_config(2, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kImmunity;
  // Relay 1 delivers bundle 1 only; the source later meets the vaccinated
  // relay: it learns the record, purges its own copy of bundle 1 and never
  // re-sends it.
  const auto trace = make_trace({{0, 1, 0.0, 250.0},      // bundles 1,2 -> 1
                                 {1, 3, 300.0, 410.0},    // 1 delivers b.1
                                 {0, 1, 500.0, 5'000.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  // Transfers: 0->1 twice, one delivery; the long third contact moves
  // nothing new (bundle 2 is already everywhere, bundle 1 is immune).
  EXPECT_EQ(run.bundle_transmissions, 3u);
  EXPECT_FALSE(engine->node(0).buffer().contains(1));
  EXPECT_TRUE(engine->node(0).buffer().contains(2));
}

TEST(Immunity, PushOverheadCountsListSizes) {
  // Load 3 but only two delivery slots: bundle 3 stays undelivered so the
  // run continues through the later control-only contacts.
  auto config = small_config(3);
  config.protocol.kind = ProtocolKind::kImmunity;
  const auto trace =
      make_trace({{0, 2, 0.0, 250.0},      // bundles 1,2 delivered
                  {1, 2, 500.0, 600.0},    // dest pushes its 2-entry list
                  {0, 1, 700.0, 800.0}});  // both push 2 entries each
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  // Delivery feedback: 2 records; contact (1,2): 0 + 2; contact (0,1): the
  // slot also moves bundle 3, and both sides push their 2-entry lists.
  EXPECT_EQ(run.control_records, 2u + 2u + 4u);
}

// ------------------------------------------------------------------- P-Q ----

TEST(Pq, DeliveredCopiesLingerUntilOverwritten) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  // Lazy policy: the copy stays buffered (it is merely marked immune).
  EXPECT_TRUE(engine->node(0).buffer().contains(1));
  EXPECT_TRUE(engine->node(0).ilist().immune(1));
  EXPECT_EQ(run.drops_immunized, 0u);
}

TEST(Pq, LazyOverwriteUnblocksInjection) {
  auto config = small_config(3);
  config.buffer_capacity = 2;
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  // Two bundles delivered directly; their vaccinated copies are overwritten
  // to inject and deliver the third.
  const auto trace =
      make_trace({{0, 2, 0.0, 250.0}, {0, 2, 500.0, 650.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_GE(run.drops_immunized, 1u);  // the overwritten copy
}

TEST(Pq, ZeroPMeansSourceNeverSends) {
  auto config = small_config(2);
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  config.protocol.p = 0.0;
  config.protocol.q = 1.0;
  const auto trace =
      make_trace({{0, 1, 0.0, 500.0}, {0, 2, 1'000.0, 1'500.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.bundle_transmissions, 0u);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
}

TEST(Pq, ZeroQMeansRelaysNeverForward) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  config.protocol.p = 1.0;
  config.protocol.q = 0.0;
  // Source -> relay works (P); relay -> destination is gated by Q = 0.
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 300.0, 450.0}});
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_EQ(run.bundle_transmissions, 1u);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
}

TEST(Pq, SourceDirectDeliveryStillGatedByP) {
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  config.protocol.p = 0.0;
  config.protocol.q = 1.0;
  const auto trace = make_trace({{0, 2, 0.0, 500.0}});
  auto engine = make_engine(config, trace);
  EXPECT_DOUBLE_EQ(engine->run().delivery_ratio, 0.0);
}

TEST(Pq, FractionalProbabilityIsDeterministicPerSeed) {
  auto config = small_config(10, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  config.protocol.p = 0.5;
  config.protocol.q = 0.5;
  const auto trace = make_trace({{0, 1, 0.0, 800.0},
                                 {1, 3, 1'000.0, 1'800.0},
                                 {0, 3, 2'000.0, 2'800.0}});
  auto a = make_engine(config, trace, 5);
  auto b = make_engine(config, trace, 5);
  const auto ra = a->run();
  const auto rb = b->run();
  EXPECT_EQ(ra.bundle_transmissions, rb.bundle_transmissions);
  EXPECT_DOUBLE_EQ(ra.delivery_ratio, rb.delivery_ratio);
}

// ---------------------------------------------------- cumulative immunity ----

TEST(CumulativeImmunity, DelivererAdoptsTableAndPurges) {
  auto config = small_config(2);
  config.protocol.kind = ProtocolKind::kCumulativeImmunity;
  const auto trace = make_trace({{0, 2, 0.0, 250.0}});  // both delivered
  auto engine = make_engine(config, trace);
  const auto run = engine->run();
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_EQ(engine->node(0).cumulative().horizon(), 2u);
  EXPECT_TRUE(engine->node(0).buffer().empty());  // purged by the table
}

TEST(CumulativeImmunity, OneTableVaccinatesManyBundles) {
  // Load 4; the relay delivers bundles 1-3 (bundle 4 never leaves the
  // source, so the run continues). The source still holds copies 1-3; a
  // single table <3> received at a slot-less contact purges all three at
  // once — "a node [can] delete multiple bundles upon receiving one
  // immunity table".
  auto config = small_config(4, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kCumulativeImmunity;
  const auto trace =
      make_trace({{0, 1, 0.0, 350.0},         // copies 1-3 to relay
                  {1, 3, 500.0, 850.0},        // relay delivers 1-3 in order
                  {0, 3, 1'000.0, 1'040.0}});  // 0-slot contact: table only
  auto engine = make_engine(config, trace);
  auto run = engine->run();
  EXPECT_EQ(engine->node(0).cumulative().horizon(), 3u);
  EXPECT_EQ(engine->node(0).buffer().size(), 1u);  // only bundle 4 remains
  EXPECT_TRUE(engine->node(0).buffer().contains(4));
  // Relay purged 1-3 progressively while delivering; the source's 3 copies
  // fell to one table.
  EXPECT_EQ(run.drops_immunized, 6u);
}

TEST(CumulativeImmunity, OutOfPrefixBundleSurvives) {
  // The table only covers a delivered *prefix*: a relay copy of bundle 2
  // survives while only bundle 1... is NOT yet delivered (table stays 0).
  auto config = small_config(2, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kCumulativeImmunity;
  // Relay 2 delivers bundle 2 first (out of order): prefix stays 0 until
  // bundle 1 arrives, so relay 1's copy of bundle 2 is never purged by a
  // table (though the destination refuses re-delivery).
  const auto trace =
      make_trace({{0, 1, 0.0, 250.0},         // copies 1,2 -> relay 1
                  {1, 3, 300.0, 440.0}});      // relay delivers bundle 1
  auto engine = make_engine(config, trace);
  engine->run();
  // After delivering bundle 1 the table is <1>; relay 1 purges copy 1 but
  // keeps copy 2.
  EXPECT_FALSE(engine->node(1).buffer().contains(1));
  EXPECT_TRUE(engine->node(1).buffer().contains(2));
}

TEST(CumulativeImmunity, OverheadFarBelowPerBundleImmunity) {
  auto config = small_config(30, /*nodes=*/6);
  config.destination = 5;
  std::vector<mobility::Contact> contacts;
  // A dense synthetic schedule with plenty of mixing.
  double t = 0.0;
  for (int round = 0; round < 40; ++round) {
    for (NodeId a = 0; a < 6; ++a) {
      for (NodeId b = a + 1; b < 6; ++b) {
        contacts.push_back({a, b, t, t + 220.0});
        t += 250.0;
      }
    }
  }
  const mobility::ContactTrace trace{std::move(contacts)};

  config.protocol.kind = ProtocolKind::kImmunity;
  auto imm = make_engine(config, trace);
  const auto imm_run = imm->run();

  config.protocol.kind = ProtocolKind::kCumulativeImmunity;
  auto cum = make_engine(config, trace);
  const auto cum_run = cum->run();

  EXPECT_DOUBLE_EQ(imm_run.delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(cum_run.delivery_ratio, 1.0);
  // Abstract claim: "an order of magnitude less signaling overheads".
  EXPECT_GT(imm_run.control_records, 5 * cum_run.control_records);
}

}  // namespace
}  // namespace epi::routing
