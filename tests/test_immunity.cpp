#include "dtn/immunity.hpp"

#include <gtest/gtest.h>

namespace epi::dtn {
namespace {

TEST(ImmunityList, AddAndQuery) {
  ImmunityList list;
  EXPECT_FALSE(list.immune(4));
  EXPECT_TRUE(list.add(4));
  EXPECT_FALSE(list.add(4));
  EXPECT_TRUE(list.immune(4));
  EXPECT_EQ(list.size(), 1u);
}

TEST(ImmunityList, MergeCountsNewRecords) {
  ImmunityList a;
  ImmunityList b;
  a.add(1);
  b.add(1);
  b.add(2);
  b.add(3);
  EXPECT_EQ(a.merge(b), 2u);
  EXPECT_TRUE(a.immune(3));
}

TEST(ImmunityList, MergeLimitedRespectsCap) {
  ImmunityList a;
  ImmunityList b;
  for (BundleId id = 1; id <= 10; ++id) b.add(id);
  EXPECT_EQ(a.merge_limited(b, 3), 3u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(ImmunityList, MergeLimitedTakesLowestIdsFirst) {
  ImmunityList a;
  ImmunityList b;
  for (const BundleId id : {9u, 2u, 7u, 4u}) b.add(id);
  a.merge_limited(b, 2);
  EXPECT_TRUE(a.immune(2));
  EXPECT_TRUE(a.immune(4));
  EXPECT_FALSE(a.immune(7));
  EXPECT_FALSE(a.immune(9));
}

TEST(ImmunityList, MergeLimitedSkipsKnownRecords) {
  ImmunityList a;
  ImmunityList b;
  a.add(1);
  a.add(2);
  for (BundleId id = 1; id <= 5; ++id) b.add(id);
  EXPECT_EQ(a.merge_limited(b, 2), 2u);  // moves 3 and 4, not 1 and 2
  EXPECT_TRUE(a.immune(3));
  EXPECT_TRUE(a.immune(4));
  EXPECT_FALSE(a.immune(5));
}

TEST(ImmunityList, MergeLimitedWithRoomTakesAll) {
  ImmunityList a;
  ImmunityList b;
  b.add(1);
  b.add(2);
  EXPECT_EQ(a.merge_limited(b, 100), 2u);
}

TEST(CumulativeImmunity, StartsAtZero) {
  const CumulativeImmunity c;
  EXPECT_EQ(c.horizon(), 0u);
  EXPECT_FALSE(c.immune(1));
  EXPECT_FALSE(c.immune(kInvalidBundle));
}

TEST(CumulativeImmunity, AdoptKeepsMaximum) {
  CumulativeImmunity c;
  EXPECT_TRUE(c.adopt(30));
  EXPECT_FALSE(c.adopt(20));  // "delete the table that covers the first 30"
  EXPECT_FALSE(c.adopt(30));
  EXPECT_TRUE(c.adopt(50));
  EXPECT_EQ(c.horizon(), 50u);
}

TEST(CumulativeImmunity, ImmunityIsPrefix) {
  CumulativeImmunity c;
  c.adopt(30);
  EXPECT_TRUE(c.immune(1));
  EXPECT_TRUE(c.immune(30));
  EXPECT_FALSE(c.immune(31));
}

TEST(DeliveredPrefixTracker, InOrderDeliveriesAdvance) {
  DeliveredPrefixTracker t;
  EXPECT_EQ(t.record(1), 1u);
  EXPECT_EQ(t.record(2), 2u);
  EXPECT_EQ(t.record(3), 3u);
}

TEST(DeliveredPrefixTracker, OutOfOrderHoldsThenJumps) {
  DeliveredPrefixTracker t;
  EXPECT_EQ(t.record(3), 0u);
  EXPECT_EQ(t.record(2), 0u);
  EXPECT_EQ(t.record(1), 3u);  // prefix jumps to cover the backlog
  EXPECT_EQ(t.record(5), 3u);
  EXPECT_EQ(t.record(4), 5u);
}

TEST(DeliveredPrefixTracker, DuplicateRecordIsHarmless) {
  DeliveredPrefixTracker t;
  t.record(1);
  EXPECT_EQ(t.record(1), 1u);
}

}  // namespace
}  // namespace epi::dtn
