// Integration tests asserting the paper's headline *shape* claims at reduced
// replication counts (the bench binaries measure the full versions).
#include <gtest/gtest.h>

#include "exp/figures.hpp"

namespace epi::exp {
namespace {

FigureOptions quick() {
  FigureOptions options;
  options.replications = 3;
  return options;
}

TEST(Reproduction, Fig14IntervalHurtsFixedTtl) {
  // "When the interval between encounters increases, delivery ratio drops
  //  dramatically."
  const Figure f = run_fig14(quick());
  const double short_interval = f.series_mean(f.series("interval=400"));
  const double long_interval = f.series_mean(f.series("interval=2000"));
  EXPECT_GT(short_interval, long_interval + 0.05);
}

TEST(Reproduction, DynamicTtlBeatsFixedTtlOnTrace) {
  // "Dynamic TTL improves delivery ratio by more than 20%."
  const Figure f = run_fig16(quick());
  const double dynamic = f.series_mean(f.series("dynamic TTL"));
  const double fixed = f.series_mean(f.series("TTL=300"));
  EXPECT_GT(dynamic, fixed + 0.20);
}

TEST(Reproduction, EcTtlReducesBufferOnTrace) {
  // "EC+TTL reduces buffer occupancy level."
  const Figure f = run_fig18(quick());
  const double ec = f.series_mean(f.series("EC"));
  const double ec_ttl = f.series_mean(f.series("EC+TTL"));
  EXPECT_LT(ec_ttl, ec);
}

TEST(Reproduction, ImmunityVariantsDeliverEverything) {
  const Figure f = run_fig16(quick());
  EXPECT_GT(f.series_mean(f.series("Immunity")), 0.95);
  EXPECT_GT(f.series_mean(f.series("CumImmunity")), 0.95);
}

TEST(Reproduction, CumulativeImmunityCutsOverhead) {
  // Abstract: "an order of magnitude less signaling overheads".
  const Figure f = run_overhead(quick(), /*rwp=*/false);
  const double imm = f.series_mean(f.series("Immunity"));
  const double cum = f.series_mean(f.series("CumImmunity"));
  EXPECT_GT(imm, 5.0 * cum);
}

TEST(Reproduction, EcDelayGrowsFastestOnTrace) {
  // Fig. 7: "the delay of epidemic with EC grows the quickest, and P-Q has
  // the slowest growth."
  const Figure f = run_fig07(quick());
  const std::size_t last = f.results.front().points.size() - 1;
  const double pq_delay = f.value(f.series("P-Q epidemic"), last);
  const double ec_delay = f.value(f.series("EC"), last);
  EXPECT_GT(ec_delay, pq_delay);
}

TEST(Reproduction, PqBufferStaysHighOnTrace) {
  // Fig. 11: P-Q consumes the most buffer; immunity purges eagerly and sits
  // clearly below it.
  const Figure f = run_fig11(quick());
  const double pq = f.series_mean(f.series("P-Q epidemic"));
  const double immunity = f.series_mean(f.series("Immunity"));
  const double ttl = f.series_mean(f.series("TTL=300"));
  EXPECT_GT(pq, immunity);
  EXPECT_GT(immunity, ttl);
}

TEST(Reproduction, Table2OrderingsHold) {
  FigureOptions options;
  options.replications = 3;
  const auto rows = run_table2(options);
  ASSERT_EQ(rows.size(), 6u);
  const auto find = [&](const std::string& needle) -> const Table2Row& {
    for (const auto& row : rows) {
      if (row.protocol.find(needle) != std::string::npos) return row;
    }
    ADD_FAILURE() << "row not found: " << needle;
    return rows.front();
  };
  const auto& ttl = find("with TTL");
  const auto& dyn = find("Dynamic TTL");
  const auto& ec = find("with EC");
  const auto& ecttl = find("EC+TTL");
  const auto& imm = find("with Immunity");
  const auto& cum = find("Cumulative");

  // Delivery: dynamic TTL > fixed TTL; EC+TTL >= EC; immunity ~ cumulative.
  EXPECT_GT(dyn.delivery_trace, ttl.delivery_trace);
  EXPECT_GT(dyn.delivery_rwp, ttl.delivery_rwp);
  EXPECT_GE(ecttl.delivery_trace + 5.0, ec.delivery_trace);
  EXPECT_NEAR(imm.delivery_trace, cum.delivery_trace, 10.0);

  // Buffer: EC+TTL below EC; cumulative at or below immunity.
  EXPECT_LT(ecttl.buffer_trace, ec.buffer_trace);
  EXPECT_LE(cum.buffer_trace, imm.buffer_trace + 2.0);
}

}  // namespace
}  // namespace epi::exp
