// Persistent run store: fingerprint stability, bit-exact round-trips,
// corrupt-tail tolerance, sweep resume (the crash-safety contract) and the
// SIGINT drain.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/progress.hpp"
#include "store/fingerprint.hpp"
#include "store/interrupt.hpp"
#include "store/run_store.hpp"

namespace epi {
namespace {

namespace fs = std::filesystem;

/// A fresh empty directory under the test temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("epi_store_" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> segment_files(const fs::path& dir) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string n = entry.path().filename().string();
    if (n.starts_with("seg-") && n.ends_with(".jsonl")) {
      segments.push_back(entry.path());
    }
  }
  return segments;
}

/// A summary stuffed with values that have no short decimal form, to prove
/// the serializer's max_digits10 round-trip claim.
metrics::RunSummary gnarly_summary() {
  metrics::RunSummary s;
  s.load = 25;
  s.seed = 0xdeadbeefcafef00dULL;
  s.delivery_ratio = 1.0 / 3.0;
  s.complete = false;
  s.completion_time = 523263.4279304677;
  s.mean_bundle_delay = 0.1 + 0.2;  // 0.30000000000000004
  s.buffer_occupancy = 6374.9893693076565;
  s.duplication_rate = std::numeric_limits<double>::denorm_min();
  s.bundle_transmissions = 123456789;
  s.control_records = 42;
  s.contacts = 99;
  s.drops_expired = 1;
  s.drops_evicted = 2;
  s.drops_immunized = 3;
  s.end_time = 599994.70329111791;
  s.flow_delivery = {0.0, 1.0 / 7.0, std::nextafter(1.0, 0.0)};
  s.perf.wall_seconds = 0.012345678901234567;
  s.perf.events_processed = 1'000'000'007;
  s.perf.peak_queue_depth = 8191;
  s.perf.transfers = 777;
  s.perf.contacts = 99;
  return s;
}

// --- fingerprint --------------------------------------------------------------

TEST(Fingerprint, MatchesFnv1aTestVectors) {
  // Standard 64-bit FNV-1a vectors: offset basis for "", and "a".
  EXPECT_EQ(store::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(store::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(store::fingerprint_hex(""), "cbf29ce484222325");
  EXPECT_EQ(store::fingerprint_hex("a"), "af63dc4c8601ec8c");
}

TEST(Fingerprint, SixteenLowercaseHexDigits) {
  const std::string fp = store::fingerprint_hex("schema=1|anything");
  ASSERT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << fp;
  }
}

TEST(Fingerprint, DistinctInputsDistinctOutputs) {
  EXPECT_NE(store::fingerprint_hex("load=5;"), store::fingerprint_hex("load=6;"));
  EXPECT_NE(store::fingerprint_hex("ab"), store::fingerprint_hex("ba"));
}

// --- store_key ----------------------------------------------------------------

exp::RunSpec base_run_spec() {
  exp::RunSpec run;
  run.protocol.kind = ProtocolKind::kFixedTtl;
  run.load = 25;
  run.replication = 3;
  run.master_seed = 42;
  run.horizon = exp::trace_scenario().horizon();
  return run;
}

TEST(StoreKey, StableForIdenticalInputs) {
  const exp::ScenarioSpec scenario = exp::trace_scenario();
  EXPECT_EQ(exp::store_key(scenario, base_run_spec()),
            exp::store_key(scenario, base_run_spec()));
}

TEST(StoreKey, CoversEveryCacheRelevantField) {
  const exp::ScenarioSpec scenario = exp::trace_scenario();
  const std::string base = exp::store_key(scenario, base_run_spec());

  // Every field the simulation depends on must change the key.
  exp::RunSpec run = base_run_spec();
  run.load = 30;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.replication = 4;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.master_seed = 43;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.buffer_capacity += 1;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.horizon += 1.0;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.session_gap += 1.0;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.protocol.p = 0.123;
  EXPECT_NE(exp::store_key(scenario, run), base);
  run = base_run_spec();
  run.protocol.kind = ProtocolKind::kPureEpidemic;
  EXPECT_NE(exp::store_key(scenario, run), base);

  // Scenario knobs are part of the identity too...
  exp::ScenarioSpec other = exp::trace_scenario();
  other.haggle.node_count += 1;
  EXPECT_NE(exp::store_key(other, base_run_spec()), base);
  // ...but the display name is cosmetic and must NOT be.
  exp::ScenarioSpec renamed = exp::trace_scenario();
  renamed.name = "same physics, different label";
  EXPECT_EQ(exp::store_key(renamed, base_run_spec()), base);

  // Distinct mobility models can never collide.
  EXPECT_NE(exp::store_key(exp::rwp_scenario(), base_run_spec()), base);
}

TEST(StoreKey, EmbedsSchemaVersion) {
  const std::string key =
      exp::store_key(exp::trace_scenario(), base_run_spec());
  EXPECT_EQ(key.find("schema=" + std::to_string(store::kSchemaVersion)), 0u);
}

// --- RunStore persistence -----------------------------------------------------

TEST(RunStore, RoundTripsEveryFieldBitIdentically) {
  const fs::path dir = fresh_dir("roundtrip");
  const metrics::RunSummary original = gnarly_summary();
  {
    store::RunStore store(dir);
    store.put("key-a", original);
  }
  store::RunStore reopened(dir);
  const auto loaded = reopened.find("key-a");
  ASSERT_TRUE(loaded.has_value());

  // Exact equality — no EXPECT_NEAR anywhere. This is the invariant that
  // makes cached and fresh sweep results interchangeable.
  EXPECT_EQ(loaded->load, original.load);
  EXPECT_EQ(loaded->seed, original.seed);
  EXPECT_EQ(loaded->delivery_ratio, original.delivery_ratio);
  EXPECT_EQ(loaded->complete, original.complete);
  EXPECT_EQ(loaded->completion_time, original.completion_time);
  EXPECT_EQ(loaded->mean_bundle_delay, original.mean_bundle_delay);
  EXPECT_EQ(loaded->buffer_occupancy, original.buffer_occupancy);
  EXPECT_EQ(loaded->duplication_rate, original.duplication_rate);
  EXPECT_EQ(loaded->bundle_transmissions, original.bundle_transmissions);
  EXPECT_EQ(loaded->control_records, original.control_records);
  EXPECT_EQ(loaded->contacts, original.contacts);
  EXPECT_EQ(loaded->drops_expired, original.drops_expired);
  EXPECT_EQ(loaded->drops_evicted, original.drops_evicted);
  EXPECT_EQ(loaded->drops_immunized, original.drops_immunized);
  EXPECT_EQ(loaded->end_time, original.end_time);
  EXPECT_EQ(loaded->flow_delivery, original.flow_delivery);
  EXPECT_EQ(loaded->perf.wall_seconds, original.perf.wall_seconds);
  EXPECT_EQ(loaded->perf.events_processed, original.perf.events_processed);
  EXPECT_EQ(loaded->perf.peak_queue_depth, original.perf.peak_queue_depth);
  EXPECT_EQ(loaded->perf.transfers, original.perf.transfers);
  EXPECT_EQ(loaded->perf.contacts, original.perf.contacts);
  EXPECT_TRUE(metrics::deterministic_equal(*loaded, original));
}

TEST(RunStore, KeysWithJsonMetacharactersSurvive) {
  const fs::path dir = fresh_dir("escape");
  const std::string key = "quote\" backslash\\ newline\n tab\t bell\x07 end";
  {
    store::RunStore store(dir);
    store.put(key, gnarly_summary());
  }
  store::RunStore reopened(dir);
  EXPECT_TRUE(reopened.find(key).has_value());
}

TEST(RunStore, CountsHitsAndMisses) {
  const fs::path dir = fresh_dir("stats");
  store::RunStore store(dir);
  EXPECT_FALSE(store.find("absent").has_value());
  store.put("present", gnarly_summary());
  EXPECT_TRUE(store.find("present").has_value());
  const auto s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.appended, 1u);
  EXPECT_EQ(s.records, 1u);
}

TEST(RunStore, LaterPutWinsAcrossReload) {
  const fs::path dir = fresh_dir("rewrite");
  metrics::RunSummary v1 = gnarly_summary();
  metrics::RunSummary v2 = gnarly_summary();
  v2.delivery_ratio = 0.75;
  {
    store::RunStore store(dir);
    store.put("key", v1);
    store.put("key", v2);
  }
  store::RunStore reopened(dir);
  const auto loaded = reopened.find("key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->delivery_ratio, 0.75);
  EXPECT_EQ(reopened.stats().records, 1u);
}

TEST(RunStore, ToleratesTornTailAndGarbageLines) {
  const fs::path dir = fresh_dir("corrupt");
  {
    // One shard so both records (and the damage) land in one segment.
    store::RunStore store(dir, store::StoreOptions{1});
    store.put("key-1", gnarly_summary());
    store.put("key-2", gnarly_summary());
  }
  // Simulate a writer killed mid-append: a torn (truncated) final line plus
  // some outright garbage.
  const auto segments = segment_files(dir);
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::app);
    out << "not json at all\n";
    out << R"({"schema":1,"key":"torn","load":5,"delivery_ra)";  // no newline
  }
  store::RunStore reopened(dir);
  EXPECT_TRUE(reopened.find("key-1").has_value());
  EXPECT_TRUE(reopened.find("key-2").has_value());
  EXPECT_FALSE(reopened.find("torn").has_value());
  const auto s = reopened.stats();
  EXPECT_EQ(s.records, 2u);
  // Only the garbage line is corruption. The unterminated tail is
  // indistinguishable from a live peer's in-flight append, so the reader
  // leaves it pending instead of flagging it.
  EXPECT_EQ(s.corrupt_lines, 1u);
}

TEST(RunStore, ForeignSchemaVersionIsIgnoredNotCorrupt) {
  const fs::path dir = fresh_dir("schema");
  {
    store::RunStore store(dir);
    store.put("mine", gnarly_summary());
  }
  const auto segments = segment_files(dir);
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::app);
    out << R"({"schema":999,"key":"future","load":5})" << "\n";
  }
  store::RunStore reopened(dir);
  EXPECT_TRUE(reopened.find("mine").has_value());
  // A record from a future schema is valid JSON we refuse to serve — but it
  // is not corruption.
  EXPECT_FALSE(reopened.find("future").has_value());
  EXPECT_EQ(reopened.stats().corrupt_lines, 0u);
}

TEST(RunStore, CompactMergesSegmentsLosslessly) {
  const fs::path dir = fresh_dir("compact");
  {
    store::RunStore store(dir, store::StoreOptions{1});
    store.put("key-1", gnarly_summary());
  }
  {
    // Second writer -> second segment (one shard keeps the count exact).
    store::RunStore store(dir, store::StoreOptions{1});
    store.put("key-2", gnarly_summary());
    EXPECT_EQ(segment_files(dir).size(), 2u);
    store.compact();
  }
  EXPECT_EQ(segment_files(dir).size(), 1u);
  store::RunStore reopened(dir);
  EXPECT_TRUE(reopened.find("key-1").has_value());
  EXPECT_TRUE(reopened.find("key-2").has_value());
  EXPECT_EQ(reopened.stats().records, 2u);
}

// --- sweep integration --------------------------------------------------------

exp::SweepSpec store_sweep_spec(store::RunStore* store) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kFixedTtl;
  spec.loads = {5, 10};
  spec.replications = 2;
  spec.threads = 2;
  spec.store = store;
  return spec;
}

void expect_sweeps_deterministic_equal(const exp::SweepResult& a,
                                       const exp::SweepResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t li = 0; li < a.runs.size(); ++li) {
    ASSERT_EQ(a.runs[li].size(), b.runs[li].size());
    for (std::size_t r = 0; r < a.runs[li].size(); ++r) {
      EXPECT_TRUE(metrics::deterministic_equal(a.runs[li][r], b.runs[li][r]))
          << "load index " << li << ", replication " << r;
    }
  }
}

TEST(RunStoreSweep, CachedRerunDoesZeroSimulationAndMatchesBitIdentically) {
  const fs::path dir = fresh_dir("sweep_rerun");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);

  // Reference: the same sweep with no store at all.
  const exp::SweepResult reference =
      run_sweep_on(store_sweep_spec(nullptr), trace);

  {
    store::RunStore store(dir);
    const exp::SweepResult fresh =
        run_sweep_on(store_sweep_spec(&store), trace);
    expect_sweeps_deterministic_equal(reference, fresh);
    EXPECT_EQ(store.stats().appended, 4u);  // 2 loads x 2 replications
    EXPECT_EQ(store.stats().hits, 0u);
  }

  // Rerun against a reopened store: everything served from disk, nothing
  // simulated, results bit-identical to the from-scratch reference.
  store::RunStore reopened(dir);
  const exp::SweepResult cached =
      run_sweep_on(store_sweep_spec(&reopened), trace);
  expect_sweeps_deterministic_equal(reference, cached);
  const auto s = reopened.stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.appended, 0u);
}

TEST(RunStoreSweep, PartialStoreResumesOnlyMissingRuns) {
  const fs::path dir = fresh_dir("sweep_resume");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  const exp::SweepResult reference =
      run_sweep_on(store_sweep_spec(nullptr), trace);

  // First run covers only load 5 — as if the process was killed before
  // load 10 started.
  {
    store::RunStore store(dir);
    exp::SweepSpec partial = store_sweep_spec(&store);
    partial.loads = {5};
    (void)run_sweep_on(partial, trace);
    EXPECT_EQ(store.stats().appended, 2u);
  }

  // The resume computes exactly the missing half and still matches the
  // reference bit-for-bit.
  store::RunStore resumed(dir);
  const exp::SweepResult result =
      run_sweep_on(store_sweep_spec(&resumed), trace);
  expect_sweeps_deterministic_equal(reference, result);
  const auto s = resumed.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.appended, 2u);
}

TEST(RunStoreSweep, TruncatedSegmentJustRecomputes) {
  const fs::path dir = fresh_dir("sweep_truncated");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  const exp::SweepResult reference =
      run_sweep_on(store_sweep_spec(nullptr), trace);
  {
    store::RunStore store(dir, store::StoreOptions{1});
    (void)run_sweep_on(store_sweep_spec(&store), trace);
  }
  // Chop the segment mid-record (a crash mid-write of the final line).
  const auto segments = segment_files(dir);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0]);
  fs::resize_file(segments[0], size - 40);

  store::RunStore damaged(dir);
  // The torn final line is treated as a pending in-flight append, not
  // corruption; the record is simply absent until recomputed.
  EXPECT_EQ(damaged.stats().corrupt_lines, 0u);
  EXPECT_EQ(damaged.stats().records, 3u);
  const exp::SweepResult result =
      run_sweep_on(store_sweep_spec(&damaged), trace);
  expect_sweeps_deterministic_equal(reference, result);
  EXPECT_EQ(damaged.stats().hits, 3u);
  EXPECT_EQ(damaged.stats().appended, 1u);  // only the lost record
}

TEST(RunStoreSweep, EventTracingBypassesLookupButStillAppends) {
  const fs::path dir = fresh_dir("sweep_tracing");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  {
    store::RunStore store(dir);
    (void)run_sweep_on(store_sweep_spec(&store), trace);  // fully populate
  }
  store::RunStore reopened(dir);
  std::ostringstream out;
  obs::JsonlSink sink(out);
  exp::SweepSpec spec = store_sweep_spec(&reopened);
  spec.trace_sink = &sink;
  (void)run_sweep_on(spec, trace);
  // Cache was full, but the events must still happen: no lookups served,
  // every run simulated and re-appended, trace records emitted.
  EXPECT_GT(sink.records(), 0u);
  EXPECT_EQ(reopened.stats().hits, 0u);
  EXPECT_EQ(reopened.stats().appended, 4u);
}

TEST(RunStoreSweep, SigintDrainThrowsAndRerunResumes) {
  const fs::path dir = fresh_dir("sweep_sigint");
  const mobility::ContactTrace trace =
      exp::build_contact_trace(exp::trace_scenario(), 42);
  const exp::SweepResult reference =
      run_sweep_on(store_sweep_spec(nullptr), trace);

  // Populate half the cache, then simulate Ctrl-C arriving before the next
  // sweep's parallel phase: cached runs are served, pending ones skipped,
  // and the sweep surfaces SweepInterrupted after flushing.
  {
    store::RunStore store(dir);
    exp::SweepSpec partial = store_sweep_spec(&store);
    partial.loads = {5};
    (void)run_sweep_on(partial, trace);

    store::SigintDrain drain;
    ASSERT_FALSE(store::SigintDrain::interrupted());
    std::raise(SIGINT);
    ASSERT_TRUE(store::SigintDrain::interrupted());
    EXPECT_THROW((void)run_sweep_on(store_sweep_spec(&store), trace),
                 exp::SweepInterrupted);
    store::SigintDrain::reset();
    ASSERT_FALSE(store::SigintDrain::interrupted());
  }

  // The rerun completes: load-5 runs come from the store, load-10 runs are
  // computed now, and the merged result matches the reference exactly.
  store::RunStore resumed(dir);
  const exp::SweepResult result =
      run_sweep_on(store_sweep_spec(&resumed), trace);
  expect_sweeps_deterministic_equal(reference, result);
  EXPECT_EQ(resumed.stats().hits, 2u);
  EXPECT_EQ(resumed.stats().appended, 2u);
}

TEST(ProgressReporter, CachedTicksKeepEtaHonest) {
  std::ostringstream out;
  obs::ProgressReporter progress("figXX", 4, out);
  progress.tick_cached();
  progress.tick_cached();
  progress.tick(1'000);
  progress.tick(1'000);
  EXPECT_EQ(progress.completed(), 4u);
  EXPECT_EQ(progress.cached(), 2u);
  progress.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("4/4 runs"), std::string::npos);
  EXPECT_NE(text.find("2 cached"), std::string::npos);
}

}  // namespace
}  // namespace epi
