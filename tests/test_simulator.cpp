#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epi::core {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunAdvancesToHorizonWhenIdle) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.run(500.0), 500.0);
}

TEST(Simulator, EventsFireAtTheirTime) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(10.0, [&] { seen.push_back(sim.now()); });
  sim.at(20.0, [&] { seen.push_back(sim.now()); });
  sim.run(100.0);
  EXPECT_EQ(seen, (std::vector<double>{10.0, 20.0}));
}

TEST(Simulator, EventsAtHorizonFire) {
  Simulator sim;
  bool fired = false;
  sim.at(100.0, [&] { fired = true; });
  sim.run(100.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsPastHorizonDoNotFire) {
  Simulator sim;
  bool fired = false;
  sim.at(100.1, [&] { fired = true; });
  sim.run(100.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] {
    sim.after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run(100.0);
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  sim.at(1.0, [&] { ++count; });
  sim.at(2.0, [&] {
    ++count;
    sim.stop();
  });
  sim.at(3.0, [&] { ++count; });
  const SimTime end = sim.run(100.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, StopDoesNotAdvanceToHorizon) {
  Simulator sim;
  sim.at(5.0, [&] { sim.stop(); });
  EXPECT_DOUBLE_EQ(sim.run(100.0), 5.0);
}

TEST(Simulator, EventsScheduledDuringRunFire) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(1.0, [&] {
    seen.push_back(sim.now());
    sim.at(2.0, [&] { seen.push_back(sim.now()); });
  });
  sim.run(10.0);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, SameTimeEventChainsFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] {
    order.push_back(0);
    sim.at(1.0, [&] { order.push_back(2); });  // same instant, queued after
  });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.run(10.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto h = sim.at(5.0, [&] { fired = true; });
  sim.cancel(h);
  sim.run(10.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 1; i <= 7; ++i) {
    sim.at(static_cast<double>(i), [] {});
  }
  sim.run(100.0);
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, PendingEventsReported) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run(1.5);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, ResumeAfterPartialRun) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(1.0, [&] { seen.push_back(sim.now()); });
  sim.at(10.0, [&] { seen.push_back(sim.now()); });
  sim.run(5.0);
  EXPECT_EQ(seen.size(), 1u);
  sim.run(20.0);
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace epi::core
