// Streaming statistics observatory: log-binned histograms, P-square
// quantiles, the per-run StatsCollector, sweep/store integration and the
// byte-determinism of StatsProfile JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/summary.hpp"
#include "mobility/contact_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/stats.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "store/run_store.hpp"

namespace epi {
namespace {

namespace fs = std::filesystem;

// --- LogHistogram -------------------------------------------------------------

TEST(StatsHistogram, RoutesUnderflowInteriorAndOverflow) {
  obs::LogHistogram::Layout layout;
  layout.min_value = 1.0;
  layout.max_value = 1'000.0;
  layout.bins_per_decade = 4;
  obs::LogHistogram hist(layout);
  // 3 decades x 4 bins + underflow + overflow.
  ASSERT_EQ(hist.bin_count(), 14u);

  hist.add(0.5);                // below min -> underflow
  hist.add(-3.0);               // negative -> underflow
  hist.add(std::nan(""));       // non-finite -> underflow
  hist.add(1.0);                // first interior bin
  hist.add(999.0);              // last interior bin
  hist.add(1'000.0);            // at max -> overflow
  hist.add(1e12);               // way past max -> overflow

  EXPECT_EQ(hist.count(0), 3u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(hist.bin_count() - 2), 1u);
  EXPECT_EQ(hist.count(hist.bin_count() - 1), 2u);
  EXPECT_EQ(hist.total(), 7u);
  EXPECT_EQ(hist.max_seen(), 1e12);

  // Interior bin edges are exact powers of the per-decade step.
  EXPECT_DOUBLE_EQ(hist.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_lower(1), 1.0);
  EXPECT_NEAR(hist.bin_lower(5), 10.0, 1e-9);
}

TEST(StatsHistogram, MergeAddsCountsAndExtremes) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  a.add(10.0);
  a.add(100.0);
  b.add(3.0);
  b.add(1e9);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0 + 100.0 + 3.0 + 1e9);
  EXPECT_DOUBLE_EQ(a.min_seen(), 3.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 1e9);
}

TEST(StatsHistogram, JsonIsSparseAndCarriesLayout) {
  obs::LogHistogram hist;
  hist.add(2.0);
  hist.add(2.0);
  std::ostringstream out;
  hist.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"min_value\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bins_per_decade\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total\":2"), std::string::npos) << json;
  // Exactly one populated bin serialized as an [index,count] pair.
  EXPECT_NE(json.find(",2]]"), std::string::npos) << json;
}

// --- P2Quantile ---------------------------------------------------------------

TEST(StatsQuantile, ExactForFewerThanFiveObservations) {
  obs::P2Quantile median(0.5);
  EXPECT_EQ(median.value(), 0.0);  // empty
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);  // sorted {1,2,3}, rank ceil(1.5)=2
}

TEST(StatsQuantile, ApproximatesKnownMedianAndIsDeterministic) {
  obs::P2Quantile a(0.5);
  obs::P2Quantile b(0.5);
  // A fixed pseudo-shuffle of 0..999 (37 is coprime with 1000).
  for (int i = 0; i < 1'000; ++i) {
    const double x = static_cast<double>((i * 37) % 1'000);
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.count(), 1'000u);
  EXPECT_NEAR(a.value(), 500.0, 60.0);
  // Same input sequence -> bit-identical estimate.
  EXPECT_EQ(a.value(), b.value());
}

TEST(StatsQuantile, TailQuantileLandsInTheTail) {
  obs::P2Quantile p90(0.9);
  for (int i = 1; i <= 500; ++i) {
    p90.add(static_cast<double>((i * 211) % 500));
  }
  EXPECT_NEAR(p90.value(), 450.0, 50.0);
}

// --- ReservoirSample ----------------------------------------------------------

TEST(StatsReservoir, ExactQuantilesWhileBelowCapacity) {
  obs::ReservoirSample sample(64);
  EXPECT_EQ(sample.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 40; ++i) {
    sample.add(static_cast<double>((i * 17) % 40));  // permutation of 0..39
  }
  EXPECT_EQ(sample.count(), 40u);
  EXPECT_EQ(sample.size(), 40u);
  // Nearest-rank over the full (exact) sample of 0..39.
  EXPECT_DOUBLE_EQ(sample.quantile(0.5), 19.0);
  EXPECT_DOUBLE_EQ(sample.quantile(0.9), 35.0);
  EXPECT_DOUBLE_EQ(sample.quantile(1.0), 39.0);
}

TEST(StatsReservoir, BoundsMemoryAndStaysDeterministic) {
  obs::ReservoirSample a(128);
  obs::ReservoirSample b(128);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = static_cast<double>(
        (static_cast<std::uint32_t>(i) * 2654435761u) % 100'000u);
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.count(), 10'000u);
  EXPECT_EQ(a.size(), 128u);  // capacity-bounded
  // Same input sequence, fixed seed: identical samples and quantiles.
  for (const double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(p), b.quantile(p));
  }
  // The subsampled median of a near-uniform stream over [0, 1e5) must land
  // in the bulk of the distribution.
  EXPECT_GT(a.quantile(0.5), 20'000.0);
  EXPECT_LT(a.quantile(0.5), 80'000.0);
}

// --- StatsCollector on a real engine run --------------------------------------

mobility::ContactTrace two_node_trace() {
  return mobility::ContactTrace({
      {0, 1, 100.0, 450.0},
      {0, 1, 1'000.0, 1'350.0},
      {0, 1, 2'000.0, 2'250.0},
  });
}

SimulationConfig two_node_config() {
  SimulationConfig config;
  config.node_count = 2;
  config.load = 3;
  config.source = 0;
  config.destination = 1;
  config.horizon = 5'000.0;
  config.protocol.kind = ProtocolKind::kPureEpidemic;
  return config;
}

metrics::RunSummary run_two_node(obs::TraceSink* sink) {
  const SimulationConfig config = two_node_config();
  const mobility::ContactTrace trace = two_node_trace();
  routing::Engine engine(config, trace,
                         routing::make_protocol(config.protocol), /*seed=*/7);
  engine.set_trace_sink(sink, /*replication=*/4);
  return engine.run();
}

obs::StatsCollector::Config collector_config(const SimulationConfig& config) {
  obs::StatsCollector::Config c;
  c.node_count = config.node_count;
  c.buffer_capacity = config.buffer_capacity;
  c.slot_seconds = config.slot_seconds;
  return c;
}

TEST(StatsCollector, OccupancyIntegralReconcilesWithRecorder) {
  const SimulationConfig config = two_node_config();
  obs::StatsCollector stats(collector_config(config));
  const metrics::RunSummary summary = run_two_node(&stats);
  stats.finish(summary.end_time);
  const obs::StatsProfile& profile = stats.profile();

  // The recorder's golden metric is (1/T)(1/N) sum_n integral(size_n)/C;
  // the collector's occupancy_time[l] integrates seconds-at-level-l over
  // all nodes, so the two must agree on the same events.
  double level_seconds = 0.0;
  double total_seconds = 0.0;
  for (std::size_t level = 0; level < profile.occupancy_time.size(); ++level) {
    level_seconds += static_cast<double>(level) * profile.occupancy_time[level];
    total_seconds += profile.occupancy_time[level];
  }
  const double expected =
      level_seconds /
      (static_cast<double>(config.node_count) * summary.end_time *
       static_cast<double>(config.buffer_capacity));
  EXPECT_NEAR(profile.node_count * summary.end_time, total_seconds, 1e-6);
  EXPECT_NEAR(summary.buffer_occupancy, expected, 1e-9);
}

TEST(StatsCollector, CountsEncountersAndSummaryVectors) {
  const SimulationConfig config = two_node_config();
  obs::StatsCollector stats(collector_config(config));
  const metrics::RunSummary summary = run_two_node(&stats);
  stats.finish(summary.end_time);
  const obs::StatsProfile& profile = stats.profile();

  // Every contact start advertises both sides' buffers exactly once.
  EXPECT_EQ(profile.sv_exchanges, summary.contacts);
  ASSERT_EQ(profile.node_contacts.size(), 2u);
  EXPECT_EQ(profile.node_contacts[0], summary.contacts);
  EXPECT_EQ(profile.node_contacts[1], summary.contacts);
  // First contact has no predecessor: gaps = (contacts - 1) per node.
  EXPECT_EQ(profile.intercontact.total(), 2 * (summary.contacts - 1));
  // Both nodes met exactly one distinct peer.
  ASSERT_GE(profile.degree_hist.size(), 2u);
  EXPECT_EQ(profile.degree_hist[1], 2u);
  // Every session is either closed (duration observed) or still open when
  // the run stopped; this run delivers everything mid-first-contact, so the
  // session stays open and offers no closed slots.
  EXPECT_EQ(profile.contact_duration.total() + profile.open_sessions,
            profile.sv_exchanges);
  EXPECT_LE(profile.slots_used, profile.slots_offered);
  // Pure epidemic signals nothing.
  EXPECT_EQ(profile.control_exchanges, 0u);
  EXPECT_EQ(profile.control_records, 0u);
  EXPECT_GT(profile.sv_entries, 0u);
  EXPECT_EQ(profile.sv_bytes(), profile.sv_entries * obs::kSummaryEntryBytes);
}

TEST(StatsCollector, ClosedSessionsAccountSlotsAndUtilization) {
  obs::StatsCollector::Config config;
  config.node_count = 4;
  config.buffer_capacity = 8;
  config.slot_seconds = 1.0;
  obs::StatsCollector stats(config);

  const auto feed = [&](obs::EventKind kind, double t, NodeId a, NodeId b) {
    obs::TraceEvent event;
    event.kind = kind;
    event.t = t;
    event.a = a;
    event.b = b;
    stats.emit(event);
  };
  // Session (0,1): 10 slots offered, 3 used -> 30% utilization bin.
  feed(obs::EventKind::kContactUp, 0.0, 0, 1);
  feed(obs::EventKind::kTransferred, 1.0, 0, 1);
  feed(obs::EventKind::kTransferred, 2.0, 1, 0);  // reverse direction, same pair
  feed(obs::EventKind::kTransferred, 3.0, 0, 1);
  feed(obs::EventKind::kContactDown, 10.0, 0, 1);
  // Overlapping session (2,3): 4 slots, all used -> 100% bin.
  feed(obs::EventKind::kContactUp, 5.0, 2, 3);
  for (int i = 0; i < 4; ++i) {
    feed(obs::EventKind::kTransferred, 6.0 + i, 2, 3);
  }
  feed(obs::EventKind::kContactDown, 9.0 + 0.5, 2, 3);  // 4.5 s -> 4 slots
  // Second meeting of (0,1) at 20: both nodes record a 20 s gap.
  feed(obs::EventKind::kContactUp, 20.0, 0, 1);
  stats.finish(30.0);

  const obs::StatsProfile& profile = stats.profile();
  EXPECT_EQ(profile.slots_offered, 14u);
  EXPECT_EQ(profile.slots_used, 7u);
  EXPECT_EQ(profile.utilization_hist[3], 1u);   // 3/10 -> 30% bin
  EXPECT_EQ(profile.utilization_hist[10], 1u);  // 4/4 -> 100% bin
  EXPECT_EQ(profile.contact_duration.total(), 2u);
  EXPECT_DOUBLE_EQ(profile.contact_duration.sum(), 10.0 + 4.5);
  EXPECT_EQ(profile.open_sessions, 1u);
  EXPECT_EQ(profile.intercontact.total(), 2u);
  EXPECT_DOUBLE_EQ(profile.intercontact.sum(), 40.0);
  EXPECT_DOUBLE_EQ(profile.intercontact_p50, 20.0);
  // Degrees: all four nodes met exactly one distinct peer.
  EXPECT_EQ(profile.degree_hist[1], 4u);
}

TEST(StatsCollector, ChainsDownstreamByteIdentically) {
  std::ostringstream direct_out;
  obs::JsonlSink direct(direct_out);
  run_two_node(&direct);

  std::ostringstream chained_out;
  obs::JsonlSink chained(chained_out);
  obs::StatsCollector stats(collector_config(two_node_config()), &chained);
  const metrics::RunSummary summary = run_two_node(&stats);
  stats.finish(summary.end_time);

  EXPECT_EQ(direct.records(), chained.records());
  EXPECT_EQ(direct_out.str(), chained_out.str());
  EXPECT_GT(stats.profile().sv_exchanges, 0u);
}

TEST(StatsCollector, BatchPathMatchesSingleEventPath) {
  // The collector accumulates batches in specialized per-subsystem passes;
  // pin that this is observationally identical to record-by-record emit().
  struct Capture final : obs::TraceSink {
    std::vector<obs::TraceEvent> events;
    void emit(const obs::TraceEvent& event) override {
      events.push_back(event);
    }
  };
  Capture capture;
  const metrics::RunSummary summary = run_two_node(&capture);
  ASSERT_GT(capture.events.size(), 10u);

  obs::StatsCollector single(collector_config(two_node_config()));
  for (const obs::TraceEvent& event : capture.events) single.emit(event);
  single.finish(summary.end_time);

  obs::StatsCollector batched(collector_config(two_node_config()));
  // Odd chunk size so batch boundaries fall mid-session and mid-burst.
  for (std::size_t i = 0; i < capture.events.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, capture.events.size() - i);
    batched.emit_batch(capture.events.data() + i, n);
  }
  batched.finish(summary.end_time);

  std::ostringstream single_json;
  single.profile().write_json(single_json);
  std::ostringstream batched_json;
  batched.profile().write_json(batched_json);
  EXPECT_EQ(single_json.str(), batched_json.str());
}

TEST(StatsCollector, DoesNotPerturbTheRun) {
  obs::StatsCollector stats(collector_config(two_node_config()));
  const metrics::RunSummary observed = run_two_node(&stats);
  const metrics::RunSummary plain = run_two_node(nullptr);
  EXPECT_TRUE(metrics::deterministic_equal(observed, plain));
}

// --- sweep + store integration ------------------------------------------------

exp::SweepSpec stats_sweep_spec(unsigned threads) {
  exp::SweepSpec spec;
  spec.scenario = exp::trace_scenario();
  spec.protocol.kind = ProtocolKind::kImmunity;
  spec.loads = {5, 10};
  spec.replications = 2;
  spec.threads = threads;
  return spec;
}

TEST(StatsSweep, AttachesAProfileToEveryRun) {
  exp::SweepSpec spec = stats_sweep_spec(2);
  spec.collect_stats = true;
  const exp::SweepResult result = run_sweep(spec);
  for (const auto& batch : result.runs) {
    for (const auto& run : batch) {
      ASSERT_NE(run.stats, nullptr);
      const obs::StatsProfile& profile = *run.stats;
      EXPECT_EQ(profile.runs, 1u);
      EXPECT_GT(profile.sv_exchanges, 0u);
      // Immunity signals anti-packets; profile counts must match the
      // engine's golden control_records metric exactly.
      EXPECT_EQ(profile.control_records, run.control_records);
      EXPECT_EQ(profile.control_bytes(),
                run.control_records * obs::kControlRecordBytes);
    }
  }
}

TEST(StatsSweep, DisabledSweepCarriesNoProfileAndIsUnchanged) {
  const exp::SweepResult off = run_sweep(stats_sweep_spec(2));
  exp::SweepSpec spec = stats_sweep_spec(2);
  spec.collect_stats = true;
  const exp::SweepResult on = run_sweep(spec);

  ASSERT_EQ(off.runs.size(), on.runs.size());
  for (std::size_t li = 0; li < off.runs.size(); ++li) {
    for (std::size_t r = 0; r < off.runs[li].size(); ++r) {
      EXPECT_EQ(off.runs[li][r].stats, nullptr);
      // Collection is pure observation: every metric is bit-identical.
      EXPECT_TRUE(metrics::deterministic_equal(off.runs[li][r],
                                               on.runs[li][r]));
    }
  }
}

TEST(StatsSweep, BypassesCacheLookupsButStillAppends) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "epi_stats_store_bypass";
  fs::remove_all(dir);

  exp::SweepSpec spec = stats_sweep_spec(1);
  spec.collect_stats = true;
  {
    store::RunStore store(dir);
    spec.store = &store;
    (void)run_sweep(spec);  // populates the store
  }
  {
    store::RunStore store(dir);
    spec.store = &store;
    const exp::SweepResult again = run_sweep(spec);
    // Lookups are bypassed while stats are on (a cached summary carries no
    // profile), so every run simulated afresh and carries its profile.
    EXPECT_EQ(store.stats().hits, 0u);
    for (const auto& batch : again.runs) {
      for (const auto& run : batch) {
        EXPECT_NE(run.stats, nullptr);
      }
    }
  }
  {
    // With stats off the very same store now serves everything.
    store::RunStore store(dir);
    exp::SweepSpec cached_spec = stats_sweep_spec(1);
    cached_spec.store = &store;
    const exp::SweepResult cached = run_sweep(cached_spec);
    EXPECT_EQ(store.stats().hits,
              cached.loads.size() * cached_spec.replications);
    for (const auto& batch : cached.runs) {
      for (const auto& run : batch) {
        EXPECT_EQ(run.stats, nullptr);
      }
    }
  }
  fs::remove_all(dir);
}

// --- profile JSON determinism and merge ---------------------------------------

std::string profile_json(const obs::StatsProfile& profile) {
  std::ostringstream out;
  profile.write_json(out);
  return out.str();
}

TEST(StatsProfileJson, ByteIdenticalAcrossIdenticalSeedRuns) {
  std::string first;
  std::string second;
  for (std::string* capture : {&first, &second}) {
    obs::StatsCollector stats(collector_config(two_node_config()));
    const metrics::RunSummary summary = run_two_node(&stats);
    stats.finish(summary.end_time);
    *capture = profile_json(stats.profile());
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Single-run profiles carry their P2 quantile block.
  EXPECT_NE(first.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(first.find("\"signaling\""), std::string::npos);
}

TEST(StatsProfileJson, MergeAddsCountersAndDropsQuantiles) {
  obs::StatsCollector stats(collector_config(two_node_config()));
  const metrics::RunSummary summary = run_two_node(&stats);
  stats.finish(summary.end_time);
  const obs::StatsProfile single = stats.profile();

  obs::StatsProfile merged = single;
  merged.merge(single);
  EXPECT_EQ(merged.runs, 2u);
  EXPECT_EQ(merged.sv_exchanges, 2 * single.sv_exchanges);
  EXPECT_EQ(merged.intercontact.total(), 2 * single.intercontact.total());
  EXPECT_EQ(merged.slots_offered, 2 * single.slots_offered);
  EXPECT_EQ(merged.intercontact_p50, 0.0);
  const std::string json = profile_json(merged);
  EXPECT_EQ(json.find("\"quantiles\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos) << json;
}

}  // namespace
}  // namespace epi
