// Engine edge cases: ties, overlaps and boundary conditions that the
// generators can produce and the event core must survive.
#include <gtest/gtest.h>

#include <memory>

#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;
using test::run_engine;
using test::small_config;

TEST(EngineEdge, OverlappingSamePairContactsNoDuplicateCopies) {
  // Gatherings plus a background contact can overlap the same pair; the
  // anti-entropy check must prevent duplicate copies and double counting.
  auto config = small_config(3);
  config.destination = 2;
  const auto trace =
      make_trace({{0, 1, 0.0, 500.0}, {0, 1, 100.0, 450.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_EQ(run.bundle_transmissions, 3u);  // each bundle crosses once
  EXPECT_EQ(engine.node(1).buffer().size(), 3u);
}

TEST(EngineEdge, IdenticalContactsAreIdempotent) {
  auto config = small_config(2);
  config.destination = 2;
  const auto trace =
      make_trace({{0, 1, 0.0, 300.0}, {0, 1, 0.0, 300.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_EQ(run.bundle_transmissions, 2u);
  EXPECT_EQ(run.contacts, 2u);
}

TEST(EngineEdge, ContactEndingExactlyAtHorizonRuns) {
  auto config = small_config(1);
  config.horizon = 150.0;
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
}

TEST(EngineEdge, SlotAtContactEndStillFires) {
  // A 100 s contact has exactly one slot, completing at the contact's end
  // instant.
  auto config = small_config(1);
  const auto trace = make_trace({{0, 2, 50.0, 150.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(run.completion_time, 150.0);
}

TEST(EngineEdge, ExpiryAtSlotInstantResolvesDeterministically) {
  // A relay copy expires at exactly the instant of its delivery slot. The
  // expiry event was scheduled when the copy was stored (earlier), so it
  // fires first and the delivery fails — deterministically.
  auto config = small_config(1);
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 300.0;
  // Copy stored at t=100 (expiry 400); delivery slot would complete at 400.
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 300.0, 450.0}});
  const auto a = run_engine(config, trace, 1);
  const auto b = run_engine(config, trace, 2);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, 0.0);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

TEST(EngineEdge, ManySimultaneousContactStartsAreStable) {
  // Six contacts all starting at t=0 involving the same source.
  auto config = small_config(2, /*nodes=*/8);
  config.destination = 7;
  std::vector<mobility::Contact> contacts;
  for (NodeId peer = 1; peer <= 6; ++peer) {
    contacts.push_back({0, peer, 0.0, 350.0});
  }
  contacts.push_back({6, 7, 1'000.0, 1'250.0});
  const mobility::ContactTrace trace{std::move(contacts)};
  const auto a = run_engine(config, trace, 5);
  const auto b = run_engine(config, trace, 5);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, 1.0);
  EXPECT_EQ(a.bundle_transmissions, b.bundle_transmissions);
}

TEST(EngineEdge, SingleNodePairNetwork) {
  SimulationConfig config;
  config.node_count = 2;
  config.load = 3;
  config.source = 0;
  config.destination = 1;
  config.horizon = 10'000.0;
  const auto trace = make_trace({{0, 1, 0.0, 350.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
}

TEST(EngineEdge, HugeLoadSmallBufferDoesNotOverflow) {
  auto config = small_config(500);
  config.buffer_capacity = 3;
  config.protocol.kind = ProtocolKind::kEncounterCount;
  const auto trace = make_trace({{0, 1, 0.0, 5'000.0},
                                 {1, 2, 6'000.0, 11'000.0},
                                 {0, 2, 12'000.0, 17'000.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_LE(engine.node(0).buffer().size(), 3u);
  EXPECT_GT(run.delivery_ratio, 0.0);
  EXPECT_LE(run.delivery_ratio, 1.0);
}

TEST(EngineEdge, ZeroSlotContactStillExchangesControlPlane) {
  // A 50 s contact carries no bundles but the immunity control exchange
  // still happens (anti-packets are small). Load 2 keeps the run alive
  // past the first delivery.
  auto config = small_config(2, /*nodes=*/4);
  config.destination = 3;
  config.protocol.kind = ProtocolKind::kImmunity;
  const auto trace = make_trace({{0, 1, 0.0, 150.0},    // copy to relay
                                 {1, 3, 200.0, 350.0},  // delivery
                                 {0, 1, 500.0, 550.0}});  // 0 slots
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  engine.run();
  // The source learned the anti-packet in the slot-less contact and purged.
  EXPECT_TRUE(engine.node(0).ilist().immune(1));
  EXPECT_FALSE(engine.node(0).buffer().contains(1));
}

TEST(EngineEdge, SamplerCountExactOnDriftProneInterval) {
  // 0.1 is not representable in binary; an accumulating `t += interval`
  // sampler drifts and eventually gains or loses a sample against the
  // horizon. Deriving sample k's time as k * interval from an integer index
  // keeps the count exact: floor(horizon / interval) + 1.
  auto config = small_config(1);
  config.horizon = 100.0;
  config.record_timeline = true;
  config.sample_interval = 0.1;
  const auto trace = make_trace({{0, 1, 0.0, 50.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  engine.run();
  EXPECT_EQ(engine.recorder().timeline().size(), 1001u);
}

TEST(EngineEdge, SamplerCountMatchesClosedForm) {
  auto config = small_config(1);
  config.horizon = 600'000.0;
  config.record_timeline = true;
  config.sample_interval = 1'000.0;
  const auto trace = make_trace({{0, 1, 0.0, 50.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  engine.run();
  // floor(600000 / 1000) + 1 samples: t = 0, 1000, ..., 600000.
  EXPECT_EQ(engine.recorder().timeline().size(), 601u);
}

TEST(EngineEdge, ContactStraddlingHorizonIsClamped) {
  // A contact whose tail extends far past the horizon must not enqueue its
  // out-of-range slots or its end event: every pending event fires within
  // the horizon, and the queue holds live work only.
  auto config = small_config(1);
  config.horizon = 500.0;
  const auto trace = make_trace({{0, 1, 400.0, 50'000.0}});  // 496 slots
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_LE(run.end_time, config.horizon);
  // Lazy chaining + horizon clamping: a handful of pending events, never
  // one per future slot.
  EXPECT_LE(run.perf.peak_queue_depth, 8u);
}

TEST(EngineEdge, ExpiryPastHorizonNotScheduled) {
  // fixed_ttl with a TTL beyond the horizon: the copy's expiry can never
  // fire, so it must not sit in the queue.
  auto config = small_config(1);
  config.horizon = 1'000.0;
  config.protocol.kind = ProtocolKind::kFixedTtl;
  config.protocol.fixed_ttl = 50'000.0;
  const auto trace = make_trace({{0, 1, 0.0, 350.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_EQ(run.drops_expired, 0u);
  EXPECT_LE(run.perf.peak_queue_depth, 8u);
}

TEST(EngineEdge, EngineRunIsSingleShotButStateReadable) {
  auto config = small_config(1);
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  Engine engine(config, trace, make_protocol(config.protocol), 1);
  const auto run = engine.run();
  EXPECT_TRUE(run.complete);
  // Post-run inspection stays valid.
  EXPECT_TRUE(engine.node(2).has_delivered(1));
  EXPECT_EQ(engine.recorder().delivered_count(), 1u);
}

}  // namespace
}  // namespace epi::routing
