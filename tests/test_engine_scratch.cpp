// Allocation accounting on the contact hot path: after construction every
// scratch borrow must be served from pre-reserved capacity. The counters are
// PerfCounters::scratch_reuses / scratch_allocs — a run with scratch_allocs
// != 0 means a per-contact heap allocation crept back into the engine or a
// protocol hook.
#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "routing/engine.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;
using test::run_engine;
using test::small_config;

metrics::RunSummary run_protocol(const char* protocol) {
  // A busy RWP scenario: enough contacts, purges and multi-slot sessions to
  // exercise every scratch consumer (offer scans, immunity purge sweeps,
  // session slots, P-Q coin tables).
  const auto spec = exp::rwp_scenario();
  const auto trace = exp::build_contact_trace(spec, 7);
  SimulationConfig config;
  config.node_count = spec.node_count();
  config.buffer_capacity = 10;
  config.load = 25;
  config.source = 0;
  config.destination = spec.node_count() - 1;
  config.horizon = spec.horizon();
  config.protocol.kind = protocol_from_string(protocol);
  Engine engine(config, trace, routing::make_protocol(config.protocol), 7);
  return engine.run();
}

TEST(EngineScratch, SteadyStateContactPathNeverAllocates) {
  // immunity is the heaviest scratch user (bounded i-list merges plus eager
  // purge sweeps on every contact); pq adds coin tables and lazy overwrite,
  // spray_and_wait covers the consumed-copy sweep in the baselines.
  for (const char* protocol :
       {"pure_epidemic", "immunity", "pq_epidemic", "spray_and_wait"}) {
    SCOPED_TRACE(protocol);
    const auto run = run_protocol(protocol);
    EXPECT_GT(run.perf.scratch_reuses, 0u);
    EXPECT_EQ(run.perf.scratch_allocs, 0u);
  }
}

TEST(EngineScratch, HandCraftedContactsAreCountedToo) {
  // Even a three-node direct-delivery run books its offer scans as reuses:
  // the counters are engine-level, not protocol-level.
  auto config = small_config(/*load=*/3);
  const auto trace = make_trace({{0, 2, 0.0, 314.0}});
  const auto run = run_engine(config, trace);
  EXPECT_GT(run.perf.scratch_reuses, 0u);
  EXPECT_EQ(run.perf.scratch_allocs, 0u);
}

}  // namespace
}  // namespace epi::routing
