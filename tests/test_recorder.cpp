#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

namespace epi::metrics {
namespace {

using dtn::RemoveReason;

TEST(Recorder, EmptyRunIsZero) {
  Recorder r(4, 10);
  r.finalize(100.0);
  EXPECT_EQ(r.created_count(), 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(r.avg_buffer_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(r.avg_duplication_rate(), 0.0);
  EXPECT_FALSE(r.completion_time().has_value());
}

TEST(Recorder, DeliveryRatioOverCreated) {
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_delivered(1, 50.0);
  r.finalize(100.0);
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 0.5);
  EXPECT_EQ(r.delivered_count(), 1u);
  EXPECT_FALSE(r.completion_time().has_value());
}

TEST(Recorder, CompletionWhenAllDelivered) {
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_delivered(2, 30.0);
  r.on_delivered(1, 70.0);
  r.finalize(100.0);
  ASSERT_TRUE(r.completion_time().has_value());
  EXPECT_DOUBLE_EQ(*r.completion_time(), 70.0);
  EXPECT_DOUBLE_EQ(r.last_delivery_time(), 70.0);
}

TEST(Recorder, MeanBundleDelay) {
  Recorder r(4, 10);
  r.on_created(1, 10.0);
  r.on_created(2, 20.0);
  r.on_delivered(1, 110.0);  // delay 100
  r.on_delivered(2, 320.0);  // delay 300
  r.finalize(400.0);
  EXPECT_DOUBLE_EQ(r.mean_bundle_delay(), 200.0);
}

TEST(Recorder, BufferOccupancyIsExactIntegral) {
  // One node of capacity 10 holds 1 bundle for [0, 50) and 2 for [50, 100):
  // integral = 50 + 100 = 150; occupancy = 150 / (4 nodes * 10 * 100).
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_stored(0, 2, 50.0);
  r.finalize(100.0);
  EXPECT_DOUBLE_EQ(r.avg_buffer_occupancy(), 150.0 / 4000.0);
}

TEST(Recorder, BufferOccupancyDropsOnRemoval) {
  // Node 0 holds bundle 1 during [0, 40) only: integral 40 over 2*5*100.
  Recorder r(2, 5);
  r.on_created(1, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_removed(0, 1, 40.0, RemoveReason::kExpired);
  r.finalize(100.0);
  EXPECT_DOUBLE_EQ(r.avg_buffer_occupancy(), 40.0 / 1000.0);
}

TEST(Recorder, PeakDuplicationRate) {
  // Bundle 1 reaches 3 of 4 nodes at its peak, then copies are removed.
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_stored(1, 1, 10.0);
  r.on_stored(2, 1, 20.0);
  r.on_removed(1, 1, 30.0, RemoveReason::kExpired);
  r.on_removed(2, 1, 30.0, RemoveReason::kExpired);
  r.finalize(100.0);
  EXPECT_DOUBLE_EQ(r.avg_duplication_rate(), 3.0 / 4.0);
}

TEST(Recorder, PeakDuplicationAveragesOverBundles) {
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_stored(0, 1, 0.0);  // bundle 1 peaks at 1 copy
  r.on_stored(0, 2, 0.0);
  r.on_stored(1, 2, 5.0);  // bundle 2 peaks at 2 copies
  r.finalize(10.0);
  EXPECT_DOUBLE_EQ(r.avg_duplication_rate(), (0.25 + 0.5) / 2.0);
}

TEST(Recorder, TimeDuplicationFreezesAtDelivery) {
  // Bundle 1: 1 copy over [0, 100), delivered at 100, copies keep changing
  // afterwards but must not affect the pre-delivery time-average.
  Recorder r(2, 10);
  r.on_created(1, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_delivered(1, 100.0);
  r.on_stored(1, 1, 150.0);
  r.finalize(200.0);
  EXPECT_DOUBLE_EQ(r.avg_time_duplication_rate(), 0.5);  // 1 of 2 nodes
}

TEST(Recorder, RemovalReasonsCounted) {
  Recorder r(2, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_created(3, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_stored(0, 2, 0.0);
  r.on_stored(0, 3, 0.0);
  r.on_removed(0, 1, 10.0, RemoveReason::kExpired);
  r.on_removed(0, 2, 10.0, RemoveReason::kEvicted);
  r.on_removed(0, 3, 10.0, RemoveReason::kImmunized);
  r.finalize(20.0);
  EXPECT_EQ(r.removed(RemoveReason::kExpired), 1u);
  EXPECT_EQ(r.removed(RemoveReason::kEvicted), 1u);
  EXPECT_EQ(r.removed(RemoveReason::kImmunized), 1u);
  EXPECT_EQ(r.removed(RemoveReason::kConsumed), 0u);
}

TEST(Recorder, CountsTransfersControlAndContacts) {
  Recorder r(2, 10);
  r.on_created(1, 0.0);
  r.on_transfer(1, 5.0);
  r.on_transfer(1, 6.0);
  r.on_control_records(10);
  r.on_control_records(5);
  r.on_contact();
  r.finalize(10.0);
  EXPECT_EQ(r.bundle_transmissions(), 2u);
  EXPECT_EQ(r.control_records(), 15u);
  EXPECT_EQ(r.contacts(), 1u);
}

TEST(Recorder, TimelineSnapshotsState) {
  Recorder r(2, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_stored(0, 1, 0.0);
  r.sample(10.0, /*intended_load=*/4);
  r.on_stored(1, 1, 20.0);
  r.on_delivered(2, 30.0);
  r.on_transfer(1, 30.0);
  r.sample(40.0, 4);
  r.finalize(50.0);

  const auto& timeline = r.timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].t, 10.0);
  EXPECT_EQ(timeline[0].live_copies, 1u);
  EXPECT_DOUBLE_EQ(timeline[0].buffer_occupancy, 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(timeline[0].delivered_fraction, 0.0);
  EXPECT_EQ(timeline[1].live_copies, 2u);
  EXPECT_DOUBLE_EQ(timeline[1].delivered_fraction, 0.25);
  EXPECT_EQ(timeline[1].transmissions, 1u);
}

TEST(Recorder, TimelineEmptyWithoutSampling) {
  Recorder r(2, 10);
  r.finalize(1.0);
  EXPECT_TRUE(r.timeline().empty());
}

TEST(Recorder, InstantDeliveryExcludedFromTimeDup) {
  Recorder r(2, 10);
  r.on_created(1, 50.0);
  r.on_delivered(1, 50.0);  // zero routed lifetime
  r.finalize(100.0);
  EXPECT_DOUBLE_EQ(r.avg_time_duplication_rate(), 0.0);
}

}  // namespace
}  // namespace epi::metrics
