#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace epi::exp {
namespace {

Figure tiny_figure() {
  Figure figure;
  figure.id = "figXX";
  figure.title = "test figure";
  figure.metric = Metric::kDeliveryRatio;
  figure.labels = {"alpha", "beta"};
  for (int s = 0; s < 2; ++s) {
    SweepResult result;
    result.scenario_name = "trace";
    result.loads = {5, 10};
    for (std::size_t li = 0; li < 2; ++li) {
      metrics::LoadPoint point;
      point.load = result.loads[li];
      point.delivery_ratio.mean = 0.1 * (s + 1) + 0.01 * static_cast<double>(li);
      point.delay.mean = 100.0 * (s + 1);
      result.points.push_back(point);
    }
    figure.results.push_back(std::move(result));
  }
  return figure;
}

TEST(Metric, NamesAreDistinct) {
  EXPECT_NE(metric_name(Metric::kDelay), metric_name(Metric::kDeliveryRatio));
  EXPECT_NE(metric_name(Metric::kBufferOccupancy),
            metric_name(Metric::kDuplicationRate));
}

TEST(Metric, MetricOfSelectsField) {
  metrics::LoadPoint p;
  p.delay.mean = 7.0;
  p.delivery_ratio.mean = 0.5;
  p.control_records.mean = 99.0;
  EXPECT_DOUBLE_EQ(metric_of(p, Metric::kDelay).mean, 7.0);
  EXPECT_DOUBLE_EQ(metric_of(p, Metric::kDeliveryRatio).mean, 0.5);
  EXPECT_DOUBLE_EQ(metric_of(p, Metric::kControlRecords).mean, 99.0);
}

TEST(Figure, ValueLooksUpSeriesAndLoad) {
  const Figure f = tiny_figure();
  EXPECT_DOUBLE_EQ(f.value(0, 0), 0.10);
  EXPECT_DOUBLE_EQ(f.value(1, 1), 0.21);
}

TEST(Figure, SeriesMeanAveragesLoads) {
  const Figure f = tiny_figure();
  EXPECT_NEAR(f.series_mean(0), 0.105, 1e-12);
}

TEST(Figure, SeriesByLabel) {
  const Figure f = tiny_figure();
  EXPECT_EQ(f.series("alpha"), 0u);
  EXPECT_EQ(f.series("beta"), 1u);
  EXPECT_THROW((void)f.series("gamma"), std::out_of_range);
}

TEST(PrintFigure, ContainsHeaderLabelsAndRows) {
  const Figure f = tiny_figure();
  std::ostringstream out;
  print_figure(out, f);
  const std::string text = out.str();
  EXPECT_NE(text.find("figXX"), std::string::npos);
  EXPECT_NE(text.find("test figure"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("0.1000"), std::string::npos);
  EXPECT_NE(text.find("avg delivery ratio"), std::string::npos);
}

TEST(PrintFigureCsv, OneLinePerLoad) {
  const Figure f = tiny_figure();
  std::ostringstream out;
  print_figure_csv(out, f);
  const std::string text = out.str();
  EXPECT_NE(text.find("load,alpha,beta"), std::string::npos);
  int lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 load rows
}

TEST(PrintFigure, EmptyFigureDoesNotCrash) {
  Figure f;
  f.id = "empty";
  f.title = "no series";
  std::ostringstream out;
  print_figure(out, f);
  print_figure_csv(out, f);
  EXPECT_NE(out.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace epi::exp
