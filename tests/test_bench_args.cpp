// CLI hardening tests for the shared bench argument parser: malformed
// input must exit with code 2 and a clear message, never run with silently
// defaulted values.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace epi::bench {
namespace {

/// Runs parse_args over a brace-list of arguments (argv[0] supplied).
Args parse(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "bench_under_test");
  std::vector<char*> argv;
  argv.reserve(argv_strings.size());
  for (auto& s : argv_strings) argv.push_back(s.data());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, DefaultsWhenNoFlags) {
  const Args args = parse({});
  EXPECT_FALSE(args.csv);
  EXPECT_FALSE(args.perf);
  EXPECT_TRUE(args.trace_out.empty());
}

TEST(BenchArgs, ParsesValuesBothSpellings) {
  const Args args = parse({"--reps", "3", "--seed=99", "--threads", "2",
                           "--csv", "--trace-out=/tmp/t.jsonl"});
  EXPECT_EQ(args.options.replications, 3u);
  EXPECT_EQ(args.options.master_seed, 99u);
  EXPECT_EQ(args.options.threads, 2u);
  EXPECT_TRUE(args.csv);
  EXPECT_EQ(args.trace_out, "/tmp/t.jsonl");
}

TEST(BenchArgs, StoreDefaultsOnAtResultsRunstore) {
  const Args args = parse({});
  EXPECT_EQ(args.store_dir, "results/runstore");
  EXPECT_FALSE(args.store_stats);
}

TEST(BenchArgs, StoreFlagsParseBothSpellings) {
  const Args args = parse({"--store", "/tmp/mystore", "--store-stats"});
  EXPECT_EQ(args.store_dir, "/tmp/mystore");
  EXPECT_TRUE(args.store_stats);
  const Args inline_form = parse({"--store=/tmp/other"});
  EXPECT_EQ(inline_form.store_dir, "/tmp/other");
}

TEST(BenchArgs, NoStoreClearsTheDirectory) {
  const Args args = parse({"--no-store"});
  EXPECT_TRUE(args.store_dir.empty());
  // Order matters: the later flag wins either way.
  EXPECT_TRUE(parse({"--store=/tmp/s", "--no-store"}).store_dir.empty());
  EXPECT_EQ(parse({"--no-store", "--store=/tmp/s"}).store_dir, "/tmp/s");
}

TEST(BenchArgsDeathTest, StoreFlagRejectsEmptyAndMissingValues) {
  EXPECT_EXIT(parse({"--store="}), ::testing::ExitedWithCode(2),
              "--store needs a directory");
  EXPECT_EXIT(parse({"--store"}), ::testing::ExitedWithCode(2),
              "missing value for --store");
  EXPECT_EXIT(parse({"--no-store=1"}), ::testing::ExitedWithCode(2),
              "--no-store takes no value");
  EXPECT_EXIT(parse({"--store-stats=yes"}), ::testing::ExitedWithCode(2),
              "--store-stats takes no value");
}

TEST(BenchArgsDeathTest, BooleanFlagRejectsInlineValue) {
  EXPECT_EXIT(parse({"--csv=nonsense"}), ::testing::ExitedWithCode(2),
              "--csv takes no value");
  EXPECT_EXIT(parse({"--perf=1"}), ::testing::ExitedWithCode(2),
              "--perf takes no value");
}

TEST(BenchArgsDeathTest, NonNumericNumbersRejected) {
  EXPECT_EXIT(parse({"--reps", "abc"}), ::testing::ExitedWithCode(2),
              "invalid value for --reps");
  EXPECT_EXIT(parse({"--seed=12x"}), ::testing::ExitedWithCode(2),
              "invalid value for --seed");
  EXPECT_EXIT(parse({"--threads", "-4"}), ::testing::ExitedWithCode(2),
              "invalid value for --threads");
  EXPECT_EXIT(parse({"--reps", ""}), ::testing::ExitedWithCode(2),
              "invalid value for --reps");
  EXPECT_EXIT(parse({"--reps", "3.5"}), ::testing::ExitedWithCode(2),
              "invalid value for --reps");
}

TEST(BenchArgsDeathTest, MissingValueRejected) {
  EXPECT_EXIT(parse({"--reps"}), ::testing::ExitedWithCode(2),
              "missing value for --reps");
}

TEST(BenchArgsDeathTest, DuplicateFlagRejected) {
  EXPECT_EXIT(parse({"--reps", "3", "--reps", "4"}),
              ::testing::ExitedWithCode(2), "duplicate flag --reps");
  EXPECT_EXIT(parse({"--seed=1", "--seed=2"}), ::testing::ExitedWithCode(2),
              "duplicate flag --seed");
  // Mixed spellings of the same flag are still the same flag.
  EXPECT_EXIT(parse({"--threads", "2", "--threads=4"}),
              ::testing::ExitedWithCode(2), "duplicate flag --threads");
  EXPECT_EXIT(parse({"--csv", "--csv"}), ::testing::ExitedWithCode(2),
              "duplicate flag --csv");
}

TEST(BenchArgs, SummaryCodecFlagsParseBothSpellings) {
  const Args defaults = parse({});
  EXPECT_EQ(defaults.options.summary.mode, SummaryMode::kExact);
  EXPECT_EQ(defaults.options.summary.filter_bits, 8u);
  EXPECT_EQ(defaults.options.summary.hashes, 0u);

  const Args args = parse({"--summary-mode", "bloom", "--filter-bits=12",
                           "--filter-hashes", "5"});
  EXPECT_EQ(args.options.summary.mode, SummaryMode::kBloom);
  EXPECT_EQ(args.options.summary.filter_bits, 12u);
  EXPECT_EQ(args.options.summary.hashes, 5u);
  EXPECT_EQ(parse({"--summary-mode=exact"}).options.summary.mode,
            SummaryMode::kExact);
}

TEST(BenchArgsDeathTest, SummaryCodecFlagsRejectBadValues) {
  EXPECT_EXIT(parse({"--summary-mode", "huffman"}),
              ::testing::ExitedWithCode(2),
              "invalid value for --summary-mode");
  EXPECT_EXIT(parse({"--filter-bits", "0"}), ::testing::ExitedWithCode(2),
              "--filter-bits must be in 1..64");
  EXPECT_EXIT(parse({"--filter-bits=65"}), ::testing::ExitedWithCode(2),
              "--filter-bits must be in 1..64");
  EXPECT_EXIT(parse({"--filter-bits", "abc"}), ::testing::ExitedWithCode(2),
              "invalid value for --filter-bits");
  EXPECT_EXIT(parse({"--filter-hashes=17"}), ::testing::ExitedWithCode(2),
              "--filter-hashes must be in 0..16");
  EXPECT_EXIT(parse({"--summary-mode=bloom", "--summary-mode=exact"}),
              ::testing::ExitedWithCode(2), "duplicate flag --summary-mode");
}

TEST(BenchArgsDeathTest, UnknownFlagRejected) {
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown argument");
}

}  // namespace
}  // namespace epi::bench
