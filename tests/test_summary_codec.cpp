// Summary-codec seam: parameter validation, Bloom filter determinism and
// false-positive statistics, and the engine's behaviour under compact
// advertisements (suppressed offers, per-slot re-advertisement billing, and
// counter/stats reconciliation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "core/error.hpp"
#include "core/summary_mode.hpp"
#include "dtn/summary_codec.hpp"
#include "exp/builders.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "metrics/summary.hpp"
#include "obs/stats.hpp"

namespace epi {
namespace {

// --- parameter block ----------------------------------------------------------

TEST(SummaryCodecParams, DefaultsToExactWithNoKeyFragment) {
  const SummaryCodecParams params;
  EXPECT_EQ(params.mode, SummaryMode::kExact);
  EXPECT_FALSE(params.compact());
  EXPECT_NO_THROW(params.validate());
}

TEST(SummaryCodecParams, ResolvedHashesDerivesFpOptimalCount) {
  SummaryCodecParams params;
  params.mode = SummaryMode::kBloom;
  // k* = round(bits * ln 2): 8 -> 6, 16 -> 11, 2 -> 1 (floored at 1).
  params.filter_bits = 8;
  EXPECT_EQ(params.resolved_hashes(), 6u);
  params.filter_bits = 16;
  EXPECT_EQ(params.resolved_hashes(), 11u);
  params.filter_bits = 2;
  EXPECT_EQ(params.resolved_hashes(), 1u);
  params.filter_bits = 1;
  EXPECT_EQ(params.resolved_hashes(), 1u);
  // An explicit k overrides the derivation verbatim.
  params.hashes = 3;
  EXPECT_EQ(params.resolved_hashes(), 3u);
}

TEST(SummaryCodecParams, AnalyticFpRateMatchesClosedForm) {
  SummaryCodecParams params;
  params.mode = SummaryMode::kBloom;
  params.filter_bits = 8;
  params.hashes = 6;
  const double k = 6.0;
  const double expected = std::pow(1.0 - std::exp(-k / 8.0), k);
  EXPECT_DOUBLE_EQ(params.analytic_fp_rate(), expected);
  EXPECT_NEAR(params.analytic_fp_rate(), 0.0216, 5e-4);  // textbook value
}

TEST(SummaryCodecParams, ValidateRejectsOutOfRangeEvenUnderExactMode) {
  SummaryCodecParams params;  // mode stays kExact: a bad Bloom block must
                              // never ride silently under the default mode
  params.filter_bits = 0;
  EXPECT_THROW(params.validate(), ConfigError);
  params.filter_bits = 65;
  EXPECT_THROW(params.validate(), ConfigError);
  params.filter_bits = 8;
  params.hashes = 17;
  EXPECT_THROW(params.validate(), ConfigError);
  params.hashes = 16;
  EXPECT_NO_THROW(params.validate());
}

TEST(SummaryCodecParams, ModeRoundTripsThroughStrings) {
  EXPECT_EQ(summary_mode_from_string("exact"), SummaryMode::kExact);
  EXPECT_EQ(summary_mode_from_string("bloom"), SummaryMode::kBloom);
  EXPECT_EQ(to_string(SummaryMode::kExact), std::string_view("exact"));
  EXPECT_EQ(to_string(SummaryMode::kBloom), std::string_view("bloom"));
  EXPECT_THROW((void)summary_mode_from_string("huffman"), ConfigError);
}

TEST(RunSpecBuilder, RejectsInvalidSummaryBlock) {
  SummaryCodecParams bad;
  bad.mode = SummaryMode::kBloom;
  bad.filter_bits = 0;
  EXPECT_THROW((void)exp::RunSpecBuilder()
                   .scenario(exp::trace_scenario())
                   .summary(bad)
                   .build(),
               ConfigError);
  bad.filter_bits = 8;
  bad.hashes = 17;
  exp::ProtocolOptions block;
  block.summary = bad;
  EXPECT_THROW((void)exp::RunSpecBuilder()
                   .scenario(exp::trace_scenario())
                   .options(block)
                   .build(),
               ConfigError);
}

// --- Bloom filter --------------------------------------------------------------

dtn::BundleBuffer filled_buffer(std::uint32_t count, BundleId first_id) {
  dtn::BundleBuffer buffer(count == 0 ? 1 : count);
  for (std::uint32_t i = 0; i < count; ++i) {
    dtn::StoredBundle copy;
    copy.id = first_id + i;
    buffer.insert(copy);
  }
  return buffer;
}

TEST(BloomFilter, NeverFalseNegativeAndDeterministic) {
  const dtn::BundleBuffer buffer = filled_buffer(10, 1);
  dtn::BloomFilter filter;
  filter.rebuild(buffer, 8, 6);
  for (const auto& entry : buffer.entries()) {
    EXPECT_TRUE(filter.may_contain(entry.id));
  }
  EXPECT_EQ(filter.bit_count(), 80u);
  EXPECT_EQ(filter.byte_size(), 10u);

  // Rebuilding from identical contents answers identically for any probe —
  // the filter is a pure function of (contents, parameters).
  dtn::BloomFilter again;
  again.rebuild(buffer, 8, 6);
  for (BundleId id = 1; id <= 1000; ++id) {
    EXPECT_EQ(filter.may_contain(id), again.may_contain(id)) << id;
  }
}

TEST(BloomFilter, EmptyBufferClaimsNothing) {
  const dtn::BundleBuffer empty(4);
  dtn::BloomFilter filter;
  filter.rebuild(empty, 8, 6);
  EXPECT_EQ(filter.bit_count(), 0u);
  EXPECT_EQ(filter.byte_size(), 0u);
  for (BundleId id = 1; id <= 64; ++id) {
    EXPECT_FALSE(filter.may_contain(id));
  }
}

TEST(BloomFilter, ObservedFpRateTracksAnalyticPrediction) {
  // n = 64 members at 8 bits/bundle with the derived k = 6 predicts
  // (1 - e^{-6/8})^6 ~ 2.16% false positives. Probe a large disjoint id
  // range and require the observed rate inside a generous band — the
  // double-hash probe sequence is deterministic, so this never flakes, but
  // the band still catches a broken mixer (rate -> ~100%) or a broken
  // insert (rate -> 0 with false negatives caught above).
  constexpr std::uint32_t kMembers = 64;
  constexpr std::uint32_t kBitsPerBundle = 8;
  SummaryCodecParams params;
  params.mode = SummaryMode::kBloom;
  params.filter_bits = kBitsPerBundle;
  const double predicted = params.analytic_fp_rate();

  const dtn::BundleBuffer buffer = filled_buffer(kMembers, 1);
  dtn::BloomFilter filter;
  filter.rebuild(buffer, kBitsPerBundle, params.resolved_hashes());

  constexpr std::uint32_t kProbes = 20000;
  std::uint32_t positives = 0;
  for (std::uint32_t i = 0; i < kProbes; ++i) {
    const BundleId absent = 1'000'000 + i;  // disjoint from members 1..64
    if (filter.may_contain(absent)) ++positives;
  }
  const double observed = static_cast<double>(positives) / kProbes;
  EXPECT_NEAR(observed, predicted, 0.5 * predicted + 0.005)
      << "observed " << observed << " vs analytic " << predicted;
}

// --- engine behaviour ----------------------------------------------------------

exp::RunSpec bloom_spec(std::uint32_t filter_bits) {
  const auto scenario = exp::trace_scenario();
  exp::RunSpec spec;
  spec.protocol.kind = ProtocolKind::kPqEpidemic;
  spec.protocol.p = 1.0;
  spec.protocol.q = 1.0;
  spec.load = 25;
  spec.horizon = scenario.horizon();
  spec.session_gap = scenario.session_gap;
  spec.options.summary.mode = SummaryMode::kBloom;
  spec.options.summary.filter_bits = filter_bits;
  return spec;
}

TEST(BloomEngine, SparseFiltersSuppressTransfersAndStayDeterministic) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);

  exp::RunSpec exact = bloom_spec(8);
  exact.options.summary = {};  // back to the default exact codec
  const auto base = exp::run_single(exact, trace);
  const auto sparse = exp::run_single(bloom_spec(2), trace);
  const auto sparse_again = exp::run_single(bloom_spec(2), trace);

  // At 2 bits/bundle false positives must actually fire on this workload,
  // and each suppression is an offer the exact codec would have made.
  EXPECT_GT(sparse.perf.transfers_suppressed_fp, 0u);
  EXPECT_EQ(base.perf.transfers_suppressed_fp, 0u);
  EXPECT_LE(sparse.perf.transfers, base.perf.transfers);
  EXPECT_TRUE(metrics::deterministic_equal(sparse, sparse_again));

  // Compact codecs re-advertise at every surviving transfer slot, so the
  // exchange count must exceed the exact codec's one-per-contact.
  EXPECT_GT(sparse.perf.summary_exchanges, sparse.contacts);
  EXPECT_EQ(base.perf.summary_exchanges, base.contacts);
  EXPECT_GT(sparse.perf.summary_ad_bytes, 0u);
  // signaling_bytes() is the advertised + control total on every summary.
  EXPECT_EQ(sparse.perf.signaling_bytes(),
            sparse.perf.summary_ad_bytes + sparse.perf.control_bytes);
}

TEST(BloomEngine, DenserFiltersCostMoreBytesAndSuppressLess) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);
  const auto sparse = exp::run_single(bloom_spec(2), trace);
  const auto dense = exp::run_single(bloom_spec(16), trace);
  EXPECT_LT(dense.perf.transfers_suppressed_fp,
            sparse.perf.transfers_suppressed_fp);
  EXPECT_GE(dense.perf.transfers, sparse.perf.transfers);
}

TEST(BloomEngine, StatsProfileReconcilesWithPerfCounters) {
  const auto scenario = exp::trace_scenario();
  const auto trace = exp::build_contact_trace(scenario, 42);
  exp::RunSpec spec = bloom_spec(8);
  spec.protocol.kind = ProtocolKind::kImmunity;  // exercises control bytes
  spec.collect_stats = true;
  const auto run = exp::run_single(spec, trace);
  ASSERT_NE(run.stats, nullptr);
  // The satellite bugfix: per-slot re-advertisements are traced too, so the
  // observed stats byte model reconciles exactly with the perf counters.
  EXPECT_EQ(run.stats->sv_bytes(), run.perf.summary_ad_bytes);
  EXPECT_EQ(run.stats->control_bytes(), run.perf.control_bytes);
  EXPECT_EQ(run.stats->sv_exchanges, run.perf.summary_exchanges);
  EXPECT_GT(run.perf.control_bytes, 0u);
}

// --- store-key discipline -------------------------------------------------------

TEST(StoreKey, SummaryFragmentJoinsOnlyForCompactModes) {
  const auto scenario = exp::trace_scenario();
  exp::RunSpec spec;
  spec.horizon = scenario.horizon();
  spec.session_gap = scenario.session_gap;
  const std::string default_key = exp::store_key(scenario, spec);
  EXPECT_EQ(default_key.find("summary="), std::string::npos);

  spec.options.summary.mode = SummaryMode::kBloom;
  spec.options.summary.filter_bits = 8;
  const std::string bloom_key = exp::store_key(scenario, spec);
  EXPECT_NE(bloom_key.find("|summary=bloom{bpb=8;k=6;}"), std::string::npos)
      << bloom_key;

  // An explicit k equal to the derived optimum shares the auto-k identity.
  exp::RunSpec pinned = spec;
  pinned.options.summary.hashes = 6;
  EXPECT_EQ(exp::store_key(scenario, pinned), bloom_key);
  pinned.options.summary.hashes = 3;
  EXPECT_NE(exp::store_key(scenario, pinned), bloom_key);
}

}  // namespace
}  // namespace epi
