#include "dtn/node.hpp"

#include <gtest/gtest.h>

namespace epi::dtn {
namespace {

TEST(DtnNode, Construction) {
  const DtnNode node(3, 10);
  EXPECT_EQ(node.id(), 3u);
  EXPECT_EQ(node.buffer().capacity(), 10u);
  EXPECT_EQ(node.contact_count(), 0u);
}

TEST(DtnNode, NoIntervalBeforeTwoContacts) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.last_interval().has_value());
  node.note_contact_start(100.0);
  EXPECT_FALSE(node.last_interval().has_value());
  EXPECT_EQ(node.last_contact_start(), 100.0);
}

TEST(DtnNode, IntervalBetweenLastTwoContacts) {
  DtnNode node(0, 10);
  node.note_contact_start(100.0);
  node.note_contact_start(400.0);
  ASSERT_TRUE(node.last_interval().has_value());
  EXPECT_DOUBLE_EQ(*node.last_interval(), 300.0);
  node.note_contact_start(10'000.0);
  EXPECT_DOUBLE_EQ(*node.last_interval(), 9'600.0);
}

TEST(DtnNode, SessionClusteringMergesBursts) {
  DtnNode node(0, 10);
  // A gathering: three contacts within minutes -> one session.
  node.note_contact_start(1'000.0, 1'800.0);
  node.note_contact_start(1'200.0, 1'800.0);
  node.note_contact_start(1'900.0, 1'800.0);
  EXPECT_FALSE(node.last_session_interval().has_value());
  // Next gathering hours later -> second session.
  node.note_contact_start(20'000.0, 1'800.0);
  ASSERT_TRUE(node.last_session_interval().has_value());
  EXPECT_DOUBLE_EQ(*node.last_session_interval(), 19'000.0);
}

TEST(DtnNode, SessionGapBoundaryIsExclusive) {
  DtnNode node(0, 10);
  node.note_contact_start(0.0, 100.0);
  node.note_contact_start(100.0, 100.0);  // exactly the gap: same session
  EXPECT_FALSE(node.last_session_interval().has_value());
  node.note_contact_start(201.0, 100.0);  // 101 > gap: new session
  ASSERT_TRUE(node.last_session_interval().has_value());
  EXPECT_DOUBLE_EQ(*node.last_session_interval(), 201.0);
}

TEST(DtnNode, PerPeerIntervals) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.last_interval_with(1).has_value());
  node.note_peer_contact(1, 100.0);
  node.note_peer_contact(2, 150.0);
  EXPECT_FALSE(node.last_interval_with(1).has_value());
  node.note_peer_contact(1, 700.0);
  ASSERT_TRUE(node.last_interval_with(1).has_value());
  EXPECT_DOUBLE_EQ(*node.last_interval_with(1), 600.0);
  EXPECT_FALSE(node.last_interval_with(2).has_value());
}

TEST(DtnNode, ContactCounter) {
  DtnNode node(0, 10);
  node.bump_contact_count();
  node.bump_contact_count();
  EXPECT_EQ(node.contact_count(), 2u);
}

TEST(DtnNode, DeliveredTracking) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.has_delivered(1));
  node.mark_delivered(1);
  node.mark_delivered(3);
  EXPECT_TRUE(node.has_delivered(1));
  EXPECT_TRUE(node.has_delivered(3));
  EXPECT_FALSE(node.has_delivered(2));
  EXPECT_EQ(node.delivered_prefix(), 1u);
  node.mark_delivered(2);
  EXPECT_EQ(node.delivered_prefix(), 3u);
}

TEST(DtnNode, KnowsImmuneFromIlist) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.knows_immune(5));
  node.ilist().add(5);
  EXPECT_TRUE(node.knows_immune(5));
}

TEST(DtnNode, KnowsImmuneFromCumulativeTable) {
  DtnNode node(0, 10);
  node.cumulative().adopt(4);
  EXPECT_TRUE(node.knows_immune(3));
  EXPECT_TRUE(node.knows_immune(4));
  EXPECT_FALSE(node.knows_immune(5));
}

}  // namespace
}  // namespace epi::dtn
