#include "dtn/node.hpp"

#include <gtest/gtest.h>

#include "dtn/encounter_state.hpp"

namespace epi::dtn {
namespace {

/// Encounter bookkeeping moved into the shared struct-of-arrays table; these
/// fixtures wire one node (id 0) to a two-node table and drive contacts
/// through it, exercising both the table's arithmetic and the node's
/// pointer-backed query surface.
struct WiredNode {
  explicit WiredNode(SimTime session_gap = 1'800.0)
      : encounters(2, session_gap), node(0, 10) {
    node.attach_encounters(&encounters);
  }
  void contact(SimTime t) { encounters.on_contact_start(0, 1, t); }
  EncounterState encounters;
  DtnNode node;
};

TEST(DtnNode, Construction) {
  const DtnNode node(3, 10);
  EXPECT_EQ(node.id(), 3u);
  EXPECT_EQ(node.buffer().capacity(), 10u);
  EXPECT_EQ(node.contact_count(), 0u);
}

TEST(DtnNode, DetachedNodeHasNoEncounterHistory) {
  const DtnNode node(0, 10);
  EXPECT_FALSE(node.last_interval().has_value());
  EXPECT_FALSE(node.last_session_interval().has_value());
  EXPECT_FALSE(node.last_contact_start().has_value());
  EXPECT_FALSE(node.last_interval_with(1).has_value());
  EXPECT_EQ(node.contact_count(), 0u);
}

TEST(DtnNode, NoIntervalBeforeTwoContacts) {
  WiredNode w;
  EXPECT_FALSE(w.node.last_interval().has_value());
  w.contact(100.0);
  EXPECT_FALSE(w.node.last_interval().has_value());
  EXPECT_EQ(w.node.last_contact_start(), 100.0);
}

TEST(DtnNode, IntervalBetweenLastTwoContacts) {
  WiredNode w;
  w.contact(100.0);
  w.contact(400.0);
  ASSERT_TRUE(w.node.last_interval().has_value());
  EXPECT_DOUBLE_EQ(*w.node.last_interval(), 300.0);
  w.contact(10'000.0);
  EXPECT_DOUBLE_EQ(*w.node.last_interval(), 9'600.0);
}

TEST(DtnNode, SessionClusteringMergesBursts) {
  WiredNode w(1'800.0);
  // A gathering: three contacts within minutes -> one session.
  w.contact(1'000.0);
  w.contact(1'200.0);
  w.contact(1'900.0);
  EXPECT_FALSE(w.node.last_session_interval().has_value());
  // Next gathering hours later -> second session.
  w.contact(20'000.0);
  ASSERT_TRUE(w.node.last_session_interval().has_value());
  EXPECT_DOUBLE_EQ(*w.node.last_session_interval(), 19'000.0);
}

TEST(DtnNode, SessionGapBoundaryIsExclusive) {
  WiredNode w(100.0);
  w.contact(0.0);
  w.contact(100.0);  // exactly the gap: same session
  EXPECT_FALSE(w.node.last_session_interval().has_value());
  w.contact(201.0);  // 101 > gap: new session
  ASSERT_TRUE(w.node.last_session_interval().has_value());
  EXPECT_DOUBLE_EQ(*w.node.last_session_interval(), 201.0);
}

TEST(DtnNode, PerPeerIntervals) {
  EncounterState encounters(3, 1'800.0);
  encounters.track_peer_intervals(true);
  DtnNode node(0, 10);
  node.attach_encounters(&encounters);
  EXPECT_FALSE(node.last_interval_with(1).has_value());
  encounters.on_contact_start(0, 1, 100.0);
  encounters.on_contact_start(0, 2, 150.0);
  EXPECT_FALSE(node.last_interval_with(1).has_value());
  encounters.on_contact_start(0, 1, 700.0);
  ASSERT_TRUE(node.last_interval_with(1).has_value());
  EXPECT_DOUBLE_EQ(*node.last_interval_with(1), 600.0);
  EXPECT_FALSE(node.last_interval_with(2).has_value());
}

TEST(DtnNode, PerPeerIntervalsAreSymmetricAndOptIn) {
  EncounterState encounters(2, 1'800.0);
  // Tracking off (the engine's default): contacts leave no pair history.
  encounters.on_contact_start(0, 1, 10.0);
  encounters.on_contact_start(0, 1, 20.0);
  EXPECT_FALSE(encounters.last_interval_between(0, 1).has_value());
  encounters.track_peer_intervals(true);
  encounters.on_contact_start(0, 1, 100.0);
  encounters.on_contact_start(1, 0, 700.0);  // order must not matter
  ASSERT_TRUE(encounters.last_interval_between(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*encounters.last_interval_between(1, 0), 600.0);
}

TEST(DtnNode, ContactCounter) {
  WiredNode w;
  w.contact(10.0);
  w.contact(20.0);
  EXPECT_EQ(w.node.contact_count(), 2u);
  EXPECT_EQ(w.encounters.contact_count(1), 2u);  // both endpoints booked
}

TEST(DtnNode, EncounterTableTracksBothEndpointsIndependently) {
  EncounterState encounters(3, 100.0);
  encounters.on_contact_start(0, 1, 50.0);
  encounters.on_contact_start(1, 2, 300.0);
  EXPECT_EQ(encounters.contact_count(0), 1u);
  EXPECT_EQ(encounters.contact_count(1), 2u);
  EXPECT_EQ(encounters.contact_count(2), 1u);
  ASSERT_TRUE(encounters.last_interval(1).has_value());
  EXPECT_DOUBLE_EQ(*encounters.last_interval(1), 250.0);
  EXPECT_FALSE(encounters.last_interval(0).has_value());
  EXPECT_FALSE(encounters.last_interval(2).has_value());
}

TEST(DtnNode, DeliveredTracking) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.has_delivered(1));
  node.mark_delivered(1);
  node.mark_delivered(3);
  EXPECT_TRUE(node.has_delivered(1));
  EXPECT_TRUE(node.has_delivered(3));
  EXPECT_FALSE(node.has_delivered(2));
  EXPECT_EQ(node.delivered_prefix(), 1u);
  node.mark_delivered(2);
  EXPECT_EQ(node.delivered_prefix(), 3u);
}

TEST(DtnNode, KnowsImmuneFromIlist) {
  DtnNode node(0, 10);
  EXPECT_FALSE(node.knows_immune(5));
  node.ilist().add(5);
  EXPECT_TRUE(node.knows_immune(5));
}

TEST(DtnNode, KnowsImmuneFromCumulativeTable) {
  DtnNode node(0, 10);
  node.cumulative().adopt(4);
  EXPECT_TRUE(node.knows_immune(3));
  EXPECT_TRUE(node.knows_immune(4));
  EXPECT_FALSE(node.knows_immune(5));
}

}  // namespace
}  // namespace epi::dtn
