#include "mobility/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace epi::mobility {
namespace {

TEST(TraceIo, ParsesSimpleLines) {
  std::istringstream in("0 1 10 20\n1 2 30.5 45.25\n");
  const ContactTrace trace = read_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].a, 0u);
  EXPECT_EQ(trace[0].b, 1u);
  EXPECT_DOUBLE_EQ(trace[1].start, 30.5);
  EXPECT_DOUBLE_EQ(trace[1].end, 45.25);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "0 1 10 20  # trailing comment\n"
      "   \n"
      "# another\n");
  EXPECT_EQ(read_trace(in).size(), 1u);
}

TEST(TraceIo, RejectsShortLine) {
  std::istringstream in("0 1 10\n");
  EXPECT_THROW(read_trace(in), TraceError);
}

TEST(TraceIo, RejectsTrailingGarbage) {
  std::istringstream in("0 1 10 20 bogus\n");
  EXPECT_THROW(read_trace(in), TraceError);
}

TEST(TraceIo, RejectsNegativeNodeId) {
  std::istringstream in("-1 1 10 20\n");
  EXPECT_THROW(read_trace(in), TraceError);
}

TEST(TraceIo, RejectsOutOfRangeNodeId) {
  // 4294967295 == kInvalidNode: reserved sentinel, must not parse.
  std::istringstream in("4294967295 1 10 20\n");
  EXPECT_THROW(read_trace(in), TraceError);
  std::istringstream in2("0 99999999999 10 20\n");
  EXPECT_THROW(read_trace(in2), TraceError);
  try {
    std::istringstream in3("4294967295 1 10 20\n");
    (void)read_trace(in3);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("node id out of range"),
              std::string::npos);
  }
}

TEST(TraceIo, AcceptsLargestValidNodeId) {
  // kInvalidNode - 1 is the largest representable id.
  std::istringstream in("4294967294 1 10 20\n");
  const ContactTrace trace = read_trace(in);
  ASSERT_EQ(trace.size(), 1u);
  // ContactTrace normalises the endpoint order, so check both.
  EXPECT_EQ(std::max(trace[0].a, trace[0].b), 4294967294u);
}

TEST(TraceIo, RejectsSelfContact) {
  std::istringstream in("4 4 10 20\n");
  EXPECT_THROW(read_trace(in), TraceError);
}

TEST(TraceIo, RejectsBackwardsInterval) {
  std::istringstream in("0 1 20 10\n");
  EXPECT_THROW(read_trace(in), TraceError);
}

TEST(TraceIo, ErrorMentionsLineNumber) {
  std::istringstream in("0 1 10 20\n0 1 bad line\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.txt"), TraceError);
}

TEST(TraceIo, RoundTripPreservesContacts) {
  SyntheticHaggleParams params;
  params.horizon = 50'000.0;  // keep the test fast
  const ContactTrace original = generate_synthetic_haggle(params, 7);
  ASSERT_GT(original.size(), 0u);

  std::stringstream buffer;
  write_trace(buffer, original, "round-trip test");
  const ContactTrace parsed = read_trace(buffer);

  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].a, original[i].a);
    EXPECT_EQ(parsed[i].b, original[i].b);
    EXPECT_NEAR(parsed[i].start, original[i].start, 1e-6);
    EXPECT_NEAR(parsed[i].end, original[i].end, 1e-6);
  }
}

TEST(TraceIo, RoundTripIsExact) {
  // write_trace uses max_digits10, so every double must restore
  // bit-identically — including times with no short decimal form.
  std::vector<Contact> contacts{
      {0, 1, 0.1, 523263.4279304677},
      {1, 2, 1.0 / 3.0, 599994.70329111791},
      {2, 3, 6374.9893693076565, 22319.238820141316},
  };
  const ContactTrace original(std::move(contacts));
  std::stringstream buffer;
  write_trace(buffer, original, "exactness test");
  const ContactTrace parsed = read_trace(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].start, original[i].start) << "contact " << i;
    EXPECT_EQ(parsed[i].end, original[i].end) << "contact " << i;
  }
}

TEST(TraceIo, GeneratedTraceRoundTripIsExact) {
  SyntheticHaggleParams params;
  params.horizon = 50'000.0;
  const ContactTrace original = generate_synthetic_haggle(params, 11);
  ASSERT_GT(original.size(), 0u);
  std::stringstream buffer;
  write_trace(buffer, original);
  const ContactTrace parsed = read_trace(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].start, original[i].start) << "contact " << i;
    EXPECT_EQ(parsed[i].end, original[i].end) << "contact " << i;
  }
}

TEST(TraceIo, WriteIncludesHeaderAndComment) {
  std::stringstream buffer;
  write_trace(buffer, ContactTrace{}, "my comment");
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# contact trace"), std::string::npos);
  EXPECT_NE(text.find("my comment"), std::string::npos);
  EXPECT_NE(text.find("contacts=0"), std::string::npos);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/epi_trace_io_test.txt";
  std::vector<Contact> contacts{{0, 1, 5.0, 125.0}, {1, 2, 10.0, 400.0}};
  write_trace_file(path, ContactTrace(std::move(contacts)));
  const ContactTrace loaded = read_trace_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[1].end, 400.0);
}

}  // namespace
}  // namespace epi::mobility
