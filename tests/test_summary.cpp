#include "metrics/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/recorder.hpp"

namespace epi::metrics {
namespace {

TEST(Aggregate, EmptyInput) {
  const Aggregate a = aggregate({});
  EXPECT_EQ(a.count, 0u);
  EXPECT_DOUBLE_EQ(a.mean, 0.0);
}

TEST(Aggregate, SingleValue) {
  const double v[] = {7.0};
  const Aggregate a = aggregate(v);
  EXPECT_DOUBLE_EQ(a.mean, 7.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
  EXPECT_DOUBLE_EQ(a.min, 7.0);
  EXPECT_DOUBLE_EQ(a.max, 7.0);
}

TEST(Aggregate, MeanMinMax) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  const Aggregate a = aggregate(v);
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
  EXPECT_EQ(a.count, 4u);
}

TEST(Aggregate, SampleStddev) {
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Aggregate a = aggregate(v);
  // Known dataset: population sd = 2, sample sd = sqrt(32/7).
  EXPECT_NEAR(a.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Aggregate, Ci95HalfWidth) {
  // n=2: t = 12.706; sd of {1,3} = sqrt(2); hw = 12.706*sqrt(2)/sqrt(2).
  const double two[] = {1.0, 3.0};
  EXPECT_NEAR(aggregate(two).ci95_half_width(), 12.706, 1e-9);
  // n=10 (the paper's replication count): t = 2.262.
  std::vector<double> ten(10);
  for (std::size_t i = 0; i < 10; ++i) ten[i] = static_cast<double>(i);
  const Aggregate a = aggregate(ten);
  EXPECT_NEAR(a.ci95_half_width(), 2.262 * a.stddev / std::sqrt(10.0), 1e-12);
}

TEST(Aggregate, Ci95ZeroForSingleton) {
  const double one[] = {5.0};
  EXPECT_DOUBLE_EQ(aggregate(one).ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(aggregate({}).ci95_half_width(), 0.0);
}

TEST(Aggregate, Ci95LargeSampleUsesNormalQuantile) {
  std::vector<double> many(50, 1.0);
  many[0] = 2.0;
  const Aggregate a = aggregate(many);
  EXPECT_NEAR(a.ci95_half_width(), 1.96 * a.stddev / std::sqrt(50.0), 1e-12);
}

TEST(Summarize, UsesIntendedLoadNotCreatedCount) {
  // 3 bundles created, 3 delivered — but the intended load was 10: bundles
  // the source never injected count as undelivered.
  Recorder r(4, 10);
  for (BundleId id = 1; id <= 3; ++id) {
    r.on_created(id, 0.0);
    r.on_delivered(id, 10.0 * id);
  }
  r.finalize(100.0);
  const RunSummary s = summarize(r, /*load=*/10, /*seed=*/1, /*horizon=*/500.0);
  EXPECT_DOUBLE_EQ(s.delivery_ratio, 0.3);
  EXPECT_FALSE(s.complete);
  EXPECT_DOUBLE_EQ(s.completion_time, 500.0);  // horizon-charged
}

TEST(Summarize, CompleteRunUsesLastDelivery) {
  Recorder r(4, 10);
  r.on_created(1, 0.0);
  r.on_created(2, 0.0);
  r.on_delivered(1, 40.0);
  r.on_delivered(2, 90.0);
  r.finalize(100.0);
  const RunSummary s = summarize(r, 2, 1, 500.0);
  EXPECT_TRUE(s.complete);
  EXPECT_DOUBLE_EQ(s.delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.completion_time, 90.0);
}

TEST(Summarize, CopiesCounters) {
  Recorder r(2, 10);
  r.on_created(1, 0.0);
  r.on_stored(0, 1, 0.0);
  r.on_transfer(1, 1.0);
  r.on_control_records(9);
  r.on_contact();
  r.on_removed(0, 1, 5.0, dtn::RemoveReason::kEvicted);
  r.finalize(10.0);
  const RunSummary s = summarize(r, 1, 77, 10.0);
  EXPECT_EQ(s.seed, 77u);
  EXPECT_EQ(s.bundle_transmissions, 1u);
  EXPECT_EQ(s.control_records, 9u);
  EXPECT_EQ(s.contacts, 1u);
  EXPECT_EQ(s.drops_evicted, 1u);
  EXPECT_EQ(s.drops_expired, 0u);
}

TEST(AggregateRuns, EmptyBatch) {
  const LoadPoint p = aggregate_runs({});
  EXPECT_EQ(p.load, 0u);
  EXPECT_EQ(p.delivery_ratio.count, 0u);
}

TEST(AggregateRuns, AveragesAcrossReplications) {
  std::vector<RunSummary> runs(2);
  runs[0].load = 25;
  runs[0].delivery_ratio = 0.8;
  runs[0].completion_time = 100.0;
  runs[0].buffer_occupancy = 0.4;
  runs[1].load = 25;
  runs[1].delivery_ratio = 0.6;
  runs[1].completion_time = 300.0;
  runs[1].buffer_occupancy = 0.2;
  const LoadPoint p = aggregate_runs(runs);
  EXPECT_EQ(p.load, 25u);
  EXPECT_DOUBLE_EQ(p.delivery_ratio.mean, 0.7);
  EXPECT_DOUBLE_EQ(p.delay.mean, 200.0);
  EXPECT_DOUBLE_EQ(p.buffer_occupancy.mean, 0.3);
  EXPECT_DOUBLE_EQ(p.delivery_ratio.min, 0.6);
  EXPECT_DOUBLE_EQ(p.delivery_ratio.max, 0.8);
}

}  // namespace
}  // namespace epi::metrics
