// Property tests for the three mobility generators: determinism, invariants
// and the statistical shapes the experiments rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "mobility/interval_scenario.hpp"
#include "mobility/rwp.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace epi::mobility {
namespace {

// ---------------------------------------------------------------- haggle ----

class HaggleSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HaggleSeeds, DeterministicForSeed) {
  SyntheticHaggleParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_synthetic_haggle(params, GetParam());
  const ContactTrace b = generate_synthetic_haggle(params, GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(HaggleSeeds, RespectsInvariants) {
  SyntheticHaggleParams params;
  params.horizon = 100'000.0;
  const ContactTrace trace = generate_synthetic_haggle(params, GetParam());
  EXPECT_GT(trace.size(), 0u);
  EXPECT_LE(trace.node_count(), params.node_count);
  for (const auto& c : trace.contacts()) {
    EXPECT_NE(c.a, c.b);
    EXPECT_LT(c.a, params.node_count);
    EXPECT_LT(c.b, params.node_count);
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, params.horizon);
    EXPECT_GE(c.duration(), params.min_contact);
  }
}

TEST_P(HaggleSeeds, AllNodesParticipate) {
  SyntheticHaggleParams params;  // full 5-day horizon
  const ContactTrace trace = generate_synthetic_haggle(params, GetParam());
  std::vector<bool> seen(params.node_count, false);
  for (const auto& c : trace.contacts()) {
    seen[c.a] = true;
    seen[c.b] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaggleSeeds,
                         ::testing::Values(1, 2, 42, 1234, 99999));

TEST(SyntheticHaggle, DifferentSeedsDiffer) {
  SyntheticHaggleParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_synthetic_haggle(params, 1);
  const ContactTrace b = generate_synthetic_haggle(params, 2);
  EXPECT_NE(a.size(), 0u);
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticHaggle, IsBursty) {
  // Human traces mix intra-gathering gaps (minutes) with long idle periods
  // (hours): the max inter-contact gap should dwarf the mean.
  const ContactTrace trace =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const TraceStats s = trace.stats();
  EXPECT_GT(s.max_inter_contact, 5.0 * s.mean_inter_contact);
}

TEST(SyntheticHaggle, MeanDurationMatchesScale) {
  const ContactTrace trace =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const TraceStats s = trace.stats();
  // Contacts last minutes (a handful of 100 s slots), not seconds or hours.
  EXPECT_GT(s.mean_duration, 100.0);
  EXPECT_LT(s.mean_duration, 2'000.0);
}

TEST(SyntheticHaggle, ValidatesParams) {
  SyntheticHaggleParams p;
  p.node_count = 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.horizon = 0.0;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.max_attendees = p.node_count + 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.min_attendees = 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.median_gathering_gap = -5.0;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
}

// ------------------------------------------------------------------- rwp ----

class RwpSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwpSeeds, DeterministicForSeed) {
  RwpParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_rwp(params, GetParam());
  const ContactTrace b = generate_rwp(params, GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(RwpSeeds, RespectsContactCap) {
  RwpParams params;
  params.horizon = 100'000.0;
  const ContactTrace trace = generate_rwp(params, GetParam());
  EXPECT_GT(trace.size(), 0u);
  for (const auto& c : trace.contacts()) {
    // "Nodes may be in contact ... for a maximum 500 seconds."
    EXPECT_LE(c.duration(), params.max_contact_s + 1e-9);
    EXPECT_GE(c.duration(), params.min_contact_s);
    EXPECT_LT(c.a, params.node_count);
    EXPECT_LT(c.b, params.node_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwpSeeds, ::testing::Values(1, 7, 42, 31337));

TEST(Rwp, FullHorizonKeepsNodesMoving) {
  // The paper generates its RWP trace so nodes "move continuously along
  // rendezvous points until the end of the simulation": contacts must keep
  // occurring in the last tenth of the horizon.
  RwpParams params;
  const ContactTrace trace = generate_rwp(params, 42);
  EXPECT_GT(trace.end_time(), 0.9 * params.horizon);
}

TEST(Rwp, DenserThanHaggleTrace) {
  // The paper observes that "nodes have fewer encounters in the trace file"
  // than under RWP — our generators must preserve that relation.
  const ContactTrace rwp = generate_rwp(RwpParams{}, 42);
  const ContactTrace haggle =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const double rwp_rate =
      static_cast<double>(rwp.size()) / RwpParams{}.horizon;
  const double haggle_rate = static_cast<double>(haggle.size()) /
                             SyntheticHaggleParams{}.horizon;
  EXPECT_GT(rwp_rate, haggle_rate);
}

TEST(Rwp, ValidatesParams) {
  RwpParams p;
  p.subscriber_points = 1;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  // The former arbitrary "< 100" rejection is lifted (city-scale layouts
  // need hundreds of points); only the overflow-safe sanity bound remains.
  p.subscriber_points = (1u << 20) + 1;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.min_speed_mps = 0.0;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.max_speed_mps = p.min_speed_mps;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.min_contact_s = p.max_contact_s + 1.0;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.hotspot_points = p.subscriber_points + 1;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.hotspot_points = 4;
  p.hotspot_side_frac = 0.0;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.commuter_bias = 1.0;  // must stay < 1: a node needs some exploration
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
}

TEST(Rwp, AcceptsCityScalePointCounts) {
  // Hundreds of points used to be rejected outright; a small-area smoke run
  // with 256 points must now generate a valid trace.
  RwpParams p;
  p.node_count = 24;
  p.horizon = 20'000.0;
  p.subscriber_points = 256;
  const ContactTrace trace = generate_rwp(p, 7);
  for (const auto& c : trace.contacts()) {
    EXPECT_LT(c.b, p.node_count);
    EXPECT_GE(c.duration(), p.min_contact_s);
  }
}

TEST(Rwp, PauseNeverExceedsSmallMaxPause) {
  // Regression: the pause draw used to be uniform(1.0, max_pause_s), which
  // inverts the range when max_pause_s < 1 and silently produced pauses
  // beyond the configured maximum. With the bound respected, no visit — and
  // hence no contact — can outlast max_pause_s.
  RwpParams p;
  p.node_count = 8;
  p.horizon = 5'000.0;
  p.max_pause_s = 0.9;
  p.min_contact_s = 0.0;
  p.max_contact_s = 500.0;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ContactTrace trace = generate_rwp(p, seed);
    for (const auto& c : trace.contacts()) {
      EXPECT_LE(c.duration(), p.max_pause_s + 1e-9)
          << "seed " << seed << ": contact outlives the maximum pause";
    }
  }
}

TEST(Rwp, StreamedChunksMatchMaterialisedTrace) {
  // The streaming source must emit exactly the materialised trace, in
  // order, across its chunk boundaries.
  RwpParams p;
  p.horizon = 60'000.0;
  const ContactTrace trace = generate_rwp(p, 42);
  RwpContactSource source(p, 42);
  EXPECT_EQ(source.node_count(), p.node_count);
  std::size_t i = 0;
  for (auto chunk = source.next_chunk(); !chunk.empty();
       chunk = source.next_chunk()) {
    for (const auto& c : chunk) {
      ASSERT_LT(i, trace.size());
      EXPECT_EQ(c, trace[i]) << "at contact " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, trace.size());
  EXPECT_TRUE(source.next_chunk().empty());  // exhausted stays exhausted
}

/// Differential: the windowed spatial-hash generator against the naive
/// materialise-everything sweep — exact contact lists, same sort order —
/// across seeds and across parameter corners (hotspots, commuter bias,
/// sub-second pauses, many points).
class RwpDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwpDifferential, SpatialHashMatchesNaiveSweep) {
  RwpParams p;
  p.node_count = 10;
  p.horizon = 30'000.0;
  p.subscriber_points = 12;
  const ContactTrace fast = generate_rwp(p, GetParam());
  const ContactTrace naive = generate_rwp_reference(p, GetParam());
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i], naive[i]) << "seed " << GetParam() << ", contact " << i;
  }
}

TEST_P(RwpDifferential, SpatialHashMatchesNaiveSweepCityParams) {
  RwpParams p;
  p.node_count = 16;
  p.horizon = 15'000.0;
  p.subscriber_points = 64;
  p.hotspot_points = 16;
  p.hotspot_side_frac = 0.3;
  p.commuter_bias = 0.6;
  p.max_pause_s = 700.0;
  const ContactTrace fast = generate_rwp(p, GetParam());
  const ContactTrace naive = generate_rwp_reference(p, GetParam());
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i], naive[i]) << "seed " << GetParam() << ", contact " << i;
  }
}

TEST_P(RwpDifferential, SpatialHashMatchesNaiveSweepSubSecondPause) {
  RwpParams p;
  p.node_count = 6;
  p.horizon = 2'000.0;
  p.subscriber_points = 4;  // crowded: many co-presences
  p.max_pause_s = 0.5;
  p.min_contact_s = 0.0;
  const ContactTrace fast = generate_rwp(p, GetParam());
  const ContactTrace naive = generate_rwp_reference(p, GetParam());
  ASSERT_EQ(fast.size(), naive.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i], naive[i]) << "seed " << GetParam() << ", contact " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwpDifferential,
                         ::testing::Values(1, 2, 7, 13, 42, 97, 1234, 31337));

// -------------------------------------------------------------- interval ----

class IntervalSeeds
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(IntervalSeeds, Deterministic) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace a =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  const ContactTrace b =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(IntervalSeeds, EncounterBudgetHolds) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace trace =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  std::vector<std::uint32_t> count(params.node_count, 0);
  for (const auto& c : trace.contacts()) {
    ++count[c.a];
    ++count[c.b];
  }
  for (const auto n : count) {
    // "each of which has at most 20 encounters with other nodes"
    EXPECT_LE(n, params.encounters_per_node);
  }
}

TEST_P(IntervalSeeds, NoSelfOverlap) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace trace =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  // A node never participates in two overlapping contacts.
  for (NodeId n = 0; n < params.node_count; ++n) {
    const auto mine = trace.contacts_of(n);
    for (std::size_t i = 1; i < mine.size(); ++i) {
      EXPECT_GE(mine[i].start, mine[i - 1].end - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IntervalSeeds,
    ::testing::Combine(::testing::Values(1, 42, 777),
                       ::testing::Values(400.0, 2000.0)));

TEST(IntervalScenario, LongerCapStretchesSchedule) {
  IntervalScenarioParams p400;
  IntervalScenarioParams p2000;
  p2000.max_interval = 2000.0;
  const auto t400 = generate_interval_scenario(p400, 42);
  const auto t2000 = generate_interval_scenario(p2000, 42);
  EXPECT_GT(t2000.end_time(), 2.0 * t400.end_time());
}

TEST(IntervalScenario, ValidatesParams) {
  IntervalScenarioParams p;
  p.node_count = 1;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.encounters_per_node = 0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.max_interval = p.min_interval - 1.0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.min_duration = 0.0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
}

}  // namespace
}  // namespace epi::mobility
