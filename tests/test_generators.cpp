// Property tests for the three mobility generators: determinism, invariants
// and the statistical shapes the experiments rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "mobility/interval_scenario.hpp"
#include "mobility/rwp.hpp"
#include "mobility/synthetic_haggle.hpp"

namespace epi::mobility {
namespace {

// ---------------------------------------------------------------- haggle ----

class HaggleSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HaggleSeeds, DeterministicForSeed) {
  SyntheticHaggleParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_synthetic_haggle(params, GetParam());
  const ContactTrace b = generate_synthetic_haggle(params, GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(HaggleSeeds, RespectsInvariants) {
  SyntheticHaggleParams params;
  params.horizon = 100'000.0;
  const ContactTrace trace = generate_synthetic_haggle(params, GetParam());
  EXPECT_GT(trace.size(), 0u);
  EXPECT_LE(trace.node_count(), params.node_count);
  for (const auto& c : trace.contacts()) {
    EXPECT_NE(c.a, c.b);
    EXPECT_LT(c.a, params.node_count);
    EXPECT_LT(c.b, params.node_count);
    EXPECT_GE(c.start, 0.0);
    EXPECT_LE(c.end, params.horizon);
    EXPECT_GE(c.duration(), params.min_contact);
  }
}

TEST_P(HaggleSeeds, AllNodesParticipate) {
  SyntheticHaggleParams params;  // full 5-day horizon
  const ContactTrace trace = generate_synthetic_haggle(params, GetParam());
  std::vector<bool> seen(params.node_count, false);
  for (const auto& c : trace.contacts()) {
    seen[c.a] = true;
    seen[c.b] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaggleSeeds,
                         ::testing::Values(1, 2, 42, 1234, 99999));

TEST(SyntheticHaggle, DifferentSeedsDiffer) {
  SyntheticHaggleParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_synthetic_haggle(params, 1);
  const ContactTrace b = generate_synthetic_haggle(params, 2);
  EXPECT_NE(a.size(), 0u);
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticHaggle, IsBursty) {
  // Human traces mix intra-gathering gaps (minutes) with long idle periods
  // (hours): the max inter-contact gap should dwarf the mean.
  const ContactTrace trace =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const TraceStats s = trace.stats();
  EXPECT_GT(s.max_inter_contact, 5.0 * s.mean_inter_contact);
}

TEST(SyntheticHaggle, MeanDurationMatchesScale) {
  const ContactTrace trace =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const TraceStats s = trace.stats();
  // Contacts last minutes (a handful of 100 s slots), not seconds or hours.
  EXPECT_GT(s.mean_duration, 100.0);
  EXPECT_LT(s.mean_duration, 2'000.0);
}

TEST(SyntheticHaggle, ValidatesParams) {
  SyntheticHaggleParams p;
  p.node_count = 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.horizon = 0.0;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.max_attendees = p.node_count + 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.min_attendees = 1;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
  p = {};
  p.median_gathering_gap = -5.0;
  EXPECT_THROW(generate_synthetic_haggle(p, 1), ConfigError);
}

// ------------------------------------------------------------------- rwp ----

class RwpSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwpSeeds, DeterministicForSeed) {
  RwpParams params;
  params.horizon = 60'000.0;
  const ContactTrace a = generate_rwp(params, GetParam());
  const ContactTrace b = generate_rwp(params, GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(RwpSeeds, RespectsContactCap) {
  RwpParams params;
  params.horizon = 100'000.0;
  const ContactTrace trace = generate_rwp(params, GetParam());
  EXPECT_GT(trace.size(), 0u);
  for (const auto& c : trace.contacts()) {
    // "Nodes may be in contact ... for a maximum 500 seconds."
    EXPECT_LE(c.duration(), params.max_contact_s + 1e-9);
    EXPECT_GE(c.duration(), params.min_contact_s);
    EXPECT_LT(c.a, params.node_count);
    EXPECT_LT(c.b, params.node_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwpSeeds, ::testing::Values(1, 7, 42, 31337));

TEST(Rwp, FullHorizonKeepsNodesMoving) {
  // The paper generates its RWP trace so nodes "move continuously along
  // rendezvous points until the end of the simulation": contacts must keep
  // occurring in the last tenth of the horizon.
  RwpParams params;
  const ContactTrace trace = generate_rwp(params, 42);
  EXPECT_GT(trace.end_time(), 0.9 * params.horizon);
}

TEST(Rwp, DenserThanHaggleTrace) {
  // The paper observes that "nodes have fewer encounters in the trace file"
  // than under RWP — our generators must preserve that relation.
  const ContactTrace rwp = generate_rwp(RwpParams{}, 42);
  const ContactTrace haggle =
      generate_synthetic_haggle(SyntheticHaggleParams{}, 42);
  const double rwp_rate =
      static_cast<double>(rwp.size()) / RwpParams{}.horizon;
  const double haggle_rate = static_cast<double>(haggle.size()) /
                             SyntheticHaggleParams{}.horizon;
  EXPECT_GT(rwp_rate, haggle_rate);
}

TEST(Rwp, ValidatesParams) {
  RwpParams p;
  p.subscriber_points = 1;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.subscriber_points = 100;  // "< 100 subscriber points"
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.min_speed_mps = 0.0;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.max_speed_mps = p.min_speed_mps;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
  p = {};
  p.min_contact_s = p.max_contact_s + 1.0;
  EXPECT_THROW(generate_rwp(p, 1), ConfigError);
}

// -------------------------------------------------------------- interval ----

class IntervalSeeds
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(IntervalSeeds, Deterministic) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace a =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  const ContactTrace b =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(IntervalSeeds, EncounterBudgetHolds) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace trace =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  std::vector<std::uint32_t> count(params.node_count, 0);
  for (const auto& c : trace.contacts()) {
    ++count[c.a];
    ++count[c.b];
  }
  for (const auto n : count) {
    // "each of which has at most 20 encounters with other nodes"
    EXPECT_LE(n, params.encounters_per_node);
  }
}

TEST_P(IntervalSeeds, NoSelfOverlap) {
  IntervalScenarioParams params;
  params.max_interval = std::get<1>(GetParam());
  const ContactTrace trace =
      generate_interval_scenario(params, std::get<0>(GetParam()));
  // A node never participates in two overlapping contacts.
  for (NodeId n = 0; n < params.node_count; ++n) {
    const auto mine = trace.contacts_of(n);
    for (std::size_t i = 1; i < mine.size(); ++i) {
      EXPECT_GE(mine[i].start, mine[i - 1].end - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IntervalSeeds,
    ::testing::Combine(::testing::Values(1, 42, 777),
                       ::testing::Values(400.0, 2000.0)));

TEST(IntervalScenario, LongerCapStretchesSchedule) {
  IntervalScenarioParams p400;
  IntervalScenarioParams p2000;
  p2000.max_interval = 2000.0;
  const auto t400 = generate_interval_scenario(p400, 42);
  const auto t2000 = generate_interval_scenario(p2000, 42);
  EXPECT_GT(t2000.end_time(), 2.0 * t400.end_time());
}

TEST(IntervalScenario, ValidatesParams) {
  IntervalScenarioParams p;
  p.node_count = 1;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.encounters_per_node = 0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.max_interval = p.min_interval - 1.0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
  p = {};
  p.min_duration = 0.0;
  EXPECT_THROW(generate_interval_scenario(p, 1), ConfigError);
}

}  // namespace
}  // namespace epi::mobility
