#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace epi::exp {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitWithNoJobsReturns) {
  ThreadPool pool(2);
  pool.wait();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool survives and keeps working.
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> count{0};
  parallel_for(3, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("unlucky");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  const auto compute = [](unsigned threads) {
    std::vector<double> out(500);
    parallel_for(500, threads, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double expected = compute(1);
  EXPECT_DOUBLE_EQ(compute(2), expected);
  EXPECT_DOUBLE_EQ(compute(7), expected);
  EXPECT_DOUBLE_EQ(compute(16), expected);
}

}  // namespace
}  // namespace epi::exp
