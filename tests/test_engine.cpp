// Engine mechanics on hand-crafted contact schedules (pure epidemic, so no
// protocol-specific behaviour interferes).
#include "routing/engine.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "routing/factory.hpp"
#include "test_util.hpp"

namespace epi::routing {
namespace {

using test::make_trace;
using test::run_engine;
using test::small_config;

TEST(Engine, DirectContactDeliversWithinSlotBudget) {
  // The paper's example: a 314 s contact carries floor(314/100) = 3 bundles.
  auto config = small_config(/*load=*/3, /*nodes=*/3);
  const auto trace = make_trace({{0, 2, 0.0, 314.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.bundle_transmissions, 3u);
  // Slot completions at 100, 200, 300 -> mean per-bundle delay 200.
  EXPECT_DOUBLE_EQ(run.mean_bundle_delay, 200.0);
  EXPECT_DOUBLE_EQ(run.completion_time, 300.0);
}

TEST(Engine, ShortContactCarriesNothing) {
  auto config = small_config(1);
  const auto trace = make_trace({{0, 2, 0.0, 99.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
  EXPECT_EQ(run.bundle_transmissions, 0u);
  EXPECT_FALSE(run.complete);
}

TEST(Engine, SlotBudgetCapsTransfer) {
  // 5 bundles but only a 250 s contact: 2 slots -> 2 deliveries.
  auto config = small_config(5);
  const auto trace = make_trace({{0, 2, 0.0, 250.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.4);
  EXPECT_EQ(run.bundle_transmissions, 2u);
}

TEST(Engine, RelayPathDelivers) {
  // 0 meets 1, later 1 meets 2: two-hop delivery.
  auto config = small_config(1);
  const auto trace =
      make_trace({{0, 1, 0.0, 150.0}, {1, 2, 1'000.0, 1'150.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_EQ(run.bundle_transmissions, 2u);
  EXPECT_DOUBLE_EQ(run.completion_time, 1'100.0);
}

TEST(Engine, AntiEntropyNeverRetransmits) {
  // Two long contacts between the same pair: the second moves nothing
  // because the peer already holds every bundle.
  auto config = small_config(2);
  config.destination = 2;
  const auto trace =
      make_trace({{0, 1, 0.0, 500.0}, {0, 1, 1'000.0, 1'500.0}});
  const auto run = run_engine(config, trace);
  EXPECT_EQ(run.bundle_transmissions, 2u);  // both in the first contact
}

TEST(Engine, IdleSlotFallsBackToOtherDirection) {
  // Slot parity alternates the designated sender; when the high-id node has
  // nothing to offer, the low-id node uses the slot instead, so a 2-slot
  // contact still moves 2 bundles in one direction.
  auto config = small_config(2);
  const auto trace = make_trace({{0, 1, 0.0, 250.0}});
  const auto run = run_engine(config, trace);
  EXPECT_EQ(run.bundle_transmissions, 2u);
}

TEST(Engine, DeliveredBundlesNotReofferedToDestination) {
  // Relay 1 delivers to 2; later 0 meets 2 and must not re-deliver.
  auto config = small_config(1);
  const auto trace = make_trace(
      {{0, 1, 0.0, 150.0}, {1, 2, 500.0, 650.0}, {0, 2, 900.0, 1'050.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_EQ(run.bundle_transmissions, 2u);
}

TEST(Engine, FullRelayRefusesUnderPureEpidemic) {
  auto config = small_config(5);
  config.buffer_capacity = 2;  // relay can hold 2 relay copies
  config.load = 2;             // source holds its 2 (fits)
  const auto trace = make_trace({{0, 1, 0.0, 1'000.0}});
  const auto run = run_engine(config, trace);
  EXPECT_EQ(run.bundle_transmissions, 2u);  // relay filled, then refused
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
}

TEST(Engine, SourceInjectsOnlyUpToCapacityUnderPureEpidemic) {
  // Pure epidemic never frees buffer space: with capacity 4 and load 10 the
  // source can only ever inject 4 bundles.
  auto config = small_config(10);
  config.buffer_capacity = 4;
  const auto trace = make_trace({{0, 2, 0.0, 10'000.0}});
  const auto run = run_engine(config, trace);
  // All four injected bundles are delivered; the rest never exist.
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.4);
}

TEST(Engine, StopsAtCompletion) {
  auto config = small_config(1);
  const auto trace =
      make_trace({{0, 2, 0.0, 150.0}, {1, 2, 5'000.0, 5'150.0}});
  const auto run = run_engine(config, trace);
  EXPECT_TRUE(run.complete);
  EXPECT_DOUBLE_EQ(run.end_time, 100.0);  // first delivery ends the run
}

TEST(Engine, ContactsBeyondHorizonIgnored) {
  auto config = small_config(1);
  config.horizon = 500.0;
  const auto trace = make_trace({{0, 2, 600.0, 900.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 0.0);
  EXPECT_EQ(run.contacts, 0u);
}

TEST(Engine, FailedRunChargedHorizon) {
  auto config = small_config(1);
  config.horizon = 500.0;
  const auto trace = make_trace({{0, 1, 0.0, 150.0}});
  const auto run = run_engine(config, trace);
  EXPECT_FALSE(run.complete);
  EXPECT_DOUBLE_EQ(run.completion_time, 500.0);
}

TEST(Engine, CountsContacts) {
  auto config = small_config(1);
  config.horizon = 10'000.0;
  const auto trace =
      make_trace({{0, 1, 0.0, 50.0}, {1, 2, 100.0, 160.0}});
  const auto run = run_engine(config, trace);
  EXPECT_EQ(run.contacts, 2u);
}

TEST(Engine, OverlappingContactsBothServe) {
  // Source in simultaneous contact with two relays: both receive copies.
  auto config = small_config(1, /*nodes=*/4);
  config.destination = 3;
  const auto trace = make_trace(
      {{0, 1, 0.0, 150.0}, {0, 2, 50.0, 200.0}, {1, 3, 400.0, 520.0}});
  const auto run = run_engine(config, trace);
  EXPECT_DOUBLE_EQ(run.delivery_ratio, 1.0);
  EXPECT_EQ(run.bundle_transmissions, 3u);  // to 1, to 2, then delivery
}

TEST(Engine, TimelineRecordedWhenEnabled) {
  auto config = small_config(2);
  config.horizon = 5'000.0;
  config.record_timeline = true;
  config.sample_interval = 1'000.0;
  const auto trace = make_trace({{0, 1, 0.0, 350.0}});
  Engine engine(config, trace, routing::make_protocol(config.protocol), 1);
  engine.run();
  // Samples at 0, 1000, ..., 5000 (the run never completes: dest is node 2).
  EXPECT_EQ(engine.recorder().timeline().size(), 6u);
  // The relay holds copies from t=100 onward.
  EXPECT_GT(engine.recorder().timeline()[1].live_copies, 0u);
}

TEST(Engine, NoTimelineByDefault) {
  auto config = small_config(1);
  const auto trace = make_trace({{0, 2, 0.0, 150.0}});
  Engine engine(config, trace, routing::make_protocol(config.protocol), 1);
  engine.run();
  EXPECT_TRUE(engine.recorder().timeline().empty());
}

TEST(Engine, RejectsTraceWiderThanConfig) {
  auto config = small_config(1, /*nodes=*/3);
  const auto trace = make_trace({{0, 9, 0.0, 100.0}});
  EXPECT_THROW(
      Engine(config, trace, routing::make_protocol(config.protocol), 1),
      TraceError);
}

TEST(Engine, RejectsNullProtocol) {
  auto config = small_config(1);
  const auto trace = make_trace({{0, 1, 0.0, 100.0}});
  EXPECT_THROW(Engine(config, trace, nullptr, 1), ConfigError);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto config = small_config(5, 4);
  config.protocol.kind = ProtocolKind::kPqEpidemic;
  config.protocol.p = 0.5;
  config.protocol.q = 0.5;
  const auto trace = make_trace(
      {{0, 1, 0.0, 500.0}, {1, 3, 800.0, 1'300.0}, {0, 3, 2'000.0, 2'500.0}});
  const auto a = run_engine(config, trace, 99);
  const auto b = run_engine(config, trace, 99);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.bundle_transmissions, b.bundle_transmissions);
  EXPECT_DOUBLE_EQ(a.buffer_occupancy, b.buffer_occupancy);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
}

TEST(Engine, RunSummaryBasicInvariants) {
  auto config = small_config(7, 5);
  const auto trace = make_trace({{0, 1, 0.0, 350.0},
                                 {1, 2, 500.0, 900.0},
                                 {2, 4, 1'200.0, 1'600.0},
                                 {0, 4, 2'000.0, 2'300.0}});
  config.destination = 4;
  const auto run = run_engine(config, trace);
  EXPECT_GE(run.delivery_ratio, 0.0);
  EXPECT_LE(run.delivery_ratio, 1.0);
  EXPECT_GE(run.buffer_occupancy, 0.0);
  EXPECT_LE(run.buffer_occupancy, 1.0);
  EXPECT_GE(run.duplication_rate, 0.0);
  EXPECT_LE(run.duplication_rate, 1.0);
}

}  // namespace
}  // namespace epi::routing
