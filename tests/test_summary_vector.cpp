#include "dtn/summary_vector.hpp"

#include <gtest/gtest.h>

namespace epi::dtn {
namespace {

TEST(SummaryVector, InsertReportsNovelty) {
  SummaryVector v;
  EXPECT_TRUE(v.insert(3));
  EXPECT_FALSE(v.insert(3));
  EXPECT_EQ(v.size(), 1u);
}

TEST(SummaryVector, EraseReportsPresence) {
  SummaryVector v;
  v.insert(3);
  EXPECT_TRUE(v.erase(3));
  EXPECT_FALSE(v.erase(3));
  EXPECT_TRUE(v.empty());
}

TEST(SummaryVector, Contains) {
  SummaryVector v;
  v.insert(1);
  EXPECT_TRUE(v.contains(1));
  EXPECT_FALSE(v.contains(2));
}

TEST(SummaryVector, DifferenceIsSortedAndOneSided) {
  SummaryVector a;
  SummaryVector b;
  for (const BundleId id : {9u, 1u, 5u, 3u}) a.insert(id);
  b.insert(5);
  b.insert(2);
  const auto diff = a.difference(b);
  EXPECT_EQ(diff, (std::vector<BundleId>{1, 3, 9}));
  const auto rdiff = b.difference(a);
  EXPECT_EQ(rdiff, (std::vector<BundleId>{2}));
}

TEST(SummaryVector, DifferenceWithEmpty) {
  SummaryVector a;
  a.insert(4);
  EXPECT_EQ(a.difference(SummaryVector{}).size(), 1u);
  EXPECT_TRUE(SummaryVector{}.difference(a).empty());
}

TEST(SummaryVector, MergeCountsNewIds) {
  SummaryVector a;
  SummaryVector b;
  a.insert(1);
  a.insert(2);
  b.insert(2);
  b.insert(3);
  b.insert(4);
  EXPECT_EQ(a.merge(b), 2u);  // 3 and 4 are new
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.merge(b), 0u);  // idempotent
}

TEST(SummaryVector, SortedSnapshot) {
  SummaryVector v;
  for (const BundleId id : {7u, 2u, 5u}) v.insert(id);
  EXPECT_EQ(v.sorted(), (std::vector<BundleId>{2, 5, 7}));
}

TEST(SummaryVector, Clear) {
  SummaryVector v;
  v.insert(1);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.contains(1));
}

}  // namespace
}  // namespace epi::dtn
