#include "dtn/summary_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_set>
#include <vector>

namespace epi::dtn {
namespace {

TEST(SummaryVector, InsertReportsNovelty) {
  SummaryVector v;
  EXPECT_TRUE(v.insert(3));
  EXPECT_FALSE(v.insert(3));
  EXPECT_EQ(v.size(), 1u);
}

TEST(SummaryVector, EraseReportsPresence) {
  SummaryVector v;
  v.insert(3);
  EXPECT_TRUE(v.erase(3));
  EXPECT_FALSE(v.erase(3));
  EXPECT_TRUE(v.empty());
}

TEST(SummaryVector, Contains) {
  SummaryVector v;
  v.insert(1);
  EXPECT_TRUE(v.contains(1));
  EXPECT_FALSE(v.contains(2));
}

TEST(SummaryVector, DifferenceIsSortedAndOneSided) {
  SummaryVector a;
  SummaryVector b;
  for (const BundleId id : {9u, 1u, 5u, 3u}) a.insert(id);
  b.insert(5);
  b.insert(2);
  const auto diff = a.difference(b);
  EXPECT_EQ(diff, (std::vector<BundleId>{1, 3, 9}));
  const auto rdiff = b.difference(a);
  EXPECT_EQ(rdiff, (std::vector<BundleId>{2}));
}

TEST(SummaryVector, DifferenceWithEmpty) {
  SummaryVector a;
  a.insert(4);
  EXPECT_EQ(a.difference(SummaryVector{}).size(), 1u);
  EXPECT_TRUE(SummaryVector{}.difference(a).empty());
}

TEST(SummaryVector, MergeCountsNewIds) {
  SummaryVector a;
  SummaryVector b;
  a.insert(1);
  a.insert(2);
  b.insert(2);
  b.insert(3);
  b.insert(4);
  EXPECT_EQ(a.merge(b), 2u);  // 3 and 4 are new
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.merge(b), 0u);  // idempotent
}

TEST(SummaryVector, SortedSnapshot) {
  SummaryVector v;
  for (const BundleId id : {7u, 2u, 5u}) v.insert(id);
  EXPECT_EQ(v.sorted(), (std::vector<BundleId>{2, 5, 7}));
}

TEST(SummaryVector, Clear) {
  SummaryVector v;
  v.insert(1);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.contains(1));
}

// --- word-boundary behaviour (bit 63 of word 0 vs bits 0/1 of word 1) -------

TEST(SummaryVector, MergeCountsAcrossWordBoundaries) {
  SummaryVector a;
  SummaryVector b;
  a.insert(63);
  for (const BundleId id : {63u, 64u, 65u}) b.insert(id);
  EXPECT_EQ(a.merge(b), 2u);  // 64 and 65 straddle into the second word
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.sorted(), (std::vector<BundleId>{63, 64, 65}));
  EXPECT_EQ(a.merge(b), 0u);  // idempotent across the boundary too

  // Merging a longer vector into a shorter one must grow word storage.
  SummaryVector c;
  c.insert(1);
  EXPECT_EQ(c.merge(b), 3u);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.contains(65));
}

TEST(SummaryVector, MergeLimitedStopsInsideAWord) {
  SummaryVector from;
  for (const BundleId id : {62u, 63u, 64u, 65u, 66u}) from.insert(id);
  SummaryVector to;
  // Budget 3 must take exactly the three lowest missing ids, ending
  // mid-way through the second word.
  EXPECT_EQ(to.merge_limited(from, 3), 3u);
  EXPECT_EQ(to.sorted(), (std::vector<BundleId>{62, 63, 64}));
  // The next bounded merge resumes where the budget ran out.
  EXPECT_EQ(to.merge_limited(from, 3), 2u);
  EXPECT_EQ(to.sorted(), from.sorted());
  EXPECT_EQ(to.merge_limited(from, 3), 0u);
  EXPECT_EQ(SummaryVector{}.merge_limited(from, 0), 0u);
}

TEST(SummaryVector, EraseOfAbsentIds) {
  SummaryVector v;
  v.insert(5);
  EXPECT_FALSE(v.erase(6));     // same word, bit not set
  EXPECT_FALSE(v.erase(1000));  // beyond allocated words entirely
  EXPECT_EQ(v.size(), 1u);
  EXPECT_TRUE(v.contains(5));
  EXPECT_FALSE(SummaryVector{}.erase(1));
}

TEST(SummaryVector, ForEachDifferenceVisitsAscendingAndCanStop) {
  SummaryVector a;
  SummaryVector b;
  for (const BundleId id : {1u, 63u, 64u, 200u}) a.insert(id);
  b.insert(63);
  std::vector<BundleId> seen;
  a.for_each_difference(b, [&](BundleId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<BundleId>{1, 64, 200}));

  seen.clear();
  a.for_each_difference(b, [&](BundleId id) {
    seen.push_back(id);
    return seen.size() < 2;  // stop after two ids
  });
  EXPECT_EQ(seen, (std::vector<BundleId>{1, 64}));
}

// --- differential property test vs a reference model ------------------------

// Randomized operation sequences executed against both the bitset and a
// std::unordered_set reference; every queryable aspect must agree at every
// step. Seeds are fixed: failures reproduce exactly.
TEST(SummaryVector, DifferentialAgainstReferenceModel) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    // Mixed id range: dense low ids plus a sparse tail crossing many words.
    std::uniform_int_distribution<BundleId> pick_id(1, 400);
    std::uniform_int_distribution<int> pick_op(0, 5);

    SummaryVector v;
    SummaryVector other;
    std::unordered_set<BundleId> model;
    std::unordered_set<BundleId> other_model;

    const auto sorted_of = [](const std::unordered_set<BundleId>& s) {
      std::vector<BundleId> out(s.begin(), s.end());
      std::sort(out.begin(), out.end());
      return out;
    };

    for (int step = 0; step < 2000; ++step) {
      const BundleId id = pick_id(rng);
      switch (pick_op(rng)) {
        case 0:
          ASSERT_EQ(v.insert(id), model.insert(id).second);
          break;
        case 1:
          ASSERT_EQ(v.erase(id), model.erase(id) > 0);
          break;
        case 2:
          ASSERT_EQ(v.contains(id), model.contains(id));
          break;
        case 3:
          other.insert(id);
          other_model.insert(id);
          break;
        case 4: {  // difference against the second set, both directions
          std::vector<BundleId> expect;
          for (const BundleId x : sorted_of(model)) {
            if (!other_model.contains(x)) expect.push_back(x);
          }
          ASSERT_EQ(v.difference(other), expect);
          break;
        }
        case 5: {  // merge the second set in; count must be the novel ids
          std::size_t expect_added = 0;
          for (const BundleId x : other_model) {
            if (model.insert(x).second) ++expect_added;
          }
          ASSERT_EQ(v.merge(other), expect_added);
          break;
        }
      }
      ASSERT_EQ(v.size(), model.size());
    }

    // Final full-state agreement, including ascending iteration order.
    ASSERT_EQ(v.sorted(), sorted_of(model));
    std::vector<BundleId> iterated;
    v.for_each([&](BundleId id2) { iterated.push_back(id2); });
    ASSERT_EQ(iterated, sorted_of(model));
    ASSERT_TRUE(std::is_sorted(iterated.begin(), iterated.end()));
  }
}

}  // namespace
}  // namespace epi::dtn
