#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epi::core {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  auto [time, action] = q.pop();
  EXPECT_DOUBLE_EQ(time, 4.5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventHandle h = q.schedule(1.0, [&] { fired = true; });
  q.schedule(2.0, [] {});
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.pop().action();
  q.cancel(h);  // already fired
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DefaultHandleCancelIsNoop) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.cancel(EventHandle{});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  for (const auto h : handles) q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(static_cast<double>(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ReschedulingAfterClearWorks) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.clear();
  bool fired = false;
  q.schedule(2.0, [&] { fired = true; });
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        q.schedule(static_cast<double>(100 - i), [&fired, i] {
          fired.push_back(static_cast<double>(100 - i));
        }));
  }
  // Cancel every other event.
  for (size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 50u);
  double prev = -1.0;
  while (!q.empty()) {
    auto [time, action] = q.pop();
    EXPECT_GT(time, prev);
    prev = time;
    action();
  }
  EXPECT_EQ(fired.size(), 50u);
}

}  // namespace
}  // namespace epi::core
