#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace epi::core {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  auto [time, action] = q.pop();
  EXPECT_DOUBLE_EQ(time, 4.5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventHandle h = q.schedule(1.0, [&] { fired = true; });
  q.schedule(2.0, [] {});
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.pop().action();
  q.cancel(h);  // already fired
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DefaultHandleCancelIsNoop) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.cancel(EventHandle{});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  for (const auto h : handles) q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(static_cast<double>(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ReschedulingAfterClearWorks) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.clear();
  bool fired = false;
  q.schedule(2.0, [&] { fired = true; });
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ClassesOrderSameTimeEvents) {
  // Lower classes fire first at the same instant, FIFO within a class —
  // regardless of scheduling order.
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, EventClass::kNormal, [&] { fired.push_back(4); });
  q.schedule(1.0, EventClass::kSampler, [&] { fired.push_back(2); });
  q.schedule(1.0, EventClass::kFeeder, [&] { fired.push_back(0); });
  q.schedule(1.0, EventClass::kFeeder, [&] { fired.push_back(1); });
  q.schedule(1.0, EventClass::kSampler, [&] { fired.push_back(3); });
  q.schedule(0.5, EventClass::kNormal, [&] { fired.push_back(-1); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
}

TEST(EventQueue, ReservedRanksFixTieOrderAcrossLazyScheduling) {
  // A reserved block keeps its FIFO position even when its events are
  // scheduled much later than competing same-time events.
  EventQueue q;
  std::vector<char> fired;
  const std::uint64_t base = q.reserve_ranks(2);
  q.schedule(5.0, [&] { fired.push_back('c'); });  // rank base + 2
  q.schedule_ranked(5.0, base + 1, [&] { fired.push_back('b'); });
  q.schedule_ranked(5.0, base, [&] { fired.push_back('a'); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(EventQueue, AdversarialInterleavedStress) {
  // Model-checked random interleaving of schedule/cancel/pop/clear with a
  // deliberately tiny time domain (maximum same-time ties). The reference
  // model is the spec: earliest (time, schedule order) pops first.
  struct ModelEvent {
    SimTime time;
    std::uint64_t order;
    int tag;
    EventHandle handle;
  };
  EventQueue q;
  std::vector<ModelEvent> model;           // live events
  std::vector<EventHandle> dead_handles;   // fired or cancelled
  std::vector<int> fired;
  int last_popped_tag = -1;
  std::uint64_t order = 0;
  int next_tag = 0;
  std::uint64_t lcg = 12345;
  const auto rnd = [&](std::uint64_t n) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % n;
  };

  for (int step = 0; step < 5'000; ++step) {
    const auto op = rnd(100);
    if (op < 55) {  // schedule, times drawn from just 8 instants
      const SimTime t = 0.5 * static_cast<double>(rnd(8));
      const int tag = next_tag++;
      const EventHandle h =
          q.schedule(t, [&, tag] { fired.push_back(tag); });
      model.push_back(ModelEvent{t, order++, tag, h});
    } else if (op < 70 && !model.empty()) {  // cancel a live event
      const auto victim = rnd(model.size());
      q.cancel(model[victim].handle);
      dead_handles.push_back(model[victim].handle);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (op < 75) {  // cancel stale / default handles: no-ops
      q.cancel(EventHandle{});
      if (!dead_handles.empty()) q.cancel(dead_handles[rnd(dead_handles.size())]);
    } else if (op < 97 && !model.empty()) {  // pop: must match the model
      const auto expected = std::min_element(
          model.begin(), model.end(),
          [](const ModelEvent& x, const ModelEvent& y) {
            if (x.time != y.time) return x.time < y.time;
            return x.order < y.order;
          });
      EXPECT_DOUBLE_EQ(q.next_time(), expected->time);
      auto [time, action] = q.pop();
      EXPECT_DOUBLE_EQ(time, expected->time);
      action();
      ASSERT_FALSE(fired.empty());
      EXPECT_EQ(fired.back(), expected->tag);
      EXPECT_GE(expected->tag, 0);
      last_popped_tag = expected->tag;
      dead_handles.push_back(expected->handle);
      model.erase(expected);
    } else if (op >= 97) {  // clear mid-run
      for (const auto& e : model) dead_handles.push_back(e.handle);
      q.clear();
      model.clear();
    }
    ASSERT_EQ(q.size(), model.size());
    ASSERT_EQ(q.empty(), model.empty());
  }
  (void)last_popped_tag;

  // Drain what's left; FIFO tie order must hold to the end.
  std::stable_sort(model.begin(), model.end(),
                   [](const ModelEvent& x, const ModelEvent& y) {
                     if (x.time != y.time) return x.time < y.time;
                     return x.order < y.order;
                   });
  for (const auto& expected : model) {
    auto [time, action] = q.pop();
    EXPECT_DOUBLE_EQ(time, expected.time);
    action();
    EXPECT_EQ(fired.back(), expected.tag);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireWithReusedSlotsIsNoop) {
  // Fired events release their slots for reuse; a stale handle must never
  // cancel the slot's new occupant.
  EventQueue q;
  std::vector<EventHandle> first_wave;
  for (int i = 0; i < 8; ++i) {
    first_wave.push_back(q.schedule(1.0, [] {}));
  }
  while (!q.empty()) q.pop().action();
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    q.schedule(2.0, [&] { ++fired; });  // likely reuses the freed slots
  }
  for (const auto h : first_wave) q.cancel(h);  // all stale
  EXPECT_EQ(q.size(), 8u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 8);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        q.schedule(static_cast<double>(100 - i), [&fired, i] {
          fired.push_back(static_cast<double>(100 - i));
        }));
  }
  // Cancel every other event.
  for (size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 50u);
  double prev = -1.0;
  while (!q.empty()) {
    auto [time, action] = q.pop();
    EXPECT_GT(time, prev);
    prev = time;
    action();
  }
  EXPECT_EQ(fired.size(), 50u);
}

}  // namespace
}  // namespace epi::core
